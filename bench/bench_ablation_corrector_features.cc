// Ablation: does the corrector's third feature earn its keep? (§V-B)
//
// For quantization distances the paper adds "the distance from u to its
// quantized centroid as an additional feature", claiming it "further
// enhances the effectiveness of the linear model". This harness trains the
// SAME estimator (OPQ-style plain PQ, and RQ) with
//   (a) a 2-feature corrector (dis', tau), and
//   (b) a 3-feature corrector (dis', tau, reconstruction error),
// calibrates both to the same label-0 recall target, and compares the
// pruning power (label-1 recall) the boundary achieves on held-out pairs —
// more pruning at equal safety is the whole game.
//
// Also sweeps the calibration target to show the accuracy/efficiency dial
// of Fig 4 / Exp-2 in isolation from any index.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

using core::CorrectorSample;
using core::LinearCorrector;

// Re-materializes samples for `estimator` over labeled pairs; returns
// held-out metrics of a corrector trained at the given feature count.
struct Ablation {
  double label0_recall = 0.0;
  double label1_recall = 0.0;  // pruning power
};

Ablation TrainAndEvaluate(core::ApproxDistanceEstimator& estimator,
                          const data::Dataset& ds,
                          const std::vector<core::LabeledPair>& train_pairs,
                          const std::vector<core::LabeledPair>& test_pairs,
                          int num_features, double target_recall) {
  auto materialize = [&](const std::vector<core::LabeledPair>& pairs) {
    int64_t current = -1;
    return core::MaterializeSamples(
        pairs, [&](int64_t query_index, int64_t id, float* extra) {
          if (query_index != current) {
            estimator.BeginQuery(ds.train_queries.Row(query_index));
            current = query_index;
          }
          float raw_extra = 0.0f;
          const float approx = estimator.Estimate(id, &raw_extra);
          // The 2-feature ablation zeroes the trust feature.
          *extra = num_features >= 3 ? raw_extra : 0.0f;
          return approx;
        });
  };

  std::vector<CorrectorSample> train = materialize(train_pairs);
  std::vector<CorrectorSample> test = materialize(test_pairs);

  core::LinearCorrectorOptions options;
  options.num_features = num_features;
  options.target_recall = target_recall;
  LinearCorrector corrector = LinearCorrector::Train(train, options);

  LinearCorrector::Metrics metrics = corrector.Evaluate(test);
  return {metrics.label0_recall, metrics.label1_recall};
}

void RunDataset(const data::SyntheticSpec& spec, const Scale& scale) {
  data::Dataset ds = MakeProxy(spec, scale);
  std::printf("\n== dataset %s (n=%lld d=%lld) ==\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()));

  // Split labeled pairs into train/test halves by query.
  core::TrainingDataOptions training;
  training.max_queries = scale.CorrectorTrainQueries();
  std::vector<core::LabeledPair> pairs =
      core::CollectLabeledPairs(ds.base, ds.train_queries, training);
  const int64_t split_query =
      pairs.empty() ? 0 : pairs[pairs.size() / 2].query_index;
  std::vector<core::LabeledPair> train_pairs, test_pairs;
  for (const auto& pair : pairs) {
    (pair.query_index < split_query ? train_pairs : test_pairs)
        .push_back(pair);
  }

  const int nbits = scale.paper ? 8 : 6;
  quant::PqOptions pq_options;
  pq_options.nbits = nbits;
  pq_options.kmeans.max_iterations = scale.paper ? 25 : 10;
  core::PqEstimatorData pq = core::BuildPqEstimatorData(ds.base, pq_options);

  quant::RqOptions rq_options;
  rq_options.num_stages = 8;
  rq_options.nbits = nbits;
  rq_options.kmeans.max_iterations = scale.paper ? 25 : 10;
  core::RqEstimatorData rq = core::BuildRqEstimatorData(ds.base, rq_options);

  std::printf("%-6s %8s %10s %14s %14s\n", "src", "feats", "target",
              "label0-recall", "pruning-power");
  for (double target : {0.99, 0.995, 0.999}) {
    for (int features : {2, 3}) {
      core::PqAdcEstimator pq_estimator(&pq);
      Ablation a = TrainAndEvaluate(pq_estimator, ds, train_pairs,
                                    test_pairs, features, target);
      std::printf("%-6s %8d %10.3f %14.4f %14.4f\n", "pq", features, target,
                  a.label0_recall, a.label1_recall);
    }
    for (int features : {2, 3}) {
      core::RqAdcEstimator rq_estimator(&rq);
      Ablation a = TrainAndEvaluate(rq_estimator, ds, train_pairs,
                                    test_pairs, features, target);
      std::printf("%-6s %8d %10.3f %14.4f %14.4f\n", "rq", features, target,
                  a.label0_recall, a.label1_recall);
    }
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("ablation_corrector_features",
              "§V-B third-feature ablation + calibration-target sweep");
  Scale scale = GetScale();
  RunDataset(resinfer::data::SiftProxySpec(), scale);
  RunDataset(resinfer::data::GloveProxySpec(), scale);
  std::printf(
      "\nExpected shape: at matched label-0 recall (safety), the 3-feature "
      "corrector prunes at least as much as the 2-feature one — the "
      "per-point reconstruction error tells the boundary which estimates "
      "to trust (§V-B). Raising the target recall trades pruning power "
      "for safety (Fig 4's boundary shift).\n");
  return 0;
}

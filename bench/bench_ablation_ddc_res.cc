// Ablation of DDCres design choices (DESIGN.md §3, beyond the paper's
// figures):
//   (a) Algorithm 1 (single test) vs Algorithm 2 (incremental correction),
//   (b) the increment delta_dim,
//   (c) the error-bound quantile / multiplier.
// Run on the DEEP proxy with HNSW at a fixed ef.
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

struct Measured {
  double qps = 0.0;
  double recall = 0.0;
  double scan_rate = 0.0;
};

Measured Measure(const index::HnswIndex& hnsw, const data::Dataset& ds,
                 const std::vector<std::vector<int64_t>>& truth,
                 index::DistanceComputer& computer, int ef) {
  index::HnswScratch scratch;
  std::vector<std::vector<int64_t>> results;
  computer.stats().Reset();
  WallTimer timer;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto found = hnsw.Search(computer, ds.queries.Row(q), 20, ef, &scratch);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  Measured m;
  m.qps = ds.queries.rows() / timer.ElapsedSeconds();
  m.recall = data::MeanRecallAtK(results, truth, 20);
  m.scan_rate = computer.stats().ScanRate(ds.dim());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_ablation_ddc_res",
                         "DDCres design-choice ablations (extension)");
  benchutil::Scale scale = benchutil::GetScale();

  data::Dataset ds = benchutil::MakeProxy(data::DeepProxySpec(), scale);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 20);
  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  linalg::Matrix rotated = pca.TransformBatch(ds.base.data(), ds.size());
  const int ef = 160;

  std::printf("variant,qps,recall,scan_rate\n");

  // (a) Algorithm 1 vs Algorithm 2.
  for (bool incremental : {false, true}) {
    core::DdcResOptions options;
    options.incremental = incremental;
    core::DdcResComputer computer(&pca, &rotated, options);
    Measured m = Measure(hnsw, ds, truth, computer, ef);
    std::printf("algo=%s,%.1f,%.4f,%.3f\n",
                incremental ? "incremental(Alg2)" : "basic(Alg1)", m.qps,
                m.recall, m.scan_rate);
  }

  // (b) delta_dim sweep.
  for (int64_t delta : {8, 16, 32, 64}) {
    core::DdcResOptions options;
    options.init_dim = delta;
    options.delta_dim = delta;
    core::DdcResComputer computer(&pca, &rotated, options);
    Measured m = Measure(hnsw, ds, truth, computer, ef);
    std::printf("delta_dim=%ld,%.1f,%.4f,%.3f\n", static_cast<long>(delta),
                m.qps, m.recall, m.scan_rate);
  }

  // (c) multiplier sweep (quantile strength).
  for (double mult : {1.0, 2.0, 3.0, 4.0, 6.0}) {
    core::DdcResOptions options;
    options.multiplier = mult;
    core::DdcResComputer computer(&pca, &rotated, options);
    Measured m = Measure(hnsw, ds, truth, computer, ef);
    std::printf("multiplier=%.1f,%.1f,%.4f,%.3f\n", mult, m.qps, m.recall,
                m.scan_rate);
  }

  std::printf(
      "# expectation: Alg2 scans fewer dims than Alg1 at equal recall; "
      "small multipliers trade recall for speed, large ones converge to "
      "exact behaviour\n");
  return 0;
}

// Ablation: incremental vs single-shot correction on a quantization
// backend (§V-B "Incremental Correction").
//
// The projection methods refine by adding dimensions; RQ refines by adding
// stages. This harness compares, at matched target recall, on HNSW:
//   (a) single-shot: full-depth RQ ADC + one classifier (DdcAny),
//   (b) cascade: classifiers after 2 / 4 / 8 stages, pruning at the first
//       level that fires (DdcRqCascade).
// The cascade's win is cheaper pruning: most rejected candidates cost 2
// table lookups instead of 8. Lookups per candidate and QPS tell the story;
// recall must stay at the target for both.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

void RunDataset(const data::SyntheticSpec& spec, const Scale& scale) {
  data::Dataset ds = MakeProxy(spec, scale);
  std::printf("\n== dataset %s (n=%lld d=%lld) ==\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()));

  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(ds.base, ds.queries, k);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  const int nbits = scale.paper ? 8 : 6;
  core::TrainingDataOptions training;
  training.max_queries = scale.CorrectorTrainQueries();

  // (a) single-shot full-depth RQ.
  quant::RqOptions rq_options;
  rq_options.num_stages = 8;
  rq_options.nbits = nbits;
  rq_options.kmeans.max_iterations = scale.paper ? 25 : 10;
  core::RqEstimatorData single_data =
      core::BuildRqEstimatorData(ds.base, rq_options);
  core::RqAdcEstimator trainer(&single_data);
  core::LinearCorrector single_corrector =
      core::TrainAnyCorrector(trainer, ds.base, ds.train_queries, training);

  // (b) the 2/4/8 cascade over the same RQ depth.
  core::DdcRqCascadeOptions cascade_options;
  cascade_options.rq = rq_options;
  cascade_options.levels = {2, 4, 8};
  cascade_options.training = training;
  core::DdcRqCascadeArtifacts cascade =
      core::TrainDdcRqCascade(ds.base, ds.train_queries, cascade_options);

  std::printf("%-22s %6s %10s %8s %10s %14s\n", "variant", "ef", "recall@10",
              "qps", "pruned", "lookups/cand");
  for (int ef : {40, 80, 160}) {
    {
      core::DdcAnyComputer computer(
          &ds.base, std::make_unique<core::RqAdcEstimator>(&single_data),
          &single_corrector);
      std::vector<SweepPoint> p = HnswSweep(hnsw, computer, ds, truth, k,
                                            {ef});
      // Single-shot always pays the full 8 lookups per estimated candidate.
      std::printf("%-22s %6d %10.3f %8.0f %10.2f %14.1f\n",
                  "single-shot (8 stages)", ef, p[0].recall, p[0].qps,
                  computer.stats().PrunedRate(), 8.0);
    }
    {
      core::DdcRqCascadeComputer computer(&ds.base, &cascade);
      std::vector<SweepPoint> p = HnswSweep(hnsw, computer, ds, truth, k,
                                            {ef});
      const double lookups =
          computer.stats().candidates > 0
              ? static_cast<double>(computer.stage_lookups()) /
                    static_cast<double>(computer.stats().candidates)
              : 0.0;
      std::printf("%-22s %6d %10.3f %8.0f %10.2f %14.1f\n",
                  "cascade (2/4/8)", ef, p[0].recall, p[0].qps,
                  computer.stats().PrunedRate(), lookups);
    }
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("ablation_rq_cascade",
              "§V-B incremental correction on a quantization backend");
  Scale scale = GetScale();
  RunDataset(resinfer::data::SiftProxySpec(), scale);
  std::printf(
      "\nExpected shape: the cascade matches the single-shot recall while "
      "spending fewer table lookups per candidate (early levels absorb "
      "most prunes), mirroring how Incremental-DDCres (Algorithm 2) beats "
      "Algorithm 1 on scanned dimensions.\n");
  return 0;
}

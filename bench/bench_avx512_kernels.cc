// AVX-512 kernel tier vs AVX2 (tracked in BENCH_avx512_kernels.json).
//
// Two measurements at the acceptance shape n=100k d=128:
//
//   1. Per-kernel hot loops: every KernelTable entry driven through the
//      public dispatch API at each supported SIMD level, over the same
//      preallocated data (rows/second or codes/second). The AVX-512 rows
//      divide by the AVX2 rows to give the per-kernel speedup.
//   2. End-to-end IVF search QPS for the three serving configs the
//      ROADMAP tracks — ddc-pq (byte codes, float-ADC gather), the packed
//      fast-scan nbits=4 tier (bucket-resident codes), and exact
//      (FlatDistanceComputer) — each swept at AVX2 and AVX-512.
//
// Per-lane bit-identity is a per-level contract, so recall at a fixed
// nprobe may move at float kernels' last ulp between levels; the fast-scan
// sums are exact integers and cannot move at all.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "util/aligned_buffer.h"

namespace resinfer::benchutil {
namespace {

constexpr int64_t kBaseN = 100000;
constexpr int64_t kDim = 128;
constexpr int kSubspaces = 32;  // nbits=4: 16-entry codebooks, dsub=4
constexpr int kKsub = 16;
constexpr int kChunk = 16;
constexpr int kGroup = 4;  // query-group width for the tiled kernels

struct KernelData {
  AlignedBuffer<float> base{static_cast<std::size_t>(kBaseN * kDim)};
  AlignedBuffer<float> queries{static_cast<std::size_t>(kGroup * kDim)};
  AlignedBuffer<uint8_t> sq_codes{static_cast<std::size_t>(kBaseN * kDim)};
  AlignedBuffer<float> vmin{static_cast<std::size_t>(kDim)};
  AlignedBuffer<float> step{static_cast<std::size_t>(kDim)};
  // Float ADC tables (one per group member) and byte codes, m=32 ksub=16.
  AlignedBuffer<float> tables{
      static_cast<std::size_t>(kGroup * kSubspaces * kKsub)};
  AlignedBuffer<uint8_t> pq_codes{
      static_cast<std::size_t>(kBaseN * kSubspaces)};
  // Quantized u8 LUTs and nibble-packed codes for the fast-scan tier.
  AlignedBuffer<uint8_t> luts{
      static_cast<std::size_t>(kGroup * (kSubspaces / 2) * 32)};
  AlignedBuffer<uint8_t> packed{
      static_cast<std::size_t>(kBaseN * (kSubspaces / 2))};

  KernelData() {
    Rng rng(17);
    for (std::size_t i = 0; i < base.size(); ++i)
      base[i] = static_cast<float>(rng.Gaussian());
    for (std::size_t i = 0; i < queries.size(); ++i)
      queries[i] = static_cast<float>(rng.Gaussian());
    for (std::size_t i = 0; i < sq_codes.size(); ++i)
      sq_codes[i] = static_cast<uint8_t>(rng.UniformInt(256));
    for (std::size_t i = 0; i < kDim; ++i) {
      vmin[i] = static_cast<float>(rng.Gaussian());
      step[i] = static_cast<float>(rng.Uniform()) * 0.01f;
    }
    for (std::size_t i = 0; i < tables.size(); ++i)
      tables[i] = static_cast<float>(rng.Uniform());
    for (std::size_t i = 0; i < pq_codes.size(); ++i)
      pq_codes[i] = static_cast<uint8_t>(rng.UniformInt(kKsub));
    for (std::size_t i = 0; i < luts.size(); ++i)
      luts[i] = static_cast<uint8_t>(rng.UniformInt(256));
    for (std::size_t i = 0; i < packed.size(); ++i)
      packed[i] = static_cast<uint8_t>(rng.UniformInt(256));
  }
};

// Runs `pass` (one full sweep over the data, returning rows processed)
// enough times to fill ~0.4s and returns rows/second.
template <typename Pass>
double Measure(const Pass& pass) {
  int64_t rows = pass();  // warm-up + calibration
  WallTimer cal;
  rows = pass();
  const double once = std::max(1e-6, cal.ElapsedSeconds());
  const int reps = std::max(1, static_cast<int>(0.4 / once));
  WallTimer timer;
  int64_t total = 0;
  for (int r = 0; r < reps; ++r) total += pass();
  return static_cast<double>(total) / timer.ElapsedSeconds();
}

struct Rate {
  const char* kernel;
  double rows_per_s;
};

std::vector<Rate> KernelLoops(const KernelData& d) {
  std::vector<Rate> rates;
  volatile float sinkf = 0.f;
  volatile uint32_t sinku = 0;

  const float* q = d.queries.data();
  const float* group[kGroup];
  for (int g = 0; g < kGroup; ++g) group[g] = d.queries.data() + g * kDim;
  const float* tables[kGroup];
  for (int g = 0; g < kGroup; ++g)
    tables[g] = d.tables.data() + g * kSubspaces * kKsub;
  const uint8_t* luts[kGroup];
  for (int g = 0; g < kGroup; ++g)
    luts[g] = d.luts.data() + g * (kSubspaces / 2) * 32;

  rates.push_back({"l2sqr", Measure([&] {
    float best = 1e30f;
    for (int64_t i = 0; i < kBaseN; ++i) {
      const float dist = simd::L2Sqr(d.base.data() + i * kDim, q, kDim);
      if (dist < best) best = dist;
    }
    sinkf = best;
    return kBaseN;
  })});

  rates.push_back({"l2sqr_batch4", Measure([&] {
    const float* rows[4];
    float out[4];
    float best = 1e30f;
    for (int64_t i = 0; i + 4 <= kBaseN; i += 4) {
      for (int r = 0; r < 4; ++r) rows[r] = d.base.data() + (i + r) * kDim;
      simd::L2SqrBatch4(q, rows, kDim, out);
      for (int r = 0; r < 4; ++r)
        if (out[r] < best) best = out[r];
    }
    sinkf = best;
    return kBaseN;
  })});

  rates.push_back({"inner_product_batch4", Measure([&] {
    const float* rows[4];
    float out[4];
    float acc = 0.f;
    for (int64_t i = 0; i + 4 <= kBaseN; i += 4) {
      for (int r = 0; r < 4; ++r) rows[r] = d.base.data() + (i + r) * kDim;
      simd::InnerProductBatch4(q, rows, kDim, out);
      acc += out[0];
    }
    sinkf = acc;
    return kBaseN;
  })});

  rates.push_back({"sq_adc_l2sqr_batch4", Measure([&] {
    const uint8_t* codes[4];
    float out[4];
    float acc = 0.f;
    for (int64_t i = 0; i + 4 <= kBaseN; i += 4) {
      for (int r = 0; r < 4; ++r)
        codes[r] = d.sq_codes.data() + (i + r) * kDim;
      simd::SqAdcL2SqrBatch4(q, codes, d.vmin.data(), d.step.data(), kDim,
                             out);
      acc += out[0];
    }
    sinkf = acc;
    return kBaseN;
  })});

  rates.push_back({"pq_adc_batch", Measure([&] {
    const uint8_t* ptrs[kChunk];
    float out[kChunk];
    float acc = 0.f;
    for (int64_t i = 0; i < kBaseN; i += kChunk) {
      const int block = static_cast<int>(std::min<int64_t>(kChunk,
                                                           kBaseN - i));
      for (int j = 0; j < block; ++j)
        ptrs[j] = d.pq_codes.data() + (i + j) * kSubspaces;
      simd::PqAdcBatch(tables[0], kSubspaces, kKsub, ptrs, block, out);
      acc += out[0];
    }
    sinkf = acc;
    return kBaseN;
  })});

  rates.push_back({"pq_adc_fastscan", Measure([&] {
    const uint8_t* ptrs[kChunk];
    uint16_t sums[kChunk];
    uint32_t acc = 0;
    for (int64_t i = 0; i < kBaseN; i += kChunk) {
      const int block = static_cast<int>(std::min<int64_t>(kChunk,
                                                           kBaseN - i));
      for (int j = 0; j < block; ++j)
        ptrs[j] = d.packed.data() + (i + j) * (kSubspaces / 2);
      simd::PqAdcFastScan(luts[0], kSubspaces, ptrs, block, sums);
      acc += sums[0];
    }
    sinku = acc;
    return kBaseN;
  })});

  // Tiled kernels: rows processed = candidates x group members, the same
  // unit the multi-query serving path pays for.
  rates.push_back({"l2sqr_tile", Measure([&] {
    const float* rows[4];
    float out[kGroup * 4];
    float best = 1e30f;
    for (int64_t i = 0; i + 4 <= kBaseN; i += 4) {
      for (int r = 0; r < 4; ++r) rows[r] = d.base.data() + (i + r) * kDim;
      simd::L2SqrTile(group, kGroup, rows, kDim, out);
      if (out[0] < best) best = out[0];
    }
    sinkf = best;
    return kBaseN * kGroup;
  })});

  rates.push_back({"pq_adc_tile", Measure([&] {
    const uint8_t* ptrs[kChunk];
    float out[kGroup * kChunk];
    float acc = 0.f;
    for (int64_t i = 0; i < kBaseN; i += kChunk) {
      const int block = static_cast<int>(std::min<int64_t>(kChunk,
                                                           kBaseN - i));
      for (int j = 0; j < block; ++j)
        ptrs[j] = d.pq_codes.data() + (i + j) * kSubspaces;
      simd::PqAdcTile(tables, kGroup, kSubspaces, kKsub, ptrs, block, out);
      acc += out[0];
    }
    sinkf = acc;
    return kBaseN * kGroup;
  })});

  rates.push_back({"pq_adc_fastscan_tile", Measure([&] {
    const uint8_t* ptrs[kChunk];
    uint16_t sums[kGroup * kChunk];
    uint32_t acc = 0;
    for (int64_t i = 0; i < kBaseN; i += kChunk) {
      const int block = static_cast<int>(std::min<int64_t>(kChunk,
                                                           kBaseN - i));
      for (int j = 0; j < block; ++j)
        ptrs[j] = d.packed.data() + (i + j) * (kSubspaces / 2);
      simd::PqAdcFastScanTile(luts, kGroup, kSubspaces, ptrs, block, sums);
      acc += sums[0];
    }
    sinku = acc;
    return kBaseN * kGroup;
  })});

  (void)sinkf;
  (void)sinku;
  return rates;
}

struct SearchResult {
  double qps = 0.0;
  double recall = 0.0;
};

SearchResult SearchSweep(const index::IvfIndex& ivf,
                         index::DistanceComputer& computer,
                         const data::Dataset& ds,
                         const std::vector<std::vector<int64_t>>& truth,
                         int k, int nprobe, int reps) {
  SearchResult result;
  std::vector<std::vector<int64_t>> found(
      static_cast<std::size_t>(ds.queries.rows()));
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto neighbors = ivf.Search(computer, ds.queries.Row(q), k, nprobe);
      if (rep == 0) {
        auto& ids = found[static_cast<std::size_t>(q)];
        for (const auto& nb : neighbors) ids.push_back(nb.id);
      }
    }
  }
  result.qps = static_cast<double>(ds.queries.rows()) * reps /
               timer.ElapsedSeconds();
  result.recall = data::MeanRecallAtK(found, truth, k);
  return result;
}

void Run() {
  const std::vector<simd::SimdLevel> levels = simd::SupportedLevels();
  if (levels.back() < simd::SimdLevel::kAvx512) {
    std::printf("host best level is %s; the avx512 column will be absent\n",
                simd::SimdLevelName(levels.back()));
  }

  // --- 1. Per-kernel hot loops --------------------------------------------
  KernelData data;
  std::vector<std::vector<Rate>> per_level;
  for (simd::SimdLevel level : levels) {
    simd::ScopedSimdLevel guard(level);
    per_level.push_back(KernelLoops(data));
  }
  std::printf("%-22s", "kernel (rows/s)");
  for (simd::SimdLevel level : levels)
    std::printf(" %12s", simd::SimdLevelName(level));
  if (levels.size() >= 2) std::printf(" %9s\n", "last/prev");
  for (std::size_t k = 0; k < per_level[0].size(); ++k) {
    std::printf("%-22s", per_level[0][k].kernel);
    for (std::size_t l = 0; l < levels.size(); ++l)
      std::printf(" %12.3e", per_level[l][k].rows_per_s);
    if (levels.size() >= 2) {
      const double prev = per_level[levels.size() - 2][k].rows_per_s;
      const double last = per_level[levels.size() - 1][k].rows_per_s;
      std::printf(" %8.2fx", last / prev);
    }
    std::printf("\n");
  }

  // --- 2. End-to-end IVF search -------------------------------------------
  data::SyntheticSpec spec = data::SiftProxySpec();
  spec.num_base = kBaseN;
  spec.num_queries = 64;
  spec.num_train_queries = 2000;
  data::Dataset ds = data::GenerateSynthetic(spec);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  // One trained set of nbits=4 centroid tables, two layouts over them
  // (identical reconstructions — see bench_pq_fastscan).
  quant::PqOptions options;
  options.num_subspaces = kSubspaces;
  options.nbits = 4;
  quant::PqCodebook packed =
      quant::PqCodebook::Train(ds.base.data(), ds.size(), kDim, options);
  std::vector<linalg::Matrix> copies;
  for (int s = 0; s < packed.num_subspaces(); ++s) {
    const linalg::Matrix& src = packed.centroids(s);
    linalg::Matrix copy(src.rows(), src.cols());
    std::copy(src.data(), src.data() + src.size(), copy.data());
    copies.push_back(std::move(copy));
  }
  quant::PqCodebook bytes = quant::PqCodebook::FromCodebooks(
      std::move(copies),
      quant::CodeLayout{4, quant::CodePacking::kBytePerCode});

  std::vector<uint8_t> byte_codes = bytes.EncodeBatch(ds.base.data(),
                                                      ds.size());
  std::vector<uint8_t> packed_codes(
      static_cast<std::size_t>(ds.size() * packed.code_size()));
  for (int64_t i = 0; i < ds.size(); ++i) {
    quant::PackCodes4(byte_codes.data() + i * bytes.code_size(), kSubspaces,
                      packed_codes.data() + i * packed.code_size());
  }

  core::PqEstimatorData byte_data;
  byte_data.pq = std::move(bytes);
  byte_data.codes = std::move(byte_codes);
  byte_data.recon_errors.resize(static_cast<std::size_t>(ds.size()));
  ParallelFor(ds.size(), [&](int64_t begin, int64_t end) {
    std::vector<float> decoded(kDim);
    for (int64_t i = begin; i < end; ++i) {
      byte_data.pq.Decode(
          byte_data.codes.data() + i * byte_data.pq.code_size(),
          decoded.data());
      byte_data.recon_errors[static_cast<std::size_t>(i)] = simd::L2Sqr(
          decoded.data(), ds.base.Row(i), static_cast<std::size_t>(kDim));
    }
  });
  core::PqEstimatorData packed_data;
  packed_data.pq = std::move(packed);
  packed_data.codes = std::move(packed_codes);
  packed_data.recon_errors = byte_data.recon_errors;

  core::TrainingDataOptions training;
  training.max_queries = 300;
  core::LinearCorrector byte_corrector, packed_corrector;
  {
    core::PqAdcEstimator estimator(&byte_data);
    byte_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
  }
  {
    core::PqAdcEstimator estimator(&packed_data);
    packed_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                               ds.train_queries, training);
  }

  index::IvfOptions ivf_options;
  ivf_options.num_clusters =
      static_cast<int>(std::max<int64_t>(16, ds.size() / 150));
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);
  const int k = 10;
  const int nprobe =
      std::max(4, static_cast<int>(ivf_options.num_clusters / 8));
  auto truth = data::BruteForceKnn(ds.base, ds.queries, k);

  core::DdcAnyComputer ddc_pq(
      &ds.base, std::make_unique<core::PqAdcEstimator>(&byte_data),
      &byte_corrector);
  core::DdcAnyComputer fastscan(
      &ds.base, std::make_unique<core::PqAdcEstimator>(&packed_data),
      &packed_corrector);
  index::FlatDistanceComputer exact(ds.base.data(), ds.size(), kDim);
  // Production shape for the packed tier: bucket-resident packed records.
  if (!ivf.AttachCodesFrom(fastscan)) {
    std::printf("FAILED to attach packed codes\n");
    return;
  }

  const int search_reps = 2;
  struct Config {
    const char* name;
    index::DistanceComputer* computer;
  } configs[] = {{"ddc-pq", &ddc_pq},
                 {"fastscan-nbits4", &fastscan},
                 {"exact", &exact}};
  std::printf("%-18s %8s %10s %12s\n", "search config", "simd", "recall@10",
              "qps");
  for (const Config& config : configs) {
    for (simd::SimdLevel level : levels) {
      if (level == simd::SimdLevel::kScalar) continue;  // vector tiers only
      simd::ScopedSimdLevel guard(level);
      SearchResult result = SearchSweep(ivf, *config.computer, ds, truth, k,
                                        nprobe, search_reps);
      std::printf("%-18s %8s %10.4f %12.0f\n", config.name,
                  simd::SimdLevelName(level), result.recall, result.qps);
    }
  }
  std::printf("(nprobe=%d, k=%d, %d clusters)\n", nprobe, k,
              ivf_options.num_clusters);
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  resinfer::benchutil::PrintBanner(
      "bench_avx512_kernels",
      "AVX-512 kernel tier acceptance (not a paper figure)");
  resinfer::benchutil::Run();
  return 0;
}

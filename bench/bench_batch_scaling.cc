// Batch-serving scaling (production extension, no paper counterpart).
//
// One computer per worker over an atomic query queue (index/batch.h):
// throughput should scale with threads while per-query latency stays flat,
// and per-worker pruning statistics must aggregate to the single-thread
// totals. Run on the SIFT proxy with the exact computer and DDCres.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

void Run(const Scale& scale) {
  data::Dataset ds = MakeProxy(resinfer::data::SiftProxySpec(), scale);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  core::MethodFactory factory(&ds);
  factory.EnsurePca();            // train once, outside the timed region
  factory.EnsurePcaRotatedBase();

  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(ds.base, ds.queries, k);

  std::printf("%-10s %8s %10s %12s %12s %10s\n", "method", "threads", "qps",
              "p50-lat(us)", "p99-lat(us)", "recall@10");
  for (const char* method : {core::kMethodExact, core::kMethodDdcRes}) {
    std::vector<double> qps_by_threads;
    for (int threads : {1, 2, 4}) {
      index::BatchOptions options;
      options.num_threads = threads;
      index::BatchResult batch = index::BatchSearchHnsw(
          hnsw, [&] { return factory.Make(method); }, ds.queries, k,
          /*ef=*/100, options);
      const double recall = data::MeanRecallAtK(
          index::ResultIds(batch), truth, k);
      qps_by_threads.push_back(batch.Qps());
      std::printf("%-10s %8d %10.0f %12.1f %12.1f %10.3f\n", method,
                  threads, batch.Qps(),
                  1e6 * batch.latency_seconds.Percentile(0.5),
                  1e6 * batch.latency_seconds.Percentile(0.99), recall);
    }
    if (qps_by_threads[0] > 0.0) {
      std::printf("%-10s scaling 1->2 threads: %.2fx\n", method,
                  qps_by_threads[1] / qps_by_threads[0]);
    }
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main() {
  using namespace resinfer::benchutil;
  PrintBanner("batch_scaling",
              "multi-threaded batch serving (production extension)");
  Run(GetScale());
  std::printf(
      "\nExpected shape: QPS grows with threads up to the core count while "
      "p50 latency stays roughly flat; recall is thread-count-invariant "
      "(results are per-query deterministic).\n");
  return 0;
}

// Batch-serving scaling (production extension, no paper counterpart).
//
// One computer per worker over an atomic query queue (index/batch.h):
// throughput should scale with threads while per-query latency stays flat,
// and per-worker pruning statistics must aggregate to the single-thread
// totals. Run on the SIFT proxy with the exact computer and DDCres.
//
// Each method runs twice: once through the block-scan refinement path
// (EstimateBatch, the default) and once with a wrapper that forces the
// candidate-at-a-time sequential path, quantifying the batched-path win on
// a real index.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

// Forces the sequential refinement path: the inherited default
// EstimateBatch loops over this adapter's EstimateWithThreshold, which
// forwards per candidate — the wrapped computer's batched override is never
// reached.
class SequentialScanAdapter : public index::DistanceComputer {
 public:
  explicit SequentialScanAdapter(
      std::unique_ptr<index::DistanceComputer> inner)
      : inner_(std::move(inner)) {}

  int64_t dim() const override { return inner_->dim(); }
  int64_t size() const override { return inner_->size(); }
  std::string name() const override { return inner_->name() + "-seq"; }
  void BeginQuery(const float* query) override { inner_->BeginQuery(query); }
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override {
    return inner_->EstimateWithThreshold(id, tau);
  }
  float ExactDistance(int64_t id) override {
    return inner_->ExactDistance(id);
  }
  // All work (and therefore all counting) happens in the inner computer;
  // expose its stats so BatchSearch aggregation sees non-zero counters.
  index::ComputerStats& stats() override { return inner_->stats(); }
  const index::ComputerStats& stats() const override {
    return inner_->stats();
  }
  void SetExpansionAnchor(int64_t node, float distance_to_node) override {
    inner_->SetExpansionAnchor(node, distance_to_node);
  }

 private:
  std::unique_ptr<index::DistanceComputer> inner_;
};

void Run(const Scale& scale) {
  data::Dataset ds = MakeProxy(resinfer::data::SiftProxySpec(), scale);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  core::MethodFactory factory(&ds);
  factory.EnsurePca();            // train once, outside the timed region
  factory.EnsurePcaRotatedBase();

  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(ds.base, ds.queries, k);

  std::printf("%-14s %8s %10s %12s %12s %10s %9s %9s\n", "method", "threads",
              "qps", "p50-lat(us)", "p99-lat(us)", "recall@10", "util-avg",
              "util-min");
  for (const char* method : {core::kMethodExact, core::kMethodDdcRes}) {
    for (bool batched : {false, true}) {
      const std::string label =
          std::string(method) + (batched ? "/blk" : "/seq");
      std::vector<double> qps_by_threads;
      for (int threads : {1, 2, 4}) {
        index::BatchOptions options;
        options.num_threads = threads;
        index::ComputerFactory make = [&]() -> std::unique_ptr<
                                               index::DistanceComputer> {
          auto computer = factory.Make(method);
          if (batched) return computer;
          return std::make_unique<SequentialScanAdapter>(
              std::move(computer));
        };
        index::BatchResult batch = index::BatchSearchHnsw(
            hnsw, make, ds.queries, k, /*ef=*/100, options);
        const double recall = data::MeanRecallAtK(
            index::ResultIds(batch), truth, k);
        qps_by_threads.push_back(batch.Qps());
        // util-min < util-avg flags stragglers: a worker that drew the
        // expensive queries while its peers sat idle at the end.
        std::printf("%-14s %8d %10.0f %12.1f %12.1f %10.3f %9.3f %9.3f\n",
                    label.c_str(), threads, batch.Qps(),
                    1e6 * batch.latency_seconds.Percentile(0.5),
                    1e6 * batch.latency_seconds.Percentile(0.99), recall,
                    batch.AvgUtilization(), batch.MinUtilization());
      }
      if (qps_by_threads[0] > 0.0) {
        std::printf("%-14s scaling 1->2 threads: %.2fx\n", label.c_str(),
                    qps_by_threads[1] / qps_by_threads[0]);
      }
    }
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("batch_scaling",
              "multi-threaded batch serving (production extension)");
  Run(GetScale());
  std::printf(
      "\nExpected shape: QPS grows with threads up to the core count while "
      "p50 latency stays roughly flat; recall is thread-count-invariant "
      "(results are per-query deterministic); the /blk rows meet or beat "
      "their /seq counterparts at equal recall.\n");
  return 0;
}

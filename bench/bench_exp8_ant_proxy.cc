// Exp-8: the Ant Group image-search scenario. The paper's private dataset
// (1M x 512-d face embeddings) is proxied by a unit-norm, skewed-spectrum
// 512-d mixture (DESIGN.md §2). DDCopq is compared to exact distance
// computation on HNSW at a high-recall operating point, reporting the
// retrieval-latency reduction and throughput gain the paper quotes
// (-35% latency / +55% throughput).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_exp8_ant_proxy",
                         "Exp-8 (Ant Group image search scenario)");
  benchutil::Scale scale = benchutil::GetScale();

  data::Dataset ds = benchutil::MakeProxy(data::AntFaceProxySpec(), scale);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 10);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));

  struct Operating {
    double qps = 0.0;
    double recall = 0.0;
    double mean_latency_us = 0.0;
  };
  auto measure = [&](index::DistanceComputer& computer, int ef) {
    index::HnswScratch scratch;
    std::vector<std::vector<int64_t>> results;
    WallTimer timer;
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto found = hnsw.Search(computer, ds.queries.Row(q), 10, ef, &scratch);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    Operating op;
    double elapsed = timer.ElapsedSeconds();
    op.qps = ds.queries.rows() / elapsed;
    op.mean_latency_us = 1e6 * elapsed / ds.queries.rows();
    op.recall = data::MeanRecallAtK(results, truth, 10);
    return op;
  };

  // Pick the smallest ef reaching >= 0.98 recall for each method, then
  // compare the operating points — "no accuracy sacrificed".
  auto pick = [&](index::DistanceComputer& computer) {
    Operating best{};
    for (int ef : {40, 80, 160, 320, 640}) {
      Operating op = measure(computer, ef);
      best = op;
      if (op.recall >= 0.98) break;
    }
    return best;
  };

  auto exact = factory.Make(core::kMethodExact);
  auto ddc_opq = factory.Make(core::kMethodDdcOpq);
  Operating base = pick(*exact);
  Operating ours = pick(*ddc_opq);

  std::printf("%-12s %10s %14s %10s\n", "method", "recall@10",
              "latency(us)", "qps");
  std::printf("%-12s %10.4f %14.1f %10.1f\n", "exact", base.recall,
              base.mean_latency_us, base.qps);
  std::printf("%-12s %10.4f %14.1f %10.1f\n", "ddc-opq", ours.recall,
              ours.mean_latency_us, ours.qps);
  std::printf("latency reduction: %.1f%%   throughput gain: %.1f%%\n",
              100.0 * (1.0 - ours.mean_latency_us / base.mean_latency_us),
              100.0 * (ours.qps / base.qps - 1.0));
  std::printf(
      "# expectation (paper Exp-8): ~35%% latency reduction and ~55%% "
      "throughput gain at unchanged recall\n");
  return 0;
}

// Fig 10 (Exp-6): mechanism-level metrics on GIST and DEEP proxies —
//   * scan-dimension ratio of the projection methods (DDCres, DDCpca,
//     ADSampling; Naive = exact = 1.0) as ef / nprobe grow,
//   * pruned rate of the quantization method (DDCopq).
//
// Expectation: scan rate DDCres < DDCpca < ADSampling << 1; pruned rate of
// DDCopq stays > 95%.
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

void RunDataset(data::SyntheticSpec spec, const benchutil::Scale& scale) {
  data::Dataset ds = benchutil::MakeProxy(spec, scale);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 20);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  index::IvfOptions ivf_options;
  ivf_options.num_clusters = static_cast<int>(
      std::min<int64_t>(4096, std::max<int64_t>(64, ds.size() / 40)));
  if (!scale.paper) ivf_options.kmeans.max_iterations = 10;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);

  core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));

  const std::vector<const char*> methods = {
      core::kMethodAdSampling, core::kMethodDdcPca, core::kMethodDdcRes,
      core::kMethodDdcOpq};

  std::printf("\n## %s — HNSW ef sweep (scan_rate / pruned_rate)\n",
              ds.name.c_str());
  std::printf("%-12s", "method");
  const std::vector<int> efs = {50, 100, 150, 200};
  for (int ef : efs) std::printf(" ef=%-10d", ef);
  std::printf("\n");
  for (const char* method : methods) {
    auto computer = factory.Make(method);
    std::printf("%-12s", method);
    index::HnswScratch scratch;
    for (int ef : efs) {
      computer->stats().Reset();
      for (int64_t q = 0; q < ds.queries.rows(); ++q) {
        hnsw.Search(*computer, ds.queries.Row(q), 20, ef, &scratch);
      }
      bool quantization = std::string(method) == core::kMethodDdcOpq;
      double value = quantization
                         ? computer->stats().PrunedRate()
                         : computer->stats().ScanRate(ds.dim());
      std::printf(" %-12.3f", value);
    }
    std::printf("  %s\n", std::string(method) == core::kMethodDdcOpq
                              ? "(pruned rate)"
                              : "(scan rate)");
  }

  std::printf("\n## %s — IVF nprobe sweep (scan_rate / pruned_rate)\n",
              ds.name.c_str());
  const std::vector<int> nprobes = {8, 16, 32, 64};
  std::printf("%-12s", "method");
  for (int np : nprobes) std::printf(" np=%-10d", np);
  std::printf("\n");
  for (const char* method : methods) {
    auto computer = factory.Make(method);
    std::printf("%-12s", method);
    for (int np : nprobes) {
      computer->stats().Reset();
      for (int64_t q = 0; q < ds.queries.rows(); ++q) {
        ivf.Search(*computer, ds.queries.Row(q), 20, np);
      }
      bool quantization = std::string(method) == core::kMethodDdcOpq;
      double value = quantization
                         ? computer->stats().PrunedRate()
                         : computer->stats().ScanRate(ds.dim());
      std::printf(" %-12.3f", value);
    }
    std::printf("  %s\n", std::string(method) == core::kMethodDdcOpq
                              ? "(pruned rate)"
                              : "(scan rate)");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig10_scan_pruned",
                         "Fig 10 (scan dimension ratio and pruned rate)");
  benchutil::Scale scale = benchutil::GetScale();
  RunDataset(data::GistProxySpec(), scale);
  RunDataset(data::DeepProxySpec(), scale);
  std::printf(
      "\n# expectation (paper Fig 10 / Exp-6): scan rate ddc-res < ddc-pca "
      "< adsampling (e.g. 7%% / 15%% / 26%% on GIST); ddc-opq pruned rate "
      "> 0.95\n");
  return 0;
}

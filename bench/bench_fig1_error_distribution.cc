// Fig 1: the distribution of the estimation error <q_r, x_r> under (1) PCA
// vs random projection at a fixed residual dimension, and (2) PCA with
// shrinking residual dimension. The paper shows PCA concentrating the error
// distribution far more tightly than a random rotation (DEEP, 256-d).
//
// Output: for each configuration, the empirical std, the central quantiles,
// and a coarse 11-bin histogram, mirroring the published density plots.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

struct ErrorSample {
  std::vector<double> values;

  void Summarize(const char* label) {
    linalg::MeanVar mv = linalg::ComputeMeanVar(values);
    double q005 = linalg::EmpiricalQuantile(values, 0.005);
    double q995 = linalg::EmpiricalQuantile(values, 0.995);
    std::printf("%-28s std=%-11.4g q0.5%%=%-11.4g q99.5%%=%-11.4g\n", label,
                std::sqrt(mv.variance), q005, q995);
    // Coarse histogram over +-3 std.
    const int kBins = 11;
    double lo = -3.0 * std::sqrt(mv.variance);
    double hi = 3.0 * std::sqrt(mv.variance);
    std::vector<int64_t> bins(kBins, 0);
    for (double v : values) {
      int b = static_cast<int>((v - lo) / (hi - lo) * kBins);
      if (b >= 0 && b < kBins) ++bins[b];
    }
    int64_t peak = 1;
    for (int64_t b : bins) peak = std::max(peak, b);
    std::printf("%-28s hist ", "");
    for (int64_t b : bins) {
      int stars = static_cast<int>(10.0 * b / peak);
      std::printf("%2d|", stars);
    }
    std::printf("\n");
  }
};

// Residual inner products <q_r, x_r> for rows of `rotated` beyond dim d.
ErrorSample CollectResidualErrors(const linalg::Matrix& rotated,
                                  const float* rotated_query, int64_t d) {
  ErrorSample sample;
  const int64_t full = rotated.cols();
  sample.values.reserve(rotated.rows());
  for (int64_t i = 0; i < rotated.rows(); ++i) {
    sample.values.push_back(simd::InnerProduct(
        rotated.Row(i) + d, rotated_query + d,
        static_cast<std::size_t>(full - d)));
  }
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig1_error_distribution",
                         "Fig 1 (PCA vs random projection error)");
  benchutil::Scale scale = benchutil::GetScale();
  data::Dataset ds = benchutil::MakeProxy(data::DeepProxySpec(), scale);
  std::printf("# dataset=%s n=%ld dim=%ld\n", ds.name.c_str(),
              static_cast<long>(ds.size()), static_cast<long>(ds.dim()));

  // PCA rotation.
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  linalg::Matrix pca_rotated = pca.TransformBatch(ds.base.data(), ds.size());
  std::vector<float> pca_query(ds.dim());
  pca.Transform(ds.queries.Row(0), pca_query.data());

  // Random rotation (ADSampling's projection).
  Rng rng(4242);
  linalg::Matrix rot = linalg::RandomOrthonormal(ds.dim(), rng);
  linalg::Matrix rand_rotated(ds.size(), ds.dim());
  ParallelFor(ds.size(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      linalg::MatVec(rot, ds.base.Row(i), rand_rotated.Row(i));
    }
  });
  std::vector<float> rand_query(ds.dim());
  linalg::MatVec(rot, ds.queries.Row(0), rand_query.data());

  std::printf("\n## Fig 1.1 — PCA vs random @ residual dim = D - 128\n");
  const int64_t proj = ds.dim() - 128;
  CollectResidualErrors(pca_rotated, pca_query.data(), proj)
      .Summarize("pca-error");
  CollectResidualErrors(rand_rotated, rand_query.data(), proj)
      .Summarize("random-error");

  std::printf("\n## Fig 1.2 — PCA error vs residual dimension\n");
  for (int64_t res_dim : {32, 64, 128}) {
    char label[64];
    std::snprintf(label, sizeof(label), "pca res-dim=%ld",
                  static_cast<long>(res_dim));
    CollectResidualErrors(pca_rotated, pca_query.data(), ds.dim() - res_dim)
        .Summarize(label);
  }

  std::printf(
      "\n# expectation (paper): pca-error std << random-error std; pca "
      "error tightens as res-dim shrinks\n");
  return 0;
}

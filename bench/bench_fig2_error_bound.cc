// Fig 2: empirical analysis of the new error bound. For DEEP-like and
// GLOVE-like proxies at two projection dimensions, compares
//   * the model bound m * sigma at m = 3 (the paper's red line),
//   * the empirical 99.7th percentile of |error| (blue line),
//   * an ADSampling-style 10-sigma bound (yellow line).
// On Gaussian-ish data the 3-sigma bound should sit on top of the
// empirical 99.7% percentile while 10-sigma is far out; on GLOVE-like flat
// data the gap between model and empirical quantile widens (the motivation
// for the learned corrector of §V).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

void AnalyzeDataset(const data::Dataset& ds, const std::vector<int>& dims) {
  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  linalg::Matrix rotated = pca.TransformBatch(ds.base.data(), ds.size());
  core::ResidualErrorModel model(pca.variances());

  std::printf("%-16s %5s %12s %12s %12s %9s\n", "dataset", "dim", "3sigma",
              "emp-99.7%", "10sigma", "3s/emp");
  for (int d : dims) {
    // Aggregate over queries: mean of per-query bounds and percentiles.
    double sum_sigma3 = 0.0, sum_emp = 0.0, sum_sigma10 = 0.0;
    const int64_t num_queries = std::min<int64_t>(ds.queries.rows(), 16);
    std::vector<float> rq(ds.dim());
    for (int64_t q = 0; q < num_queries; ++q) {
      pca.Transform(ds.queries.Row(q), rq.data());
      model.BeginQuery(rq.data());
      float sigma = model.Sigma(d);
      std::vector<double> abs_err;
      abs_err.reserve(ds.size());
      for (int64_t i = 0; i < ds.size(); ++i) {
        double eps = 2.0 * simd::InnerProduct(
                               rotated.Row(i) + d, rq.data() + d,
                               static_cast<std::size_t>(ds.dim() - d));
        abs_err.push_back(std::abs(eps));
      }
      sum_sigma3 += 3.0 * sigma;
      sum_sigma10 += 10.0 * sigma;
      sum_emp += linalg::EmpiricalQuantile(std::move(abs_err), 0.997);
    }
    double sigma3 = sum_sigma3 / num_queries;
    double emp = sum_emp / num_queries;
    double sigma10 = sum_sigma10 / num_queries;
    std::printf("%-16s %5d %12.4g %12.4g %12.4g %9.3f\n", ds.name.c_str(), d,
                sigma3, emp, sigma10, emp > 0 ? sigma3 / emp : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig2_error_bound",
                         "Fig 2 (empirical error-bound analysis)");
  benchutil::Scale scale = benchutil::GetScale();

  data::Dataset deep = benchutil::MakeProxy(data::DeepProxySpec(), scale);
  AnalyzeDataset(deep, {32, 128});
  std::printf("\n");
  data::Dataset glove = benchutil::MakeProxy(data::GloveProxySpec(), scale);
  AnalyzeDataset(glove, {50, 100});

  std::printf(
      "\n# expectation (paper): on DEEP 3sigma/emp ~ 1 (Gaussian fits); on "
      "GLOVE the ratio drifts from 1; 10sigma is ~3.3x looser everywhere\n");
  return 0;
}

// Fig 5 (Exp-1, the paper's headline): time-accuracy trade-off of
// {HNSW, IVF} x {exact, ADSampling(++), DDCopq, DDCpca, DDCres} across the
// dataset proxies, for K in {20, 100}.
//
// Output: one CSV row per sweep point —
//   dataset,index,K,method,knob,qps,recall
// where knob is ef (HNSW) or nprobe (IVF). Upper-right is better per panel.
//
// Expected shape (paper): the DDC methods dominate exact and ADSampling on
// every dataset; DDCres/DDCpca win on skewed (image) spectra, DDCopq wins
// on flat (GLOVE/WORD2VEC) spectra; overall speedup vs exact ~1.6-2.1x at
// matched recall.
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

void RunDataset(data::SyntheticSpec spec, const benchutil::Scale& scale,
                bool include_ivf) {
  data::Dataset ds = benchutil::MakeProxy(spec, scale);
  std::fprintf(stderr, "[fig5] dataset %s n=%ld d=%ld\n", ds.name.c_str(),
               static_cast<long>(ds.size()), static_cast<long>(ds.dim()));

  auto truth = data::BruteForceKnn(ds.base, ds.queries, 100);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  index::IvfIndex ivf;
  if (include_ivf) {
    index::IvfOptions ivf_options;
    ivf_options.num_clusters = static_cast<int>(
        std::min<int64_t>(4096, std::max<int64_t>(64, ds.size() / 40)));
    if (!scale.paper) ivf_options.kmeans.max_iterations = 10;
    ivf = index::IvfIndex::Build(ds.base, ivf_options);
  }

  core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));

  const std::vector<int> efs = {40, 80, 160, 320, 640};
  const std::vector<int> nprobes = {4, 8, 16, 32, 64};

  for (int k : {20, 100}) {
    for (const std::string& method : core::AllMethodNames()) {
      auto computer = factory.Make(method);
      for (const auto& point :
           benchutil::HnswSweep(hnsw, *computer, ds, truth, k, efs)) {
        std::printf("%s,HNSW,%d,%s,%d,%.1f,%.4f\n", ds.name.c_str(), k,
                    method.c_str(), point.knob, point.qps, point.recall);
      }
      if (include_ivf) {
        for (const auto& point :
             benchutil::IvfSweep(ivf, *computer, ds, truth, k, nprobes)) {
          std::printf("%s,IVF,%d,%s,%d,%.1f,%.4f\n", ds.name.c_str(), k,
                      method.c_str(), point.knob, point.qps, point.recall);
        }
      }
      std::fflush(stdout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig5_qps_recall",
                         "Fig 5 (QPS vs recall, all methods)");
  benchutil::Scale scale = benchutil::GetScale();
  std::printf("dataset,index,K,method,knob,qps,recall\n");

  // Panels 1-24: six datasets on both index types.
  RunDataset(data::MsongProxySpec(), scale, /*include_ivf=*/true);
  RunDataset(data::GistProxySpec(), scale, /*include_ivf=*/true);
  RunDataset(data::DeepProxySpec(), scale, /*include_ivf=*/true);
  RunDataset(data::TinyProxySpec(), scale, /*include_ivf=*/true);
  RunDataset(data::GloveProxySpec(), scale, /*include_ivf=*/true);
  RunDataset(data::Word2vecProxySpec(), scale, /*include_ivf=*/true);
  // Panels 25-28 (TINY80M / SIFT100M, HNSW only in the paper): the SIFT
  // proxy stands in for the large-scale slices at this machine's scale.
  RunDataset(data::SiftProxySpec(), scale, /*include_ivf=*/false);

  std::printf(
      "# expectation (paper Fig 5): at matched recall, qps(ddc-res) > "
      "qps(adsampling) > qps(exact) on image-like proxies; ddc-opq leads "
      "on glove/word2vec proxies\n");
  return 0;
}

// Fig 6 (Exp-2): effect of the corrector's target recall on the
// time-accuracy trade-off of the learned methods (DDCopq, DDCpca) with
// HNSW, K = 20, on GIST and DEEP proxies.
//
// For each target r in {0.9, 0.95, 0.97, 0.99, 0.995, 0.999} the corrector
// intercept is recalibrated and an ef sweep is run. Expectation: r = 0.995
// gives the best trade-off (low recall targets prune true neighbors and cap
// attainable recall; ultra-high targets stop pruning and lose speed).
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

void RunDataset(data::SyntheticSpec spec, const benchutil::Scale& scale) {
  data::Dataset ds = benchutil::MakeProxy(spec, scale);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 20);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  const std::vector<double> targets = {0.9, 0.95, 0.97, 0.99, 0.995, 0.999};
  const std::vector<int> efs = {40, 80, 160, 320};

  for (double target : targets) {
    core::FactoryOptions options = benchutil::ScaledFactoryOptions(scale);
    options.ddc_pca.corrector.target_recall = target;
    options.ddc_opq.corrector.target_recall = target;
    core::MethodFactory factory(&ds, options);
    for (const char* method : {core::kMethodDdcOpq, core::kMethodDdcPca}) {
      auto computer = factory.Make(method);
      for (const auto& point :
           benchutil::HnswSweep(hnsw, *computer, ds, truth, 20, efs)) {
        std::printf("%s,%s,%.3f,%d,%.1f,%.4f\n", ds.name.c_str(), method,
                    target, point.knob, point.qps, point.recall);
      }
    }
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig6_target_recall",
                         "Fig 6 (varying the target recall)");
  benchutil::Scale scale = benchutil::GetScale();
  std::printf("dataset,method,target_recall,ef,qps,recall\n");
  RunDataset(data::GistProxySpec(), scale);
  RunDataset(data::DeepProxySpec(), scale);
  std::printf(
      "# expectation (paper Fig 6): low targets (0.9-0.97) cap attainable "
      "recall; 0.995 reaches near-exact recall with the best qps; 0.999 "
      "trades a little speed for the last fraction of recall\n");
  return 0;
}

// Fig 7 (Exp-3): pre-processing time and extra space per method, compared
// to the index build costs.
//   Time panel: HNSW build, IVF build, ADS rotation, PCA fit+rotation,
//               OPQ train, FINGER build, DDCpca / DDCopq classifier
//               training.
//   Space panel: base size, HNSW graph, IVF lists, projection matrices,
//                DDCres norms, OPQ codes, FINGER tables.
// Expectation: ADS/PCA are tiny vs the index builds; classifier training
// is comparable to indexing; FINGER needs far more time and memory.
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

void RunDataset(data::SyntheticSpec spec, const benchutil::Scale& scale) {
  // Slightly smaller than fig5 sizes: this binary touches every artifact
  // including FINGER's per-node tables.
  spec.num_base = scale.paper ? scale.BaseN(spec.dim)
                              : std::min<int64_t>(scale.BaseN(spec.dim), 8000);
  spec.num_queries = scale.Queries();
  spec.num_train_queries = scale.TrainQueries();
  data::Dataset ds = data::GenerateSynthetic(spec);

  WallTimer timer;
  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);
  double hnsw_seconds = timer.ElapsedSeconds();

  timer.Reset();
  index::IvfOptions ivf_options;
  ivf_options.num_clusters = static_cast<int>(
      std::min<int64_t>(4096, std::max<int64_t>(64, ds.size() / 40)));
  if (!scale.paper) ivf_options.kmeans.max_iterations = 10;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);
  double ivf_seconds = timer.ElapsedSeconds();

  core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));
  factory.Make(core::kMethodAdSampling);
  factory.Make(core::kMethodDdcRes);
  factory.Make(core::kMethodDdcPca);
  factory.Make(core::kMethodDdcOpq);
  factory.Make(core::kMethodFinger, &hnsw);
  const core::PreprocessCosts& costs = factory.costs();

  int64_t base_bytes = ds.base.size() * static_cast<int64_t>(sizeof(float));
  int64_t ivf_bytes =
      ivf.centroids().size() * static_cast<int64_t>(sizeof(float)) +
      ds.size() * static_cast<int64_t>(sizeof(int64_t));

  std::printf("\n## %s (n=%ld, dim=%ld)\n", ds.name.c_str(),
              static_cast<long>(ds.size()), static_cast<long>(ds.dim()));
  std::printf("%-22s %12s %14s\n", "component", "time(s)", "space");
  std::printf("%-22s %12s %14s\n", "base vectors", "-",
              benchutil::HumanBytes(base_bytes).c_str());
  std::printf("%-22s %12.2f %14s\n", "HNSW build", hnsw_seconds,
              benchutil::HumanBytes(hnsw.GraphBytes()).c_str());
  std::printf("%-22s %12.2f %14s\n", "IVF build", ivf_seconds,
              benchutil::HumanBytes(ivf_bytes).c_str());
  std::printf("%-22s %12.2f %14s\n", "ADS (rotation)", costs.ads_seconds,
              benchutil::HumanBytes(costs.ads_bytes).c_str());
  std::printf("%-22s %12.2f %14s\n", "PCA (fit+rotate)", costs.pca_seconds,
              benchutil::HumanBytes(costs.ddc_res_bytes).c_str());
  std::printf("%-22s %12.2f %14s\n", "OPQ (train+encode)", costs.opq_seconds,
              benchutil::HumanBytes(costs.ddc_opq_bytes).c_str());
  std::printf("%-22s %12.2f %14s\n", "DDCpca classifier",
              costs.ddc_pca_train_seconds,
              benchutil::HumanBytes(costs.ddc_pca_bytes).c_str());
  std::printf("%-22s %12.2f %14s\n", "DDCopq classifier",
              costs.ddc_opq_train_seconds, "-");
  std::printf("%-22s %12.2f %14s\n", "FINGER build", costs.finger_seconds,
              benchutil::HumanBytes(costs.finger_bytes).c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig7_preprocessing",
                         "Fig 7 (pre-processing time and space)");
  benchutil::Scale scale = benchutil::GetScale();
  RunDataset(data::MsongProxySpec(), scale);
  RunDataset(data::GistProxySpec(), scale);
  RunDataset(data::DeepProxySpec(), scale);
  RunDataset(data::Word2vecProxySpec(), scale);
  RunDataset(data::GloveProxySpec(), scale);
  RunDataset(data::TinyProxySpec(), scale);
  std::printf(
      "\n# expectation (paper Fig 7): ADS/PCA rotation time << HNSW/IVF "
      "build; classifier training comparable to indexing; FINGER costs the "
      "most time and space by a wide margin\n");
  return 0;
}

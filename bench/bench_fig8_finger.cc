// Fig 8 (Exp-4): comparison with FINGER on GIST and DEEP proxies, HNSW
// only (FINGER is graph-specific), K in {20, 100}.
//
// Expectation: FINGER beats plain HNSW but trails DDCres by 20-30% at
// matched recall (and per Fig 7 it pays much more preprocessing).
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

void RunDataset(data::SyntheticSpec spec, const benchutil::Scale& scale) {
  data::Dataset ds = benchutil::MakeProxy(spec, scale);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 100);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));
  const std::vector<int> efs = {40, 80, 160, 320, 640};

  for (int k : {20, 100}) {
    for (const std::string& method :
         core::AllMethodNames(/*include_finger=*/true)) {
      auto computer = factory.Make(method, &hnsw);
      for (const auto& point :
           benchutil::HnswSweep(hnsw, *computer, ds, truth, k, efs)) {
        std::printf("%s,%d,%s,%d,%.1f,%.4f\n", ds.name.c_str(), k,
                    method.c_str(), point.knob, point.qps, point.recall);
      }
      std::fflush(stdout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig8_finger",
                         "Fig 8 (comparison with FINGER)");
  benchutil::Scale scale = benchutil::GetScale();
  std::printf("dataset,K,method,ef,qps,recall\n");
  RunDataset(data::GistProxySpec(), scale);
  RunDataset(data::DeepProxySpec(), scale);
  std::printf(
      "# expectation (paper Fig 8/Exp-4): qps(ddc-res) ~ 1.2-1.3x "
      "qps(finger) at matched recall; finger > exact\n");
  return 0;
}

// Fig 9 (Exp-5): scalability on growing slices of a SIFT-like dataset.
// The paper uses 20M..100M slices of SIFT100M; the proxy sweeps five
// proportional slices at this machine's scale and reports, per slice,
// HNSW build time next to every method's preprocessing time.
//
// Expectation: preprocessing (ADS/PCA/OPQ rotations) remains 1-5% of the
// HNSW build time at every size, and classifier training grows linearly.
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_fig9_scalability", "Fig 9 (scalability)");
  benchutil::Scale scale = benchutil::GetScale();

  const int64_t max_n = scale.paper ? 500000 : 40000;
  std::printf("%-10s %10s %8s %8s %8s %10s %10s\n", "slice", "HNSW(s)",
              "ADS(s)", "PCA(s)", "OPQ(s)", "DDCpca(s)", "DDCopq(s)");

  for (int slice = 1; slice <= 5; ++slice) {
    data::SyntheticSpec spec = data::SiftProxySpec();
    spec.num_base = max_n * slice / 5;
    spec.num_queries = 16;  // queries are irrelevant here
    spec.num_train_queries = scale.TrainQueries();
    data::Dataset ds = data::GenerateSynthetic(spec);

    WallTimer timer;
    index::HnswOptions hnsw_options;
    hnsw_options.M = scale.HnswM();
    hnsw_options.ef_construction = scale.HnswEfConstruction();
    index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);
    double hnsw_seconds = timer.ElapsedSeconds();

    core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));
    factory.Make(core::kMethodAdSampling);
    factory.Make(core::kMethodDdcRes);
    factory.Make(core::kMethodDdcPca);
    factory.Make(core::kMethodDdcOpq);
    const core::PreprocessCosts& costs = factory.costs();

    std::printf("%-10ld %10.2f %8.2f %8.2f %8.2f %10.2f %10.2f\n",
                static_cast<long>(ds.size()), hnsw_seconds,
                costs.ads_seconds, costs.pca_seconds, costs.opq_seconds,
                costs.ddc_pca_train_seconds, costs.ddc_opq_train_seconds);
    std::fflush(stdout);
  }
  std::printf(
      "# expectation (paper Fig 9): rotation-style preprocessing stays a "
      "few %% of HNSW build time at every slice; classifier training time "
      "grows ~linearly with the slice\n");
  return 0;
}

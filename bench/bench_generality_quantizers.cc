// Generality of the data-driven correction (§V, extension experiment).
//
// The paper's central generality claim is that the learned corrector is
// agnostic to the source of the approximate distance. The paper
// demonstrates OPQ (DDCopq); this harness stretches the same corrector over
// FOUR estimation sources — plain PQ, OPQ, Residual Quantization, and 8-bit
// Scalar Quantization — on one skewed-spectrum proxy (GIST-like) and one
// flat-spectrum proxy (GLOVE-like).
//
// Output per (dataset, backend): recall@10 / QPS / pruned rate over an HNSW
// ef-sweep, plus the no-correction baseline (approximate distances used
// directly in the refinement loop), which reproduces the §II-B observation
// that raw quantized distances lose recall without correction.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

using core::ApproxDistanceEstimator;
using core::DdcAnyComputer;
using core::LinearCorrector;

struct Backend {
  std::string name;
  core::PqEstimatorData pq;
  core::RqEstimatorData rq;
  core::SqEstimatorData sq;
  bool is_opq = false;
  core::DdcOpqArtifacts opq;

  std::unique_ptr<ApproxDistanceEstimator> MakeEstimator() const {
    if (name == "pq") return std::make_unique<core::PqAdcEstimator>(&pq);
    if (name == "rq") return std::make_unique<core::RqAdcEstimator>(&rq);
    return std::make_unique<core::SqAdcEstimator>(&sq);
  }
};

// Recall of using the RAW approximate distance for refinement (no
// correction, no exact fallback): order all visited candidates by dis'.
double RawEstimatorRecall(const Backend& backend, const data::Dataset& ds,
                          const std::vector<std::vector<int64_t>>& truth,
                          int k) {
  auto estimator = backend.MakeEstimator();
  double recall_sum = 0.0;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    estimator->BeginQuery(ds.queries.Row(q));
    std::vector<index::Neighbor> all(static_cast<std::size_t>(ds.size()));
    for (int64_t i = 0; i < ds.size(); ++i) {
      float extra = 0.0f;
      all[static_cast<std::size_t>(i)] = {i, estimator->Estimate(i, &extra)};
    }
    std::partial_sort(all.begin(), all.begin() + k, all.end(),
                      [](const index::Neighbor& a, const index::Neighbor& b) {
                        return a.distance < b.distance;
                      });
    std::vector<int64_t> ids;
    for (int r = 0; r < k; ++r) ids.push_back(all[static_cast<std::size_t>(r)].id);
    recall_sum += data::RecallAtK(ids, truth[static_cast<std::size_t>(q)], k);
  }
  return recall_sum / static_cast<double>(ds.queries.rows());
}

void RunDataset(const data::SyntheticSpec& spec, const Scale& scale) {
  data::Dataset ds = MakeProxy(spec, scale);
  std::printf("\n== dataset %s (n=%lld d=%lld) ==\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()));

  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(ds.base, ds.queries, k);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  // Train queries capped to the corrector budget.
  core::TrainingDataOptions training;
  training.max_queries = scale.CorrectorTrainQueries();

  std::vector<Backend> backends(3);
  {
    // Codebook sizes shrink at small scale so the whole binary stays within
    // the bench-directory time budget; paper scale uses the 8-bit defaults.
    const int nbits = scale.paper ? 8 : 6;
    WallTimer timer;
    quant::PqOptions pq_options;  // defaults pick ~d/4 subspaces
    pq_options.nbits = nbits;
    pq_options.kmeans.max_iterations = scale.paper ? 25 : 10;
    backends[0].name = "pq";
    backends[0].pq = core::BuildPqEstimatorData(ds.base, pq_options);
    std::printf("built pq artifacts in %.1fs\n", timer.ElapsedSeconds());

    timer.Reset();
    quant::RqOptions rq_options;
    rq_options.num_stages = 8;
    rq_options.nbits = nbits;
    rq_options.kmeans.max_iterations = scale.paper ? 25 : 10;
    backends[1].name = "rq";
    backends[1].rq = core::BuildRqEstimatorData(ds.base, rq_options);
    std::printf("built rq artifacts in %.1fs\n", timer.ElapsedSeconds());

    timer.Reset();
    backends[2].name = "sq8";
    backends[2].sq = core::BuildSqEstimatorData(ds.base);
    std::printf("built sq8 artifacts in %.1fs\n", timer.ElapsedSeconds());
  }

  std::printf("%-6s %-28s %8s %10s %8s\n", "src", "mode", "ef", "recall@10",
              "qps/pruned");
  const std::vector<int> efs = {40, 80, 160};
  for (const Backend& backend : backends) {
    // 1) Raw approximate distances, no correction (the §II-B failure mode;
    //    linear scan over all candidates so the effect is isolated).
    const double raw = RawEstimatorRecall(backend, ds, truth, k);
    std::printf("%-6s %-28s %8s %10.3f %8s\n", backend.name.c_str(),
                "raw-approx (no correction)", "-", raw, "-");

    // 2) The same estimator behind the learned corrector inside HNSW.
    auto trainer = backend.MakeEstimator();
    LinearCorrector corrector =
        core::TrainAnyCorrector(*trainer, ds.base, ds.train_queries,
                                training);
    for (int ef : efs) {
      DdcAnyComputer computer(&ds.base, backend.MakeEstimator(), &corrector);
      std::vector<SweepPoint> points =
          HnswSweep(hnsw, computer, ds, truth, k, {ef});
      std::printf("%-6s %-28s %8d %10.3f %7.0f/%.2f\n", backend.name.c_str(),
                  "ddc-corrected (hnsw)", ef, points[0].recall,
                  points[0].qps, computer.stats().PrunedRate());
    }
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("generality_quantizers",
              "§V generality claim across PQ / RQ / SQ8 estimator sources");
  Scale scale = GetScale();
  RunDataset(resinfer::data::GistProxySpec(), scale);
  RunDataset(resinfer::data::GloveProxySpec(), scale);
  std::printf(
      "\nExpected shape: raw quantized distances lose recall (paper: no "
      "quantization method exceeds ~60%% recall without re-ranking on real "
      "data; the proxies are easier but the gap is visible), while every "
      "backend behind the SAME learned corrector reaches near-exact recall "
      "with a high pruned rate — the §V source-agnostic claim.\n");
  return 0;
}

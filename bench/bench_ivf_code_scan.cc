// Code-resident IVF scan: contiguous record streams vs id-gathered codes
// (tracked in BENCH_ivf_code_scan.json).
//
// PR 2's CSR layout made the bucket *ids* contiguous, but every estimator
// still fetched its quantized codes with one random access per candidate.
// This bench quantifies what attaching a bucket-permuted quant::CodeStore
// buys on that hot loop, two ways:
//
//   1. bucket-scan micro: stream every bucket once per query through
//      EstimateBatch (id-gather) vs EstimateBatchCodes (contiguous
//      records) at tau = 0, i.e. pure estimate+prune with no exact
//      refinement — the part of the loop whose memory traffic the layout
//      changes. Reported as candidates/second.
//   2. end-to-end: IvfIndex::Search QPS with and without the attached
//      store (identical results by the EstimateBatchCodes contract; the
//      bench asserts it).
//
// Methods cover both estimator families: PQ/SQ (DdcAny), OPQ, and the
// projection-based DDCres whose records are whole rotated rows.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

struct MethodUnderTest {
  std::string name;
  index::ComputerFactory make;
};

// Streams every bucket of `ivf` once through the estimate/prune stage
// (tau = 0) for each query; returns candidates/second. `use_codes` picks
// the contiguous-record path (requires an attached, tag-matched store).
double BucketScanRate(const index::IvfIndex& ivf,
                      index::DistanceComputer& computer,
                      const linalg::Matrix& queries, bool use_codes,
                      int reps) {
  std::vector<index::EstimateResult> out;
  int64_t candidates = 0;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int64_t q = 0; q < queries.rows(); ++q) {
      computer.BeginQuery(queries.Row(q));
      for (int b = 0; b < ivf.num_clusters(); ++b) {
        const int64_t len = ivf.BucketSize(b);
        if (len == 0) continue;
        out.resize(static_cast<std::size_t>(len));
        if (use_codes) {
          computer.EstimateBatchCodes(ivf.BucketCodes(b), ivf.BucketIds(b),
                                      static_cast<int>(len), 0.0f,
                                      out.data());
        } else {
          computer.EstimateBatch(ivf.BucketIds(b), static_cast<int>(len),
                                 0.0f, out.data());
        }
        candidates += len;
      }
    }
  }
  return static_cast<double>(candidates) / timer.ElapsedSeconds();
}

double SearchQps(const index::IvfIndex& ivf,
                 index::DistanceComputer& computer,
                 const linalg::Matrix& queries, int k, int nprobe, int reps,
                 std::vector<std::vector<int64_t>>* result_ids) {
  result_ids->assign(static_cast<std::size_t>(queries.rows()), {});
  int64_t searches = 0;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int64_t q = 0; q < queries.rows(); ++q) {
      auto result = ivf.Search(computer, queries.Row(q), k, nprobe);
      ++searches;
      if (rep == 0) {
        auto& ids = (*result_ids)[static_cast<std::size_t>(q)];
        ids.reserve(result.size());
        for (const auto& nb : result) ids.push_back(nb.id);
      }
    }
  }
  return static_cast<double>(searches) / timer.ElapsedSeconds();
}

void Run(const Scale& scale) {
  data::Dataset ds = MakeProxy(resinfer::data::SiftProxySpec(), scale);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  index::IvfOptions ivf_options;
  ivf_options.num_clusters =
      static_cast<int>(std::max<int64_t>(16, ds.size() / 150));
  index::IvfIndex gather_ivf = index::IvfIndex::Build(ds.base, ivf_options);
  // The code-resident index shares gather_ivf's exact CSR parts (same
  // buckets by construction, not by k-means determinism); each method
  // re-attaches its own store below.
  linalg::Matrix centroids_copy(gather_ivf.centroids().rows(),
                                gather_ivf.centroids().cols());
  std::copy(gather_ivf.centroids().data(),
            gather_ivf.centroids().data() + gather_ivf.centroids().size(),
            centroids_copy.data());
  index::IvfIndex coded_ivf = index::IvfIndex::FromCsr(
      gather_ivf.size(), std::move(centroids_copy),
      gather_ivf.bucket_offsets(), gather_ivf.ids());

  // Shared trained artifacts.
  core::MethodFactory factory(&ds, ScaledFactoryOptions(scale));
  factory.EnsurePca();
  factory.EnsurePcaRotatedBase();
  factory.EnsureDdcOpqArtifacts();

  core::PqEstimatorData pq = core::BuildPqEstimatorData(ds.base);
  core::SqEstimatorData sq = core::BuildSqEstimatorData(ds.base);
  core::TrainingDataOptions training;
  training.max_queries = scale.CorrectorTrainQueries();
  core::LinearCorrector pq_corrector, sq_corrector;
  {
    core::PqAdcEstimator estimator(&pq);
    pq_corrector =
        core::TrainAnyCorrector(estimator, ds.base, ds.train_queries,
                                training);
  }
  {
    core::SqAdcEstimator estimator(&sq);
    sq_corrector =
        core::TrainAnyCorrector(estimator, ds.base, ds.train_queries,
                                training);
  }

  std::vector<MethodUnderTest> methods;
  methods.push_back({"ddc-pq", [&] {
                       return std::make_unique<core::DdcAnyComputer>(
                           &ds.base,
                           std::make_unique<core::PqAdcEstimator>(&pq),
                           &pq_corrector);
                     }});
  methods.push_back({"ddc-sq", [&] {
                       return std::make_unique<core::DdcAnyComputer>(
                           &ds.base,
                           std::make_unique<core::SqAdcEstimator>(&sq),
                           &sq_corrector);
                     }});
  methods.push_back(
      {"ddc-opq", [&] { return factory.Make(core::kMethodDdcOpq); }});
  methods.push_back(
      {"ddc-res", [&] { return factory.Make(core::kMethodDdcRes); }});

  const int k = 10;
  const int nprobe =
      std::max(4, static_cast<int>(ivf_options.num_clusters / 8));
  const int scan_reps = scale.paper ? 3 : 5;
  const int search_reps = scale.paper ? 3 : 5;

  std::printf("%-10s %16s %16s %8s %12s %12s %8s\n", "method",
              "gather-cand/s", "stream-cand/s", "speedup", "gather-qps",
              "stream-qps", "speedup");
  for (const auto& method : methods) {
    auto gather = method.make();
    auto streamed = method.make();

    if (!coded_ivf.AttachCodesFrom(*streamed)) {
      std::printf("%-10s has no code-resident form, skipped\n",
                  method.name.c_str());
      continue;
    }

    const double gather_rate = BucketScanRate(gather_ivf, *gather,
                                              ds.queries, false, scan_reps);
    const double stream_rate = BucketScanRate(coded_ivf, *streamed,
                                              ds.queries, true, scan_reps);

    std::vector<std::vector<int64_t>> gather_ids, stream_ids;
    const double gather_qps = SearchQps(gather_ivf, *gather, ds.queries, k,
                                        nprobe, search_reps, &gather_ids);
    const double stream_qps = SearchQps(coded_ivf, *streamed, ds.queries, k,
                                        nprobe, search_reps, &stream_ids);
    if (gather_ids != stream_ids) {
      std::printf("%-10s MISMATCH: code-resident search diverged!\n",
                  method.name.c_str());
      continue;
    }

    std::printf("%-10s %16.3e %16.3e %7.2fx %12.0f %12.0f %7.2fx\n",
                method.name.c_str(), gather_rate, stream_rate,
                stream_rate / gather_rate, gather_qps, stream_qps,
                stream_qps / gather_qps);
  }
  std::printf("(nprobe=%d, k=%d, %d clusters)\n", nprobe, k,
              ivf_options.num_clusters);
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("ivf_code_scan",
              "code-resident bucket scan vs id-gather (CSR + CodeStore)");
  Run(GetScale());
  std::printf(
      "\nExpected shape: stream-cand/s meets or beats gather-cand/s for "
      "every method (the records are read sequentially instead of one "
      "random access per candidate), with the gap widening as the base "
      "outgrows the caches; end-to-end QPS improves by the scan share of "
      "total search time, and both paths return identical results.\n");
  return 0;
}

// Micro-benchmarks of the distance kernels (google-benchmark): scalar vs
// AVX2 L2/inner-product across the dimensions of the paper's datasets.
// Not a paper figure; sanity for the SIMD substrate (the paper disables
// SIMD, this library ships both — see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace {

using resinfer::AlignedBuffer;
using resinfer::Rng;

AlignedBuffer<float> MakeVec(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedBuffer<float> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<float>(rng.Gaussian());
  return buf;
}

void BM_L2SqrScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 1), b = MakeVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::L2SqrScalar(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_L2SqrScalar)->Arg(128)->Arg(256)->Arg(420)->Arg(960);

#if defined(RESINFER_HAVE_AVX2)
void BM_L2SqrAvx2(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 1), b = MakeVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::L2SqrAvx2(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_L2SqrAvx2)->Arg(128)->Arg(256)->Arg(420)->Arg(960);
#endif

AlignedBuffer<uint8_t> MakeCodes(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedBuffer<uint8_t> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<uint8_t>(rng.Uniform() * 255.0);
  return buf;
}

void BM_SqAdcL2SqrScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 11), vmin = MakeVec(n, 12), step = MakeVec(n, 13);
  auto code = MakeCodes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resinfer::simd::internal::SqAdcL2SqrScalar(
        q.data(), code.data(), vmin.data(), step.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SqAdcL2SqrScalar)->Arg(128)->Arg(960);

#if defined(RESINFER_HAVE_AVX2)
void BM_SqAdcL2SqrAvx2(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 11), vmin = MakeVec(n, 12), step = MakeVec(n, 13);
  auto code = MakeCodes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resinfer::simd::internal::SqAdcL2SqrAvx2(
        q.data(), code.data(), vmin.data(), step.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SqAdcL2SqrAvx2)->Arg(128)->Arg(960);
#endif

void BM_InnerProductScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 3), b = MakeVec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::InnerProductScalar(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InnerProductScalar)->Arg(128)->Arg(960);

#if defined(RESINFER_HAVE_AVX2)
void BM_InnerProductAvx2(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 3), b = MakeVec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::InnerProductAvx2(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InnerProductAvx2)->Arg(128)->Arg(960);
#endif

// Partial (prefix) inner product — the DDCres hot path reads only the
// first d dimensions of the rotated vectors.
void BM_PrefixInnerProduct(benchmark::State& state) {
  auto a = MakeVec(960, 5), b = MakeVec(960, 6);
  const std::size_t d = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::InnerProduct(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_PrefixInnerProduct)->Arg(32)->Arg(64)->Arg(128)->Arg(960);

}  // namespace

BENCHMARK_MAIN();

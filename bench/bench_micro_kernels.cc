// Micro-benchmarks of the distance kernels (google-benchmark). Not a paper
// figure; sanity for the SIMD substrate (the paper disables SIMD, this
// library ships scalar/AVX2/AVX-512 — see DESIGN.md §2).
//
// Benchmarks are registered dynamically: one row per SIMD level the host
// supports (from simd::SupportedLevels()), named BM_<kernel>/<level>/<arg>.
// Each row pins the dispatch level with ScopedSimdLevel and drives the
// public entry points, so rows measure exactly what production callers get,
// dispatch overhead included. `--simd=<level>` restricts the sweep to one
// level (see bench/common.h).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace {

using resinfer::AlignedBuffer;
using resinfer::Rng;
using resinfer::simd::ScopedSimdLevel;
using resinfer::simd::SimdLevel;

AlignedBuffer<float> MakeVec(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedBuffer<float> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<float>(rng.Gaussian());
  return buf;
}

AlignedBuffer<uint8_t> MakeCodes(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedBuffer<uint8_t> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<uint8_t>(rng.Uniform() * 255.0);
  return buf;
}

// --- Single-pair kernels ---------------------------------------------------

void BM_L2Sqr(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 1), b = MakeVec(n, 2);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resinfer::simd::L2Sqr(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_InnerProduct(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 3), b = MakeVec(n, 4);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::InnerProduct(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SqAdcL2Sqr(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 11), vmin = MakeVec(n, 12), step = MakeVec(n, 13);
  auto code = MakeCodes(n, 14);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resinfer::simd::SqAdcL2Sqr(
        q.data(), code.data(), vmin.data(), step.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// --- Batched kernels (the block-scan refinement path) ---------------------
//
// Each batched kernel is benchmarked against the equivalent sequence of
// single-pair calls; the batched variants share query loads and keep
// several accumulation chains in flight while staying bit-identical per
// lane (see simd/kernels.h).

void BM_L2SqrSingleX4(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 20);
  AlignedBuffer<float> rows[4] = {MakeVec(n, 21), MakeVec(n, 22),
                                  MakeVec(n, 23), MakeVec(n, 24)};
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    for (int r = 0; r < 4; ++r) {
      benchmark::DoNotOptimize(
          resinfer::simd::L2Sqr(rows[r].data(), q.data(), n));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}

void BM_L2SqrBatch4(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 20);
  AlignedBuffer<float> storage[4] = {MakeVec(n, 21), MakeVec(n, 22),
                                     MakeVec(n, 23), MakeVec(n, 24)};
  const float* rows[4] = {storage[0].data(), storage[1].data(),
                          storage[2].data(), storage[3].data()};
  float out[4];
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    resinfer::simd::L2SqrBatch4(q.data(), rows, n, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}

void BM_InnerProductBatch4(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 25);
  AlignedBuffer<float> storage[4] = {MakeVec(n, 26), MakeVec(n, 27),
                                     MakeVec(n, 28), MakeVec(n, 29)};
  const float* rows[4] = {storage[0].data(), storage[1].data(),
                          storage[2].data(), storage[3].data()};
  float out[4];
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    resinfer::simd::InnerProductBatch4(q.data(), rows, n, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}

void BM_PqAdcBatch(benchmark::State& state, SimdLevel level) {
  const int m = 32, ksub = 256;
  const int count = static_cast<int>(state.range(0));
  auto table = MakeVec(static_cast<std::size_t>(m) * ksub, 30);
  auto codes = MakeCodes(static_cast<std::size_t>(count) * m, 31);
  std::vector<const uint8_t*> ptrs(count);
  for (int c = 0; c < count; ++c) ptrs[c] = codes.data() + c * m;
  std::vector<float> out(count);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    resinfer::simd::PqAdcBatch(table.data(), m, ksub, ptrs.data(), count,
                               out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}

void BM_SqAdcBatch4(benchmark::State& state, SimdLevel level) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 40), vmin = MakeVec(n, 41), step = MakeVec(n, 42);
  AlignedBuffer<uint8_t> storage[4] = {MakeCodes(n, 43), MakeCodes(n, 44),
                                       MakeCodes(n, 45), MakeCodes(n, 46)};
  const uint8_t* codes[4] = {storage[0].data(), storage[1].data(),
                             storage[2].data(), storage[3].data()};
  float out[4];
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    resinfer::simd::SqAdcL2SqrBatch4(q.data(), codes, vmin.data(),
                                     step.data(), n, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}

// --- Fast-scan ADC (packed 4-bit codes, quantized u8 LUT) ------------------

void BM_PqAdcFastScan(benchmark::State& state, SimdLevel level) {
  const int m = 32;
  const int packed = (m + 1) / 2;
  const int count = static_cast<int>(state.range(0));
  auto lut = MakeCodes(static_cast<std::size_t>(packed) * 32, 50);
  auto codes = MakeCodes(static_cast<std::size_t>(count) * packed, 51);
  std::vector<const uint8_t*> ptrs(count);
  for (int c = 0; c < count; ++c) ptrs[c] = codes.data() + c * packed;
  std::vector<uint16_t> out(count);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    resinfer::simd::PqAdcFastScan(lut.data(), m, ptrs.data(), count,
                                  out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}

// --- The acceptance scan: 1M x 128 refinement sweep -----------------------
//
// Simulates the IVF/HNSW refinement loop over a large base: every row's
// distance to the query is computed in blocks of four with next-block
// prefetch. Items processed = candidate rows, so items_per_second is
// directly comparable across levels.

constexpr std::size_t kScanRows = 1000000;
constexpr std::size_t kScanDim = 128;

const AlignedBuffer<float>& ScanBase() {
  static AlignedBuffer<float>* base = [] {
    Rng rng(7);
    auto* buf = new AlignedBuffer<float>(kScanRows * kScanDim);
    for (std::size_t i = 0; i < kScanRows * kScanDim; ++i)
      (*buf)[i] = static_cast<float>(rng.Uniform());
    return buf;
  }();
  return *base;
}

void BM_Scan1M128Batched(benchmark::State& state, SimdLevel level) {
  const AlignedBuffer<float>& base = ScanBase();
  auto q = MakeVec(kScanDim, 8);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    float best = 1e30f;
    const float* rows[4];
    float out[4];
    for (std::size_t i = 0; i + 4 <= kScanRows; i += 4) {
      for (int r = 0; r < 4; ++r)
        rows[r] = base.data() + (i + r) * kScanDim;
      if (i + 8 <= kScanRows) {
        for (int r = 4; r < 8; ++r)
          __builtin_prefetch(base.data() + (i + r) * kScanDim);
      }
      resinfer::simd::L2SqrBatch4(q.data(), rows, kScanDim, out);
      for (int r = 0; r < 4; ++r)
        if (out[r] < best) best = out[r];
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}

// Partial (prefix) inner product — the DDCres hot path reads only the
// first d dimensions of the rotated vectors.
void BM_PrefixInnerProduct(benchmark::State& state, SimdLevel level) {
  auto a = MakeVec(960, 5), b = MakeVec(960, 6);
  const std::size_t d = state.range(0);
  ScopedSimdLevel guard(level);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::InnerProduct(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations() * d);
}

void RegisterForLevel(SimdLevel level) {
  const std::string tag = resinfer::simd::SimdLevelName(level);
  auto reg = [&](const char* name, void (*fn)(benchmark::State&, SimdLevel),
                 std::vector<int64_t> args) {
    auto* b = benchmark::RegisterBenchmark((name + ("/" + tag)).c_str(),
                                           [fn, level](benchmark::State& st) {
                                             fn(st, level);
                                           });
    for (int64_t a : args) b->Arg(a);
    if (args.empty()) b->Unit(benchmark::kMillisecond);
  };
  reg("BM_L2Sqr", BM_L2Sqr, {128, 256, 420, 960});
  reg("BM_InnerProduct", BM_InnerProduct, {128, 960});
  reg("BM_SqAdcL2Sqr", BM_SqAdcL2Sqr, {128, 960});
  reg("BM_L2SqrSingleX4", BM_L2SqrSingleX4, {128, 960});
  reg("BM_L2SqrBatch4", BM_L2SqrBatch4, {128, 960});
  reg("BM_InnerProductBatch4", BM_InnerProductBatch4, {128, 960});
  reg("BM_PqAdcBatch", BM_PqAdcBatch, {32, 256});
  reg("BM_SqAdcBatch4", BM_SqAdcBatch4, {128, 960});
  reg("BM_PqAdcFastScan", BM_PqAdcFastScan, {32, 256});
  reg("BM_Scan1M128Batched", BM_Scan1M128Batched, {});
  reg("BM_PrefixInnerProduct", BM_PrefixInnerProduct, {32, 64, 128, 960});
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  // --simd=<level> narrows the sweep to that level; default sweeps every
  // level the host supports. Strip the flag before benchmark::Initialize,
  // which treats unknown --flags as errors.
  bool pinned = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--simd=", 7) == 0) {
      pinned = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  const std::vector<SimdLevel> levels =
      pinned ? std::vector<SimdLevel>{resinfer::simd::ActiveLevel()}
             : resinfer::simd::SupportedLevels();
  for (SimdLevel level : levels) RegisterForLevel(level);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Micro-benchmarks of the distance kernels (google-benchmark): scalar vs
// AVX2 L2/inner-product across the dimensions of the paper's datasets.
// Not a paper figure; sanity for the SIMD substrate (the paper disables
// SIMD, this library ships both — see DESIGN.md §2).
#include <benchmark/benchmark.h>

#include <vector>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace {

using resinfer::AlignedBuffer;
using resinfer::Rng;

AlignedBuffer<float> MakeVec(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedBuffer<float> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<float>(rng.Gaussian());
  return buf;
}

void BM_L2SqrScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 1), b = MakeVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::L2SqrScalar(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_L2SqrScalar)->Arg(128)->Arg(256)->Arg(420)->Arg(960);

#if defined(RESINFER_HAVE_AVX2)
void BM_L2SqrAvx2(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 1), b = MakeVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::L2SqrAvx2(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_L2SqrAvx2)->Arg(128)->Arg(256)->Arg(420)->Arg(960);
#endif

AlignedBuffer<uint8_t> MakeCodes(std::size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedBuffer<uint8_t> buf(n);
  for (std::size_t i = 0; i < n; ++i)
    buf[i] = static_cast<uint8_t>(rng.Uniform() * 255.0);
  return buf;
}

void BM_SqAdcL2SqrScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 11), vmin = MakeVec(n, 12), step = MakeVec(n, 13);
  auto code = MakeCodes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resinfer::simd::internal::SqAdcL2SqrScalar(
        q.data(), code.data(), vmin.data(), step.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SqAdcL2SqrScalar)->Arg(128)->Arg(960);

#if defined(RESINFER_HAVE_AVX2)
void BM_SqAdcL2SqrAvx2(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 11), vmin = MakeVec(n, 12), step = MakeVec(n, 13);
  auto code = MakeCodes(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resinfer::simd::internal::SqAdcL2SqrAvx2(
        q.data(), code.data(), vmin.data(), step.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SqAdcL2SqrAvx2)->Arg(128)->Arg(960);
#endif

void BM_InnerProductScalar(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 3), b = MakeVec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::InnerProductScalar(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InnerProductScalar)->Arg(128)->Arg(960);

#if defined(RESINFER_HAVE_AVX2)
void BM_InnerProductAvx2(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto a = MakeVec(n, 3), b = MakeVec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::internal::InnerProductAvx2(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InnerProductAvx2)->Arg(128)->Arg(960);
#endif

// --- Batched kernels (the block-scan refinement path) ---------------------
//
// Each batched kernel is benchmarked against the equivalent sequence of
// single-pair calls; the batched variants share query loads and keep
// several accumulation chains in flight while staying bit-identical per
// lane (see simd/kernels.h).

void BM_L2SqrSingleX4(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 20);
  AlignedBuffer<float> rows[4] = {MakeVec(n, 21), MakeVec(n, 22),
                                  MakeVec(n, 23), MakeVec(n, 24)};
  for (auto _ : state) {
    for (int r = 0; r < 4; ++r) {
      benchmark::DoNotOptimize(
          resinfer::simd::L2Sqr(rows[r].data(), q.data(), n));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_L2SqrSingleX4)->Arg(128)->Arg(960);

void BM_L2SqrBatch4(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 20);
  AlignedBuffer<float> storage[4] = {MakeVec(n, 21), MakeVec(n, 22),
                                     MakeVec(n, 23), MakeVec(n, 24)};
  const float* rows[4] = {storage[0].data(), storage[1].data(),
                          storage[2].data(), storage[3].data()};
  float out[4];
  for (auto _ : state) {
    resinfer::simd::L2SqrBatch4(q.data(), rows, n, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_L2SqrBatch4)->Arg(128)->Arg(960);

void BM_InnerProductSingleX4(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 25);
  AlignedBuffer<float> rows[4] = {MakeVec(n, 26), MakeVec(n, 27),
                                  MakeVec(n, 28), MakeVec(n, 29)};
  for (auto _ : state) {
    for (int r = 0; r < 4; ++r) {
      benchmark::DoNotOptimize(
          resinfer::simd::InnerProduct(rows[r].data(), q.data(), n));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_InnerProductSingleX4)->Arg(128)->Arg(960);

void BM_InnerProductBatch4(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 25);
  AlignedBuffer<float> storage[4] = {MakeVec(n, 26), MakeVec(n, 27),
                                     MakeVec(n, 28), MakeVec(n, 29)};
  const float* rows[4] = {storage[0].data(), storage[1].data(),
                          storage[2].data(), storage[3].data()};
  float out[4];
  for (auto _ : state) {
    resinfer::simd::InnerProductBatch4(q.data(), rows, n, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_InnerProductBatch4)->Arg(128)->Arg(960);

void BM_PqAdcSequential(benchmark::State& state) {
  const int m = 32, ksub = 256;
  const int count = static_cast<int>(state.range(0));
  auto table = MakeVec(static_cast<std::size_t>(m) * ksub, 30);
  auto codes = MakeCodes(static_cast<std::size_t>(count) * m, 31);
  std::vector<const uint8_t*> ptrs(count);
  for (int c = 0; c < count; ++c) ptrs[c] = codes.data() + c * m;
  for (auto _ : state) {
    for (int c = 0; c < count; ++c) {
      float acc = 0.f;
      const float* row = table.data();
      for (int s = 0; s < m; ++s, row += ksub) acc += row[ptrs[c][s]];
      benchmark::DoNotOptimize(acc);
    }
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_PqAdcSequential)->Arg(32)->Arg(256);

void BM_PqAdcBatch(benchmark::State& state) {
  const int m = 32, ksub = 256;
  const int count = static_cast<int>(state.range(0));
  auto table = MakeVec(static_cast<std::size_t>(m) * ksub, 30);
  auto codes = MakeCodes(static_cast<std::size_t>(count) * m, 31);
  std::vector<const uint8_t*> ptrs(count);
  for (int c = 0; c < count; ++c) ptrs[c] = codes.data() + c * m;
  std::vector<float> out(count);
  for (auto _ : state) {
    resinfer::simd::PqAdcBatch(table.data(), m, ksub, ptrs.data(), count,
                               out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_PqAdcBatch)->Arg(32)->Arg(256);

void BM_SqAdcSingleX4(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 40), vmin = MakeVec(n, 41), step = MakeVec(n, 42);
  AlignedBuffer<uint8_t> storage[4] = {MakeCodes(n, 43), MakeCodes(n, 44),
                                       MakeCodes(n, 45), MakeCodes(n, 46)};
  for (auto _ : state) {
    for (int r = 0; r < 4; ++r) {
      benchmark::DoNotOptimize(resinfer::simd::SqAdcL2Sqr(
          q.data(), storage[r].data(), vmin.data(), step.data(), n));
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_SqAdcSingleX4)->Arg(128)->Arg(960);

void BM_SqAdcBatch4(benchmark::State& state) {
  const std::size_t n = state.range(0);
  auto q = MakeVec(n, 40), vmin = MakeVec(n, 41), step = MakeVec(n, 42);
  AlignedBuffer<uint8_t> storage[4] = {MakeCodes(n, 43), MakeCodes(n, 44),
                                       MakeCodes(n, 45), MakeCodes(n, 46)};
  const uint8_t* codes[4] = {storage[0].data(), storage[1].data(),
                             storage[2].data(), storage[3].data()};
  float out[4];
  for (auto _ : state) {
    resinfer::simd::SqAdcL2SqrBatch4(q.data(), codes, vmin.data(),
                                     step.data(), n, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n * 4);
}
BENCHMARK(BM_SqAdcBatch4)->Arg(128)->Arg(960);

// --- The acceptance scan: 1M x 128 refinement sweep -----------------------
//
// Simulates the IVF/HNSW refinement loop over a large base: every row's
// distance to the query is computed, per-candidate vs. in blocks of four
// with next-block prefetch. Items processed = candidate rows, so
// items_per_second is directly comparable between the two.

constexpr std::size_t kScanRows = 1000000;
constexpr std::size_t kScanDim = 128;

const AlignedBuffer<float>& ScanBase() {
  static AlignedBuffer<float>* base = [] {
    Rng rng(7);
    auto* buf = new AlignedBuffer<float>(kScanRows * kScanDim);
    for (std::size_t i = 0; i < kScanRows * kScanDim; ++i)
      (*buf)[i] = static_cast<float>(rng.Uniform());
    return buf;
  }();
  return *base;
}

void BM_Scan1M128PerCandidate(benchmark::State& state) {
  const AlignedBuffer<float>& base = ScanBase();
  auto q = MakeVec(kScanDim, 8);
  for (auto _ : state) {
    float best = 1e30f;
    for (std::size_t i = 0; i < kScanRows; ++i) {
      float d = resinfer::simd::L2Sqr(base.data() + i * kScanDim, q.data(),
                                      kScanDim);
      if (d < best) best = d;
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_Scan1M128PerCandidate)->Unit(benchmark::kMillisecond);

void BM_Scan1M128Batched(benchmark::State& state) {
  const AlignedBuffer<float>& base = ScanBase();
  auto q = MakeVec(kScanDim, 8);
  for (auto _ : state) {
    float best = 1e30f;
    const float* rows[4];
    float out[4];
    for (std::size_t i = 0; i + 4 <= kScanRows; i += 4) {
      for (int r = 0; r < 4; ++r)
        rows[r] = base.data() + (i + r) * kScanDim;
      if (i + 8 <= kScanRows) {
        for (int r = 4; r < 8; ++r)
          __builtin_prefetch(base.data() + (i + r) * kScanDim);
      }
      resinfer::simd::L2SqrBatch4(q.data(), rows, kScanDim, out);
      for (int r = 0; r < 4; ++r)
        if (out[r] < best) best = out[r];
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() * kScanRows);
}
BENCHMARK(BM_Scan1M128Batched)->Unit(benchmark::kMillisecond);

// Partial (prefix) inner product — the DDCres hot path reads only the
// first d dimensions of the rotated vectors.
void BM_PrefixInnerProduct(benchmark::State& state) {
  auto a = MakeVec(960, 5), b = MakeVec(960, 6);
  const std::size_t d = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resinfer::simd::InnerProduct(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations() * d);
}
BENCHMARK(BM_PrefixInnerProduct)->Arg(32)->Arg(64)->Arg(128)->Arg(960);

}  // namespace

BENCHMARK_MAIN();

// Multi-query serving: query-major grouped search vs the per-query path
// (tracked in BENCH_multi_query.json).
//
// RunBatch served every query as an island: one BeginQuery (ADC tables,
// rotated query) per query and one pass over its probed buckets, so N
// co-probing queries re-streamed the same buckets N times. The grouped path
// (BatchSearchIvf with group_size > 1) orders queries by nearest centroid,
// hands groups to IvfIndex::SearchBatchRange, builds each group's
// per-query state once (SetQueryBatch), and streams every co-probed bucket
// once while all members score it (EstimateBatch*Group + the tiled
// kernels). Results are bit-identical to the per-query path — the bench
// asserts ids and distances — so the speedup is pure memory-traffic and
// table-reuse, measured here end-to-end at serving-relevant sizes
// (>= 100k points, nprobe >= 8).
#include <algorithm>
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

struct MethodUnderTest {
  std::string name;
  index::ComputerFactory make;
};

struct PathResult {
  double qps = 0.0;
  double avg_util = 0.0;
  index::ComputerStats stats;
  std::vector<std::vector<int64_t>> ids;
  std::vector<std::vector<float>> distances;
};

PathResult RunPath(const index::IvfIndex& ivf,
                   const index::ComputerFactory& factory,
                   const linalg::Matrix& queries, int k, int nprobe,
                   int group_size, int reps) {
  index::BatchOptions options;
  options.num_threads = 1;  // isolate the grouping win from parallelism
  options.group_size = group_size;
  PathResult out;
  double best_wall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    index::BatchResult batch =
        index::BatchSearchIvf(ivf, factory, queries, k, nprobe, options);
    if (rep == 0) {
      out.ids = index::ResultIds(batch);
      out.distances.reserve(batch.results.size());
      for (const auto& row : batch.results) {
        std::vector<float> d;
        d.reserve(row.size());
        for (const auto& nb : row) d.push_back(nb.distance);
        out.distances.push_back(std::move(d));
      }
      out.stats = batch.stats;
      out.avg_util = batch.AvgUtilization();
    }
    if (best_wall == 0.0 || batch.wall_seconds < best_wall) {
      best_wall = batch.wall_seconds;
    }
  }
  out.qps = static_cast<double>(queries.rows()) / best_wall;
  return out;
}

void Run(const Scale& scale) {
  // The multi-query win is a cache/traffic effect, so the base must
  // outgrow the caches: floor the size at 100k regardless of scale.
  data::SyntheticSpec spec = resinfer::data::SiftProxySpec();
  spec.num_base = std::max<int64_t>(100000, scale.BaseN(spec.dim));
  // A serving-sized batch: enough queries that co-probing ones actually
  // land in the same group after the probe-list sort.
  spec.num_queries = 4096;
  spec.num_train_queries = scale.TrainQueries();
  data::Dataset ds = data::GenerateSynthetic(spec);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  index::IvfOptions ivf_options;
  // The classic sqrt(n) cluster count — the usual IVF operating point for
  // this base size, and the regime the serving path targets (each probed
  // bucket holds a few hundred points, so co-probing queries share real
  // streams).
  ivf_options.num_clusters = static_cast<int>(
      std::max<int64_t>(16, static_cast<int64_t>(std::sqrt(
                                static_cast<double>(ds.size())))));
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);

  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  linalg::Matrix rotated = pca.TransformBatch(ds.base.data(), ds.size());

  core::PqEstimatorData pq = core::BuildPqEstimatorData(ds.base);
  core::SqEstimatorData sq = core::BuildSqEstimatorData(ds.base);
  core::TrainingDataOptions training;
  training.max_queries = scale.CorrectorTrainQueries();
  core::LinearCorrector pq_corrector, sq_corrector;
  {
    core::PqAdcEstimator estimator(&pq);
    pq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                           ds.train_queries, training);
  }
  {
    core::SqAdcEstimator estimator(&sq);
    sq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                           ds.train_queries, training);
  }

  std::vector<MethodUnderTest> methods;
  methods.push_back({"exact", [&] {
                       return std::make_unique<index::FlatDistanceComputer>(
                           ds.base.data(), ds.size(), ds.dim());
                     }});
  methods.push_back({"ddc-pq", [&] {
                       return std::make_unique<core::DdcAnyComputer>(
                           &ds.base,
                           std::make_unique<core::PqAdcEstimator>(&pq),
                           &pq_corrector);
                     }});
  methods.push_back({"ddc-sq", [&] {
                       return std::make_unique<core::DdcAnyComputer>(
                           &ds.base,
                           std::make_unique<core::SqAdcEstimator>(&sq),
                           &sq_corrector);
                     }});
  methods.push_back({"ddc-res", [&] {
                       return std::make_unique<core::DdcResComputer>(&pca,
                                                                     &rotated);
                     }});

  const int k = 10;
  const int nprobe = 16;
  const int group_size = 32;
  const int reps = scale.paper ? 3 : 3;

  std::printf("%-8s %14s %14s %8s  (k=%d nprobe=%d group=%d clusters=%d)\n",
              "method", "per-query-qps", "grouped-qps", "speedup", k, nprobe,
              group_size, ivf_options.num_clusters);
  for (const auto& method : methods) {
    // Code-resident mode for both paths where the method supports it, so
    // the comparison isolates grouping (PR 3 already tracked the layout).
    ivf.DetachCodes();
    ivf.AttachCodesFrom(*method.make());

    PathResult per_query =
        RunPath(ivf, method.make, ds.queries, k, nprobe, 1, reps);
    PathResult grouped =
        RunPath(ivf, method.make, ds.queries, k, nprobe, group_size, reps);

    if (per_query.ids != grouped.ids ||
        per_query.distances != grouped.distances) {
      std::printf("%-8s MISMATCH: grouped search diverged!\n",
                  method.name.c_str());
      continue;
    }
    if (per_query.stats.candidates != grouped.stats.candidates ||
        per_query.stats.pruned != grouped.stats.pruned ||
        per_query.stats.dims_scanned != grouped.stats.dims_scanned ||
        per_query.stats.exact_computations !=
            grouped.stats.exact_computations) {
      std::printf("%-8s MISMATCH: grouped stats diverged!\n",
                  method.name.c_str());
      continue;
    }
    std::printf("%-8s %14.0f %14.0f %7.2fx\n", method.name.c_str(),
                per_query.qps, grouped.qps, grouped.qps / per_query.qps);
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("multi_query",
              "query-major grouped IVF serving vs per-query RunBatch");
  Run(GetScale());
  std::printf(
      "\nExpected shape: the grouped path wins where the scan is "
      "memory-bound — the exact computer (full-dimension rows shared "
      "across members) and the rotated-row DDC estimators (ddc-res) gain "
      "the most, >= 1.2x for exact; gather-port-bound PQ ADC and "
      "FMA-bound SQ decode gain a few percent (their time is compute the "
      "grouping cannot share — 4-bit fast-scan is that lever, see "
      "ROADMAP). Results are asserted bit-identical, so any speedup is "
      "free of accuracy cost, and group_size=1 recovers the per-query "
      "path exactly.\n");
  return 0;
}

// Out-of-distribution queries (§V-C; Exp-A.2/A.3 of the technical report):
//   * DDCres treats the query as deterministic in its bound -> robust;
//   * DDCpca / DDCopq train on in-distribution queries -> degrade on OOD;
//   * retraining the correctors with ~100 OOD queries restores them.
// The proxy's OOD generator shifts the mixture centers (DESIGN.md §2).
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

struct Measured {
  double qps = 0.0;
  double recall = 0.0;
};

Measured Measure(const index::HnswIndex& hnsw, const linalg::Matrix& queries,
                 const std::vector<std::vector<int64_t>>& truth,
                 index::DistanceComputer& computer, int ef) {
  index::HnswScratch scratch;
  std::vector<std::vector<int64_t>> results;
  WallTimer timer;
  for (int64_t q = 0; q < queries.rows(); ++q) {
    auto found = hnsw.Search(computer, queries.Row(q), 20, ef, &scratch);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  Measured m;
  m.qps = queries.rows() / timer.ElapsedSeconds();
  m.recall = data::MeanRecallAtK(results, truth, 20);
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_ood_queries",
                         "§V-C / Exp-A.2-A.3 (out-of-distribution queries)");
  benchutil::Scale scale = benchutil::GetScale();

  data::SyntheticSpec spec = data::DeepProxySpec();
  data::Dataset ds = benchutil::MakeProxy(spec, scale);
  spec.num_base = ds.size();  // record the resized spec for the generator
  spec.num_queries = scale.Queries();
  spec.num_train_queries = scale.TrainQueries();

  linalg::Matrix ood_queries = data::GenerateOutOfDistributionQueries(
      spec, scale.Queries(), /*shift_scale=*/3.0, /*seed=*/31337);

  auto truth_in = data::BruteForceKnn(ds.base, ds.queries, 20);
  auto truth_ood = data::BruteForceKnn(ds.base, ood_queries, 20);

  index::HnswOptions hnsw_options;
  hnsw_options.M = scale.HnswM();
  hnsw_options.ef_construction = scale.HnswEfConstruction();
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  core::MethodFactory factory(&ds, benchutil::ScaledFactoryOptions(scale));
  const int ef = 160;

  std::printf("%-10s %-12s %10s %10s\n", "queries", "method", "qps",
              "recall@20");
  for (const char* method : {core::kMethodDdcRes, core::kMethodDdcPca,
                             core::kMethodDdcOpq}) {
    auto computer = factory.Make(method);
    Measured in_dist = Measure(hnsw, ds.queries, truth_in, *computer, ef);
    Measured ood = Measure(hnsw, ood_queries, truth_ood, *computer, ef);
    std::printf("%-10s %-12s %10.1f %10.4f\n", "in-dist", method,
                in_dist.qps, in_dist.recall);
    std::printf("%-10s %-12s %10.1f %10.4f\n", "OOD", method, ood.qps,
                ood.recall);
  }

  // Exp-A.3: retrain the learned correctors on ~100 OOD queries.
  data::Dataset retrained_ds;
  retrained_ds.name = ds.name + "+ood-retrain";
  retrained_ds.base = ds.base.Clone();
  retrained_ds.queries = ds.queries.Clone();
  retrained_ds.train_queries = data::GenerateOutOfDistributionQueries(
      spec, /*num_queries=*/std::max<int64_t>(100, scale.TrainQueries() / 4),
      /*shift_scale=*/3.0, /*seed=*/97531);
  core::MethodFactory retrained(&retrained_ds,
                                benchutil::ScaledFactoryOptions(scale));
  for (const char* method : {core::kMethodDdcPca, core::kMethodDdcOpq}) {
    auto computer = retrained.Make(method);
    Measured ood = Measure(hnsw, ood_queries, truth_ood, *computer, ef);
    std::printf("%-10s %-12s %10.1f %10.4f\n", "OOD+retrain", method,
                ood.qps, ood.recall);
  }

  std::printf(
      "# expectation (§V-C): ddc-res recall stable under OOD; ddc-pca / "
      "ddc-opq drop under OOD and recover after retraining on ~100 OOD "
      "queries\n");
  return 0;
}

// Packed 4-bit fast-scan ADC vs the float-table gather path (tracked in
// BENCH_pq_fastscan.json).
//
// The ROADMAP flagged PqAdcBatch at ~1.1x over sequential on AVX2: its
// inner loop is one vgatherdps per (8 codes x sub-space) into a
// 32-bit-float table that outgrows L1. The packed tier quantizes the
// per-query table to u8 16-entry sub-tables that live IN registers
// (vpshufb lookups, u16 accumulation) over nibble-packed codes. Two
// measurements:
//
//   1. ADC hot loop: estimate-only throughput (codes/second) over the
//      same contiguous code stream — float PqAdcBatch over byte codes vs
//      quantized PqAdcFastScan (+ dequantization) over packed codes, both
//      including per-query table build. This is the ≥2x acceptance number.
//   2. End-to-end IVF search: recall@10 and QPS for DdcAny(pq) with the
//      byte-per-code float path vs the packed fast-scan path, both ending
//      in the exact-rescore epilogue. Both prune with a corrector trained
//      on their own estimate distribution; recall@10 must not move.
//
// Both codebooks share identical centroid tables, so the two paths
// disagree only by the documented quantization error (< m * scale / 2).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

constexpr int64_t kBaseN = 100000;
constexpr int64_t kDim = 128;
constexpr int kSubspaces = 32;  // nbits=4: 16-entry codebooks, dsub=4

struct AdcLoopResult {
  double codes_per_s = 0.0;
  double checksum = 0.0;  // defeats dead-code elimination
};

// Float path: per-query ADC table, then the chunked PqAdcBatch loop the
// estimators run, over a contiguous byte-code stream.
AdcLoopResult FloatAdcLoop(const quant::PqCodebook& pq,
                           const std::vector<uint8_t>& codes,
                           const linalg::Matrix& queries, int reps) {
  constexpr int kChunk = 16;
  const int64_t n =
      static_cast<int64_t>(codes.size()) / pq.code_size();
  std::vector<float> table(pq.adc_table_size());
  const uint8_t* ptrs[kChunk];
  float out[kChunk];
  AdcLoopResult result;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int64_t q = 0; q < queries.rows(); ++q) {
      pq.ComputeAdcTable(queries.Row(q), table.data());
      for (int64_t i = 0; i < n; i += kChunk) {
        const int block = static_cast<int>(std::min<int64_t>(kChunk, n - i));
        for (int j = 0; j < block; ++j) {
          ptrs[j] = codes.data() + (i + j) * pq.code_size();
        }
        simd::PqAdcBatch(table.data(), pq.num_subspaces(),
                         pq.num_centroids(), ptrs, block, out);
        result.checksum += out[0];
      }
    }
  }
  result.codes_per_s = static_cast<double>(n) * queries.rows() * reps /
                       timer.ElapsedSeconds();
  return result;
}

// Packed path: per-query table + u8 quantization, then the chunked
// PqAdcFastScan loop with the shared dequantization.
AdcLoopResult FastScanLoop(const quant::PqCodebook& pq,
                           const std::vector<uint8_t>& codes,
                           const linalg::Matrix& queries, int reps) {
  constexpr int kChunk = 16;
  const int64_t n =
      static_cast<int64_t>(codes.size()) / pq.code_size();
  std::vector<float> table(pq.adc_table_size());
  std::vector<uint8_t> lut(pq.fast_scan_lut_bytes());
  float scale = 0.0f, bias = 0.0f;
  const uint8_t* ptrs[kChunk];
  uint16_t sums[kChunk];
  AdcLoopResult result;
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int64_t q = 0; q < queries.rows(); ++q) {
      pq.ComputeAdcTable(queries.Row(q), table.data());
      pq.QuantizeAdcTable(table.data(), lut.data(), &scale, &bias);
      for (int64_t i = 0; i < n; i += kChunk) {
        const int block = static_cast<int>(std::min<int64_t>(kChunk, n - i));
        for (int j = 0; j < block; ++j) {
          ptrs[j] = codes.data() + (i + j) * pq.code_size();
        }
        simd::PqAdcFastScan(lut.data(), pq.num_subspaces(), ptrs, block,
                            sums);
        result.checksum +=
            quant::PqCodebook::DequantizeFastScanSum(sums[0], scale, bias);
      }
    }
  }
  result.codes_per_s = static_cast<double>(n) * queries.rows() * reps /
                       timer.ElapsedSeconds();
  return result;
}

struct SearchResult {
  double qps = 0.0;
  double recall = 0.0;
};

SearchResult SearchSweep(const index::IvfIndex& ivf,
                         index::DistanceComputer& computer,
                         const data::Dataset& ds,
                         const std::vector<std::vector<int64_t>>& truth,
                         int k, int nprobe, int reps) {
  SearchResult result;
  std::vector<std::vector<int64_t>> found(
      static_cast<std::size_t>(ds.queries.rows()));
  WallTimer timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto neighbors = ivf.Search(computer, ds.queries.Row(q), k, nprobe);
      if (rep == 0) {
        auto& ids = found[static_cast<std::size_t>(q)];
        for (const auto& nb : neighbors) ids.push_back(nb.id);
      }
    }
  }
  result.qps = static_cast<double>(ds.queries.rows()) * reps /
               timer.ElapsedSeconds();
  result.recall = data::MeanRecallAtK(found, truth, k);
  return result;
}

void Run() {
  data::SyntheticSpec spec = data::SiftProxySpec();
  spec.num_base = kBaseN;
  spec.num_queries = 64;
  spec.num_train_queries = 2000;
  data::Dataset ds = data::GenerateSynthetic(spec);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  // One set of trained centroid tables, two layouts over them.
  quant::PqOptions options;
  options.num_subspaces = kSubspaces;
  options.nbits = 4;
  quant::PqCodebook packed =
      quant::PqCodebook::Train(ds.base.data(), ds.size(), kDim, options);
  std::vector<linalg::Matrix> tables;
  for (int s = 0; s < packed.num_subspaces(); ++s) {
    const linalg::Matrix& src = packed.centroids(s);
    linalg::Matrix copy(src.rows(), src.cols());
    std::copy(src.data(), src.data() + src.size(), copy.data());
    tables.push_back(std::move(copy));
  }
  quant::PqCodebook bytes = quant::PqCodebook::FromCodebooks(
      std::move(tables),
      quant::CodeLayout{4, quant::CodePacking::kBytePerCode});

  // Encode once (byte layout), pack the same sub-codes for the fast-scan
  // tier, and share the reconstruction errors (identical reconstructions).
  std::vector<uint8_t> byte_codes = bytes.EncodeBatch(ds.base.data(),
                                                      ds.size());
  std::vector<uint8_t> packed_codes(
      static_cast<std::size_t>(ds.size() * packed.code_size()));
  for (int64_t i = 0; i < ds.size(); ++i) {
    quant::PackCodes4(byte_codes.data() + i * bytes.code_size(), kSubspaces,
                      packed_codes.data() + i * packed.code_size());
  }
  std::printf("code bytes/vector: byte-layout %lld, packed %lld\n",
              static_cast<long long>(bytes.code_size()),
              static_cast<long long>(packed.code_size()));

  // --- 1. ADC hot loop ----------------------------------------------------
  const int adc_reps = 3;
  AdcLoopResult gather =
      FloatAdcLoop(bytes, byte_codes, ds.queries, adc_reps);
  AdcLoopResult fastscan =
      FastScanLoop(packed, packed_codes, ds.queries, adc_reps);
  std::printf(
      "adc-loop [%s]: gather %.3e codes/s, fast-scan %.3e codes/s, "
      "speedup %.2fx\n",
      simd::SimdLevelName(simd::ActiveLevel()), gather.codes_per_s,
      fastscan.codes_per_s, fastscan.codes_per_s / gather.codes_per_s);

  // --- 2. End-to-end IVF search ------------------------------------------
  core::PqEstimatorData byte_data;
  byte_data.pq = std::move(bytes);
  byte_data.codes = std::move(byte_codes);
  byte_data.recon_errors.resize(static_cast<std::size_t>(ds.size()));
  ParallelFor(ds.size(), [&](int64_t begin, int64_t end) {
    std::vector<float> decoded(kDim);
    for (int64_t i = begin; i < end; ++i) {
      byte_data.pq.Decode(
          byte_data.codes.data() + i * byte_data.pq.code_size(),
          decoded.data());
      byte_data.recon_errors[static_cast<std::size_t>(i)] = simd::L2Sqr(
          decoded.data(), ds.base.Row(i), static_cast<std::size_t>(kDim));
    }
  });
  core::PqEstimatorData packed_data;
  packed_data.pq = std::move(packed);
  packed_data.codes = std::move(packed_codes);
  packed_data.recon_errors = byte_data.recon_errors;

  core::TrainingDataOptions training;
  training.max_queries = 300;
  core::LinearCorrector byte_corrector, packed_corrector;
  {
    core::PqAdcEstimator estimator(&byte_data);
    byte_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                             ds.train_queries, training);
  }
  {
    core::PqAdcEstimator estimator(&packed_data);
    packed_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                               ds.train_queries, training);
  }

  index::IvfOptions ivf_options;
  ivf_options.num_clusters =
      static_cast<int>(std::max<int64_t>(16, ds.size() / 150));
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);
  const int k = 10;
  const int nprobe =
      std::max(4, static_cast<int>(ivf_options.num_clusters / 8));
  auto truth = data::BruteForceKnn(ds.base, ds.queries, k);

  core::DdcAnyComputer byte_computer(
      &ds.base, std::make_unique<core::PqAdcEstimator>(&byte_data),
      &byte_corrector);
  core::DdcAnyComputer packed_computer(
      &ds.base, std::make_unique<core::PqAdcEstimator>(&packed_data),
      &packed_corrector);

  const int search_reps = 3;
  SearchResult byte_gather = SearchSweep(ivf, byte_computer, ds, truth, k,
                                         nprobe, search_reps);
  SearchResult packed_gather = SearchSweep(ivf, packed_computer, ds, truth,
                                           k, nprobe, search_reps);
  // Production shape for the packed tier: bucket-resident packed records.
  if (!ivf.AttachCodesFrom(packed_computer)) {
    std::printf("FAILED to attach packed codes\n");
    return;
  }
  SearchResult packed_stream = SearchSweep(ivf, packed_computer, ds, truth,
                                           k, nprobe, search_reps);

  std::printf("%-24s %10s %12s\n", "search path", "recall@10", "qps");
  std::printf("%-24s %10.4f %12.0f\n", "byte float-ADC (gather)",
              byte_gather.recall, byte_gather.qps);
  std::printf("%-24s %10.4f %12.0f\n", "packed fast-scan (gather)",
              packed_gather.recall, packed_gather.qps);
  std::printf("%-24s %10.4f %12.0f\n", "packed fast-scan (stream)",
              packed_stream.recall, packed_stream.qps);
  std::printf(
      "recall delta after exact rescore: %+0.4f (stream vs byte)\n",
      packed_stream.recall - byte_gather.recall);
  std::printf("(nprobe=%d, k=%d, %d clusters; checksums %.3g / %.3g)\n",
              nprobe, k, ivf_options.num_clusters, gather.checksum,
              fastscan.checksum);
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  resinfer::benchutil::Run();
  return 0;
}

// Online serving: coalescing admission (IvfServer) vs pre-sorted batch
// search (tracked in BENCH_serving.json).
//
// BatchSearchIvf reaches the grouped scan only when the caller materializes
// every query up front and lets the harness sort them by probe list. A
// server gets the opposite: queries arrive one at a time, unsorted, from
// concurrent clients. IvfServer recovers the grouped scan online — Submit
// ranks the query's centroids once, files it under (k, nprobe, lead
// centroid), and flushes groups when they fill or when the oldest member's
// linger budget expires. This bench quantifies what that recovers:
//
//   * baseline   — pre-sorted BatchSearchIvf group_size=32 (the upper
//                  bound: perfect batching, zero admission cost),
//   * burst      — all queries submitted back-to-back, shuffled, one at a
//                  time (open-loop at max rate: what coalescing rebuilds
//                  from an unsorted feed),
//   * closed C   — C closed-loop clients, each submit+wait sequentially
//                  (per-request latency percentiles under real admission).
//
// Every serving answer is asserted bit-identical to the baseline, which is
// itself bit-identical to per-query Search — so QPS deltas are pure
// scheduling, never accuracy.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common.h"

namespace resinfer::benchutil {
namespace {

struct MethodUnderTest {
  std::string name;
  index::ComputerFactory make;
};

struct Answers {
  std::vector<std::vector<int64_t>> ids;
  std::vector<std::vector<float>> distances;
};

Answers Collect(std::vector<std::vector<index::Neighbor>>& rows) {
  Answers out;
  out.ids.reserve(rows.size());
  out.distances.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<int64_t> ids;
    std::vector<float> distances;
    ids.reserve(row.size());
    distances.reserve(row.size());
    for (const auto& nb : row) {
      ids.push_back(nb.id);
      distances.push_back(nb.distance);
    }
    out.ids.push_back(std::move(ids));
    out.distances.push_back(std::move(distances));
  }
  return out;
}

double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + (samples[hi] - samples[lo]) * frac;
}

// Pre-sorted grouped batch: the offline upper bound.
double BaselineQps(const index::IvfIndex& ivf,
                   const index::ComputerFactory& factory,
                   const linalg::Matrix& queries, int k, int nprobe,
                   int reps, Answers* answers) {
  index::BatchOptions options;
  options.num_threads = 1;  // single worker on both sides of the A/B
  options.group_size = 32;
  double best_wall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    index::BatchResult batch =
        index::BatchSearchIvf(ivf, factory, queries, k, nprobe, options);
    if (rep == 0) *answers = Collect(batch.results);
    if (best_wall == 0.0 || batch.wall_seconds < best_wall) {
      best_wall = batch.wall_seconds;
    }
  }
  return static_cast<double>(queries.rows()) / best_wall;
}

struct ServeResult {
  double qps = 0.0;
  double occupancy = 0.0;
  double utilization = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;
  int64_t full = 0, linger = 0, drain = 0;
  bool parity = true;
};

// One burst rep: submit every query back to back in shuffled order, then
// wait. A fresh server per rep so occupancy/flush counters are per-run.
ServeResult RunBurst(const index::IvfIndex& ivf,
                     const index::ComputerFactory& factory,
                     const linalg::Matrix& queries,
                     const std::vector<int64_t>& order, int k, int nprobe,
                     int64_t linger_micros, int reps,
                     const Answers& expected) {
  ServeResult out;
  double best_wall = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    serve::AdmissionOptions options;
    options.num_threads = 1;
    options.max_group_size = 32;
    options.linger_micros = linger_micros;
    serve::IvfServer server(&ivf, factory, options);
    std::vector<std::future<std::vector<index::Neighbor>>> futures(
        static_cast<std::size_t>(queries.rows()));
    WallTimer timer;
    for (int64_t q : order) {
      futures[static_cast<std::size_t>(q)] =
          server.Submit(queries.Row(q), k, nprobe);
    }
    std::vector<std::vector<index::Neighbor>> rows(futures.size());
    for (std::size_t q = 0; q < futures.size(); ++q) {
      rows[q] = futures[q].get();
    }
    const double wall = timer.ElapsedSeconds();
    if (rep == 0) {
      Answers got = Collect(rows);
      out.parity = got.ids == expected.ids && got.distances == expected.distances;
    }
    if (best_wall == 0.0 || wall < best_wall) {
      best_wall = wall;
      serve::ServingStats stats = server.stats();
      out.occupancy = stats.MeanOccupancy();
      out.full = stats.full_flushes;
      out.linger = stats.linger_flushes;
      out.drain = stats.drain_flushes;
      double busy = 0.0;
      for (double b : server.executor_stats().busy_seconds) busy += b;
      out.utilization = busy / (wall * server.num_threads());
    }
    server.Shutdown();
  }
  out.qps = static_cast<double>(queries.rows()) / best_wall;
  return out;
}

// C closed-loop clients, each owning a slice of the shuffled order and
// issuing submit+wait sequentially: per-request latency is measured on the
// client, end to end (admission linger + queueing + scan).
ServeResult RunClosedLoop(const index::IvfIndex& ivf,
                          const index::ComputerFactory& factory,
                          const linalg::Matrix& queries,
                          const std::vector<int64_t>& order, int k,
                          int nprobe, int64_t linger_micros, int clients,
                          const Answers& expected) {
  serve::AdmissionOptions options;
  options.num_threads = 1;
  options.max_group_size = 32;
  options.linger_micros = linger_micros;
  serve::IvfServer server(&ivf, factory, options);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<std::vector<index::Neighbor>> rows(
      static_cast<std::size_t>(queries.rows()));
  std::vector<std::thread> threads;
  WallTimer timer;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c); i < order.size();
           i += static_cast<std::size_t>(clients)) {
        const int64_t q = order[i];
        WallTimer request;
        auto future = server.Submit(queries.Row(q), k, nprobe);
        rows[static_cast<std::size_t>(q)] = future.get();
        latencies[static_cast<std::size_t>(c)].push_back(request.ElapsedSeconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall = timer.ElapsedSeconds();

  ServeResult out;
  out.qps = static_cast<double>(queries.rows()) / wall;
  Answers got = Collect(rows);
  out.parity = got.ids == expected.ids && got.distances == expected.distances;
  serve::ServingStats stats = server.stats();
  out.occupancy = stats.MeanOccupancy();
  out.full = stats.full_flushes;
  out.linger = stats.linger_flushes;
  out.drain = stats.drain_flushes;
  double busy = 0.0;
  for (double b : server.executor_stats().busy_seconds) busy += b;
  out.utilization = busy / (wall * server.num_threads());
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  out.p50_ms = Percentile(all, 0.50) * 1e3;
  out.p99_ms = Percentile(all, 0.99) * 1e3;
  out.p999_ms = Percentile(all, 0.999) * 1e3;
  server.Shutdown();
  return out;
}

void Run(const Scale& scale) {
  // Same operating point as bench_multi_query so the two files compose:
  // the grouping win is a traffic effect, floor the base at 100k.
  data::SyntheticSpec spec = resinfer::data::SiftProxySpec();
  spec.num_base = std::max<int64_t>(100000, scale.BaseN(spec.dim));
  spec.num_queries = 4096;
  spec.num_train_queries = scale.TrainQueries();
  data::Dataset ds = data::GenerateSynthetic(spec);
  std::printf("dataset %s (n=%lld d=%lld), %lld queries\n", ds.name.c_str(),
              static_cast<long long>(ds.size()),
              static_cast<long long>(ds.dim()),
              static_cast<long long>(ds.queries.rows()));

  index::IvfOptions ivf_options;
  ivf_options.num_clusters = static_cast<int>(
      std::max<int64_t>(16, static_cast<int64_t>(std::sqrt(
                                static_cast<double>(ds.size())))));
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);

  core::PqEstimatorData pq = core::BuildPqEstimatorData(ds.base);
  core::TrainingDataOptions training;
  training.max_queries = scale.CorrectorTrainQueries();
  core::LinearCorrector pq_corrector;
  {
    core::PqAdcEstimator estimator(&pq);
    pq_corrector = core::TrainAnyCorrector(estimator, ds.base,
                                           ds.train_queries, training);
  }

  std::vector<MethodUnderTest> methods;
  methods.push_back({"exact", [&] {
                       return std::make_unique<index::FlatDistanceComputer>(
                           ds.base.data(), ds.size(), ds.dim());
                     }});
  methods.push_back({"ddc-pq", [&] {
                       return std::make_unique<core::DdcAnyComputer>(
                           &ds.base,
                           std::make_unique<core::PqAdcEstimator>(&pq),
                           &pq_corrector);
                     }});

  const int k = 10;
  const int nprobe = 16;
  const int64_t linger_micros = 200;
  const int reps = 3;

  // One shuffled arrival order shared by every mode: the serving paths
  // never see the probe-list-sorted layout the baseline enjoys.
  std::vector<int64_t> order(static_cast<std::size_t>(ds.queries.rows()));
  std::iota(order.begin(), order.end(), int64_t{0});
  Rng rng(20250808);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[static_cast<std::size_t>(rng.UniformInt(i))]);
  }

  std::printf(
      "(k=%d nprobe=%d group=32 linger=%lldus clusters=%d threads=1)\n", k,
      nprobe, static_cast<long long>(linger_micros),
      ivf_options.num_clusters);
  std::printf("%-8s %-10s %10s %8s %6s %9s %9s %9s  %s\n", "method", "mode",
              "qps", "vs-base", "occup", "p50(ms)", "p99(ms)", "p999(ms)",
              "util");
  for (const auto& method : methods) {
    ivf.DetachCodes();
    ivf.AttachCodesFrom(*method.make());

    Answers expected;
    const double base_qps = BaselineQps(ivf, method.make, ds.queries, k,
                                        nprobe, reps, &expected);
    std::printf("%-8s %-10s %10.0f %8s %6s %9s %9s %9s\n",
                method.name.c_str(), "presorted", base_qps, "1.00x", "32.0",
                "-", "-", "-");

    ServeResult burst = RunBurst(ivf, method.make, ds.queries, order, k,
                                 nprobe, linger_micros, reps, expected);
    std::printf("%-8s %-10s %10.0f %7.2fx %6.1f %9s %9s %9s  %4.2f%s\n",
                method.name.c_str(), "burst", burst.qps,
                burst.qps / base_qps, burst.occupancy, "-", "-", "-",
                burst.utilization, burst.parity ? "" : "  MISMATCH!");

    for (int clients : {4, 16}) {
      ServeResult closed =
          RunClosedLoop(ivf, method.make, ds.queries, order, k, nprobe,
                        linger_micros, clients, expected);
      std::printf(
          "%-8s closed-%-3d %10.0f %7.2fx %6.1f %9.2f %9.2f %9.2f  %4.2f%s\n",
          method.name.c_str(), clients, closed.qps, closed.qps / base_qps,
          closed.occupancy, closed.p50_ms, closed.p99_ms, closed.p999_ms,
          closed.utilization, closed.parity ? "" : "  MISMATCH!");
    }
    std::printf("%-8s %-10s full=%lld linger=%lld drain=%lld (burst)\n",
                method.name.c_str(), "flushes",
                static_cast<long long>(burst.full),
                static_cast<long long>(burst.linger),
                static_cast<long long>(burst.drain));
  }
}

}  // namespace
}  // namespace resinfer::benchutil

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  using namespace resinfer::benchutil;
  PrintBanner("serving",
              "coalescing admission (IvfServer) vs pre-sorted grouped batch");
  Run(GetScale());
  std::printf(
      "\nExpected shape: the burst mode should land within ~10%% of the "
      "pre-sorted baseline — under backlog the admission queue rebuilds "
      "near-full groups (occupancy >> 2) from the shuffled feed, and the "
      "only extra costs are the per-request centroid ranking (which the "
      "baseline also pays, inside the sort) and promise/future handoff. "
      "Closed-loop occupancy is bounded by the client count: with C "
      "clients at most C requests are ever pending, so occupancy <= C and "
      "p50 includes up to one linger budget of deliberate waiting. All "
      "modes are asserted bit-identical to the baseline, so every number "
      "is pure scheduling.\n");
  return 0;
}

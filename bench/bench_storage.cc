// Storage backends: heap deserialization vs mmap-resident serving
// (tracked in BENCH_storage.json).
//
// The v6 layout places the IVF code records (and the v3 matrix layout the
// base floats) at 64-byte-aligned file offsets, so the mmap backend serves
// both in place from a read-only mapping — no deserialization copy, and
// pages fault in only as scans and exact rescores touch them. This bench
// measures what that buys:
//
//   * memory     — LoadIvf + LoadMatrixMapped with the memory backend:
//                  every byte copied onto the heap (the pre-v6 behavior),
//   * mmap-cold  — the mmap backend right after the page cache for the
//                  files is dropped (first query wave pays the faults),
//   * mmap-warm  — the mmap backend with the cache hot (steady state).
//
// Each phase runs in its own re-exec'd child process and reads VmHWM from
// /proc/self/status, so the peak is that phase's alone — ru_maxrss would
// inherit the builder's resident set across fork/exec. Every phase
// reports a result-set checksum, and the parent refuses to print a table
// whose phases disagree: RSS and QPS deltas are storage effects, never
// accuracy.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "persist/persist.h"
#include "storage/storage.h"
#include "util/status.h"

using namespace resinfer;

namespace {

struct PhaseResult {
  std::string phase;
  double load_ms = 0.0;
  double qps = 0.0;
  double load_rss_mb = 0.0;  // resident set right after the two loads
  double peak_rss_mb = 0.0;  // VmHWM at the end of the query sweep
  uint64_t checksum = 0;
};

constexpr int kTopK = 10;
constexpr int kNprobe = 16;

std::string IvfPath(const std::string& dir) { return dir + "/ivf_v6.bin"; }
std::string BasePath(const std::string& dir) { return dir + "/base.bin"; }
std::string QueriesPath(const std::string& dir) {
  return dir + "/queries.bin";
}
std::string ArtifactsPath(const std::string& dir) {
  return dir + "/artifacts.bin";
}
std::string ResultPath(const std::string& dir, const std::string& phase) {
  return dir + "/result_" + phase + ".txt";
}

void Check(const util::Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "[storage] %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

// Current resident set in MiB (VmRSS), for the per-stage breakdown the
// child logs to stderr alongside the headline ru_maxrss.
double CurrentRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

// Resident bytes of the mapping containing `addr`, from /proc/self/smaps —
// pinpoints how much of a mapped file the sweep actually paged in.
double MappingResidentMb(const void* addr) {
  std::ifstream smaps("/proc/self/smaps");
  std::string line;
  const uintptr_t target = reinterpret_cast<uintptr_t>(addr);
  bool inside = false;
  while (std::getline(smaps, line)) {
    uintptr_t lo = 0, hi = 0;
    if (std::sscanf(line.c_str(), "%lx-%lx", &lo, &hi) == 2) {
      inside = lo <= target && target < hi;
    } else if (inside && line.rfind("Rss:", 0) == 0) {
      return std::strtod(line.c_str() + 4, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

// Mixes every (rank, id, distance-bits) triple into one order-sensitive
// value — equal across phases iff the answers are bit-identical.
uint64_t MixAnswer(uint64_t h, std::size_t rank, int64_t id, float distance) {
  uint32_t bits = 0;
  std::memcpy(&bits, &distance, sizeof(bits));
  h ^= (static_cast<uint64_t>(rank + 1) * 0x9E3779B97F4A7C15ull) +
       static_cast<uint64_t>(id + 1) * 0xC2B2AE3D27D4EB4Full + bits;
  return h * 0xD6E8FEB86659FD93ull;
}

// --- child: one measured phase -------------------------------------------

int RunPhase(const std::string& dir, const std::string& phase) {
  const storage::StorageBackend backend =
      phase == "memory" ? storage::StorageBackend::kMemory
                        : storage::StorageBackend::kMmap;

  linalg::Matrix queries;
  Check(persist::LoadMatrix(QueriesPath(dir), &queries), "load queries");
  core::DdcOpqArtifacts artifacts;
  Check(persist::LoadDdcOpqArtifacts(ArtifactsPath(dir), &artifacts),
        "load artifacts");

  // The measured loads: base floats and the IVF (with its v6 code
  // section) through the phase's backend.
  WallTimer load_timer;
  persist::MappedMatrix base;
  Check(persist::LoadMatrixMapped(BasePath(dir), &base, backend),
        "load base");
  index::IvfIndex ivf;
  persist::IvfLoadOptions ivf_options;
  ivf_options.backend = backend;
  Check(persist::LoadIvf(IvfPath(dir), &ivf, ivf_options), "load ivf");
  const double load_ms = load_timer.ElapsedMillis();
  const double load_rss_mb = CurrentRssMb();

  core::DdcOpqComputer computer(&base.matrix, &artifacts);
  if (!ivf.has_codes() || ivf.codes().tag() != computer.code_tag()) {
    std::fprintf(stderr, "[storage] %s: code tag mismatch — scans would "
                         "fall back to the gather path\n", phase.c_str());
    return 1;
  }

  uint64_t checksum = 0;
  WallTimer query_timer;
  for (int64_t q = 0; q < queries.rows(); ++q) {
    auto result = ivf.Search(computer, queries.Row(q), kTopK, kNprobe);
    for (std::size_t i = 0; i < result.size(); ++i) {
      checksum = MixAnswer(checksum, i, result[i].id, result[i].distance);
    }
  }
  const double seconds = query_timer.ElapsedSeconds();
  const double qps =
      seconds > 0.0 ? static_cast<double>(queries.rows()) / seconds : 0.0;
  const double peak_rss_mb = PeakRssMb();
  if (!base.pin.empty()) {
    std::fprintf(stderr,
                 "[storage] %s: base mapping resident %.1f MiB, "
                 "rss now %.1f MiB\n",
                 phase.c_str(), MappingResidentMb(base.pin.data()),
                 CurrentRssMb());
  }
  const index::ComputerStats& st = computer.stats();
  std::fprintf(stderr,
               "[storage] %s: candidates %lld pruned %lld exact %lld\n",
               phase.c_str(), static_cast<long long>(st.candidates),
               static_cast<long long>(st.pruned),
               static_cast<long long>(st.exact_computations));

  std::ofstream out(ResultPath(dir, phase));
  out << load_ms << " " << qps << " " << load_rss_mb << " " << peak_rss_mb
      << " " << checksum << "\n";
  return out ? 0 : 1;
}

// --- parent: build, save, orchestrate ------------------------------------

// Flushes the file to disk and asks the kernel to drop its page cache, so
// the next mapping faults from storage (the cold phase).
void DropPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

PhaseResult LaunchPhase(const std::string& self, const std::string& dir,
                        const std::string& phase) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(self.c_str(), self.c_str(), "--phase", phase.c_str(), "--dir",
            dir.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "[storage] phase %s failed (status %d)\n",
                 phase.c_str(), status);
    std::exit(1);
  }
  PhaseResult result;
  result.phase = phase;
  std::ifstream in(ResultPath(dir, phase));
  in >> result.load_ms >> result.qps >> result.load_rss_mb >>
      result.peak_rss_mb >> result.checksum;
  if (!in) {
    std::fprintf(stderr, "[storage] phase %s wrote no result\n",
                 phase.c_str());
    std::exit(1);
  }
  return result;
}

int RunParent(const std::string& self) {
  const benchutil::Scale scale = benchutil::GetScale();
  data::SyntheticSpec spec = data::SiftProxySpec();
  // The base matrix must dominate the process baseline for the RSS deltas
  // to mean anything, so this bench sets its own floor instead of the
  // (tiny) default small-scale size.
  spec.num_base = scale.paper ? 400000 : 150000;
  spec.num_queries = scale.paper ? 500 : 250;
  spec.num_train_queries = scale.paper ? 4000 : 800;
  data::Dataset ds = data::GenerateSynthetic(spec);
  std::fprintf(stderr, "[storage] dataset %s n=%ld d=%ld\n", ds.name.c_str(),
               static_cast<long>(ds.size()), static_cast<long>(ds.dim()));

  core::DdcOpqOptions options;
  options.opq.pq.num_subspaces = 32;
  options.opq.pq.nbits = 4;  // packed fast-scan records
  options.opq.num_iterations = scale.paper ? 5 : 1;
  options.training.max_queries = scale.CorrectorTrainQueries();
  core::DdcOpqArtifacts artifacts =
      core::TrainDdcOpq(ds.base, ds.train_queries, options);

  index::IvfOptions ivf_options;
  ivf_options.num_clusters = static_cast<int>(
      std::lround(std::sqrt(static_cast<double>(ds.size()))));
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);
  {
    core::DdcOpqComputer computer(&ds.base, &artifacts);
    ivf.AttachCodesFrom(computer);
  }

  // Serving workload with cluster-skewed access: queries are base rows
  // drawn round-robin from a handful of hot regions (the largest buckets),
  // the regime where a beyond-RAM tier earns its keep — the mapped base
  // pages in only the hot regions' rows, while the heap backend pays for
  // every row regardless. A uniform sweep would eventually touch ~every
  // page on either backend and measure nothing but page granularity.
  constexpr int kHotRegions = 4;
  std::vector<int> hot(kHotRegions, 0);
  for (int b = 0; b < ivf.num_clusters(); ++b) {
    for (int h = 0; h < kHotRegions; ++h) {
      if (ivf.BucketSize(b) > ivf.BucketSize(hot[h])) {
        for (int j = kHotRegions - 1; j > h; --j) hot[j] = hot[j - 1];
        hot[h] = b;
        break;
      }
    }
  }
  // A bounded set of distinct queries per region (the workload keeps
  // re-asking about its hot working set, as real serving traffic does) —
  // the distinct-row footprint of the exact-rescore epilogue is what the
  // cold tier's RSS is proportional to.
  constexpr int64_t kDistinctPerRegion = 8;
  linalg::Matrix queries(spec.num_queries, ds.dim());
  for (int64_t q = 0; q < spec.num_queries; ++q) {
    const int region = hot[static_cast<int>(q) % kHotRegions];
    const int64_t* ids = ivf.BucketIds(region);
    const int64_t pick =
        (q / kHotRegions) %
        std::min(kDistinctPerRegion, ivf.BucketSize(region));
    std::memcpy(queries.Row(q), ds.base.Row(ids[pick]),
                static_cast<std::size_t>(ds.dim()) * sizeof(float));
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("resinfer_bench_storage_" +
        std::to_string(static_cast<long long>(::getpid()))))
          .string();
  std::filesystem::create_directories(dir);
  Check(persist::SaveIvf(IvfPath(dir), ivf), "save ivf");
  Check(persist::SaveMatrix(BasePath(dir), ds.base), "save base");
  Check(persist::SaveMatrix(QueriesPath(dir), queries), "save queries");
  Check(persist::SaveDdcOpqArtifacts(ArtifactsPath(dir), artifacts),
        "save artifacts");
  std::fprintf(stderr, "[storage] ivf file %.1f MiB, base file %.1f MiB\n",
               static_cast<double>(
                   std::filesystem::file_size(IvfPath(dir))) / (1 << 20),
               static_cast<double>(
                   std::filesystem::file_size(BasePath(dir))) / (1 << 20));

  // Cold first (cache just dropped), then warm (the cold run re-heated
  // it), then the heap baseline (backend-independent of cache state).
  DropPageCache(IvfPath(dir));
  DropPageCache(BasePath(dir));
  std::vector<PhaseResult> results;
  results.push_back(LaunchPhase(self, dir, "mmap_cold"));
  results.push_back(LaunchPhase(self, dir, "mmap_warm"));
  results.push_back(LaunchPhase(self, dir, "memory"));

  for (const PhaseResult& r : results) {
    if (r.checksum != results.front().checksum) {
      std::fprintf(stderr, "[storage] checksum mismatch: %s\n",
                   r.phase.c_str());
      std::filesystem::remove_all(dir);
      return 1;
    }
  }

  std::printf("phase,load_ms,qps,load_rss_mb,peak_rss_mb,checksum\n");
  for (const PhaseResult& r : results) {
    std::printf("%s,%.2f,%.0f,%.1f,%.1f,%016llx\n", r.phase.c_str(),
                r.load_ms, r.qps, r.load_rss_mb, r.peak_rss_mb,
                static_cast<unsigned long long>(r.checksum));
  }
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!benchutil::ApplyFlags(argc, argv)) return 2;
  std::string phase, dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--phase") == 0) phase = argv[i + 1];
    if (std::strcmp(argv[i], "--dir") == 0) dir = argv[i + 1];
  }
  if (!phase.empty()) return RunPhase(dir, phase);
  return RunParent("/proc/self/exe");
}

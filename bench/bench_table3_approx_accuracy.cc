// Table III: approximation accuracy (recall@100) of the raw 32-dimension
// estimators, used as the ONLY ranking signal over a full linear scan (no
// correction, no exact fallback):
//   * PCA  — plain projected distance ||x_32 - q_32||^2 in the PCA basis,
//   * Rand — ADSampling's scaled random-projection estimate,
//   * DDCres — the decomposed estimate C1 - C2 (norms + 32-dim inner
//     product), which injects full-norm information the plain projections
//     lack.
// Expectation: DDCres > PCA >> Rand on most datasets, with the largest gaps
// on flat-spectrum (text) data.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"

using namespace resinfer;

namespace {

constexpr int kK = 100;
constexpr int64_t kProjDim = 32;

// Recall@100 of ranking by `score_fn` against exact ground truth.
template <typename ScoreFn>
double RankingRecall(const data::Dataset& ds,
                     const std::vector<std::vector<int64_t>>& truth,
                     ScoreFn&& score_fn) {
  double total = 0.0;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    std::vector<std::pair<float, int64_t>> scored(ds.size());
    for (int64_t i = 0; i < ds.size(); ++i) {
      scored[i] = {score_fn(q, i), i};
    }
    std::partial_sort(scored.begin(), scored.begin() + kK, scored.end());
    std::vector<int64_t> ids(kK);
    for (int i = 0; i < kK; ++i) ids[i] = scored[i].second;
    total += data::RecallAtK(ids, truth[q], kK);
  }
  return total / ds.queries.rows();
}

void RunDataset(data::SyntheticSpec spec, const benchutil::Scale& scale) {
  data::Dataset ds = benchutil::MakeProxy(spec, scale);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, kK);

  // Shared artifacts.
  core::FactoryOptions options = benchutil::ScaledFactoryOptions(scale);
  core::MethodFactory factory(&ds, options);
  auto ddc_res_ptr = factory.Make(core::kMethodDdcRes);
  auto* ddc_res = static_cast<core::DdcResComputer*>(ddc_res_ptr.get());
  auto ads_ptr = factory.Make(core::kMethodAdSampling);
  auto* ads = static_cast<core::AdSamplingComputer*>(ads_ptr.get());
  auto ddc_pca_ptr = factory.Make(core::kMethodDdcPca);
  auto* ddc_pca = static_cast<core::DdcPcaComputer*>(ddc_pca_ptr.get());

  // PCA plain projected distance.
  double pca_recall = RankingRecall(ds, truth, [&](int64_t q, int64_t i) {
    if (i == 0) ddc_pca->BeginQuery(ds.queries.Row(q));
    return ddc_pca->ApproximateDistance(i, kProjDim);
  });
  // Random projection (ADSampling estimator).
  double rand_recall = RankingRecall(ds, truth, [&](int64_t q, int64_t i) {
    if (i == 0) ads->BeginQuery(ds.queries.Row(q));
    return ads->ApproximateDistance(i, kProjDim);
  });
  // DDCres decomposed estimate.
  double res_recall = RankingRecall(ds, truth, [&](int64_t q, int64_t i) {
    if (i == 0) ddc_res->BeginQuery(ds.queries.Row(q));
    return ddc_res->ApproximateDistance(i, kProjDim);
  });

  std::printf("%-16s %8.1f %8.1f %8.1f\n", ds.name.c_str(),
              100.0 * pca_recall, 100.0 * rand_recall, 100.0 * res_recall);
}

}  // namespace

int main(int argc, char** argv) {
  if (!resinfer::benchutil::ApplyFlags(argc, argv)) return 2;
  benchutil::PrintBanner("bench_table3_approx_accuracy",
                         "Table III (approximation accuracy, recall@100)");
  benchutil::Scale scale = benchutil::GetScale();
  std::printf("%-16s %8s %8s %8s\n", "dataset", "PCA", "Rand", "DDCres");
  RunDataset(data::DeepProxySpec(), scale);
  RunDataset(data::GistProxySpec(), scale);
  RunDataset(data::TinyProxySpec(), scale);
  RunDataset(data::GloveProxySpec(), scale);
  RunDataset(data::Word2vecProxySpec(), scale);
  std::printf(
      "\n# expectation (paper Table III): DDCres wins every row; Rand is "
      "far behind; gaps largest on GLOVE/WORD2VEC\n");
  return 0;
}

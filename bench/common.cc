#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace resinfer::benchutil {

namespace {
// Set once a --simd= flag is applied; PrintBanner then leaves the level
// alone so an explicit flag beats the RESINFER_BENCH_SIMD environment.
bool g_simd_flag_applied = false;
}  // namespace

bool ApplyFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--simd=", 7) != 0) continue;
    simd::SimdLevel requested;
    if (!simd::ParseSimdLevelName(arg + 7, &requested)) {
      std::fprintf(stderr,
                   "unrecognized %s (expected --simd=scalar|avx2|avx512)\n",
                   arg);
      return false;
    }
    simd::SetActiveLevel(requested);  // clamps to the host's best
    if (simd::ActiveLevel() != requested) {
      std::fprintf(stderr, "note: %s not supported on this host; running %s\n",
                   arg + 7, simd::SimdLevelName(simd::ActiveLevel()));
    }
    g_simd_flag_applied = true;
  }
  return true;
}

Scale GetScale() {
  Scale scale;
  const char* env = std::getenv("RESINFER_BENCH_SCALE");
  scale.paper = env != nullptr && std::strcmp(env, "paper") == 0;
  return scale;
}

data::Dataset MakeProxy(data::SyntheticSpec spec, const Scale& scale) {
  spec.num_base = scale.BaseN(spec.dim);
  spec.num_queries = scale.Queries();
  spec.num_train_queries = scale.TrainQueries();
  return data::GenerateSynthetic(spec);
}

core::FactoryOptions ScaledFactoryOptions(const Scale& scale) {
  core::FactoryOptions options;
  options.ddc_pca.training.max_queries = scale.CorrectorTrainQueries();
  options.ddc_pca.training.k = 100;
  options.ddc_pca.training.negatives_per_query = 100;
  options.ddc_opq.training = options.ddc_pca.training;
  if (!scale.paper) {
    // Faster OPQ at small scale; quality difference is marginal at these
    // sizes and it keeps every bench binary within its time budget.
    options.ddc_opq.opq.num_iterations = 3;
    options.ddc_opq.opq.pq.kmeans.max_iterations = 12;
  }
  return options;
}

namespace {

std::vector<SweepPoint> RunSweep(
    index::DistanceComputer& computer, const data::Dataset& ds,
    const std::vector<std::vector<int64_t>>& ground_truth, int k,
    const std::vector<int>& knobs,
    const std::function<std::vector<index::Neighbor>(int knob,
                                                     const float* query)>&
        search) {
  std::vector<SweepPoint> points;
  // Warm-up: touch the computer's artifacts and the index pages once so
  // the first sweep point is not dominated by cold caches / page faults.
  if (!knobs.empty()) {
    const int64_t warm = std::min<int64_t>(8, ds.queries.rows());
    for (int64_t q = 0; q < warm; ++q) {
      search(knobs.front(), ds.queries.Row(q));
    }
  }
  for (int knob : knobs) {
    std::vector<std::vector<int64_t>> results;
    results.reserve(ds.queries.rows());
    WallTimer timer;
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto found = search(knob, ds.queries.Row(q));
      std::vector<int64_t> ids;
      ids.reserve(found.size());
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    double elapsed = timer.ElapsedSeconds();
    SweepPoint point;
    point.knob = knob;
    point.qps = static_cast<double>(ds.queries.rows()) / elapsed;
    point.recall = data::MeanRecallAtK(results, ground_truth, k);
    points.push_back(point);
  }
  return points;
}

}  // namespace

std::vector<SweepPoint> HnswSweep(
    const index::HnswIndex& graph, index::DistanceComputer& computer,
    const data::Dataset& ds,
    const std::vector<std::vector<int64_t>>& ground_truth, int k,
    const std::vector<int>& efs) {
  index::HnswScratch scratch;
  return RunSweep(computer, ds, ground_truth, k, efs,
                  [&](int ef, const float* query) {
                    return graph.Search(computer, query, k, ef, &scratch);
                  });
}

std::vector<SweepPoint> IvfSweep(
    const index::IvfIndex& ivf, index::DistanceComputer& computer,
    const data::Dataset& ds,
    const std::vector<std::vector<int64_t>>& ground_truth, int k,
    const std::vector<int>& nprobes) {
  return RunSweep(computer, ds, ground_truth, k, nprobes,
                  [&](int nprobe, const float* query) {
                    return ivf.Search(computer, query, k, nprobe);
                  });
}

std::string HumanBytes(int64_t bytes) {
  char buf[64];
  if (bytes >= (1LL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB",
                  static_cast<double>(bytes) / (1LL << 30));
  } else if (bytes >= (1LL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB",
                  static_cast<double>(bytes) / (1LL << 20));
  } else if (bytes >= (1LL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB",
                  static_cast<double>(bytes) / (1LL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%ldB", static_cast<long>(bytes));
  }
  return buf;
}

void PrintBanner(const char* bench_name, const char* paper_ref) {
  // The paper disables SIMD (§VII-A); RESINFER_BENCH_SIMD=scalar pins the
  // reference kernels to reproduce that regime, the default keeps the best
  // vectorized tier. An explicit --simd= flag wins over the environment.
  const char* simd_env = std::getenv("RESINFER_BENCH_SIMD");
  if (!g_simd_flag_applied && simd_env != nullptr &&
      std::strcmp(simd_env, "scalar") == 0) {
    simd::SetActiveLevel(simd::SimdLevel::kScalar);
  }
  Scale scale = GetScale();
  std::printf("# %s — reproduces %s\n", bench_name, paper_ref);
  std::printf("# scale=%s simd=%s threads=%d\n", scale.Name(),
              simd::SimdLevelName(simd::ActiveLevel()), DefaultThreadCount());
}

}  // namespace resinfer::benchutil

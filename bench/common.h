// Shared plumbing for the paper-figure bench harnesses.
//
// Every bench binary is self-contained: it generates its proxy dataset(s),
// builds indexes, trains methods, runs the sweep its figure needs, and
// prints CSV-style rows to stdout. RESINFER_BENCH_SCALE=small|paper picks
// laptop-friendly or larger sizes (small is the default so the whole bench
// directory runs unattended in minutes).
#ifndef RESINFER_BENCH_COMMON_H_
#define RESINFER_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "resinfer/resinfer.h"

namespace resinfer::benchutil {

struct Scale {
  bool paper = false;

  // Base size shrinks for very high-dimensional proxies so each binary
  // stays within a small time budget at `small` scale.
  int64_t BaseN(int64_t dim) const {
    if (paper) return dim >= 900 ? 100000 : 200000;
    return dim >= 900 ? 6000 : (dim >= 380 ? 10000 : 15000);
  }
  int64_t Queries() const { return paper ? 1000 : 100; }
  int64_t TrainQueries() const { return paper ? 10000 : 800; }
  int HnswEfConstruction() const { return paper ? 500 : 120; }
  int HnswM() const { return 16; }
  int64_t CorrectorTrainQueries() const { return paper ? 2000 : 300; }
  const char* Name() const { return paper ? "paper" : "small"; }
};

Scale GetScale();

// Parses the shared bench flags and applies them. Currently:
//   --simd=scalar|avx2|avx512   pin the SIMD dispatch level (clamped to the
//                               host's best; beats RESINFER_BENCH_SIMD)
// Unrecognized arguments are left alone for the binary's own parsing.
// Returns false — after an stderr usage note — on a malformed --simd value,
// so benches can exit non-zero instead of silently measuring the wrong tier.
bool ApplyFlags(int argc, char** argv);

// Generates a proxy dataset resized to the active scale.
data::Dataset MakeProxy(data::SyntheticSpec spec, const Scale& scale);

// Factory options tuned per scale (training budgets etc.).
core::FactoryOptions ScaledFactoryOptions(const Scale& scale);

// --- sweep helpers --------------------------------------------------------

struct SweepPoint {
  int knob = 0;         // ef or nprobe
  double qps = 0.0;
  double recall = 0.0;  // recall@k
};

// Runs an HNSW ef-sweep for one computer. Ground truth must hold >= k ids
// per query.
std::vector<SweepPoint> HnswSweep(
    const index::HnswIndex& graph, index::DistanceComputer& computer,
    const data::Dataset& ds,
    const std::vector<std::vector<int64_t>>& ground_truth, int k,
    const std::vector<int>& efs);

// Runs an IVF nprobe-sweep for one computer.
std::vector<SweepPoint> IvfSweep(
    const index::IvfIndex& ivf, index::DistanceComputer& computer,
    const data::Dataset& ds,
    const std::vector<std::vector<int64_t>>& ground_truth, int k,
    const std::vector<int>& nprobes);

// Formats bytes with a human-readable suffix.
std::string HumanBytes(int64_t bytes);

// Prints the standard bench banner (scale, SIMD level, thread count).
void PrintBanner(const char* bench_name, const char* paper_ref);

}  // namespace resinfer::benchutil

#endif  // RESINFER_BENCH_COMMON_H_

# Empty dependencies file for bench_ablation_corrector_features.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ddc_res.dir/bench/bench_ablation_ddc_res.cc.o"
  "CMakeFiles/bench_ablation_ddc_res.dir/bench/bench_ablation_ddc_res.cc.o.d"
  "bench_ablation_ddc_res"
  "bench_ablation_ddc_res.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ddc_res.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_ddc_res.
# This may be replaced when dependencies are built.

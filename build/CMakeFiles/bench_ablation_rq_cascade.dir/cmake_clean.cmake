file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rq_cascade.dir/bench/bench_ablation_rq_cascade.cc.o"
  "CMakeFiles/bench_ablation_rq_cascade.dir/bench/bench_ablation_rq_cascade.cc.o.d"
  "bench_ablation_rq_cascade"
  "bench_ablation_rq_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rq_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

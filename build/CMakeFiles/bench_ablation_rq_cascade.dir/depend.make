# Empty dependencies file for bench_ablation_rq_cascade.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_scaling.dir/bench/bench_batch_scaling.cc.o"
  "CMakeFiles/bench_batch_scaling.dir/bench/bench_batch_scaling.cc.o.d"
  "bench_batch_scaling"
  "bench_batch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_batch_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_exp8_ant_proxy.dir/bench/bench_exp8_ant_proxy.cc.o"
  "CMakeFiles/bench_exp8_ant_proxy.dir/bench/bench_exp8_ant_proxy.cc.o.d"
  "bench_exp8_ant_proxy"
  "bench_exp8_ant_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp8_ant_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

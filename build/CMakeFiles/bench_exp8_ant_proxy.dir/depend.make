# Empty dependencies file for bench_exp8_ant_proxy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scan_pruned.dir/bench/bench_fig10_scan_pruned.cc.o"
  "CMakeFiles/bench_fig10_scan_pruned.dir/bench/bench_fig10_scan_pruned.cc.o.d"
  "bench_fig10_scan_pruned"
  "bench_fig10_scan_pruned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scan_pruned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

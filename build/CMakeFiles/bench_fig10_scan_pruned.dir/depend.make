# Empty dependencies file for bench_fig10_scan_pruned.
# This may be replaced when dependencies are built.

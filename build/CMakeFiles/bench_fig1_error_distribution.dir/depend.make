# Empty dependencies file for bench_fig1_error_distribution.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_error_bound.dir/bench/bench_fig2_error_bound.cc.o"
  "CMakeFiles/bench_fig2_error_bound.dir/bench/bench_fig2_error_bound.cc.o.d"
  "bench_fig2_error_bound"
  "bench_fig2_error_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_error_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2_error_bound.
# This may be replaced when dependencies are built.

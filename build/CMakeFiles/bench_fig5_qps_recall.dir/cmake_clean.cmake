file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_qps_recall.dir/bench/bench_fig5_qps_recall.cc.o"
  "CMakeFiles/bench_fig5_qps_recall.dir/bench/bench_fig5_qps_recall.cc.o.d"
  "bench_fig5_qps_recall"
  "bench_fig5_qps_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_qps_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

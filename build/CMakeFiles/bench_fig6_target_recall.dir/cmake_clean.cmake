file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_target_recall.dir/bench/bench_fig6_target_recall.cc.o"
  "CMakeFiles/bench_fig6_target_recall.dir/bench/bench_fig6_target_recall.cc.o.d"
  "bench_fig6_target_recall"
  "bench_fig6_target_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_target_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig6_target_recall.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_preprocessing.dir/bench/bench_fig7_preprocessing.cc.o"
  "CMakeFiles/bench_fig7_preprocessing.dir/bench/bench_fig7_preprocessing.cc.o.d"
  "bench_fig7_preprocessing"
  "bench_fig7_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig7_preprocessing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_finger.dir/bench/bench_fig8_finger.cc.o"
  "CMakeFiles/bench_fig8_finger.dir/bench/bench_fig8_finger.cc.o.d"
  "bench_fig8_finger"
  "bench_fig8_finger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_finger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_finger.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_generality_quantizers.dir/bench/bench_generality_quantizers.cc.o"
  "CMakeFiles/bench_generality_quantizers.dir/bench/bench_generality_quantizers.cc.o.d"
  "bench_generality_quantizers"
  "bench_generality_quantizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generality_quantizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_generality_quantizers.
# This may be replaced when dependencies are built.

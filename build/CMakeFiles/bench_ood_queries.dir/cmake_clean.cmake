file(REMOVE_RECURSE
  "CMakeFiles/bench_ood_queries.dir/bench/bench_ood_queries.cc.o"
  "CMakeFiles/bench_ood_queries.dir/bench/bench_ood_queries.cc.o.d"
  "bench_ood_queries"
  "bench_ood_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ood_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

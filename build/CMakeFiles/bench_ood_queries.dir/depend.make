# Empty dependencies file for bench_ood_queries.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_approx_accuracy.dir/bench/bench_table3_approx_accuracy.cc.o"
  "CMakeFiles/bench_table3_approx_accuracy.dir/bench/bench_table3_approx_accuracy.cc.o.d"
  "bench_table3_approx_accuracy"
  "bench_table3_approx_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_approx_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_image_search.dir/examples/image_search.cpp.o"
  "CMakeFiles/example_image_search.dir/examples/image_search.cpp.o.d"
  "example_image_search"
  "example_image_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

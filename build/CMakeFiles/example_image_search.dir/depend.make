# Empty dependencies file for example_image_search.
# This may be replaced when dependencies are built.

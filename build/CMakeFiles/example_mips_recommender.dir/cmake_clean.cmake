file(REMOVE_RECURSE
  "CMakeFiles/example_mips_recommender.dir/examples/mips_recommender.cpp.o"
  "CMakeFiles/example_mips_recommender.dir/examples/mips_recommender.cpp.o.d"
  "example_mips_recommender"
  "example_mips_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mips_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

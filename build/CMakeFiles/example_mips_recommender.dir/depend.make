# Empty dependencies file for example_mips_recommender.
# This may be replaced when dependencies are built.

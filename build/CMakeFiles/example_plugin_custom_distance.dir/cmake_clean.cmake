file(REMOVE_RECURSE
  "CMakeFiles/example_plugin_custom_distance.dir/examples/plugin_custom_distance.cpp.o"
  "CMakeFiles/example_plugin_custom_distance.dir/examples/plugin_custom_distance.cpp.o.d"
  "example_plugin_custom_distance"
  "example_plugin_custom_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_plugin_custom_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_plugin_custom_distance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_text_search.dir/examples/text_search.cpp.o"
  "CMakeFiles/example_text_search.dir/examples/text_search.cpp.o.d"
  "example_text_search"
  "example_text_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_text_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_text_search.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ad_sampling.cc" "CMakeFiles/resinfer.dir/src/core/ad_sampling.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/ad_sampling.cc.o.d"
  "/root/repo/src/core/ddc_any.cc" "CMakeFiles/resinfer.dir/src/core/ddc_any.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/ddc_any.cc.o.d"
  "/root/repo/src/core/ddc_opq.cc" "CMakeFiles/resinfer.dir/src/core/ddc_opq.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/ddc_opq.cc.o.d"
  "/root/repo/src/core/ddc_pca.cc" "CMakeFiles/resinfer.dir/src/core/ddc_pca.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/ddc_pca.cc.o.d"
  "/root/repo/src/core/ddc_res.cc" "CMakeFiles/resinfer.dir/src/core/ddc_res.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/ddc_res.cc.o.d"
  "/root/repo/src/core/ddc_rq_cascade.cc" "CMakeFiles/resinfer.dir/src/core/ddc_rq_cascade.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/ddc_rq_cascade.cc.o.d"
  "/root/repo/src/core/error_model.cc" "CMakeFiles/resinfer.dir/src/core/error_model.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/error_model.cc.o.d"
  "/root/repo/src/core/finger.cc" "CMakeFiles/resinfer.dir/src/core/finger.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/finger.cc.o.d"
  "/root/repo/src/core/linear_corrector.cc" "CMakeFiles/resinfer.dir/src/core/linear_corrector.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/linear_corrector.cc.o.d"
  "/root/repo/src/core/method_advisor.cc" "CMakeFiles/resinfer.dir/src/core/method_advisor.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/method_advisor.cc.o.d"
  "/root/repo/src/core/method_factory.cc" "CMakeFiles/resinfer.dir/src/core/method_factory.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/method_factory.cc.o.d"
  "/root/repo/src/core/training_data.cc" "CMakeFiles/resinfer.dir/src/core/training_data.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/core/training_data.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/resinfer.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/ground_truth.cc" "CMakeFiles/resinfer.dir/src/data/ground_truth.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/data/ground_truth.cc.o.d"
  "/root/repo/src/data/metric.cc" "CMakeFiles/resinfer.dir/src/data/metric.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/data/metric.cc.o.d"
  "/root/repo/src/data/metrics.cc" "CMakeFiles/resinfer.dir/src/data/metrics.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/data/metrics.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "CMakeFiles/resinfer.dir/src/data/synthetic.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/data/synthetic.cc.o.d"
  "/root/repo/src/data/vec_io.cc" "CMakeFiles/resinfer.dir/src/data/vec_io.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/data/vec_io.cc.o.d"
  "/root/repo/src/index/batch.cc" "CMakeFiles/resinfer.dir/src/index/batch.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/index/batch.cc.o.d"
  "/root/repo/src/index/distance_computer.cc" "CMakeFiles/resinfer.dir/src/index/distance_computer.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/index/distance_computer.cc.o.d"
  "/root/repo/src/index/flat_index.cc" "CMakeFiles/resinfer.dir/src/index/flat_index.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/index/flat_index.cc.o.d"
  "/root/repo/src/index/hnsw_index.cc" "CMakeFiles/resinfer.dir/src/index/hnsw_index.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/index/hnsw_index.cc.o.d"
  "/root/repo/src/index/ivf_index.cc" "CMakeFiles/resinfer.dir/src/index/ivf_index.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/index/ivf_index.cc.o.d"
  "/root/repo/src/linalg/covariance.cc" "CMakeFiles/resinfer.dir/src/linalg/covariance.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/covariance.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "CMakeFiles/resinfer.dir/src/linalg/eigen.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "CMakeFiles/resinfer.dir/src/linalg/matrix.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/orthogonal.cc" "CMakeFiles/resinfer.dir/src/linalg/orthogonal.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/orthogonal.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "CMakeFiles/resinfer.dir/src/linalg/pca.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/pca.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "CMakeFiles/resinfer.dir/src/linalg/svd.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/svd.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "CMakeFiles/resinfer.dir/src/linalg/vector_ops.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/linalg/vector_ops.cc.o.d"
  "/root/repo/src/persist/persist.cc" "CMakeFiles/resinfer.dir/src/persist/persist.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/persist/persist.cc.o.d"
  "/root/repo/src/quant/kmeans.cc" "CMakeFiles/resinfer.dir/src/quant/kmeans.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/quant/kmeans.cc.o.d"
  "/root/repo/src/quant/opq.cc" "CMakeFiles/resinfer.dir/src/quant/opq.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/quant/opq.cc.o.d"
  "/root/repo/src/quant/pq.cc" "CMakeFiles/resinfer.dir/src/quant/pq.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/quant/pq.cc.o.d"
  "/root/repo/src/quant/rq.cc" "CMakeFiles/resinfer.dir/src/quant/rq.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/quant/rq.cc.o.d"
  "/root/repo/src/quant/sq.cc" "CMakeFiles/resinfer.dir/src/quant/sq.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/quant/sq.cc.o.d"
  "/root/repo/src/simd/dispatch.cc" "CMakeFiles/resinfer.dir/src/simd/dispatch.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/simd/dispatch.cc.o.d"
  "/root/repo/src/simd/kernels_avx2.cc" "CMakeFiles/resinfer.dir/src/simd/kernels_avx2.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/simd/kernels_avx2.cc.o.d"
  "/root/repo/src/simd/kernels_scalar.cc" "CMakeFiles/resinfer.dir/src/simd/kernels_scalar.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/simd/kernels_scalar.cc.o.d"
  "/root/repo/src/util/aligned_buffer.cc" "CMakeFiles/resinfer.dir/src/util/aligned_buffer.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/util/aligned_buffer.cc.o.d"
  "/root/repo/src/util/histogram.cc" "CMakeFiles/resinfer.dir/src/util/histogram.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/util/histogram.cc.o.d"
  "/root/repo/src/util/parallel.cc" "CMakeFiles/resinfer.dir/src/util/parallel.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/util/parallel.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/resinfer.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/resinfer.dir/src/util/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libresinfer.a"
)

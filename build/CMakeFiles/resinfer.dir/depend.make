# Empty dependencies file for resinfer.
# This may be replaced when dependencies are built.

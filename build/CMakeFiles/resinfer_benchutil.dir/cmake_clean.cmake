file(REMOVE_RECURSE
  "CMakeFiles/resinfer_benchutil.dir/bench/common.cc.o"
  "CMakeFiles/resinfer_benchutil.dir/bench/common.cc.o.d"
  "libresinfer_benchutil.a"
  "libresinfer_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resinfer_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libresinfer_benchutil.a"
)

# Empty dependencies file for resinfer_benchutil.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/resinfer_build.dir/tools/resinfer_build.cc.o"
  "CMakeFiles/resinfer_build.dir/tools/resinfer_build.cc.o.d"
  "resinfer_build"
  "resinfer_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resinfer_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for resinfer_build.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/resinfer_gen.dir/tools/resinfer_gen.cc.o"
  "CMakeFiles/resinfer_gen.dir/tools/resinfer_gen.cc.o.d"
  "resinfer_gen"
  "resinfer_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resinfer_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

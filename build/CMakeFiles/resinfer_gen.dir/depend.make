# Empty dependencies file for resinfer_gen.
# This may be replaced when dependencies are built.

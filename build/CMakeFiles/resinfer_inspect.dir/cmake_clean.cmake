file(REMOVE_RECURSE
  "CMakeFiles/resinfer_inspect.dir/tools/resinfer_inspect.cc.o"
  "CMakeFiles/resinfer_inspect.dir/tools/resinfer_inspect.cc.o.d"
  "resinfer_inspect"
  "resinfer_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resinfer_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

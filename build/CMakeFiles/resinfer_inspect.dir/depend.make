# Empty dependencies file for resinfer_inspect.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/resinfer_search.dir/tools/resinfer_search.cc.o"
  "CMakeFiles/resinfer_search.dir/tools/resinfer_search.cc.o.d"
  "resinfer_search"
  "resinfer_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resinfer_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

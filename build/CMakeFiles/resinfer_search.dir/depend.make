# Empty dependencies file for resinfer_search.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ad_sampling_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/ad_sampling_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/ad_sampling_test.cc.o.d"
  "/root/repo/tests/core/ddc_any_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_any_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_any_test.cc.o.d"
  "/root/repo/tests/core/ddc_opq_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_opq_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_opq_test.cc.o.d"
  "/root/repo/tests/core/ddc_pca_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_pca_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_pca_test.cc.o.d"
  "/root/repo/tests/core/ddc_res_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_res_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_res_test.cc.o.d"
  "/root/repo/tests/core/ddc_rq_cascade_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_rq_cascade_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/ddc_rq_cascade_test.cc.o.d"
  "/root/repo/tests/core/error_model_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/error_model_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/error_model_test.cc.o.d"
  "/root/repo/tests/core/finger_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/finger_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/finger_test.cc.o.d"
  "/root/repo/tests/core/linear_corrector_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/linear_corrector_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/linear_corrector_test.cc.o.d"
  "/root/repo/tests/core/method_advisor_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/method_advisor_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/method_advisor_test.cc.o.d"
  "/root/repo/tests/core/method_factory_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/method_factory_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/method_factory_test.cc.o.d"
  "/root/repo/tests/core/training_data_test.cc" "CMakeFiles/resinfer_tests.dir/tests/core/training_data_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/core/training_data_test.cc.o.d"
  "/root/repo/tests/data/ground_truth_test.cc" "CMakeFiles/resinfer_tests.dir/tests/data/ground_truth_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/data/ground_truth_test.cc.o.d"
  "/root/repo/tests/data/metric_test.cc" "CMakeFiles/resinfer_tests.dir/tests/data/metric_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/data/metric_test.cc.o.d"
  "/root/repo/tests/data/metrics_test.cc" "CMakeFiles/resinfer_tests.dir/tests/data/metrics_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/data/metrics_test.cc.o.d"
  "/root/repo/tests/data/synthetic_test.cc" "CMakeFiles/resinfer_tests.dir/tests/data/synthetic_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/data/synthetic_test.cc.o.d"
  "/root/repo/tests/data/vec_io_test.cc" "CMakeFiles/resinfer_tests.dir/tests/data/vec_io_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/data/vec_io_test.cc.o.d"
  "/root/repo/tests/index/batch_test.cc" "CMakeFiles/resinfer_tests.dir/tests/index/batch_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/index/batch_test.cc.o.d"
  "/root/repo/tests/index/estimate_batch_test.cc" "CMakeFiles/resinfer_tests.dir/tests/index/estimate_batch_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/index/estimate_batch_test.cc.o.d"
  "/root/repo/tests/index/flat_index_test.cc" "CMakeFiles/resinfer_tests.dir/tests/index/flat_index_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/index/flat_index_test.cc.o.d"
  "/root/repo/tests/index/hnsw_index_test.cc" "CMakeFiles/resinfer_tests.dir/tests/index/hnsw_index_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/index/hnsw_index_test.cc.o.d"
  "/root/repo/tests/index/ivf_index_test.cc" "CMakeFiles/resinfer_tests.dir/tests/index/ivf_index_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/index/ivf_index_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "CMakeFiles/resinfer_tests.dir/tests/integration/end_to_end_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/linalg/covariance_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/covariance_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/covariance_test.cc.o.d"
  "/root/repo/tests/linalg/eigen_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/eigen_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/eigen_test.cc.o.d"
  "/root/repo/tests/linalg/matrix_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/matrix_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/matrix_test.cc.o.d"
  "/root/repo/tests/linalg/orthogonal_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/orthogonal_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/orthogonal_test.cc.o.d"
  "/root/repo/tests/linalg/pca_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/pca_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/pca_test.cc.o.d"
  "/root/repo/tests/linalg/svd_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/svd_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/svd_test.cc.o.d"
  "/root/repo/tests/linalg/vector_ops_test.cc" "CMakeFiles/resinfer_tests.dir/tests/linalg/vector_ops_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/linalg/vector_ops_test.cc.o.d"
  "/root/repo/tests/persist/persist_test.cc" "CMakeFiles/resinfer_tests.dir/tests/persist/persist_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/persist/persist_test.cc.o.d"
  "/root/repo/tests/quant/kmeans_test.cc" "CMakeFiles/resinfer_tests.dir/tests/quant/kmeans_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/quant/kmeans_test.cc.o.d"
  "/root/repo/tests/quant/opq_test.cc" "CMakeFiles/resinfer_tests.dir/tests/quant/opq_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/quant/opq_test.cc.o.d"
  "/root/repo/tests/quant/pq_test.cc" "CMakeFiles/resinfer_tests.dir/tests/quant/pq_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/quant/pq_test.cc.o.d"
  "/root/repo/tests/quant/quantizer_properties_test.cc" "CMakeFiles/resinfer_tests.dir/tests/quant/quantizer_properties_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/quant/quantizer_properties_test.cc.o.d"
  "/root/repo/tests/quant/rq_test.cc" "CMakeFiles/resinfer_tests.dir/tests/quant/rq_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/quant/rq_test.cc.o.d"
  "/root/repo/tests/quant/sq_test.cc" "CMakeFiles/resinfer_tests.dir/tests/quant/sq_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/quant/sq_test.cc.o.d"
  "/root/repo/tests/simd/kernels_test.cc" "CMakeFiles/resinfer_tests.dir/tests/simd/kernels_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/simd/kernels_test.cc.o.d"
  "/root/repo/tests/tools/tool_flags_test.cc" "CMakeFiles/resinfer_tests.dir/tests/tools/tool_flags_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/tools/tool_flags_test.cc.o.d"
  "/root/repo/tests/util/aligned_buffer_test.cc" "CMakeFiles/resinfer_tests.dir/tests/util/aligned_buffer_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/util/aligned_buffer_test.cc.o.d"
  "/root/repo/tests/util/histogram_test.cc" "CMakeFiles/resinfer_tests.dir/tests/util/histogram_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/util/histogram_test.cc.o.d"
  "/root/repo/tests/util/parallel_test.cc" "CMakeFiles/resinfer_tests.dir/tests/util/parallel_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/util/parallel_test.cc.o.d"
  "/root/repo/tests/util/rng_test.cc" "CMakeFiles/resinfer_tests.dir/tests/util/rng_test.cc.o" "gcc" "CMakeFiles/resinfer_tests.dir/tests/util/rng_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/resinfer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

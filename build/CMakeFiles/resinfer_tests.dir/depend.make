# Empty dependencies file for resinfer_tests.
# This may be replaced when dependencies are built.

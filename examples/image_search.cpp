// Image-similarity search scenario (the paper's motivating workload and
// Exp-8 deployment): high-dimensional image embeddings with a skewed
// covariance spectrum, high-recall operating point, HNSW index.
//
// Shows method selection guidance from §VII Exp-1: on skewed (image)
// spectra the projection-based DDCres is the method of choice; we verify
// by printing the PCA-32 explained variance next to each method's
// operating point.
#include <cstdio>
#include <vector>

#include "resinfer/resinfer.h"

using namespace resinfer;

namespace {

struct Operating {
  double recall = 0.0;
  double qps = 0.0;
  double scan_rate = 0.0;
};

Operating Run(const index::HnswIndex& hnsw, const data::Dataset& ds,
              const std::vector<std::vector<int64_t>>& truth,
              index::DistanceComputer& computer, int ef) {
  index::HnswScratch scratch;
  std::vector<std::vector<int64_t>> results;
  computer.stats().Reset();
  WallTimer timer;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto found = hnsw.Search(computer, ds.queries.Row(q), 20, ef, &scratch);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  Operating op;
  op.qps = ds.queries.rows() / timer.ElapsedSeconds();
  op.recall = data::MeanRecallAtK(results, truth, 20);
  op.scan_rate = computer.stats().ScanRate(ds.dim());
  return op;
}

}  // namespace

int main() {
  // 512-d normalized embeddings, like a face/image retrieval deployment.
  data::SyntheticSpec spec = data::AntFaceProxySpec();
  spec.num_base = 15000;
  spec.num_queries = 150;
  spec.num_train_queries = 600;
  data::Dataset ds = data::GenerateSynthetic(spec);

  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  std::printf("image embeddings: dim=%ld, PCA-32 explained variance %.0f%% "
              "(skewed spectrum -> projection methods favored)\n",
              static_cast<long>(ds.dim()),
              100.0 * pca.ExplainedVarianceRatio(32));

  auto truth = data::BruteForceKnn(ds.base, ds.queries, 20);
  index::HnswOptions hnsw_options;
  hnsw_options.M = 16;
  hnsw_options.ef_construction = 150;
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  core::MethodFactory factory(&ds);
  std::printf("%-12s %10s %10s %12s\n", "method", "recall@20", "qps",
              "scan-rate");
  for (const char* method :
       {core::kMethodExact, core::kMethodAdSampling, core::kMethodDdcOpq,
        core::kMethodDdcPca, core::kMethodDdcRes}) {
    auto computer = factory.Make(method);
    Operating op = Run(hnsw, ds, truth, *computer, /*ef=*/150);
    std::printf("%-12s %10.4f %10.0f %12.3f\n", method, op.recall, op.qps,
                op.scan_rate);
  }
  std::printf(
      "\nexpected: ddc-res has the lowest scan-rate and the best qps at "
      "equal recall on this skewed-spectrum workload.\n");
  return 0;
}

// Maximum-inner-product recommendation with the MIPS -> L2 reduction.
//
// A recommender scores items by <user, item> and wants the top scorers —
// maximum inner product search, not nearest neighbors. §II-A notes that
// inner product "can be transformed into Euclidean distance through simple
// transformations"; this example runs that pipeline end to end:
//
//   1. embed a catalog of items and some user profiles (synthetic here),
//   2. reduce MIPS to L2 with data::MipsTransform (one extra dimension),
//   3. index the augmented items with HNSW,
//   4. accelerate refinement with the generic data-driven corrector
//      (core/ddc_any.h) over a Residual Quantization estimator — the §V
//      machinery, two metric hops away from where the paper benchmarked it,
//   5. check the recommendations against exact inner-product scoring.
//
// Build & run:  ./build/examples/mips_recommender
#include <cstdio>
#include <memory>

#include "resinfer/resinfer.h"

using namespace resinfer;

int main() {
  // 1. Catalog: 30k item embeddings, 96-d, mildly skewed spectrum; user
  // vectors drawn from the same space. Inner-product magnitudes matter for
  // MIPS, so the vectors are NOT normalized.
  data::SyntheticSpec spec;
  spec.name = "catalog";
  spec.dim = 96;
  spec.num_base = 30000;
  spec.num_queries = 100;       // users to serve
  spec.num_train_queries = 500; // users to train the corrector on
  spec.spectrum_alpha = 0.8;
  spec.seed = 2026;
  data::Dataset catalog = data::GenerateSynthetic(spec);
  std::printf("catalog: %ld items, %ld-d, %ld users\n",
              static_cast<long>(catalog.size()),
              static_cast<long>(catalog.dim()),
              static_cast<long>(catalog.queries.rows()));

  // 2. MIPS -> L2: items gain a sqrt(phi^2 - ||x||^2) pad, users a zero.
  data::MipsTransform mips = data::MipsTransform::Fit(catalog.base);
  linalg::Matrix items = mips.TransformBase(catalog.base);
  linalg::Matrix users = mips.TransformQueries(catalog.queries);
  linalg::Matrix train_users = mips.TransformQueries(catalog.train_queries);
  std::printf("augmented to %ld-d (phi=%.3f)\n",
              static_cast<long>(items.cols()), mips.max_norm());

  // 3. HNSW over the augmented items.
  index::HnswOptions hnsw_options;
  hnsw_options.ef_construction = 150;
  index::HnswIndex hnsw = index::HnswIndex::Build(items, hnsw_options);

  // 4. Residual-quantization estimator + learned corrector, via the
  // source-agnostic DDC plug-in. Everything operates in the augmented
  // space; neither component knows the workload is really inner product.
  quant::RqOptions rq_options;
  rq_options.num_stages = 8;
  core::RqEstimatorData rq = core::BuildRqEstimatorData(items, rq_options);

  core::TrainingDataOptions training;
  training.max_queries = 400;
  core::RqAdcEstimator trainer(&rq);
  core::LinearCorrector corrector =
      core::TrainAnyCorrector(trainer, items, train_users, training);
  std::printf("corrector trained: w_approx=%.3f bias=%.3f\n",
              corrector.w_approx(), corrector.bias());

  // 5. Serve every user through the multi-threaded batch runner and score
  // against exact inner-product top-10.
  const int k = 10;
  index::BatchResult batch = index::BatchSearchHnsw(
      hnsw,
      [&] {
        return std::make_unique<core::DdcAnyComputer>(
            &items, std::make_unique<core::RqAdcEstimator>(&rq), &corrector);
      },
      users, k, /*ef=*/120);

  double recall_sum = 0.0;
  for (int64_t u = 0; u < catalog.queries.rows(); ++u) {
    std::vector<data::Neighbor> exact_top =
        data::TopKByInnerProduct(catalog.base, catalog.queries.Row(u), k);
    std::vector<int64_t> truth;
    for (const auto& nb : exact_top) truth.push_back(nb.id);
    std::vector<int64_t> got;
    for (const auto& nb : batch.results[static_cast<std::size_t>(u)]) {
      got.push_back(nb.id);
    }
    recall_sum += data::RecallAtK(got, truth, k);
  }
  const double recall = recall_sum / static_cast<double>(users.rows());

  std::printf("top-%d recommendation recall vs exact MIPS: %.3f\n", k,
              recall);
  std::printf("throughput: %.0f users/s, latency %s\n", batch.Qps(),
              batch.latency_seconds.Summary().c_str());
  std::printf("pruned %.1f%% of candidate scorings\n",
              100.0 * batch.stats.PrunedRate());

  // Show one user's recommendations with their true scores.
  std::printf("\nuser 0 top-5 items (id: score):");
  for (int r = 0; r < 5; ++r) {
    const int64_t id = batch.results[0][static_cast<std::size_t>(r)].id;
    const float score = simd::InnerProduct(catalog.queries.Row(0),
                                           catalog.base.Row(id), 96);
    std::printf("  %ld: %.3f", static_cast<long>(id), score);
  }
  std::printf("\n");
  return recall >= 0.9 ? 0 : 1;
}

// Generality demo (§V): plugging an ARBITRARY approximate distance into
// the data-driven corrector.
//
// The paper's claim is that the learned correction needs no knowledge of
// where dis' comes from. To prove it end-to-end, this example invents an
// estimator the paper never discusses — an 8-bit scalar-quantization (SQ)
// distance — wraps it in a DistanceComputer with a LinearCorrector trained
// by the standard pipeline, and runs it inside the unmodified HNSW index.
#include <cstdio>
#include <vector>

#include "resinfer/resinfer.h"

using namespace resinfer;

namespace {

// --- a homegrown approximate distance: per-dimension 8-bit scalar
// quantization with global [min, max] range ----------------------------
class ScalarQuantizer {
 public:
  void Train(const linalg::Matrix& base) {
    lo_ = base.data()[0];
    hi_ = base.data()[0];
    for (int64_t i = 0; i < base.size(); ++i) {
      lo_ = std::min(lo_, base.data()[i]);
      hi_ = std::max(hi_, base.data()[i]);
    }
    scale_ = (hi_ - lo_) / 255.0f;
    codes_.resize(base.size());
    for (int64_t i = 0; i < base.size(); ++i) {
      codes_[i] = static_cast<uint8_t>(
          std::clamp((base.data()[i] - lo_) / scale_, 0.0f, 255.0f));
    }
    dim_ = base.cols();
  }

  // Approximate squared distance between the query and encoded row `id`.
  float Distance(const float* query, int64_t id) const {
    const uint8_t* code = codes_.data() + id * dim_;
    float acc = 0.0f;
    for (int64_t j = 0; j < dim_; ++j) {
      float decoded = lo_ + scale_ * static_cast<float>(code[j]);
      float diff = query[j] - decoded;
      acc += diff * diff;
    }
    return acc;
  }

 private:
  float lo_ = 0.0f, hi_ = 0.0f, scale_ = 1.0f;
  int64_t dim_ = 0;
  std::vector<uint8_t> codes_;
};

// --- the plug-in: SQ distance + learned correction ---------------------
class SqDdcComputer : public index::DistanceComputer {
 public:
  SqDdcComputer(const linalg::Matrix* base, const ScalarQuantizer* sq,
                const core::LinearCorrector* corrector)
      : base_(base), sq_(sq), corrector_(corrector) {}

  int64_t dim() const override { return base_->cols(); }
  int64_t size() const override { return base_->rows(); }
  std::string name() const override { return "ddc-sq8 (custom)"; }

  void BeginQuery(const float* query) override { query_ = query; }

  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override {
    ++stats_.candidates;
    float approx = sq_->Distance(query_, id);
    if (std::isfinite(tau) && corrector_->PredictPrunable(approx, tau)) {
      ++stats_.pruned;
      return {true, approx};
    }
    ++stats_.exact_computations;
    return {false, ExactDistance(id)};
  }

  float ExactDistance(int64_t id) override {
    return simd::L2Sqr(base_->Row(id), query_,
                       static_cast<std::size_t>(base_->cols()));
  }

 private:
  const linalg::Matrix* base_;
  const ScalarQuantizer* sq_;
  const core::LinearCorrector* corrector_;
  const float* query_ = nullptr;
};

}  // namespace

int main() {
  data::SyntheticSpec spec = data::DeepProxySpec();
  spec.num_base = 12000;
  spec.num_queries = 150;
  spec.num_train_queries = 500;
  data::Dataset ds = data::GenerateSynthetic(spec);
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 10);

  // 1. Train the custom estimator.
  ScalarQuantizer sq;
  sq.Train(ds.base);

  // 2. Train the corrector with the STANDARD pipeline — only the
  //    approximator callback knows about SQ.
  core::TrainingDataOptions training;
  training.max_queries = 300;
  auto pairs = core::CollectLabeledPairs(ds.base, ds.train_queries, training);
  auto samples = core::MaterializeSamples(
      pairs, [&](int64_t q, int64_t id, float* /*extra*/) {
        return sq.Distance(ds.train_queries.Row(q), id);
      });
  core::LinearCorrector corrector = core::LinearCorrector::Train(samples);
  auto metrics = corrector.Evaluate(samples);
  std::printf("corrector: label0 recall %.4f, label1 recall %.4f\n",
              metrics.label0_recall, metrics.label1_recall);

  // 3. Run inside the unmodified HNSW next to the exact baseline.
  index::HnswOptions hnsw_options;
  hnsw_options.M = 16;
  hnsw_options.ef_construction = 150;
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);

  index::FlatDistanceComputer exact(ds.base.data(), ds.size(), ds.dim());
  SqDdcComputer custom(&ds.base, &sq, &corrector);

  for (index::DistanceComputer* computer :
       std::vector<index::DistanceComputer*>{&exact, &custom}) {
    index::HnswScratch scratch;
    std::vector<std::vector<int64_t>> results;
    WallTimer timer;
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto found =
          hnsw.Search(*computer, ds.queries.Row(q), 10, 100, &scratch);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    double seconds = timer.ElapsedSeconds();
    std::printf("%-18s recall@10=%.4f qps=%.0f pruned=%.2f%%\n",
                computer->name().c_str(),
                data::MeanRecallAtK(results, truth, 10),
                ds.queries.rows() / seconds,
                100.0 * computer->stats().PrunedRate());
  }
  std::printf(
      "\nthe corrector never saw the SQ internals — the same training "
      "pipeline calibrated a brand-new estimator (the §V generality "
      "claim). note: this naive SQ decode is itself O(D), so the demo "
      "shows correct calibration and pruning, not end-to-end speed; see "
      "ddc-opq for a table-driven estimator that is also fast.\n");
  return 0;
}

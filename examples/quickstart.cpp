// Quickstart: index a dataset with HNSW and accelerate its distance
// computation with DDCres — the five-minute tour of the public API.
//
//   1. get vectors (here: a synthetic image-like dataset; swap in
//      data::ReadFvecs for real .fvecs files),
//   2. build an HNSW graph once with exact distances,
//   3. create a DistanceComputer per method via MethodFactory,
//   4. search and compare recall/latency.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "resinfer/resinfer.h"

using namespace resinfer;

int main() {
  // 1. Data: 20k vectors, 128-d, skewed spectrum (SIFT-like).
  data::SyntheticSpec spec = data::SiftProxySpec();
  spec.num_base = 20000;
  spec.num_queries = 200;
  spec.num_train_queries = 500;
  data::Dataset ds = data::GenerateSynthetic(spec);
  std::printf("dataset: %s, n=%ld, dim=%ld\n", ds.name.c_str(),
              static_cast<long>(ds.size()), static_cast<long>(ds.dim()));

  // Ground truth for recall measurement.
  auto truth = data::BruteForceKnn(ds.base, ds.queries, 10);

  // 2. One HNSW graph, shared by every distance computer.
  index::HnswOptions hnsw_options;
  hnsw_options.M = 16;
  hnsw_options.ef_construction = 150;
  index::HnswIndex hnsw = index::HnswIndex::Build(ds.base, hnsw_options);
  std::printf("hnsw built: %ld nodes, max level %d\n",
              static_cast<long>(hnsw.size()), hnsw.max_level());

  // 3. Methods via the factory (PCA/OPQ/classifiers train lazily).
  core::MethodFactory factory(&ds);

  // 4. Search with the exact computer and with DDCres.
  for (const char* method : {core::kMethodExact, core::kMethodDdcRes}) {
    auto computer = factory.Make(method);
    index::HnswScratch scratch;
    std::vector<std::vector<int64_t>> results;
    WallTimer timer;
    for (int64_t q = 0; q < ds.queries.rows(); ++q) {
      auto found =
          hnsw.Search(*computer, ds.queries.Row(q), /*k=*/10, /*ef=*/100,
                      &scratch);
      std::vector<int64_t> ids;
      for (const auto& nb : found) ids.push_back(nb.id);
      results.push_back(std::move(ids));
    }
    double seconds = timer.ElapsedSeconds();
    std::printf("%-10s recall@10=%.4f  qps=%.0f\n", method,
                data::MeanRecallAtK(results, truth, 10),
                ds.queries.rows() / seconds);
  }

  std::printf(
      "\nDDCres reaches the same recall while touching a fraction of the "
      "dimensions — see bench/ for the full paper reproduction.\n");
  return 0;
}

// Text-embedding search scenario: flat covariance spectrum (GLOVE-like),
// where §VII Exp-1 prescribes the quantization-based DDCopq over the
// projection-based methods — a 32-dim PCA keeps only ~18% of the variance,
// so projected distances carry little signal, while OPQ codes spread
// information across all sub-spaces.
//
// Uses the IVF index (the common choice for batch text retrieval).
#include <cstdio>
#include <vector>

#include "resinfer/resinfer.h"

using namespace resinfer;

namespace {

struct Operating {
  double recall = 0.0;
  double qps = 0.0;
  double pruned_rate = 0.0;
};

Operating Run(const index::IvfIndex& ivf, const data::Dataset& ds,
              const std::vector<std::vector<int64_t>>& truth,
              index::DistanceComputer& computer, int nprobe) {
  std::vector<std::vector<int64_t>> results;
  computer.stats().Reset();
  WallTimer timer;
  for (int64_t q = 0; q < ds.queries.rows(); ++q) {
    auto found = ivf.Search(computer, ds.queries.Row(q), 10, nprobe);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  Operating op;
  op.qps = ds.queries.rows() / timer.ElapsedSeconds();
  op.recall = data::MeanRecallAtK(results, truth, 10);
  op.pruned_rate = computer.stats().PrunedRate();
  return op;
}

}  // namespace

int main() {
  // The paper evaluates with SIMD disabled (§VII-A); pinned here because
  // the flat-spectrum trade-off is exactly where that choice matters: with
  // AVX2 a plain 300-d L2 costs so few cycles that table-driven estimators
  // only pay off at larger scale.
  simd::SetActiveLevel(simd::SimdLevel::kScalar);
  std::printf("(simd pinned to scalar — the paper's evaluation setting)\n");

  data::SyntheticSpec spec = data::GloveProxySpec();
  spec.num_base = 15000;
  spec.num_queries = 150;
  spec.num_train_queries = 600;
  data::Dataset ds = data::GenerateSynthetic(spec);

  linalg::PcaModel pca =
      linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
  std::printf("text embeddings: dim=%ld, PCA-32 explained variance %.0f%% "
              "(flat spectrum -> quantization correction favored)\n",
              static_cast<long>(ds.dim()),
              100.0 * pca.ExplainedVarianceRatio(32));

  auto truth = data::BruteForceKnn(ds.base, ds.queries, 10);
  index::IvfOptions ivf_options;
  ivf_options.num_clusters = 256;
  index::IvfIndex ivf = index::IvfIndex::Build(ds.base, ivf_options);

  core::MethodFactory factory(&ds);
  std::printf("%-12s %10s %10s %12s\n", "method", "recall@10", "qps",
              "pruned-rate");
  for (const char* method :
       {core::kMethodExact, core::kMethodAdSampling, core::kMethodDdcPca,
        core::kMethodDdcOpq}) {
    auto computer = factory.Make(method);
    Operating op = Run(ivf, ds, truth, *computer, /*nprobe=*/24);
    std::printf("%-12s %10.4f %10.0f %12.3f\n", method, op.recall, op.qps,
                op.pruned_rate);
  }
  std::printf(
      "\nexpected: ddc-opq prunes the bulk of candidates and leads qps; "
      "projection methods gain little on this flat spectrum.\n");
  return 0;
}

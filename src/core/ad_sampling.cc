#include "core/ad_sampling.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::core {

AdSamplingComputer::AdSamplingComputer(const linalg::Matrix* rotation,
                                       const linalg::Matrix* rotated_base,
                                       const AdSamplingOptions& options)
    : rotation_(rotation), rotated_base_(rotated_base), options_(options) {
  RESINFER_CHECK(rotation != nullptr && rotated_base != nullptr);
  RESINFER_CHECK(rotation->rows() == rotation->cols());
  RESINFER_CHECK(rotated_base->cols() == rotation->rows());
  RESINFER_CHECK(options_.delta_dim >= 1);
  rotated_query_.resize(rotation->rows());

  // Hoist all square roots out of the per-candidate loop: the test
  //   sqrt(partial * D/d) > sqrt(tau) * (1 + eps0/sqrt(d))
  // is equivalent to
  //   partial * (D/d) > tau * (1 + eps0/sqrt(d))^2.
  const int64_t full_dim = rotation->rows();
  for (int64_t d = options_.delta_dim; d < full_dim;
       d += options_.delta_dim) {
    stage_dims_.push_back(d);
    double c = 1.0 + options_.epsilon0 / std::sqrt(static_cast<double>(d));
    stage_scale_.push_back(static_cast<float>(full_dim) /
                           static_cast<float>(d));
    stage_coef_.push_back(static_cast<float>(c * c));
  }
}

void AdSamplingComputer::BeginQuery(const float* query) {
  linalg::MatVec(*rotation_, query, rotated_query_.data());
}

index::EstimateResult AdSamplingComputer::EstimateWithThreshold(int64_t id,
                                                                float tau) {
  ++stats_.candidates;
  const int64_t full_dim = dim();
  const float* x = rotated_base_->Row(id);
  const float* q = rotated_query_.data();

  float partial = 0.0f;
  int64_t d = 0;
  for (std::size_t stage = 0; stage < stage_dims_.size(); ++stage) {
    const int64_t next = stage_dims_[stage];
    partial += simd::L2Sqr(x + d, q + d, static_cast<std::size_t>(next - d));
    stats_.dims_scanned += next - d;
    d = next;
    // Hypothesis test at the current sampling dimension (sqrt-free form;
    // see constructor). tau = +inf disables pruning.
    if (partial * stage_scale_[stage] > tau * stage_coef_[stage]) {
      ++stats_.pruned;
      return {true, partial * stage_scale_[stage]};
    }
  }
  partial += simd::L2Sqr(x + d, q + d, static_cast<std::size_t>(full_dim - d));
  stats_.dims_scanned += full_dim - d;
  ++stats_.exact_computations;
  return {false, partial};
}

float AdSamplingComputer::ExactDistance(int64_t id) {
  return simd::L2Sqr(rotated_base_->Row(id), rotated_query_.data(),
                     static_cast<std::size_t>(dim()));
}

float AdSamplingComputer::ApproximateDistance(int64_t id, int64_t d) const {
  d = std::clamp<int64_t>(d, 1, dim());
  float partial = simd::L2Sqr(rotated_base_->Row(id), rotated_query_.data(),
                              static_cast<std::size_t>(d));
  return partial * static_cast<float>(dim()) / static_cast<float>(d);
}

int64_t AdSamplingComputer::ExtraBytes() const {
  // Only the rotation matrix (the rotated base replaces the original).
  return rotation_->size() * static_cast<int64_t>(sizeof(float));
}

}  // namespace resinfer::core

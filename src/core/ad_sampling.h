// ADSampling (Gao & Long, SIGMOD 2023) — the state-of-the-art baseline the
// paper improves on (§III).
//
// A random orthonormal rotation plays the role of the JL random projection:
// after rotating, the first d coordinates of x - q are a random d-dim
// projection of the difference vector, and (D/d) * ||(x-q)_d||^2 is an
// unbiased estimate of ||x - q||^2. The hypothesis test prunes a candidate
// at dimension d when
//     sqrt(dis'_d * D / d) > sqrt(tau) * (1 + epsilon0 / sqrt(d))
// which corresponds to concluding dis > tau at significance ~exp(-c0 *
// epsilon0^2) by Lemma 1. Otherwise delta_dim more dimensions are sampled,
// until all D are used and the distance is exact.
#ifndef RESINFER_CORE_AD_SAMPLING_H_
#define RESINFER_CORE_AD_SAMPLING_H_

#include <memory>
#include <string>
#include <vector>

#include "index/distance_computer.h"
#include "linalg/matrix.h"

namespace resinfer::core {

struct AdSamplingOptions {
  int64_t delta_dim = 32;
  // The empirically tuned significance parameter; 2.1 is the value used
  // throughout the ADSampling paper and inherited here (§III).
  double epsilon0 = 2.1;
};

class AdSamplingComputer : public index::DistanceComputer {
 public:
  // `rotation` (D x D random orthonormal, rows orthonormal) and
  // `rotated_base` are shared artifacts; both must outlive the computer.
  AdSamplingComputer(const linalg::Matrix* rotation,
                     const linalg::Matrix* rotated_base,
                     const AdSamplingOptions& options = AdSamplingOptions());

  int64_t dim() const override { return rotation_->rows(); }
  int64_t size() const override { return rotated_base_->rows(); }
  std::string name() const override { return "adsampling"; }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  float ExactDistance(int64_t id) override;

  // Scaled partial distance (D/d) * ||(x-q)_d||^2 — the raw ADSampling
  // estimator, used by the Table III accuracy bench.
  float ApproximateDistance(int64_t id, int64_t d) const;

  int64_t ExtraBytes() const;

 private:
  const linalg::Matrix* rotation_;
  const linalg::Matrix* rotated_base_;
  AdSamplingOptions options_;

  // Per-stage precomputation (see constructor): tested dims, D/d scale and
  // the squared (1 + eps0/sqrt(d)) coefficient.
  std::vector<int64_t> stage_dims_;
  std::vector<float> stage_scale_;
  std::vector<float> stage_coef_;

  std::vector<float> rotated_query_;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_AD_SAMPLING_H_

#include "core/ddc_any.h"

#include <algorithm>
#include <cmath>

#include "core/pq_scan.h"
#include "index/block_refine.h"
#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"

namespace resinfer::core {

// --- Artifact builders -----------------------------------------------------

int64_t PqEstimatorData::ExtraBytes() const {
  return static_cast<int64_t>(codes.size()) +
         static_cast<int64_t>(recon_errors.size()) * sizeof(float);
}

PqEstimatorData BuildPqEstimatorData(const linalg::Matrix& base,
                                     const quant::PqOptions& options) {
  const int64_t n = base.rows();
  const int64_t d = base.cols();
  quant::PqOptions pq_options = options;
  if (pq_options.num_subspaces <= 0 || d % pq_options.num_subspaces != 0) {
    pq_options.num_subspaces = quant::LargestDivisorAtMost(
        d, static_cast<int>(std::max<int64_t>(1, d / 4)));
  }

  PqEstimatorData data;
  data.pq = quant::PqCodebook::Train(base.data(), n, d, pq_options);
  data.codes = data.pq.EncodeBatch(base.data(), n);
  data.recon_errors.resize(static_cast<std::size_t>(n));
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    std::vector<float> decoded(d);
    for (int64_t i = begin; i < end; ++i) {
      data.pq.Decode(data.codes.data() + i * data.pq.code_size(),
                     decoded.data());
      data.recon_errors[static_cast<std::size_t>(i)] = simd::L2Sqr(
          decoded.data(), base.Row(i), static_cast<std::size_t>(d));
    }
  });
  return data;
}

int64_t RqEstimatorData::ExtraBytes() const {
  return static_cast<int64_t>(codes.size()) +
         static_cast<int64_t>(recon_norms.size() + recon_errors.size()) *
             sizeof(float);
}

RqEstimatorData BuildRqEstimatorData(const linalg::Matrix& base,
                                     const quant::RqOptions& options) {
  const int64_t n = base.rows();
  const int64_t d = base.cols();

  RqEstimatorData data;
  data.rq = quant::RqCodebook::Train(base.data(), n, d, options);
  data.codes = data.rq.EncodeBatch(base.data(), n, &data.recon_norms);
  data.recon_errors.resize(static_cast<std::size_t>(n));
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    std::vector<float> decoded(d);
    for (int64_t i = begin; i < end; ++i) {
      data.rq.Decode(data.codes.data() + i * data.rq.code_size(),
                     decoded.data());
      data.recon_errors[static_cast<std::size_t>(i)] = simd::L2Sqr(
          decoded.data(), base.Row(i), static_cast<std::size_t>(d));
    }
  });
  return data;
}

int64_t SqEstimatorData::ExtraBytes() const {
  return static_cast<int64_t>(codes.size()) +
         static_cast<int64_t>(recon_errors.size()) * sizeof(float) +
         static_cast<int64_t>(sq.dim()) * 2 * sizeof(float);
}

SqEstimatorData BuildSqEstimatorData(const linalg::Matrix& base,
                                     const quant::SqOptions& options) {
  const int64_t n = base.rows();
  const int64_t d = base.cols();

  SqEstimatorData data;
  data.sq = quant::SqCodebook::Train(base.data(), n, d, options);
  data.codes = data.sq.EncodeBatch(base.data(), n);
  data.recon_errors.resize(static_cast<std::size_t>(n));
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      data.recon_errors[static_cast<std::size_t>(i)] =
          data.sq.AdcDistance(base.Row(i), data.codes.data() + i * d);
    }
  });
  return data;
}

// --- Estimators ------------------------------------------------------------

void ApproxDistanceEstimator::EstimateBatchCodes(const uint8_t* /*records*/,
                                                 int /*count*/, float* /*out*/,
                                                 float* /*extras*/) {
  RESINFER_CHECK_MSG(false,
                     "estimator has no code-resident form (empty code_tag)");
}

void ApproxDistanceEstimator::SetQueryBatch(const float* queries, int count,
                                            int64_t stride) {
  RESINFER_CHECK(queries != nullptr && count > 0 &&
                 count <= index::kMaxQueryGroup && stride >= dim());
  group_queries_ = queries;
  group_count_ = count;
  group_stride_ = stride;
}

void ApproxDistanceEstimator::SelectQuery(int g) {
  RESINFER_DCHECK(group_queries_ != nullptr && g >= 0 && g < group_count_);
  BeginQuery(GroupQuery(g));
}

void ApproxDistanceEstimator::EstimateBatchCodesGroup(
    const uint8_t* records, int count, const int* members, int num_members,
    float* out, float* extras) {
  for (int j = 0; j < num_members; ++j) {
    SelectQuery(members[j]);
    EstimateBatchCodes(records, count, out + static_cast<int64_t>(j) * count,
                       extras + static_cast<int64_t>(j) * count);
  }
}

PqAdcEstimator::PqAdcEstimator(const PqEstimatorData* data)
    : data_(data), packed_(data != nullptr && data->pq.layout().packed()) {
  RESINFER_CHECK(data != nullptr && data->pq.trained());
  adc_table_.resize(static_cast<std::size_t>(data->pq.adc_table_size()));
  active_table_ = adc_table_.data();
  if (packed_) {
    qlut_.resize(static_cast<std::size_t>(data->pq.fast_scan_lut_bytes()));
    active_qlut_ = qlut_.data();
  }
}

int64_t PqAdcEstimator::size() const {
  return static_cast<int64_t>(data_->recon_errors.size());
}

void PqAdcEstimator::BeginQuery(const float* query) {
  data_->pq.ComputeAdcTable(query, adc_table_.data());
  active_table_ = adc_table_.data();
  if (packed_) {
    data_->pq.QuantizeAdcTable(adc_table_.data(), qlut_.data(), &qscale_,
                               &qbias_);
    active_qlut_ = qlut_.data();
    active_qscale_ = qscale_;
    active_qbias_ = qbias_;
  }
}

void PqAdcEstimator::SetQueryBatch(const float* queries, int count,
                                   int64_t stride) {
  ApproxDistanceEstimator::SetQueryBatch(queries, count, stride);
  const int64_t table_size = data_->pq.adc_table_size();
  group_tables_.resize(static_cast<std::size_t>(count * table_size));
  const int64_t lut_bytes = packed_ ? data_->pq.fast_scan_lut_bytes() : 0;
  if (packed_) {
    group_qluts_.resize(static_cast<std::size_t>(count * lut_bytes));
    group_qscales_.resize(static_cast<std::size_t>(count));
    group_qbiases_.resize(static_cast<std::size_t>(count));
  }
  for (int g = 0; g < count; ++g) {
    float* table = group_tables_.data() + g * table_size;
    data_->pq.ComputeAdcTable(GroupQuery(g), table);
    if (packed_) {
      data_->pq.QuantizeAdcTable(
          table, group_qluts_.data() + g * lut_bytes,
          &group_qscales_[static_cast<std::size_t>(g)],
          &group_qbiases_[static_cast<std::size_t>(g)]);
    }
  }
}

void PqAdcEstimator::SelectQuery(int g) {
  RESINFER_DCHECK(g >= 0 && g < group_count_);
  active_table_ = group_tables_.data() + g * data_->pq.adc_table_size();
  if (packed_) {
    active_qlut_ = group_qluts_.data() + g * data_->pq.fast_scan_lut_bytes();
    active_qscale_ = group_qscales_[static_cast<std::size_t>(g)];
    active_qbias_ = group_qbiases_[static_cast<std::size_t>(g)];
  }
}

float PqAdcEstimator::Estimate(int64_t id, float* extra) {
  *extra = data_->recon_errors[static_cast<std::size_t>(id)];
  const uint8_t* code = data_->codes.data() + id * data_->pq.code_size();
  if (packed_) {
    return quant::PqCodebook::DequantizeFastScanSum(
        simd::PqAdcFastScanOne(active_qlut_, data_->pq.num_subspaces(), code),
        active_qscale_, active_qbias_);
  }
  return data_->pq.AdcDistance(active_table_, code);
}

void PqAdcEstimator::EstimateBatch(const int64_t* ids, int count, float* out,
                                   float* extras) {
  constexpr int kChunk = 16;
  const uint8_t* codes[kChunk];
  const int64_t code_size = data_->pq.code_size();
  for (int i = 0; i < count; i += kChunk) {
    const int block = std::min(kChunk, count - i);
    for (int j = 0; j < block; ++j) {
      const int64_t id = ids[i + j];
      codes[j] = data_->codes.data() + id * code_size;
      extras[i + j] = data_->recon_errors[static_cast<std::size_t>(id)];
    }
    ScorePqChunk(data_->pq, packed_, active_table_, active_qlut_,
                 active_qscale_, active_qbias_, codes, block, out + i);
  }
}

int64_t PqAdcEstimator::query_state_bytes() const {
  // Packed scans read only the quantized LUT (512B at m = 32) — small
  // enough that block-level member tiling always pays.
  if (packed_) return data_->pq.fast_scan_lut_bytes();
  return data_->pq.adc_table_size() * static_cast<int64_t>(sizeof(float));
}

std::string PqAdcEstimator::code_tag() const {
  if (code_tag_.empty()) {
    uint64_t f = quant::FingerprintArray(data_->codes.data(),
                                         data_->codes.size());
    f = quant::FingerprintArray(data_->recon_errors.data(),
                                data_->recon_errors.size() * sizeof(float),
                                f);
    code_tag_ = quant::MakeCodeTag("pq-adc", data_->pq.code_size(), 1,
                                   size(), f, data_->pq.layout().packing);
  }
  return code_tag_;
}

int64_t PqAdcEstimator::code_record_stride() const {
  return quant::CodeRecordStride(data_->pq.code_size(), 1);
}

quant::CodeStore PqAdcEstimator::MakeCodeStore() const {
  const int64_t code_size = data_->pq.code_size();
  quant::CodeStore store(size(), code_size, 1, code_tag(),
                         data_->pq.layout().packing);
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i, data_->codes.data() + i * code_size);
    store.SetSidecar(i, 0, data_->recon_errors[static_cast<std::size_t>(i)]);
  }
  return store;
}

void PqAdcEstimator::EstimateBatchCodes(const uint8_t* records, int count,
                                        float* out, float* extras) {
  // Same ADC accumulation as EstimateBatch, but code pointers and trust
  // features come off the sequential record stream instead of id gathers.
  constexpr int kChunk = 16;
  const uint8_t* codes[kChunk];
  const int64_t code_size = data_->pq.code_size();
  const int64_t stride = code_record_stride();
  for (int i = 0; i < count; i += kChunk) {
    const int block = std::min(kChunk, count - i);
    for (int j = 0; j < block; ++j) {
      const uint8_t* rec = records + (i + j) * stride;
      codes[j] = rec;
      extras[i + j] = quant::RecordSidecars(rec, code_size)[0];
    }
    ScorePqChunk(data_->pq, packed_, active_table_, active_qlut_,
                 active_qscale_, active_qbias_, codes, block, out + i);
  }
}

void PqAdcEstimator::EstimateBatchCodesGroup(const uint8_t* records,
                                             int count, const int* members,
                                             int num_members, float* out,
                                             float* extras) {
  // Per member this is exactly EstimateBatchCodes (same 16-code chunks,
  // same kernel lane order); the tile kernel evaluates each chunk for
  // every member's table while the codes are hot. The packed tier tiles
  // the quantized LUTs instead, sharing each chunk's nibble transpose
  // across the group before the per-member dequantization.
  constexpr int kChunk = 16;
  const uint8_t* codes[kChunk];
  RESINFER_DCHECK(num_members > 0 && num_members <= index::kMaxQueryGroup);
  const int64_t code_size = data_->pq.code_size();
  const int64_t stride = code_record_stride();
  if (packed_) {
    uint16_t tile[index::kMaxQueryGroup * kChunk];
    const uint8_t* luts[index::kMaxQueryGroup];
    const int64_t lut_bytes = data_->pq.fast_scan_lut_bytes();
    for (int j = 0; j < num_members; ++j) {
      RESINFER_DCHECK(members[j] >= 0 && members[j] < group_count_);
      luts[j] = group_qluts_.data() + members[j] * lut_bytes;
    }
    for (int i = 0; i < count; i += kChunk) {
      const int block = std::min(kChunk, count - i);
      for (int j = 0; j < block; ++j) {
        const uint8_t* rec = records + (i + j) * stride;
        codes[j] = rec;
        const float recon_error = quant::RecordSidecars(rec, code_size)[0];
        for (int g = 0; g < num_members; ++g) {
          extras[static_cast<int64_t>(g) * count + i + j] = recon_error;
        }
      }
      simd::PqAdcFastScanTile(luts, num_members, data_->pq.num_subspaces(),
                              codes, block, tile);
      for (int g = 0; g < num_members; ++g) {
        const float scale =
            group_qscales_[static_cast<std::size_t>(members[g])];
        const float bias =
            group_qbiases_[static_cast<std::size_t>(members[g])];
        float* row = out + static_cast<int64_t>(g) * count + i;
        const uint16_t* sums = tile + g * block;
        for (int j = 0; j < block; ++j) {
          row[j] =
              quant::PqCodebook::DequantizeFastScanSum(sums[j], scale, bias);
        }
      }
    }
    SelectQuery(members[num_members - 1]);
    return;
  }
  float tile[index::kMaxQueryGroup * kChunk];
  const float* tables[index::kMaxQueryGroup];
  const int64_t table_size = data_->pq.adc_table_size();
  for (int j = 0; j < num_members; ++j) {
    RESINFER_DCHECK(members[j] >= 0 && members[j] < group_count_);
    tables[j] = group_tables_.data() + members[j] * table_size;
  }
  for (int i = 0; i < count; i += kChunk) {
    const int block = std::min(kChunk, count - i);
    for (int j = 0; j < block; ++j) {
      const uint8_t* rec = records + (i + j) * stride;
      codes[j] = rec;
      const float recon_error = quant::RecordSidecars(rec, code_size)[0];
      for (int g = 0; g < num_members; ++g) {
        extras[static_cast<int64_t>(g) * count + i + j] = recon_error;
      }
    }
    simd::PqAdcTile(tables, num_members, data_->pq.num_subspaces(),
                    data_->pq.num_centroids(), codes, block, tile);
    for (int g = 0; g < num_members; ++g) {
      std::copy(tile + g * block, tile + (g + 1) * block,
                out + static_cast<int64_t>(g) * count + i);
    }
  }
  SelectQuery(members[num_members - 1]);
}

RqAdcEstimator::RqAdcEstimator(const RqEstimatorData* data) : data_(data) {
  RESINFER_CHECK(data != nullptr && data->rq.trained());
  ip_table_.resize(static_cast<std::size_t>(data->rq.ip_table_size()));
  active_table_ = ip_table_.data();
}

int64_t RqAdcEstimator::size() const {
  return static_cast<int64_t>(data_->recon_errors.size());
}

void RqAdcEstimator::BeginQuery(const float* query) {
  data_->rq.ComputeIpTable(query, ip_table_.data());
  query_norm_sqr_ =
      simd::Norm2Sqr(query, static_cast<std::size_t>(data_->rq.dim()));
  active_table_ = ip_table_.data();
}

void RqAdcEstimator::SetQueryBatch(const float* queries, int count,
                                   int64_t stride) {
  ApproxDistanceEstimator::SetQueryBatch(queries, count, stride);
  const int64_t table_size = data_->rq.ip_table_size();
  group_tables_.resize(static_cast<std::size_t>(count * table_size));
  group_norms_.resize(static_cast<std::size_t>(count));
  for (int g = 0; g < count; ++g) {
    const float* q = GroupQuery(g);
    data_->rq.ComputeIpTable(q, group_tables_.data() + g * table_size);
    group_norms_[static_cast<std::size_t>(g)] =
        simd::Norm2Sqr(q, static_cast<std::size_t>(data_->rq.dim()));
  }
}

void RqAdcEstimator::SelectQuery(int g) {
  RESINFER_DCHECK(g >= 0 && g < group_count_);
  active_table_ = group_tables_.data() + g * data_->rq.ip_table_size();
  query_norm_sqr_ = group_norms_[static_cast<std::size_t>(g)];
}

float RqAdcEstimator::Estimate(int64_t id, float* extra) {
  *extra = data_->recon_errors[static_cast<std::size_t>(id)];
  return data_->rq.AdcDistance(
      active_table_, query_norm_sqr_,
      data_->codes.data() + id * data_->rq.code_size(),
      data_->recon_norms[static_cast<std::size_t>(id)]);
}

void RqAdcEstimator::EstimateBatch(const int64_t* ids, int count, float* out,
                                   float* extras) {
  // The RQ ADC is q·q - 2 q·x̂ + x̂·x̂; the table-lookup sum q·x̂ shares the
  // PQ accumulation kernel, the affine combine mirrors RqCodebook's
  // expression order so lanes stay bit-identical to Estimate(). Packed
  // codebooks unpack each chunk's nibbles first (same values, same order).
  constexpr int kChunk = 16;
  const uint8_t* codes[kChunk];
  float ip[kChunk];
  const int64_t code_size = data_->rq.code_size();
  const int stages = data_->rq.num_stages();
  const bool packed = data_->rq.layout().packed();
  if (packed) {
    unpack_scratch_.resize(static_cast<std::size_t>(kChunk) * stages);
  }
  for (int i = 0; i < count; i += kChunk) {
    const int block = std::min(kChunk, count - i);
    for (int j = 0; j < block; ++j) {
      const int64_t id = ids[i + j];
      const uint8_t* code = data_->codes.data() + id * code_size;
      if (packed) {
        uint8_t* row = unpack_scratch_.data() + j * stages;
        quant::UnpackCodes4(code, stages, row);
        codes[j] = row;
      } else {
        codes[j] = code;
      }
      extras[i + j] = data_->recon_errors[static_cast<std::size_t>(id)];
    }
    simd::PqAdcBatch(active_table_, stages, data_->rq.num_centroids(),
                     codes, block, ip);
    for (int j = 0; j < block; ++j) {
      out[i + j] =
          query_norm_sqr_ - 2.0f * ip[j] +
          data_->recon_norms[static_cast<std::size_t>(ids[i + j])];
    }
  }
}

int64_t RqAdcEstimator::query_state_bytes() const {
  return data_->rq.ip_table_size() * static_cast<int64_t>(sizeof(float));
}

std::string RqAdcEstimator::code_tag() const {
  if (code_tag_.empty()) {
    uint64_t f = quant::FingerprintArray(data_->codes.data(),
                                         data_->codes.size());
    f = quant::FingerprintArray(data_->recon_norms.data(),
                                data_->recon_norms.size() * sizeof(float),
                                f);
    f = quant::FingerprintArray(data_->recon_errors.data(),
                                data_->recon_errors.size() * sizeof(float),
                                f);
    code_tag_ = quant::MakeCodeTag("rq-adc", data_->rq.code_size(), 2,
                                   size(), f, data_->rq.layout().packing);
  }
  return code_tag_;
}

int64_t RqAdcEstimator::code_record_stride() const {
  return quant::CodeRecordStride(data_->rq.code_size(), 2);
}

quant::CodeStore RqAdcEstimator::MakeCodeStore() const {
  const int64_t code_size = data_->rq.code_size();
  quant::CodeStore store(size(), code_size, 2, code_tag(),
                         data_->rq.layout().packing);
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i, data_->codes.data() + i * code_size);
    store.SetSidecar(i, 0, data_->recon_norms[static_cast<std::size_t>(i)]);
    store.SetSidecar(i, 1, data_->recon_errors[static_cast<std::size_t>(i)]);
  }
  return store;
}

void RqAdcEstimator::EstimateBatchCodes(const uint8_t* records, int count,
                                        float* out, float* extras) {
  // Mirrors EstimateBatch: shared table-lookup kernel, then the affine
  // combine in RqCodebook's expression order; the reconstruction norm and
  // trust feature are the record's sidecar floats (bit-equal to the
  // id-indexed arrays they were packed from).
  constexpr int kChunk = 16;
  const uint8_t* codes[kChunk];
  float ip[kChunk];
  float norms[kChunk];
  const int64_t code_size = data_->rq.code_size();
  const int64_t stride = code_record_stride();
  const int stages = data_->rq.num_stages();
  const bool packed = data_->rq.layout().packed();
  if (packed) {
    unpack_scratch_.resize(static_cast<std::size_t>(kChunk) * stages);
  }
  for (int i = 0; i < count; i += kChunk) {
    const int block = std::min(kChunk, count - i);
    for (int j = 0; j < block; ++j) {
      const uint8_t* rec = records + (i + j) * stride;
      const float* sidecars = quant::RecordSidecars(rec, code_size);
      if (packed) {
        uint8_t* row = unpack_scratch_.data() + j * stages;
        quant::UnpackCodes4(rec, stages, row);
        codes[j] = row;
      } else {
        codes[j] = rec;
      }
      norms[j] = sidecars[0];
      extras[i + j] = sidecars[1];
    }
    simd::PqAdcBatch(active_table_, stages, data_->rq.num_centroids(),
                     codes, block, ip);
    for (int j = 0; j < block; ++j) {
      out[i + j] = query_norm_sqr_ - 2.0f * ip[j] + norms[j];
    }
  }
}

void RqAdcEstimator::EstimateBatchCodesGroup(const uint8_t* records,
                                             int count, const int* members,
                                             int num_members, float* out,
                                             float* extras) {
  // Table-lookup stage tiled across the members' IP tables; each member's
  // affine combine keeps EstimateBatchCodes' expression order, so lanes
  // stay bit-identical to the per-member path.
  constexpr int kChunk = 16;
  const uint8_t* codes[kChunk];
  float norms[kChunk];
  float tile[index::kMaxQueryGroup * kChunk];
  const float* tables[index::kMaxQueryGroup];
  RESINFER_DCHECK(num_members > 0 && num_members <= index::kMaxQueryGroup);
  const int64_t table_size = data_->rq.ip_table_size();
  for (int j = 0; j < num_members; ++j) {
    RESINFER_DCHECK(members[j] >= 0 && members[j] < group_count_);
    tables[j] = group_tables_.data() + members[j] * table_size;
  }
  const int64_t code_size = data_->rq.code_size();
  const int64_t stride = code_record_stride();
  const int stages = data_->rq.num_stages();
  const bool packed = data_->rq.layout().packed();
  if (packed) {
    unpack_scratch_.resize(static_cast<std::size_t>(kChunk) * stages);
  }
  for (int i = 0; i < count; i += kChunk) {
    const int block = std::min(kChunk, count - i);
    for (int j = 0; j < block; ++j) {
      const uint8_t* rec = records + (i + j) * stride;
      const float* sidecars = quant::RecordSidecars(rec, code_size);
      if (packed) {
        uint8_t* row = unpack_scratch_.data() + j * stages;
        quant::UnpackCodes4(rec, stages, row);
        codes[j] = row;
      } else {
        codes[j] = rec;
      }
      norms[j] = sidecars[0];
      for (int g = 0; g < num_members; ++g) {
        extras[static_cast<int64_t>(g) * count + i + j] = sidecars[1];
      }
    }
    simd::PqAdcTile(tables, num_members, stages,
                    data_->rq.num_centroids(), codes, block, tile);
    for (int g = 0; g < num_members; ++g) {
      const float qnorm = group_norms_[static_cast<std::size_t>(members[g])];
      float* row = out + static_cast<int64_t>(g) * count + i;
      const float* ip = tile + g * block;
      for (int j = 0; j < block; ++j) {
        row[j] = qnorm - 2.0f * ip[j] + norms[j];
      }
    }
  }
  SelectQuery(members[num_members - 1]);
}

SqAdcEstimator::SqAdcEstimator(const SqEstimatorData* data) : data_(data) {
  RESINFER_CHECK(data != nullptr && data->sq.trained());
}

int64_t SqAdcEstimator::size() const {
  return static_cast<int64_t>(data_->recon_errors.size());
}

float SqAdcEstimator::Estimate(int64_t id, float* extra) {
  RESINFER_DCHECK(query_ != nullptr);
  *extra = data_->recon_errors[static_cast<std::size_t>(id)];
  return data_->sq.AdcDistance(query_, data_->codes.data() + id * dim());
}

void SqAdcEstimator::EstimateBatch(const int64_t* ids, int count, float* out,
                                   float* extras) {
  RESINFER_DCHECK(query_ != nullptr);
  const int64_t d = dim();
  const std::size_t n = static_cast<std::size_t>(d);
  const float* q = query_;
  const float* vmin = data_->sq.vmin().data();
  const float* step = data_->sq.step().data();
  index::ScanBatch4(
      [this, ids, d](int pos) { return data_->codes.data() + ids[pos] * d; },
      [q, vmin, step, n](const uint8_t* const* codes, float* vals) {
        simd::SqAdcL2SqrBatch4(q, codes, vmin, step, n, vals);
      },
      [this, ids, out, extras](int pos, float val) {
        out[pos] = val;
        extras[pos] =
            data_->recon_errors[static_cast<std::size_t>(ids[pos])];
      },
      [this, ids, out, extras](int pos) {
        out[pos] = Estimate(ids[pos], &extras[pos]);
      },
      count);
}

std::string SqAdcEstimator::code_tag() const {
  if (code_tag_.empty()) {
    uint64_t f = quant::FingerprintArray(data_->codes.data(),
                                         data_->codes.size());
    f = quant::FingerprintArray(data_->recon_errors.data(),
                                data_->recon_errors.size() * sizeof(float),
                                f);
    code_tag_ =
        quant::MakeCodeTag("sq8-adc", data_->sq.code_size(), 1, size(), f);
  }
  return code_tag_;
}

int64_t SqAdcEstimator::code_record_stride() const {
  return quant::CodeRecordStride(data_->sq.code_size(), 1);
}

quant::CodeStore SqAdcEstimator::MakeCodeStore() const {
  const int64_t code_size = data_->sq.code_size();
  quant::CodeStore store(size(), code_size, 1, code_tag());
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i, data_->codes.data() + i * code_size);
    store.SetSidecar(i, 0, data_->recon_errors[static_cast<std::size_t>(i)]);
  }
  return store;
}

void SqAdcEstimator::EstimateBatchCodes(const uint8_t* records, int count,
                                        float* out, float* extras) {
  RESINFER_DCHECK(query_ != nullptr);
  const int64_t d = dim();
  const std::size_t n = static_cast<std::size_t>(d);
  const int64_t stride = code_record_stride();
  const float* q = query_;
  const float* vmin = data_->sq.vmin().data();
  const float* step = data_->sq.step().data();
  index::ScanBatch4(
      [records, stride](int pos) { return records + pos * stride; },
      [q, vmin, step, n](const uint8_t* const* codes, float* vals) {
        simd::SqAdcL2SqrBatch4(q, codes, vmin, step, n, vals);
      },
      [records, stride, d, out, extras](int pos, float val) {
        out[pos] = val;
        extras[pos] =
            quant::RecordSidecars(records + pos * stride, d)[0];
      },
      [this, records, stride, d, out, extras](int pos) {
        const uint8_t* rec = records + pos * stride;
        extras[pos] = quant::RecordSidecars(rec, d)[0];
        out[pos] = data_->sq.AdcDistance(query_, rec);
      },
      count);
}

// --- Training + computer ----------------------------------------------------

LinearCorrector TrainAnyCorrector(ApproxDistanceEstimator& estimator,
                                  const linalg::Matrix& base,
                                  const linalg::Matrix& train_queries,
                                  const TrainingDataOptions& training,
                                  LinearCorrectorOptions corrector) {
  RESINFER_CHECK(base.cols() == train_queries.cols());
  RESINFER_CHECK(estimator.dim() == base.cols());

  std::vector<LabeledPair> pairs =
      CollectLabeledPairs(base, train_queries, training);

  int64_t current_query = -1;
  std::vector<CorrectorSample> samples = MaterializeSamples(
      pairs, [&](int64_t query_index, int64_t id, float* extra) {
        if (query_index != current_query) {
          estimator.BeginQuery(train_queries.Row(query_index));
          current_query = query_index;
        }
        return estimator.Estimate(id, extra);
      });

  corrector.num_features = estimator.has_extra_feature() ? 3 : 2;
  return LinearCorrector::Train(samples, corrector);
}

DdcAnyComputer::DdcAnyComputer(
    const linalg::Matrix* base,
    std::unique_ptr<ApproxDistanceEstimator> estimator,
    const LinearCorrector* corrector)
    : base_(base), estimator_(std::move(estimator)), corrector_(corrector) {
  RESINFER_CHECK(base != nullptr && estimator_ != nullptr &&
                 corrector != nullptr);
  RESINFER_CHECK(estimator_->dim() == base->cols());
  RESINFER_CHECK(estimator_->size() == base->rows());
}

void DdcAnyComputer::BeginQuery(const float* query) {
  query_ = query;
  estimator_->BeginQuery(query);
}

index::EstimateResult DdcAnyComputer::EstimateWithThreshold(int64_t id,
                                                            float tau) {
  ++stats_.candidates;
  float extra = 0.0f;
  const float approx = estimator_->Estimate(id, &extra);

  if (std::isfinite(tau) &&
      corrector_->PredictPrunable(approx, tau, extra)) {
    ++stats_.pruned;
    return {true, approx};
  }
  ++stats_.exact_computations;
  stats_.dims_scanned += dim();
  return {false, simd::L2Sqr(query_, base_->Row(id),
                             static_cast<std::size_t>(dim()))};
}

void DdcAnyComputer::EstimateBatch(const int64_t* ids, int count, float tau,
                                   index::EstimateResult* out) {
  index::EstimatePruneRefine(
      query_, static_cast<std::size_t>(dim()),
      [this](int64_t id) { return base_->Row(id); },
      [this](const int64_t* chunk, int /*start*/, int n, float* approx,
             float* extras) {
        estimator_->EstimateBatch(chunk, n, approx, extras);
      },
      [this, tau](float approx, float extra) {
        return corrector_->PredictPrunable(approx, tau, extra);
      },
      std::isfinite(tau), ids, count, stats_, out);
}

std::string DdcAnyComputer::code_tag() const {
  return estimator_->code_tag();
}

quant::CodeStore DdcAnyComputer::MakeCodeStore() const {
  return estimator_->MakeCodeStore();
}

void DdcAnyComputer::EstimateBatchCodes(const uint8_t* codes,
                                        const int64_t* ids, int count,
                                        float tau,
                                        index::EstimateResult* out) {
  const int64_t stride = estimator_->code_record_stride();
  if (stride <= 0) {  // estimator without a code-resident form: gather
    EstimateBatch(ids, count, tau, out);
    return;
  }
  index::EstimatePruneRefine(
      query_, static_cast<std::size_t>(dim()),
      [this](int64_t id) { return base_->Row(id); },
      [this, codes, stride](const int64_t* /*chunk*/, int start, int n,
                            float* approx, float* extras) {
        estimator_->EstimateBatchCodes(codes + start * stride, n, approx,
                                       extras);
      },
      [this, tau](float approx, float extra) {
        return corrector_->PredictPrunable(approx, tau, extra);
      },
      std::isfinite(tau), ids, count, stats_, out);
}

bool DdcAnyComputer::group_scan_tiles_blocks() const {
  // Block-level member tiling cycles every member's table through the
  // cache once per candidate block; that only pays while the whole
  // group's state fits comfortably in L2 alongside the block itself.
  constexpr int64_t kGroupStateCacheBudget = 128 * 1024;
  const int64_t per_member = estimator_->query_state_bytes();
  return per_member > 0 &&
         per_member * index::kMaxQueryGroup <= kGroupStateCacheBudget;
}

void DdcAnyComputer::SetQueryBatch(const float* queries, int count,
                                   int64_t stride) {
  index::DistanceComputer::SetQueryBatch(queries, count, stride);
  estimator_->SetQueryBatch(queries, count, stride);
}

void DdcAnyComputer::SelectQuery(int g) {
  query_ = GroupQuery(g);
  estimator_->SelectQuery(g);
}

void DdcAnyComputer::EstimateBatchCodesGroup(const uint8_t* codes,
                                             const int64_t* ids, int count,
                                             const int* members,
                                             int num_members,
                                             const float* taus,
                                             index::EstimateResult* out) {
  const int64_t stride = estimator_->code_record_stride();
  if (stride <= 0) {  // estimator without a code-resident form
    index::DistanceComputer::EstimateBatchCodesGroup(
        codes, ids, count, members, num_members, taus, out);
    return;
  }
  RESINFER_DCHECK(num_members > 0 && num_members <= index::kMaxQueryGroup);
  // EstimatePruneRefine's chunk structure (see EstimateBatchCodes), with
  // the approximation stage evaluated for the whole group per chunk and
  // the per-member prune + exact-refine passes unchanged — each member's
  // results and stats are bit-identical to its sequential call.
  float approx[index::kMaxQueryGroup * index::kRefineChunk];
  float extras[index::kMaxQueryGroup * index::kRefineChunk];
  int survivors[index::kRefineChunk];
  const std::size_t d = static_cast<std::size_t>(dim());

  for (int i = 0; i < count; i += index::kRefineChunk) {
    const int block = std::min(index::kRefineChunk, count - i);
    std::fill_n(extras, static_cast<std::size_t>(num_members) * block, 0.0f);
    estimator_->EstimateBatchCodesGroup(codes + i * stride, block, members,
                                        num_members, approx, extras);
    for (int g = 0; g < num_members; ++g) {
      stats_.candidates += block;
      const float tau = taus[g];
      const bool tau_finite = std::isfinite(tau);
      const float* member_approx = approx + g * block;
      const float* member_extras = extras + g * block;
      index::EstimateResult* member_out =
          out + static_cast<int64_t>(g) * count;
      int num_survivors = 0;
      for (int j = 0; j < block; ++j) {
        if (tau_finite && corrector_->PredictPrunable(member_approx[j], tau,
                                                      member_extras[j])) {
          ++stats_.pruned;
          member_out[i + j] = {true, member_approx[j]};
        } else {
          survivors[num_survivors++] = i + j;
        }
      }
      stats_.exact_computations += num_survivors;
      stats_.dims_scanned +=
          static_cast<int64_t>(num_survivors) * static_cast<int64_t>(d);
      index::RefineExactL2(
          GroupQuery(members[g]), d,
          [this](int64_t id) { return base_->Row(id); }, ids, survivors,
          num_survivors, member_out);
    }
  }
  SelectQuery(members[num_members - 1]);
}

float DdcAnyComputer::ExactDistance(int64_t id) {
  RESINFER_DCHECK(query_ != nullptr);
  ++stats_.exact_computations;
  stats_.dims_scanned += dim();
  return simd::L2Sqr(query_, base_->Row(id),
                     static_cast<std::size_t>(dim()));
}

float DdcAnyComputer::ApproximateDistance(int64_t id) {
  float extra = 0.0f;
  return estimator_->Estimate(id, &extra);
}

}  // namespace resinfer::core

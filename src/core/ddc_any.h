// DDCany — the §V generality claim as a reusable component.
//
// The paper's data-driven correction "makes no assumptions about the source
// of these approximate distances". DdcOpq demonstrates that for OPQ;
// this header turns the pattern into an explicit plug-in point: any type
// implementing ApproxDistanceEstimator (one BeginQuery + one Estimate) gets
//   * corrector training via the shared labeled-pair pipeline
//     (TrainAnyCorrector), and
//   * a full DistanceComputer (DdcAnyComputer) that prunes with the learned
//     boundary and falls back to exact distances, usable inside IVF/HNSW.
//
// Three estimator backends ship here — plain PQ (the paper's §V example
// verbatim), Residual Quantization, and 8-bit Scalar Quantization — all
// corrected by the *same* LinearCorrector code that serves DDCpca/DDCopq.
#ifndef RESINFER_CORE_DDC_ANY_H_
#define RESINFER_CORE_DDC_ANY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/linear_corrector.h"
#include "core/training_data.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "quant/code_store.h"
#include "quant/pq.h"
#include "quant/rq.h"
#include "quant/sq.h"

namespace resinfer::core {

// The minimal contract a distance-estimation source must satisfy to plug
// into the data-driven correction. Implementations are stateful per query
// (BeginQuery builds lookup tables); use one instance per search thread.
// Shared trained artifacts (codebooks, codes) live outside the estimator
// and must outlive it.
class ApproxDistanceEstimator {
 public:
  virtual ~ApproxDistanceEstimator() = default;

  virtual std::string name() const = 0;
  virtual int64_t dim() const = 0;
  virtual int64_t size() const = 0;

  // Prepares per-query state. `query` has dim() floats in the ORIGINAL
  // space; estimators apply their own transforms internally.
  virtual void BeginQuery(const float* query) = 0;

  // Approximate distance dis' for candidate `id`. When the estimator
  // carries a per-point trust feature (e.g. reconstruction error), it is
  // written to *extra (never null); otherwise *extra is left at 0.
  virtual float Estimate(int64_t id, float* extra) = 0;

  // Blocked form: out[i]/extras[i] receive Estimate(ids[i]) results,
  // bit-identical to sequential Estimate calls. The default loops; the
  // quantizer backends override with the batched ADC kernels. Estimators
  // without an extra feature leave extras[i] at 0, matching the zeroed
  // scratch a sequential caller passes to Estimate.
  virtual void EstimateBatch(const int64_t* ids, int count, float* out,
                             float* extras) {
    for (int i = 0; i < count; ++i) {
      extras[i] = 0.0f;
      out[i] = Estimate(ids[i], &extras[i]);
    }
  }

  // Whether Estimate fills a meaningful third feature; decides the
  // corrector's feature count at training time.
  virtual bool has_extra_feature() const { return false; }

  // --- Query-group form (the multi-query serving path) --------------------
  // Mirrors DistanceComputer's group API: SetQueryBatch declares a group of
  // `count` queries (member g at queries + g * stride floats, count <=
  // index::kMaxQueryGroup); SelectQuery(g) activates one member. The
  // defaults rebuild state through BeginQuery on every switch; the
  // quantizer backends override to compute all members' ADC tables once
  // per group and swap a pointer on select.
  virtual void SetQueryBatch(const float* queries, int count, int64_t stride);
  virtual void SelectQuery(int g);

  // Group code-resident evaluation: equivalent to, for each j,
  //   SelectQuery(members[j]);
  //   EstimateBatchCodes(records, count, out + j * count,
  //                      extras + j * count);
  // (member-major outputs, last member left selected), bit-identically. The
  // default performs exactly that loop; PQ/RQ override with the
  // query-tiled ADC kernel so one pass over the records serves the whole
  // group.
  virtual void EstimateBatchCodesGroup(const uint8_t* records, int count,
                                       const int* members, int num_members,
                                       float* out, float* extras);

  // --- Code-resident form (quant::CodeStore) ------------------------------
  // Estimators that can evaluate straight from a packed record stream
  // report a non-empty code_tag() plus their record stride, pack their
  // codes + sidecar features with MakeCodeStore, and implement
  // EstimateBatchCodes. The quantizer backends here do; a custom estimator
  // without support keeps the empty defaults and DdcAnyComputer falls back
  // to the id-gather path.

  virtual std::string code_tag() const { return {}; }
  virtual int64_t code_record_stride() const { return 0; }
  virtual quant::CodeStore MakeCodeStore() const { return {}; }

  // Bytes of per-query scan state (ADC tables etc.) one group member
  // keeps live during estimation. DdcAnyComputer uses this to pick the
  // query-major scan order: block-level member tiling only pays while the
  // whole group's state stays cache-resident; above that, member-major
  // bucket runs keep one member's table hot instead of cycling all of
  // them every block.
  virtual int64_t query_state_bytes() const { return 0; }

  // `records` holds `count` records of code_record_stride() bytes each, in
  // candidate order. Fills out[i]/extras[i] bit-identically to
  // EstimateBatch on the ids the records were packed from. Must not be
  // called when code_tag() is empty (the default CHECK-aborts).
  virtual void EstimateBatchCodes(const uint8_t* records, int count,
                                  float* out, float* extras);

 protected:
  const float* GroupQuery(int g) const {
    return group_queries_ + static_cast<int64_t>(g) * group_stride_;
  }

  const float* group_queries_ = nullptr;
  int group_count_ = 0;
  int64_t group_stride_ = 0;
};

// --- Quantizer-backed estimator artifacts --------------------------------

// Plain PQ (no rotation): the §V-B quantization example in its simplest
// form.
struct PqEstimatorData {
  quant::PqCodebook pq;
  std::vector<uint8_t> codes;       // n * code_size
  std::vector<float> recon_errors;  // n, ||x - x̂||^2
  int64_t ExtraBytes() const;
};
PqEstimatorData BuildPqEstimatorData(
    const linalg::Matrix& base, const quant::PqOptions& options = {});

struct RqEstimatorData {
  quant::RqCodebook rq;
  std::vector<uint8_t> codes;       // n * num_stages
  std::vector<float> recon_norms;   // n, ||x̂||^2 (ADC ingredient)
  std::vector<float> recon_errors;  // n, ||x - x̂||^2 (trust feature)
  int64_t ExtraBytes() const;
};
RqEstimatorData BuildRqEstimatorData(const linalg::Matrix& base,
                                     const quant::RqOptions& options = {});

struct SqEstimatorData {
  quant::SqCodebook sq;
  std::vector<uint8_t> codes;       // n * d
  std::vector<float> recon_errors;  // n, ||x - x̂||^2 (trust feature)
  int64_t ExtraBytes() const;
};
SqEstimatorData BuildSqEstimatorData(const linalg::Matrix& base,
                                     const quant::SqOptions& options = {});

// --- Estimators -----------------------------------------------------------

class PqAdcEstimator : public ApproxDistanceEstimator {
 public:
  // `data` must outlive the estimator.
  //
  // Packed 4-bit codebooks (pq.layout().packed()) take the fast-scan tier:
  // BeginQuery additionally quantizes the ADC table to a register-resident
  // u8 LUT (PqCodebook::QuantizeAdcTable) and every estimate path
  // dequantizes the exact integer LUT sum — within the documented
  // m * scale / 2 bound of the float ADC value, with survivors still
  // exactly rescored by the prune/refine epilogue. All packed paths
  // (sequential, batch, code-resident, grouped) share the same sum +
  // dequantization arithmetic, so they stay bit-identical to each other.
  explicit PqAdcEstimator(const PqEstimatorData* data);

  std::string name() const override { return "pq-adc"; }
  int64_t dim() const override { return data_->pq.dim(); }
  int64_t size() const override;
  void BeginQuery(const float* query) override;
  float Estimate(int64_t id, float* extra) override;
  void EstimateBatch(const int64_t* ids, int count, float* out,
                     float* extras) override;
  bool has_extra_feature() const override { return true; }

  // Record: [pq code | recon_error].
  std::string code_tag() const override;
  int64_t code_record_stride() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* records, int count, float* out,
                          float* extras) override;

  // Group form: one ADC table per member, built once; the group scan
  // streams each record chunk through simd::PqAdcTile for all members.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  void EstimateBatchCodesGroup(const uint8_t* records, int count,
                               const int* members, int num_members,
                               float* out, float* extras) override;
  int64_t query_state_bytes() const override;

 private:
  const PqEstimatorData* data_;
  std::vector<float> adc_table_;
  // The table Estimate*/EstimateBatch* read: adc_table_ after BeginQuery,
  // a row of group_tables_ after SelectQuery.
  const float* active_table_ = nullptr;
  std::vector<float> group_tables_;  // group_count_ x adc_table_size
  // Fast-scan state (packed layout only): quantized LUT + affine map per
  // query, with the group variants mirroring group_tables_. The active_*
  // trio swaps on SelectQuery exactly like active_table_.
  bool packed_ = false;
  std::vector<uint8_t> qlut_;
  float qscale_ = 0.0f, qbias_ = 0.0f;
  const uint8_t* active_qlut_ = nullptr;
  float active_qscale_ = 0.0f, active_qbias_ = 0.0f;
  std::vector<uint8_t> group_qluts_;  // group_count_ x fast_scan_lut_bytes
  std::vector<float> group_qscales_, group_qbiases_;
  // Lazily built (content fingerprint is O(n)); estimators are per-thread.
  mutable std::string code_tag_;
};

class RqAdcEstimator : public ApproxDistanceEstimator {
 public:
  explicit RqAdcEstimator(const RqEstimatorData* data);

  std::string name() const override { return "rq-adc"; }
  int64_t dim() const override { return data_->rq.dim(); }
  int64_t size() const override;
  void BeginQuery(const float* query) override;
  float Estimate(int64_t id, float* extra) override;
  void EstimateBatch(const int64_t* ids, int count, float* out,
                     float* extras) override;
  bool has_extra_feature() const override { return true; }

  // Record: [rq code | recon_norm, recon_error].
  std::string code_tag() const override;
  int64_t code_record_stride() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* records, int count, float* out,
                          float* extras) override;

  // Group form: per-member IP tables + query norms; the group scan tiles
  // the table-lookup stage and applies each member's affine combine.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  void EstimateBatchCodesGroup(const uint8_t* records, int count,
                               const int* members, int num_members,
                               float* out, float* extras) override;
  int64_t query_state_bytes() const override;

 private:
  const RqEstimatorData* data_;
  std::vector<float> ip_table_;
  float query_norm_sqr_ = 0.0f;
  const float* active_table_ = nullptr;
  std::vector<float> group_tables_;  // group_count_ x ip_table_size
  std::vector<float> group_norms_;   // ||q||^2 per member
  // Packed-layout scratch: the batch paths unpack each chunk's nibble
  // codes to bytes here before the shared table-lookup kernel (kChunk x
  // num_stages bytes). Values and summation order match the byte path, so
  // the unpack is invisible to results.
  std::vector<uint8_t> unpack_scratch_;
  mutable std::string code_tag_;
};

class SqAdcEstimator : public ApproxDistanceEstimator {
 public:
  explicit SqAdcEstimator(const SqEstimatorData* data);

  std::string name() const override { return "sq8-adc"; }
  int64_t dim() const override { return data_->sq.dim(); }
  int64_t size() const override;
  void BeginQuery(const float* query) override { query_ = query; }
  float Estimate(int64_t id, float* extra) override;
  void EstimateBatch(const int64_t* ids, int count, float* out,
                     float* extras) override;
  bool has_extra_feature() const override { return true; }

  // Record: [sq code (d bytes) | recon_error].
  std::string code_tag() const override;
  int64_t code_record_stride() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* records, int count, float* out,
                          float* extras) override;

 private:
  const SqEstimatorData* data_;
  const float* query_ = nullptr;
  mutable std::string code_tag_;
};

// --- Training + the generic computer --------------------------------------

// Trains a LinearCorrector for `estimator` on labeled pairs harvested from
// (base, train_queries) — the exact pipeline DDCpca/DDCopq use, with the
// feature count chosen from estimator.has_extra_feature(). The estimator's
// per-query state is driven internally; it is left positioned at the last
// training query on return.
LinearCorrector TrainAnyCorrector(
    ApproxDistanceEstimator& estimator, const linalg::Matrix& base,
    const linalg::Matrix& train_queries,
    const TrainingDataOptions& training = TrainingDataOptions(),
    LinearCorrectorOptions corrector = LinearCorrectorOptions());

// DistanceComputer over any estimator + trained corrector: prune when the
// learned boundary says dis > tau, otherwise fall back to the exact
// distance against `base` (original space). All pointers are borrowed.
class DdcAnyComputer : public index::DistanceComputer {
 public:
  DdcAnyComputer(const linalg::Matrix* base,
                 std::unique_ptr<ApproxDistanceEstimator> estimator,
                 const LinearCorrector* corrector);

  int64_t dim() const override { return base_->cols(); }
  int64_t size() const override { return base_->rows(); }
  std::string name() const override { return "ddc-" + estimator_->name(); }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  void EstimateBatch(const int64_t* ids, int count, float tau,
                     index::EstimateResult* out) override;
  // Forwarded to the estimator's code-resident form; falls back to the
  // gather path when the estimator has none.
  std::string code_tag() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                          int count, float tau,
                          index::EstimateResult* out) override;
  // Group form: the estimator evaluates each record chunk for the whole
  // group (tiled ADC where the backend supports it); pruning and exact
  // refinement then run per member against that member's tau and query.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  void EstimateBatchCodesGroup(const uint8_t* codes, const int64_t* ids,
                               int count, const int* members,
                               int num_members, const float* taus,
                               index::EstimateResult* out) override;
  // Block-level member tiling only while the whole group's estimator
  // state (kMaxQueryGroup ADC tables) stays cache-resident; otherwise
  // member-major runs keep one member's table hot per bucket.
  bool group_scan_tiles_blocks() const override;
  float ExactDistance(int64_t id) override;

  // Raw estimator distance for the current query (no correction).
  float ApproximateDistance(int64_t id);

 private:
  const linalg::Matrix* base_;
  std::unique_ptr<ApproxDistanceEstimator> estimator_;
  const LinearCorrector* corrector_;
  const float* query_ = nullptr;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_DDC_ANY_H_

// DDCany — the §V generality claim as a reusable component.
//
// The paper's data-driven correction "makes no assumptions about the source
// of these approximate distances". DdcOpq demonstrates that for OPQ;
// this header turns the pattern into an explicit plug-in point: any type
// implementing ApproxDistanceEstimator (one BeginQuery + one Estimate) gets
//   * corrector training via the shared labeled-pair pipeline
//     (TrainAnyCorrector), and
//   * a full DistanceComputer (DdcAnyComputer) that prunes with the learned
//     boundary and falls back to exact distances, usable inside IVF/HNSW.
//
// Three estimator backends ship here — plain PQ (the paper's §V example
// verbatim), Residual Quantization, and 8-bit Scalar Quantization — all
// corrected by the *same* LinearCorrector code that serves DDCpca/DDCopq.
#ifndef RESINFER_CORE_DDC_ANY_H_
#define RESINFER_CORE_DDC_ANY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/linear_corrector.h"
#include "core/training_data.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "quant/code_store.h"
#include "quant/pq.h"
#include "quant/rq.h"
#include "quant/sq.h"

namespace resinfer::core {

// The minimal contract a distance-estimation source must satisfy to plug
// into the data-driven correction. Implementations are stateful per query
// (BeginQuery builds lookup tables); use one instance per search thread.
// Shared trained artifacts (codebooks, codes) live outside the estimator
// and must outlive it.
class ApproxDistanceEstimator {
 public:
  virtual ~ApproxDistanceEstimator() = default;

  virtual std::string name() const = 0;
  virtual int64_t dim() const = 0;
  virtual int64_t size() const = 0;

  // Prepares per-query state. `query` has dim() floats in the ORIGINAL
  // space; estimators apply their own transforms internally.
  virtual void BeginQuery(const float* query) = 0;

  // Approximate distance dis' for candidate `id`. When the estimator
  // carries a per-point trust feature (e.g. reconstruction error), it is
  // written to *extra (never null); otherwise *extra is left at 0.
  virtual float Estimate(int64_t id, float* extra) = 0;

  // Blocked form: out[i]/extras[i] receive Estimate(ids[i]) results,
  // bit-identical to sequential Estimate calls. The default loops; the
  // quantizer backends override with the batched ADC kernels. Estimators
  // without an extra feature leave extras[i] at 0, matching the zeroed
  // scratch a sequential caller passes to Estimate.
  virtual void EstimateBatch(const int64_t* ids, int count, float* out,
                             float* extras) {
    for (int i = 0; i < count; ++i) {
      extras[i] = 0.0f;
      out[i] = Estimate(ids[i], &extras[i]);
    }
  }

  // Whether Estimate fills a meaningful third feature; decides the
  // corrector's feature count at training time.
  virtual bool has_extra_feature() const { return false; }

  // --- Code-resident form (quant::CodeStore) ------------------------------
  // Estimators that can evaluate straight from a packed record stream
  // report a non-empty code_tag() plus their record stride, pack their
  // codes + sidecar features with MakeCodeStore, and implement
  // EstimateBatchCodes. The quantizer backends here do; a custom estimator
  // without support keeps the empty defaults and DdcAnyComputer falls back
  // to the id-gather path.

  virtual std::string code_tag() const { return {}; }
  virtual int64_t code_record_stride() const { return 0; }
  virtual quant::CodeStore MakeCodeStore() const { return {}; }

  // `records` holds `count` records of code_record_stride() bytes each, in
  // candidate order. Fills out[i]/extras[i] bit-identically to
  // EstimateBatch on the ids the records were packed from. Must not be
  // called when code_tag() is empty (the default CHECK-aborts).
  virtual void EstimateBatchCodes(const uint8_t* records, int count,
                                  float* out, float* extras);
};

// --- Quantizer-backed estimator artifacts --------------------------------

// Plain PQ (no rotation): the §V-B quantization example in its simplest
// form.
struct PqEstimatorData {
  quant::PqCodebook pq;
  std::vector<uint8_t> codes;       // n * code_size
  std::vector<float> recon_errors;  // n, ||x - x̂||^2
  int64_t ExtraBytes() const;
};
PqEstimatorData BuildPqEstimatorData(
    const linalg::Matrix& base, const quant::PqOptions& options = {});

struct RqEstimatorData {
  quant::RqCodebook rq;
  std::vector<uint8_t> codes;       // n * num_stages
  std::vector<float> recon_norms;   // n, ||x̂||^2 (ADC ingredient)
  std::vector<float> recon_errors;  // n, ||x - x̂||^2 (trust feature)
  int64_t ExtraBytes() const;
};
RqEstimatorData BuildRqEstimatorData(const linalg::Matrix& base,
                                     const quant::RqOptions& options = {});

struct SqEstimatorData {
  quant::SqCodebook sq;
  std::vector<uint8_t> codes;       // n * d
  std::vector<float> recon_errors;  // n, ||x - x̂||^2 (trust feature)
  int64_t ExtraBytes() const;
};
SqEstimatorData BuildSqEstimatorData(const linalg::Matrix& base,
                                     const quant::SqOptions& options = {});

// --- Estimators -----------------------------------------------------------

class PqAdcEstimator : public ApproxDistanceEstimator {
 public:
  // `data` must outlive the estimator.
  explicit PqAdcEstimator(const PqEstimatorData* data);

  std::string name() const override { return "pq-adc"; }
  int64_t dim() const override { return data_->pq.dim(); }
  int64_t size() const override;
  void BeginQuery(const float* query) override;
  float Estimate(int64_t id, float* extra) override;
  void EstimateBatch(const int64_t* ids, int count, float* out,
                     float* extras) override;
  bool has_extra_feature() const override { return true; }

  // Record: [pq code | recon_error].
  std::string code_tag() const override;
  int64_t code_record_stride() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* records, int count, float* out,
                          float* extras) override;

 private:
  const PqEstimatorData* data_;
  std::vector<float> adc_table_;
  // Lazily built (content fingerprint is O(n)); estimators are per-thread.
  mutable std::string code_tag_;
};

class RqAdcEstimator : public ApproxDistanceEstimator {
 public:
  explicit RqAdcEstimator(const RqEstimatorData* data);

  std::string name() const override { return "rq-adc"; }
  int64_t dim() const override { return data_->rq.dim(); }
  int64_t size() const override;
  void BeginQuery(const float* query) override;
  float Estimate(int64_t id, float* extra) override;
  void EstimateBatch(const int64_t* ids, int count, float* out,
                     float* extras) override;
  bool has_extra_feature() const override { return true; }

  // Record: [rq code | recon_norm, recon_error].
  std::string code_tag() const override;
  int64_t code_record_stride() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* records, int count, float* out,
                          float* extras) override;

 private:
  const RqEstimatorData* data_;
  std::vector<float> ip_table_;
  float query_norm_sqr_ = 0.0f;
  mutable std::string code_tag_;
};

class SqAdcEstimator : public ApproxDistanceEstimator {
 public:
  explicit SqAdcEstimator(const SqEstimatorData* data);

  std::string name() const override { return "sq8-adc"; }
  int64_t dim() const override { return data_->sq.dim(); }
  int64_t size() const override;
  void BeginQuery(const float* query) override { query_ = query; }
  float Estimate(int64_t id, float* extra) override;
  void EstimateBatch(const int64_t* ids, int count, float* out,
                     float* extras) override;
  bool has_extra_feature() const override { return true; }

  // Record: [sq code (d bytes) | recon_error].
  std::string code_tag() const override;
  int64_t code_record_stride() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* records, int count, float* out,
                          float* extras) override;

 private:
  const SqEstimatorData* data_;
  const float* query_ = nullptr;
  mutable std::string code_tag_;
};

// --- Training + the generic computer --------------------------------------

// Trains a LinearCorrector for `estimator` on labeled pairs harvested from
// (base, train_queries) — the exact pipeline DDCpca/DDCopq use, with the
// feature count chosen from estimator.has_extra_feature(). The estimator's
// per-query state is driven internally; it is left positioned at the last
// training query on return.
LinearCorrector TrainAnyCorrector(
    ApproxDistanceEstimator& estimator, const linalg::Matrix& base,
    const linalg::Matrix& train_queries,
    const TrainingDataOptions& training = TrainingDataOptions(),
    LinearCorrectorOptions corrector = LinearCorrectorOptions());

// DistanceComputer over any estimator + trained corrector: prune when the
// learned boundary says dis > tau, otherwise fall back to the exact
// distance against `base` (original space). All pointers are borrowed.
class DdcAnyComputer : public index::DistanceComputer {
 public:
  DdcAnyComputer(const linalg::Matrix* base,
                 std::unique_ptr<ApproxDistanceEstimator> estimator,
                 const LinearCorrector* corrector);

  int64_t dim() const override { return base_->cols(); }
  int64_t size() const override { return base_->rows(); }
  std::string name() const override { return "ddc-" + estimator_->name(); }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  void EstimateBatch(const int64_t* ids, int count, float tau,
                     index::EstimateResult* out) override;
  // Forwarded to the estimator's code-resident form; falls back to the
  // gather path when the estimator has none.
  std::string code_tag() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                          int count, float tau,
                          index::EstimateResult* out) override;
  float ExactDistance(int64_t id) override;

  // Raw estimator distance for the current query (no correction).
  float ApproximateDistance(int64_t id);

 private:
  const linalg::Matrix* base_;
  std::unique_ptr<ApproxDistanceEstimator> estimator_;
  const LinearCorrector* corrector_;
  const float* query_ = nullptr;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_DDC_ANY_H_

#include "core/ddc_opq.h"

#include <algorithm>
#include <cmath>

#include "core/pq_scan.h"
#include "index/block_refine.h"
#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace resinfer::core {

int DefaultOpqSubspaces(int64_t dim) {
  int target = static_cast<int>(std::max<int64_t>(1, dim / 4));
  return quant::LargestDivisorAtMost(dim, target);
}

DdcOpqArtifacts TrainDdcOpq(const linalg::Matrix& base,
                            const linalg::Matrix& train_queries,
                            const DdcOpqOptions& options) {
  const int64_t n = base.rows();
  const int64_t d = base.cols();
  RESINFER_CHECK(d == train_queries.cols());

  DdcOpqArtifacts artifacts;
  WallTimer timer;

  quant::OpqOptions opq_options = options.opq;
  if (opq_options.pq.num_subspaces <= 0 ||
      d % opq_options.pq.num_subspaces != 0) {
    opq_options.pq.num_subspaces = DefaultOpqSubspaces(d);
  }
  artifacts.opq = quant::OpqModel::Train(base.data(), n, d, opq_options);

  // Encode the full base in the rotated space; keep per-point
  // reconstruction errors as the classifier's third feature.
  linalg::Matrix rotated = artifacts.opq.RotateBatch(base.data(), n);
  artifacts.codes = artifacts.opq.codebook().EncodeBatch(rotated.data(), n);
  artifacts.recon_errors.resize(n);
  const auto& codebook = artifacts.opq.codebook();
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    std::vector<float> decoded(d);
    for (int64_t i = begin; i < end; ++i) {
      codebook.Decode(artifacts.codes.data() + i * codebook.code_size(),
                      decoded.data());
      artifacts.recon_errors[i] = simd::L2Sqr(
          decoded.data(), rotated.Row(i), static_cast<std::size_t>(d));
    }
  });
  artifacts.opq_train_seconds = timer.ElapsedSeconds();

  // Corrector training.
  timer.Reset();
  std::vector<LabeledPair> pairs =
      CollectLabeledPairs(base, train_queries, options.training);

  linalg::Matrix rotated_queries =
      artifacts.opq.RotateBatch(train_queries.data(), train_queries.rows());
  std::vector<float> table(codebook.adc_table_size());
  // Packed codebooks serve quantized-LUT estimates at query time, so the
  // corrector must be trained on the same feature distribution it will see.
  const bool packed = codebook.layout().packed();
  std::vector<uint8_t> lut(
      packed ? static_cast<std::size_t>(codebook.fast_scan_lut_bytes()) : 0);
  float lut_scale = 0.0f, lut_bias = 0.0f;
  int64_t table_query = -1;
  std::vector<CorrectorSample> samples = MaterializeSamples(
      pairs, [&](int64_t query_index, int64_t id, float* extra) {
        if (query_index != table_query) {
          codebook.ComputeAdcTable(rotated_queries.Row(query_index),
                                   table.data());
          if (packed) {
            codebook.QuantizeAdcTable(table.data(), lut.data(), &lut_scale,
                                      &lut_bias);
          }
          table_query = query_index;
        }
        *extra = artifacts.recon_errors[id];
        const uint8_t* code =
            artifacts.codes.data() + id * codebook.code_size();
        if (packed) {
          return quant::PqCodebook::DequantizeFastScanSum(
              simd::PqAdcFastScanOne(lut.data(), codebook.num_subspaces(),
                                     code),
              lut_scale, lut_bias);
        }
        return codebook.AdcDistance(table.data(), code);
      });

  LinearCorrectorOptions corrector_options = options.corrector;
  corrector_options.num_features = 3;
  artifacts.corrector = LinearCorrector::Train(samples, corrector_options);
  artifacts.corrector_train_seconds = timer.ElapsedSeconds();
  return artifacts;
}

DdcOpqComputer::DdcOpqComputer(const linalg::Matrix* base,
                               const DdcOpqArtifacts* artifacts)
    : base_(base),
      artifacts_(artifacts),
      packed_(artifacts != nullptr &&
              artifacts->opq.codebook().layout().packed()) {
  RESINFER_CHECK(base != nullptr && artifacts != nullptr);
  RESINFER_CHECK(artifacts->opq.trained());
  RESINFER_CHECK(artifacts->opq.dim() == base->cols());
  rotated_query_.resize(base->cols());
  adc_table_.resize(artifacts->opq.codebook().adc_table_size());
  active_adc_table_ = adc_table_.data();
  if (packed_) {
    qlut_.resize(static_cast<std::size_t>(
        artifacts->opq.codebook().fast_scan_lut_bytes()));
    active_qlut_ = qlut_.data();
  }
}

void DdcOpqComputer::BeginQuery(const float* query) {
  query_ = query;
  artifacts_->opq.Rotate(query, rotated_query_.data());
  artifacts_->opq.codebook().ComputeAdcTable(rotated_query_.data(),
                                             adc_table_.data());
  active_adc_table_ = adc_table_.data();
  if (packed_) {
    artifacts_->opq.codebook().QuantizeAdcTable(adc_table_.data(),
                                                qlut_.data(), &qscale_,
                                                &qbias_);
    active_qlut_ = qlut_.data();
    active_qscale_ = qscale_;
    active_qbias_ = qbias_;
  }
}

void DdcOpqComputer::SetQueryBatch(const float* queries, int count,
                                   int64_t stride) {
  index::DistanceComputer::SetQueryBatch(queries, count, stride);
  const auto& codebook = artifacts_->opq.codebook();
  const int64_t table_size = codebook.adc_table_size();
  group_tables_.resize(static_cast<std::size_t>(count * table_size));
  const int64_t lut_bytes = packed_ ? codebook.fast_scan_lut_bytes() : 0;
  if (packed_) {
    group_qluts_.resize(static_cast<std::size_t>(count * lut_bytes));
    group_qscales_.resize(static_cast<std::size_t>(count));
    group_qbiases_.resize(static_cast<std::size_t>(count));
  }
  for (int g = 0; g < count; ++g) {
    artifacts_->opq.Rotate(GroupQuery(g), rotated_query_.data());
    float* table = group_tables_.data() + g * table_size;
    codebook.ComputeAdcTable(rotated_query_.data(), table);
    if (packed_) {
      codebook.QuantizeAdcTable(
          table, group_qluts_.data() + g * lut_bytes,
          &group_qscales_[static_cast<std::size_t>(g)],
          &group_qbiases_[static_cast<std::size_t>(g)]);
    }
  }
}

void DdcOpqComputer::SelectQuery(int g) {
  RESINFER_DCHECK(g >= 0 && g < group_count_);
  query_ = GroupQuery(g);
  const auto& codebook = artifacts_->opq.codebook();
  active_adc_table_ = group_tables_.data() + g * codebook.adc_table_size();
  if (packed_) {
    active_qlut_ = group_qluts_.data() + g * codebook.fast_scan_lut_bytes();
    active_qscale_ = group_qscales_[static_cast<std::size_t>(g)];
    active_qbias_ = group_qbiases_[static_cast<std::size_t>(g)];
  }
}

index::EstimateResult DdcOpqComputer::EstimateWithThreshold(int64_t id,
                                                            float tau) {
  ++stats_.candidates;
  const auto& codebook = artifacts_->opq.codebook();
  const uint8_t* code =
      artifacts_->codes.data() + id * codebook.code_size();
  const float adc =
      packed_ ? quant::PqCodebook::DequantizeFastScanSum(
                    simd::PqAdcFastScanOne(active_qlut_,
                                           codebook.num_subspaces(), code),
                    active_qscale_, active_qbias_)
              : codebook.AdcDistance(active_adc_table_, code);

  if (std::isfinite(tau) &&
      artifacts_->corrector.PredictPrunable(adc, tau,
                                            artifacts_->recon_errors[id])) {
    ++stats_.pruned;
    return {true, adc};
  }
  ++stats_.exact_computations;
  stats_.dims_scanned += dim();
  return {false, ExactDistance(id)};
}

void DdcOpqComputer::EstimateBatch(const int64_t* ids, int count, float tau,
                                   index::EstimateResult* out) {
  const auto& codebook = artifacts_->opq.codebook();
  const int64_t code_size = codebook.code_size();
  index::EstimatePruneRefine(
      query_, static_cast<std::size_t>(dim()),
      [this](int64_t id) { return base_->Row(id); },
      [this, &codebook, code_size](const int64_t* chunk, int /*start*/, int n,
                                   float* approx, float* extras) {
        const uint8_t* codes[index::kRefineChunk];
        for (int j = 0; j < n; ++j) {
          codes[j] = artifacts_->codes.data() + chunk[j] * code_size;
          extras[j] = artifacts_->recon_errors[chunk[j]];
        }
        ScorePqChunk(codebook, packed_, active_adc_table_, active_qlut_,
                     active_qscale_, active_qbias_, codes, n, approx);
      },
      [this, tau](float approx, float extra) {
        return artifacts_->corrector.PredictPrunable(approx, tau, extra);
      },
      std::isfinite(tau), ids, count, stats_, out);
}

std::string DdcOpqComputer::code_tag() const {
  if (code_tag_.empty()) {
    uint64_t f = quant::FingerprintArray(artifacts_->codes.data(),
                                         artifacts_->codes.size());
    f = quant::FingerprintArray(
        artifacts_->recon_errors.data(),
        artifacts_->recon_errors.size() * sizeof(float), f);
    code_tag_ = quant::MakeCodeTag(
        "ddc-opq", artifacts_->opq.codebook().code_size(), 1, size(), f,
        artifacts_->opq.codebook().layout().packing);
  }
  return code_tag_;
}

quant::CodeStore DdcOpqComputer::MakeCodeStore() const {
  const int64_t code_size = artifacts_->opq.codebook().code_size();
  quant::CodeStore store(size(), code_size, 1, code_tag(),
                         artifacts_->opq.codebook().layout().packing);
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i, artifacts_->codes.data() + i * code_size);
    store.SetSidecar(i, 0, artifacts_->recon_errors[i]);
  }
  return store;
}

void DdcOpqComputer::EstimateBatchCodes(const uint8_t* codes,
                                        const int64_t* ids, int count,
                                        float tau,
                                        index::EstimateResult* out) {
  // Same prune/refine pipeline as EstimateBatch; ADC code pointers and the
  // trust feature stream off the bucket-contiguous records instead of
  // id-indexed gathers. Exact refinement of survivors still gathers
  // full-precision rows, as the sequential path does.
  const auto& codebook = artifacts_->opq.codebook();
  const int64_t code_size = codebook.code_size();
  const int64_t stride = quant::CodeRecordStride(code_size, 1);
  index::EstimatePruneRefine(
      query_, static_cast<std::size_t>(dim()),
      [this](int64_t id) { return base_->Row(id); },
      [this, &codebook, codes, code_size, stride](
          const int64_t* /*chunk*/, int start, int n, float* approx,
          float* extras) {
        const uint8_t* code_ptrs[index::kRefineChunk];
        for (int j = 0; j < n; ++j) {
          const uint8_t* rec = codes + (start + j) * stride;
          code_ptrs[j] = rec;
          extras[j] = quant::RecordSidecars(rec, code_size)[0];
        }
        ScorePqChunk(codebook, packed_, active_adc_table_, active_qlut_,
                     active_qscale_, active_qbias_, code_ptrs, n, approx);
      },
      [this, tau](float approx, float extra) {
        return artifacts_->corrector.PredictPrunable(approx, tau, extra);
      },
      std::isfinite(tau), ids, count, stats_, out);
}

float DdcOpqComputer::ExactDistance(int64_t id) {
  RESINFER_DCHECK(query_ != nullptr);
  return simd::L2Sqr(base_->Row(id), query_,
                     static_cast<std::size_t>(base_->cols()));
}

float DdcOpqComputer::ApproximateDistance(int64_t id) const {
  const auto& codebook = artifacts_->opq.codebook();
  const uint8_t* code =
      artifacts_->codes.data() + id * codebook.code_size();
  if (packed_) {
    return quant::PqCodebook::DequantizeFastScanSum(
        simd::PqAdcFastScanOne(active_qlut_, codebook.num_subspaces(), code),
        active_qscale_, active_qbias_);
  }
  return codebook.AdcDistance(active_adc_table_, code);
}

}  // namespace resinfer::core

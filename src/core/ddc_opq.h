// DDCopq (§V-B): OPQ asymmetric (ADC) distance as the approximation,
// corrected by a learned linear classifier — the demonstration that the
// data-driven correction is agnostic to the distance-estimation source.
//
// Features: the ADC distance, the threshold tau, and (third feature, per
// the paper) the distance from the point to its quantized centroid — a
// per-point reconstruction error that tells the classifier how much to
// trust the ADC estimate for that particular point.
#ifndef RESINFER_CORE_DDC_OPQ_H_
#define RESINFER_CORE_DDC_OPQ_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/linear_corrector.h"
#include "core/training_data.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "quant/opq.h"

namespace resinfer::core {

struct DdcOpqOptions {
  quant::OpqOptions opq;
  LinearCorrectorOptions corrector;  // num_features forced to 3
  TrainingDataOptions training;
};

// Picks num_subspaces =~ dim/4 (the paper's storage setting, §VI-B) as the
// largest divisor of `dim` at most dim/4, floor 1.
int DefaultOpqSubspaces(int64_t dim);

// Trained per-dataset state shared by DdcOpqComputer instances.
struct DdcOpqArtifacts {
  quant::OpqModel opq;
  std::vector<uint8_t> codes;       // n * code_size
  std::vector<float> recon_errors;  // n, squared reconstruction error
  LinearCorrector corrector;
  double opq_train_seconds = 0.0;
  double corrector_train_seconds = 0.0;

  int64_t ExtraBytes() const {
    return static_cast<int64_t>(codes.size()) +
           static_cast<int64_t>(recon_errors.size()) * sizeof(float) +
           opq.rotation().size() * static_cast<int64_t>(sizeof(float));
  }
};

DdcOpqArtifacts TrainDdcOpq(const linalg::Matrix& base,
                            const linalg::Matrix& train_queries,
                            const DdcOpqOptions& options = DdcOpqOptions());

class DdcOpqComputer : public index::DistanceComputer {
 public:
  // `base` is the ORIGINAL (un-rotated) data — exact fallbacks are computed
  // there; ADC estimates live in the OPQ-rotated space. Both must outlive
  // the computer.
  DdcOpqComputer(const linalg::Matrix* base, const DdcOpqArtifacts* artifacts);

  int64_t dim() const override { return base_->cols(); }
  int64_t size() const override { return base_->rows(); }
  std::string name() const override { return "ddc-opq"; }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  void EstimateBatch(const int64_t* ids, int count, float tau,
                     index::EstimateResult* out) override;
  // Code-resident form; record = [opq code | recon_error].
  std::string code_tag() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                          int count, float tau,
                          index::EstimateResult* out) override;
  // Group form: rotated queries + ADC tables for every member built once
  // per SetQueryBatch; SelectQuery swaps pointers.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  float ExactDistance(int64_t id) override;

  // Raw ADC distance for the current query (no correction).
  float ApproximateDistance(int64_t id) const;

 private:
  const linalg::Matrix* base_;
  const DdcOpqArtifacts* artifacts_;

  const float* query_ = nullptr;      // original space, for exact fallback
  std::vector<float> rotated_query_;  // OPQ space
  std::vector<float> adc_table_;
  // The table the estimate paths read: adc_table_ after BeginQuery, a row
  // of group_tables_ after SelectQuery. The rotated query is consumed
  // immediately by ComputeAdcTable, so group members share rotated_query_
  // as scratch instead of keeping per-member copies.
  const float* active_adc_table_ = nullptr;
  std::vector<float> group_tables_;  // group x adc_table_size
  // Fast-scan state (packed 4-bit OPQ codebooks): per-query quantized LUT
  // + affine map, swapped by SelectQuery like active_adc_table_. Estimates
  // then dequantize exact integer LUT sums (within the documented
  // m * scale / 2 bound); survivors are exactly rescored as usual.
  bool packed_ = false;
  std::vector<uint8_t> qlut_;
  float qscale_ = 0.0f, qbias_ = 0.0f;
  const uint8_t* active_qlut_ = nullptr;
  float active_qscale_ = 0.0f, active_qbias_ = 0.0f;
  std::vector<uint8_t> group_qluts_;
  std::vector<float> group_qscales_, group_qbiases_;
  // Lazily built (content fingerprint is O(n)); computers are per-thread.
  mutable std::string code_tag_;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_DDC_OPQ_H_

#include "core/ddc_pca.h"

#include <algorithm>
#include <cmath>

#include "index/block_refine.h"
#include "simd/kernels.h"
#include "util/macros.h"
#include "util/timer.h"

namespace resinfer::core {

DdcPcaArtifacts TrainDdcPca(const linalg::PcaModel& pca,
                            const linalg::Matrix& rotated_base,
                            const linalg::Matrix& base,
                            const linalg::Matrix& train_queries,
                            const DdcPcaOptions& options) {
  RESINFER_CHECK(pca.fitted());
  RESINFER_CHECK(rotated_base.rows() == base.rows());
  WallTimer timer;

  DdcPcaArtifacts artifacts;
  const int64_t full_dim = pca.dim();
  for (int64_t d = options.init_dim; d < full_dim;
       d += options.delta_dim) {
    artifacts.stage_dims.push_back(d);
  }
  RESINFER_CHECK_MSG(!artifacts.stage_dims.empty(),
                     "init_dim must be smaller than the data dimension");

  // Shared labeled pairs (exact KNN of every training query — the
  // expensive step, done once for all stages).
  std::vector<LabeledPair> pairs =
      CollectLabeledPairs(base, train_queries, options.training);

  // Rotate the training queries once.
  linalg::Matrix rotated_queries =
      pca.TransformBatch(train_queries.data(), train_queries.rows());

  const int num_stages = static_cast<int>(artifacts.stage_dims.size());
  double per_stage_recall = options.corrector.target_recall;
  if (options.split_target_across_stages && num_stages > 1) {
    per_stage_recall = std::pow(options.corrector.target_recall,
                                1.0 / static_cast<double>(num_stages));
  }

  for (int stage = 0; stage < num_stages; ++stage) {
    const int64_t d = artifacts.stage_dims[stage];
    std::vector<CorrectorSample> samples = MaterializeSamples(
        pairs, [&](int64_t query_index, int64_t id, float* /*extra*/) {
          return simd::L2Sqr(rotated_base.Row(id),
                             rotated_queries.Row(query_index),
                             static_cast<std::size_t>(d));
        });
    LinearCorrectorOptions corrector_options = options.corrector;
    corrector_options.num_features = 2;
    corrector_options.target_recall = per_stage_recall;
    corrector_options.seed = options.corrector.seed +
                             static_cast<uint64_t>(stage) * 101;
    artifacts.correctors.push_back(
        LinearCorrector::Train(samples, corrector_options));
  }
  artifacts.train_seconds = timer.ElapsedSeconds();
  return artifacts;
}

DdcPcaComputer::DdcPcaComputer(const linalg::PcaModel* pca,
                               const linalg::Matrix* rotated_base,
                               const DdcPcaArtifacts* artifacts)
    : pca_(pca), rotated_base_(rotated_base), artifacts_(artifacts) {
  RESINFER_CHECK(pca != nullptr && rotated_base != nullptr &&
                 artifacts != nullptr);
  RESINFER_CHECK(pca->fitted());
  RESINFER_CHECK(artifacts->stage_dims.size() ==
                 artifacts->correctors.size());
  RESINFER_CHECK(!artifacts->stage_dims.empty());
  RESINFER_CHECK(artifacts->stage_dims.back() < pca->dim());
  rotated_query_.resize(pca->dim());
  active_rotated_query_ = rotated_query_.data();
}

void DdcPcaComputer::BeginQuery(const float* query) {
  pca_->Transform(query, rotated_query_.data());
  active_rotated_query_ = rotated_query_.data();
}

void DdcPcaComputer::SetQueryBatch(const float* queries, int count,
                                   int64_t stride) {
  index::DistanceComputer::SetQueryBatch(queries, count, stride);
  const int64_t d = pca_->dim();
  group_rotated_.resize(static_cast<std::size_t>(count * d));
  for (int g = 0; g < count; ++g) {
    pca_->Transform(GroupQuery(g), group_rotated_.data() + g * d);
  }
}

void DdcPcaComputer::SelectQuery(int g) {
  RESINFER_DCHECK(g >= 0 && g < group_count_);
  active_rotated_query_ = group_rotated_.data() + g * pca_->dim();
}

index::EstimateResult DdcPcaComputer::EstimateWithThreshold(int64_t id,
                                                            float tau) {
  ++stats_.candidates;
  const int64_t d0 = artifacts_->stage_dims[0];
  const float* x = rotated_base_->Row(id);
  const float partial = simd::L2Sqr(x, active_rotated_query_,
                                    static_cast<std::size_t>(d0));
  stats_.dims_scanned += d0;
  return ContinueFromFirstStage(x, tau, partial);
}

index::EstimateResult DdcPcaComputer::ContinueFromFirstStage(const float* x,
                                                             float tau,
                                                             float partial) {
  const int64_t full_dim = pca_->dim();
  const float* q = active_rotated_query_;
  const bool tau_finite = std::isfinite(tau);

  int64_t d = artifacts_->stage_dims[0];
  for (std::size_t stage = 0;;) {
    if (tau_finite &&
        artifacts_->correctors[stage].PredictPrunable(partial, tau)) {
      ++stats_.pruned;
      return {true, partial};
    }
    if (++stage == artifacts_->stage_dims.size()) break;
    const int64_t next = artifacts_->stage_dims[stage];
    partial += simd::L2Sqr(x + d, q + d, static_cast<std::size_t>(next - d));
    stats_.dims_scanned += next - d;
    d = next;
  }
  partial += simd::L2Sqr(x + d, q + d, static_cast<std::size_t>(full_dim - d));
  stats_.dims_scanned += full_dim - d;
  ++stats_.exact_computations;
  return {false, partial};
}

void DdcPcaComputer::EstimateBatch(const int64_t* ids, int count, float tau,
                                   index::EstimateResult* out) {
  // The first (cheapest, most selective) stage runs four candidates per
  // kernel call with next-block prefetch; survivors continue through the
  // cascade one at a time, exactly as the sequential path would.
  const int64_t d0 = artifacts_->stage_dims[0];
  const float* q = active_rotated_query_;
  index::ScanBatch4(
      [this, ids](int pos) { return rotated_base_->Row(ids[pos]); },
      [q, d0](const float* const* rows, float* partial) {
        simd::L2SqrBatch4(q, rows, static_cast<std::size_t>(d0), partial);
      },
      [this, ids, tau, d0, out](int pos, float partial) {
        ++stats_.candidates;
        stats_.dims_scanned += d0;
        out[pos] =
            ContinueFromFirstStage(rotated_base_->Row(ids[pos]), tau, partial);
      },
      [this, ids, tau, out](int pos) {
        out[pos] = EstimateWithThreshold(ids[pos], tau);
      },
      count);
}

std::string DdcPcaComputer::code_tag() const {
  if (code_tag_.empty()) {
    const uint64_t f = quant::FingerprintArray(
        rotated_base_->data(),
        static_cast<std::size_t>(rotated_base_->size()) * sizeof(float));
    code_tag_ = quant::MakeCodeTag(
        "ddc-pca", pca_->dim() * static_cast<int64_t>(sizeof(float)), 0,
        size(), f);
  }
  return code_tag_;
}

quant::CodeStore DdcPcaComputer::MakeCodeStore() const {
  const int64_t code_size = pca_->dim() * static_cast<int64_t>(sizeof(float));
  quant::CodeStore store(size(), code_size, 0, code_tag());
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i,
                  reinterpret_cast<const uint8_t*>(rotated_base_->Row(i)));
  }
  return store;
}

void DdcPcaComputer::EstimateBatchCodes(const uint8_t* codes,
                                        const int64_t* ids, int count,
                                        float tau,
                                        index::EstimateResult* out) {
  (void)ids;  // the record carries the whole rotated row; no gathers at all
  const int64_t d0 = artifacts_->stage_dims[0];
  const int64_t stride = quant::CodeRecordStride(
      pca_->dim() * static_cast<int64_t>(sizeof(float)), 0);
  const float* q = active_rotated_query_;
  const auto row = [codes, stride](int pos) {
    return reinterpret_cast<const float*>(codes + pos * stride);
  };
  index::ScanBatch4(
      row,
      [q, d0](const float* const* rows, float* partial) {
        simd::L2SqrBatch4(q, rows, static_cast<std::size_t>(d0), partial);
      },
      [this, row, tau, d0, out](int pos, float partial) {
        ++stats_.candidates;
        stats_.dims_scanned += d0;
        out[pos] = ContinueFromFirstStage(row(pos), tau, partial);
      },
      [this, row, q, tau, d0, out](int pos) {
        ++stats_.candidates;
        const float* x = row(pos);
        const float partial =
            simd::L2Sqr(x, q, static_cast<std::size_t>(d0));
        stats_.dims_scanned += d0;
        out[pos] = ContinueFromFirstStage(x, tau, partial);
      },
      count);
}

float DdcPcaComputer::ExactDistance(int64_t id) {
  return simd::L2Sqr(rotated_base_->Row(id), active_rotated_query_,
                     static_cast<std::size_t>(pca_->dim()));
}

float DdcPcaComputer::ApproximateDistance(int64_t id, int64_t d) const {
  d = std::clamp<int64_t>(d, 0, pca_->dim());
  return simd::L2Sqr(rotated_base_->Row(id), active_rotated_query_,
                     static_cast<std::size_t>(d));
}

int64_t DdcPcaComputer::ExtraBytes() const {
  // Rotation matrix + a handful of classifier weights.
  return pca_->rotation().size() * static_cast<int64_t>(sizeof(float)) +
         static_cast<int64_t>(artifacts_->correctors.size()) * 4 *
             static_cast<int64_t>(sizeof(float));
}

}  // namespace resinfer::core

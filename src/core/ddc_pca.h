// DDCpca (§V-B): plain PCA low-dimensional distance as the approximation,
// corrected by learned linear classifiers.
//
// Unlike DDCres there is no distance decomposition — the approximate
// distance at stage dimension d is simply ||x_d - q_d||^2 (a lower bound of
// the exact distance that grows toward it as d increases). One classifier
// is trained per incremental stage (§V-B "Incremental Correction"); at
// query time a candidate is pruned at the first stage whose classifier
// predicts dis > tau, otherwise the scan continues to the next stage and
// finally to the exact distance.
#ifndef RESINFER_CORE_DDC_PCA_H_
#define RESINFER_CORE_DDC_PCA_H_

#include <memory>
#include <string>
#include <vector>

#include "core/linear_corrector.h"
#include "core/training_data.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace resinfer::core {

struct DdcPcaOptions {
  int64_t init_dim = 32;
  int64_t delta_dim = 64;
  // Split the overall target recall geometrically across stages so the
  // survival probability of a true neighbor over the whole cascade matches
  // the configured target.
  bool split_target_across_stages = true;
  LinearCorrectorOptions corrector;
  TrainingDataOptions training;
};

// Trained state shared by all DdcPcaComputer instances for one dataset.
struct DdcPcaArtifacts {
  std::vector<int64_t> stage_dims;          // ascending, all < D
  std::vector<LinearCorrector> correctors;  // one per stage
  double train_seconds = 0.0;
};

// `pca`/`rotated_base` are the same artifacts DDCres uses; `base` /
// `train_queries` are in the original space.
DdcPcaArtifacts TrainDdcPca(const linalg::PcaModel& pca,
                            const linalg::Matrix& rotated_base,
                            const linalg::Matrix& base,
                            const linalg::Matrix& train_queries,
                            const DdcPcaOptions& options = DdcPcaOptions());

class DdcPcaComputer : public index::DistanceComputer {
 public:
  // All pointers are shared artifacts and must outlive the computer.
  DdcPcaComputer(const linalg::PcaModel* pca,
                 const linalg::Matrix* rotated_base,
                 const DdcPcaArtifacts* artifacts);

  int64_t dim() const override { return pca_->dim(); }
  int64_t size() const override { return rotated_base_->rows(); }
  std::string name() const override { return "ddc-pca"; }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  void EstimateBatch(const int64_t* ids, int count, float tau,
                     index::EstimateResult* out) override;
  // Code-resident form; record = the full PCA-rotated row (dim() floats),
  // so the whole cascade — later stages included — streams from the
  // records without touching rotated_base_.
  std::string code_tag() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                          int count, float tau,
                          index::EstimateResult* out) override;
  // Group form: every member's PCA-rotated query built once per
  // SetQueryBatch; SelectQuery swaps a pointer.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  float ExactDistance(int64_t id) override;

  // Plain projected distance ||x_d - q_d||^2 (Table III accuracy bench).
  float ApproximateDistance(int64_t id, int64_t d) const;

  int64_t ExtraBytes() const;

 private:
  // Runs the incremental stage cascade for one candidate given its rotated
  // row `x` and first-stage partial distance (over stage_dims[0] dims,
  // already counted in stats_.dims_scanned). Shared by the sequential,
  // batch-gather, and code-resident paths so their decisions and rounding
  // are identical by construction.
  index::EstimateResult ContinueFromFirstStage(const float* x, float tau,
                                               float partial);

  const linalg::PcaModel* pca_;
  const linalg::Matrix* rotated_base_;
  const DdcPcaArtifacts* artifacts_;

  std::vector<float> rotated_query_;
  // The rotated query the estimate paths read: rotated_query_ after
  // BeginQuery, a row of group_rotated_ after SelectQuery.
  const float* active_rotated_query_ = nullptr;
  std::vector<float> group_rotated_;  // group x dim
  // Lazily built (content fingerprint is O(n)); computers are per-thread.
  mutable std::string code_tag_;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_DDC_PCA_H_

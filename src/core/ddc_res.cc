#include "core/ddc_res.h"

#include <algorithm>
#include <cmath>

#include "index/block_refine.h"
#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::core {

DdcResComputer::DdcResComputer(const linalg::PcaModel* pca,
                               const linalg::Matrix* rotated_base,
                               const DdcResOptions& options)
    : pca_(pca), rotated_base_(rotated_base), options_(options) {
  RESINFER_CHECK(pca != nullptr && rotated_base != nullptr);
  RESINFER_CHECK(pca->fitted());
  RESINFER_CHECK(rotated_base->cols() == pca->dim());
  RESINFER_CHECK(options_.init_dim >= 1 && options_.delta_dim >= 1);

  multiplier_ = options_.multiplier > 0.0
                    ? static_cast<float>(options_.multiplier)
                    : static_cast<float>(
                          GaussianQuantileMultiplier(options_.quantile));

  const int64_t n = rotated_base_->rows();
  const std::size_t d = static_cast<std::size_t>(pca_->dim());
  norms_sqr_.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    norms_sqr_[i] = simd::Norm2Sqr(rotated_base_->Row(i), d);
  }
  error_model_ = ResidualErrorModel(pca_->variances());
  rotated_query_.resize(pca_->dim());
  for (int64_t d = options_.init_dim; d < pca_->dim();
       d += options_.delta_dim) {
    stage_dims_.push_back(d);
    if (!options_.incremental) break;  // Algorithm 1: single test
  }
  stage_bounds_.resize(stage_dims_.size());
  active_rotated_query_ = rotated_query_.data();
  active_stage_bounds_ = stage_bounds_.data();
}

void DdcResComputer::BuildQueryState(const float* query, float* rotated,
                                     float* bounds, float* norm_sqr) {
  pca_->Transform(query, rotated);
  *norm_sqr =
      simd::Norm2Sqr(rotated, static_cast<std::size_t>(pca_->dim()));
  error_model_.BeginQuery(rotated);
  // Hoist the per-stage sigma square roots out of the candidate loop.
  for (std::size_t s = 0; s < stage_dims_.size(); ++s) {
    bounds[s] = multiplier_ * error_model_.Sigma(stage_dims_[s]);
  }
}

void DdcResComputer::BeginQuery(const float* query) {
  BuildQueryState(query, rotated_query_.data(), stage_bounds_.data(),
                  &query_norm_sqr_);
  active_rotated_query_ = rotated_query_.data();
  active_stage_bounds_ = stage_bounds_.data();
}

void DdcResComputer::SetQueryBatch(const float* queries, int count,
                                   int64_t stride) {
  index::DistanceComputer::SetQueryBatch(queries, count, stride);
  const int64_t d = pca_->dim();
  const int64_t num_stages = static_cast<int64_t>(stage_dims_.size());
  group_rotated_.resize(static_cast<std::size_t>(count * d));
  group_bounds_.resize(static_cast<std::size_t>(count * num_stages));
  group_norms_.resize(static_cast<std::size_t>(count));
  for (int g = 0; g < count; ++g) {
    BuildQueryState(GroupQuery(g), group_rotated_.data() + g * d,
                    group_bounds_.data() + g * num_stages,
                    &group_norms_[static_cast<std::size_t>(g)]);
  }
}

void DdcResComputer::SelectQuery(int g) {
  RESINFER_DCHECK(g >= 0 && g < group_count_);
  active_rotated_query_ = group_rotated_.data() + g * pca_->dim();
  active_stage_bounds_ =
      group_bounds_.data() + g * static_cast<int64_t>(stage_dims_.size());
  query_norm_sqr_ = group_norms_[static_cast<std::size_t>(g)];
}

index::EstimateResult DdcResComputer::EstimateWithThreshold(int64_t id,
                                                            float tau) {
  ++stats_.candidates;
  if (stage_dims_.empty()) {
    // init_dim >= D leaves no test stage: straight to exact.
    const float c1 = norms_sqr_[id] + query_norm_sqr_;
    const float c2 = 2.0f * simd::InnerProduct(
                                rotated_base_->Row(id), active_rotated_query_,
                                static_cast<std::size_t>(pca_->dim()));
    stats_.dims_scanned += pca_->dim();
    ++stats_.exact_computations;
    return {false, std::max(0.0f, c1 - c2)};
  }
  const int64_t d0 = stage_dims_[0];
  const float* x = rotated_base_->Row(id);
  const float c2 = 2.0f * simd::InnerProduct(x, active_rotated_query_,
                                             static_cast<std::size_t>(d0));
  stats_.dims_scanned += d0;
  return ContinueFromFirstStage(x, norms_sqr_[id] + query_norm_sqr_, tau,
                                c2);
}

index::EstimateResult DdcResComputer::ContinueFromFirstStage(const float* x,
                                                             float c1,
                                                             float tau,
                                                             float c2) {
  const int64_t full_dim = pca_->dim();
  const float* q = active_rotated_query_;

  int64_t d = stage_dims_[0];
  for (std::size_t stage = 0;;) {
    if (c1 - c2 - active_stage_bounds_[stage] > tau) {
      ++stats_.pruned;
      return {true, std::max(0.0f, c1 - c2)};
    }
    if (++stage == stage_dims_.size()) break;
    const int64_t next = stage_dims_[stage];
    c2 += 2.0f * simd::InnerProduct(x + d, q + d,
                                    static_cast<std::size_t>(next - d));
    stats_.dims_scanned += next - d;
    d = next;
  }
  // Remaining dimensions: the accumulated inner product becomes exact
  // (C2 + C3 folded together).
  c2 += 2.0f * simd::InnerProduct(x + d, q + d,
                                  static_cast<std::size_t>(full_dim - d));
  stats_.dims_scanned += full_dim - d;
  ++stats_.exact_computations;
  return {false, std::max(0.0f, c1 - c2)};
}

void DdcResComputer::EstimateBatch(const int64_t* ids, int count, float tau,
                                   index::EstimateResult* out) {
  if (stage_dims_.empty()) {
    for (int i = 0; i < count; ++i) out[i] = EstimateWithThreshold(ids[i], tau);
    return;
  }
  // First-stage C2 accumulation four candidates per kernel call with
  // next-group prefetch; survivors continue through the cascade exactly as
  // the sequential path would.
  const int64_t d0 = stage_dims_[0];
  const float* q = active_rotated_query_;
  index::ScanBatch4(
      [this, ids](int pos) { return rotated_base_->Row(ids[pos]); },
      [q, d0](const float* const* rows, float* ip) {
        simd::InnerProductBatch4(q, rows, static_cast<std::size_t>(d0), ip);
      },
      [this, ids, tau, d0, out](int pos, float ip) {
        ++stats_.candidates;
        stats_.dims_scanned += d0;
        out[pos] = ContinueFromFirstStage(
            rotated_base_->Row(ids[pos]),
            norms_sqr_[ids[pos]] + query_norm_sqr_, tau, 2.0f * ip);
      },
      [this, ids, tau, out](int pos) {
        out[pos] = EstimateWithThreshold(ids[pos], tau);
      },
      count);
}

std::string DdcResComputer::code_tag() const {
  // Both variants (incremental / basic) read the layout identically, so
  // the tag is variant-independent and one attached store serves either.
  if (code_tag_.empty()) {
    uint64_t f = quant::FingerprintArray(
        rotated_base_->data(),
        static_cast<std::size_t>(rotated_base_->size()) * sizeof(float));
    f = quant::FingerprintArray(norms_sqr_.data(),
                                norms_sqr_.size() * sizeof(float), f);
    code_tag_ = quant::MakeCodeTag(
        "ddc-res", pca_->dim() * static_cast<int64_t>(sizeof(float)), 1,
        size(), f);
  }
  return code_tag_;
}

quant::CodeStore DdcResComputer::MakeCodeStore() const {
  const int64_t code_size = pca_->dim() * static_cast<int64_t>(sizeof(float));
  quant::CodeStore store(size(), code_size, 1, code_tag());
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i,
                  reinterpret_cast<const uint8_t*>(rotated_base_->Row(i)));
    store.SetSidecar(i, 0, norms_sqr_[i]);
  }
  return store;
}

void DdcResComputer::EstimateBatchCodes(const uint8_t* codes,
                                        const int64_t* ids, int count,
                                        float tau,
                                        index::EstimateResult* out) {
  if (stage_dims_.empty()) {
    // No test stage: the gather loop is already a straight exact pass.
    EstimateBatch(ids, count, tau, out);
    return;
  }
  const int64_t d0 = stage_dims_[0];
  const int64_t code_size =
      pca_->dim() * static_cast<int64_t>(sizeof(float));
  const int64_t stride = quant::CodeRecordStride(code_size, 1);
  const float* q = active_rotated_query_;
  const auto row = [codes, stride](int pos) {
    return reinterpret_cast<const float*>(codes + pos * stride);
  };
  const auto norm = [codes, stride, code_size](int pos) {
    return quant::RecordSidecars(codes + pos * stride, code_size)[0];
  };
  index::ScanBatch4(
      row,
      [q, d0](const float* const* rows, float* ip) {
        simd::InnerProductBatch4(q, rows, static_cast<std::size_t>(d0), ip);
      },
      [this, row, norm, tau, d0, out](int pos, float ip) {
        ++stats_.candidates;
        stats_.dims_scanned += d0;
        out[pos] = ContinueFromFirstStage(
            row(pos), norm(pos) + query_norm_sqr_, tau, 2.0f * ip);
      },
      [this, row, norm, q, tau, d0, out](int pos) {
        ++stats_.candidates;
        const float* x = row(pos);
        const float c2 = 2.0f * simd::InnerProduct(
                                    x, q, static_cast<std::size_t>(d0));
        stats_.dims_scanned += d0;
        out[pos] = ContinueFromFirstStage(x, norm(pos) + query_norm_sqr_,
                                          tau, c2);
      },
      count);
}

float DdcResComputer::ExactDistance(int64_t id) {
  const float* x = rotated_base_->Row(id);
  return simd::L2Sqr(x, active_rotated_query_,
                     static_cast<std::size_t>(pca_->dim()));
}

float DdcResComputer::ApproximateDistance(int64_t id, int64_t d) const {
  d = std::clamp<int64_t>(d, 0, pca_->dim());
  const float* x = rotated_base_->Row(id);
  const float c1 = norms_sqr_[id] + query_norm_sqr_;
  const float c2 =
      2.0f * simd::InnerProduct(x, active_rotated_query_,
                                static_cast<std::size_t>(d));
  return std::max(0.0f, c1 - c2);
}

int64_t DdcResComputer::ExtraBytes() const {
  // Norms (n floats) + rotation matrix (D^2 floats) + eigenvalue vector.
  return static_cast<int64_t>(norms_sqr_.size()) * sizeof(float) +
         pca_->rotation().size() * static_cast<int64_t>(sizeof(float)) +
         static_cast<int64_t>(pca_->variances().size()) * sizeof(float);
}

}  // namespace resinfer::core

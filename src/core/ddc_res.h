// DDCres (§IV): PCA-projected distance decomposition with Gaussian error
// bounds. Implements Algorithm 1 (single test, then exact) and Algorithm 2
// (Incremental-DDCres: grow the projected dimension by delta_dim per round).
//
// Decomposition per candidate x against query q (both PCA-rotated and
// centered):
//   C1 = ||x||^2 + ||q||^2      (precomputed per point / per query)
//   C2 = 2 <x_d, q_d>           (O(d), accumulated incrementally)
//   dis' = C1 - C2,  exact dis = C1 - C2 - C3 with C3 = 2 <x_r, q_r>
// Prune when dis' - m * sigma(d) > tau, where sigma comes from the
// ResidualErrorModel.
#ifndef RESINFER_CORE_DDC_RES_H_
#define RESINFER_CORE_DDC_RES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/error_model.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace resinfer::core {

struct DdcResOptions {
  // First projected dimension tested (paper/ADSampling default: 32).
  int64_t init_dim = 32;
  // Increment per correction round in Algorithm 2.
  int64_t delta_dim = 32;
  // Error-bound quantile; the multiplier is the one-sided normal quantile.
  // 0.99865 is the one-sided equivalent of the paper's "mu + 3 sigma"
  // empirical rule (Fig 2) and gives multiplier ~3.0.
  double quantile = 0.99865;
  // When > 0, overrides the quantile-derived multiplier (the paper's
  // "3-sigma empirical rule" corresponds to multiplier = 3).
  double multiplier = 0.0;
  // Algorithm 2 (true) or Algorithm 1 (false).
  bool incremental = true;
};

class DdcResComputer : public index::DistanceComputer {
 public:
  // `pca` and `rotated_base` are shared artifacts (see MethodFactory) and
  // must outlive the computer. rotated_base rows are PCA-transformed base
  // vectors.
  DdcResComputer(const linalg::PcaModel* pca,
                 const linalg::Matrix* rotated_base,
                 const DdcResOptions& options = DdcResOptions());

  int64_t dim() const override { return pca_->dim(); }
  int64_t size() const override { return rotated_base_->rows(); }
  std::string name() const override {
    return options_.incremental ? "ddc-res" : "ddc-res-basic";
  }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  void EstimateBatch(const int64_t* ids, int count, float tau,
                     index::EstimateResult* out) override;
  // Code-resident form; record = [rotated row (dim() floats) | ||x||^2],
  // so the C2 accumulation and the cascade stream entirely from the
  // records. Both DdcRes variants (incremental or not) share one layout.
  std::string code_tag() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                          int count, float tau,
                          index::EstimateResult* out) override;
  // Group form: rotated queries, query norms, and per-stage bounds for
  // every member built once per SetQueryBatch; SelectQuery swaps pointers.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  float ExactDistance(int64_t id) override;

  float multiplier() const { return multiplier_; }
  // Approximate distance dis' = C1 - C2 at projection dimension d for the
  // current query (no pruning logic); used by the Table III accuracy bench.
  float ApproximateDistance(int64_t id, int64_t d) const;

  // Extra storage this method needs beyond the raw vectors: per-point norms
  // plus the rotation matrix (§VII Exp-3).
  int64_t ExtraBytes() const;

 private:
  // Cascade continuation once the first stage's C2 accumulation (2<x,q>
  // over stage_dims_[0] dims) is in hand; `x` is the candidate's rotated
  // row and `c1` its ||x||^2 + ||q||^2. Shared by the sequential, batched,
  // and code-resident first-stage paths. Requires non-empty stage_dims_.
  index::EstimateResult ContinueFromFirstStage(const float* x, float c1,
                                               float tau, float c2);

  const linalg::PcaModel* pca_;
  const linalg::Matrix* rotated_base_;
  DdcResOptions options_;
  float multiplier_ = 3.0f;

  std::vector<float> norms_sqr_;  // ||x||^2 per point (rotated basis)
  ResidualErrorModel error_model_;
  std::vector<int64_t> stage_dims_;  // init, init+delta, ... (< D)

  // Builds one query's rotated form, squared norm, and per-stage bounds —
  // the shared body of BeginQuery and SetQueryBatch, so group members are
  // bit-identical to single-query preparation.
  void BuildQueryState(const float* query, float* rotated, float* bounds,
                       float* norm_sqr);

  // Per-query state. stage_bounds_[s] = multiplier * sigma(stage_dims_[s]),
  // precomputed once per query so the per-candidate loop is sqrt-free.
  std::vector<float> rotated_query_;
  std::vector<float> stage_bounds_;
  float query_norm_sqr_ = 0.0f;
  // What the estimate paths read: the single-query buffers after
  // BeginQuery, rows of the group buffers after SelectQuery.
  const float* active_rotated_query_ = nullptr;
  const float* active_stage_bounds_ = nullptr;
  std::vector<float> group_rotated_;  // group x dim
  std::vector<float> group_bounds_;   // group x stage_dims_.size()
  std::vector<float> group_norms_;    // ||q||^2 per member
  // Lazily built (content fingerprint is O(n)); computers are per-thread.
  mutable std::string code_tag_;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_DDC_RES_H_

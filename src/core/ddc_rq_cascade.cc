#include "core/ddc_rq_cascade.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace resinfer::core {

namespace {

// ADC truncated to `stages` codebooks, from the per-query IP table.
float TruncatedAdc(const quant::RqCodebook& rq, const float* table,
                   float query_norm_sqr, const uint8_t* code, int stages,
                   float level_norm_sqr) {
  float ip = 0.0f;
  for (int m = 0; m < stages; ++m) {
    ip += table[static_cast<int64_t>(m) * rq.num_centroids() +
                rq.CodeAt(code, m)];
  }
  return query_norm_sqr - 2.0f * ip + level_norm_sqr;
}

}  // namespace

DdcRqCascadeArtifacts TrainDdcRqCascade(const linalg::Matrix& base,
                                        const linalg::Matrix& train_queries,
                                        const DdcRqCascadeOptions& options) {
  RESINFER_CHECK(!options.levels.empty());
  for (std::size_t l = 1; l < options.levels.size(); ++l) {
    RESINFER_CHECK_MSG(options.levels[l] > options.levels[l - 1],
                       "cascade levels must be strictly increasing");
  }
  RESINFER_CHECK(options.levels.front() >= 1);
  RESINFER_CHECK(base.cols() == train_queries.cols());

  const int64_t n = base.rows();
  const int64_t d = base.cols();
  const auto num_levels = static_cast<int64_t>(options.levels.size());

  WallTimer timer;
  DdcRqCascadeArtifacts artifacts;
  artifacts.levels = options.levels;

  quant::RqOptions rq_options = options.rq;
  rq_options.num_stages =
      std::max(rq_options.num_stages, options.levels.back());
  artifacts.rq = quant::RqCodebook::Train(base.data(), n, d, rq_options);

  std::vector<float> full_norms;  // unused beyond EncodeBatch's contract
  artifacts.codes = artifacts.rq.EncodeBatch(base.data(), n, &full_norms);

  // Per-level reconstruction norms and errors for every point.
  artifacts.level_norms.resize(static_cast<std::size_t>(n * num_levels));
  artifacts.level_errors.resize(static_cast<std::size_t>(n * num_levels));
  const quant::RqCodebook& rq = artifacts.rq;
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    std::vector<float> partial(static_cast<std::size_t>(d));
    for (int64_t i = begin; i < end; ++i) {
      const uint8_t* code = artifacts.codes.data() + i * rq.code_size();
      std::fill(partial.begin(), partial.end(), 0.0f);
      int stage = 0;
      for (int64_t l = 0; l < num_levels; ++l) {
        for (; stage < options.levels[static_cast<std::size_t>(l)];
             ++stage) {
          const float* c = rq.centroids(stage).Row(rq.CodeAt(code, stage));
          for (int64_t j = 0; j < d; ++j) {
            partial[static_cast<std::size_t>(j)] += c[j];
          }
        }
        artifacts.level_norms[static_cast<std::size_t>(i * num_levels + l)] =
            simd::Norm2Sqr(partial.data(), static_cast<std::size_t>(d));
        artifacts.level_errors[static_cast<std::size_t>(i * num_levels +
                                                        l)] =
            simd::L2Sqr(partial.data(), base.Row(i),
                        static_cast<std::size_t>(d));
      }
    }
  });

  // One classifier per level, on the shared labeled pairs.
  std::vector<LabeledPair> pairs =
      CollectLabeledPairs(base, train_queries, options.training);

  LinearCorrectorOptions corrector_options = options.corrector;
  corrector_options.num_features = 3;
  if (options.split_target_across_levels && num_levels > 1) {
    corrector_options.target_recall = std::pow(
        options.corrector.target_recall, 1.0 / static_cast<double>(num_levels));
  }

  std::vector<float> table(static_cast<std::size_t>(rq.ip_table_size()));
  for (int64_t l = 0; l < num_levels; ++l) {
    const int stages = options.levels[static_cast<std::size_t>(l)];
    int64_t current_query = -1;
    float query_norm_sqr = 0.0f;
    std::vector<CorrectorSample> samples = MaterializeSamples(
        pairs, [&](int64_t query_index, int64_t id, float* extra) {
          if (query_index != current_query) {
            rq.ComputeIpTable(train_queries.Row(query_index), table.data());
            query_norm_sqr =
                simd::Norm2Sqr(train_queries.Row(query_index),
                               static_cast<std::size_t>(d));
            current_query = query_index;
          }
          *extra = artifacts.level_errors[static_cast<std::size_t>(
              id * num_levels + l)];
          return TruncatedAdc(
              rq, table.data(), query_norm_sqr,
              artifacts.codes.data() + id * rq.code_size(), stages,
              artifacts.level_norms[static_cast<std::size_t>(
                  id * num_levels + l)]);
        });
    artifacts.correctors.push_back(
        LinearCorrector::Train(samples, corrector_options));
  }

  artifacts.train_seconds = timer.ElapsedSeconds();
  return artifacts;
}

DdcRqCascadeComputer::DdcRqCascadeComputer(
    const linalg::Matrix* base, const DdcRqCascadeArtifacts* artifacts)
    : base_(base), artifacts_(artifacts) {
  RESINFER_CHECK(base != nullptr && artifacts != nullptr);
  RESINFER_CHECK(artifacts->rq.trained());
  RESINFER_CHECK(artifacts->rq.dim() == base->cols());
  RESINFER_CHECK(artifacts->correctors.size() == artifacts->levels.size());
  ip_table_.resize(static_cast<std::size_t>(artifacts->rq.ip_table_size()));
  active_ip_table_ = ip_table_.data();
}

void DdcRqCascadeComputer::BeginQuery(const float* query) {
  query_ = query;
  artifacts_->rq.ComputeIpTable(query, ip_table_.data());
  query_norm_sqr_ =
      simd::Norm2Sqr(query, static_cast<std::size_t>(base_->cols()));
  active_ip_table_ = ip_table_.data();
}

void DdcRqCascadeComputer::SetQueryBatch(const float* queries, int count,
                                         int64_t stride) {
  index::DistanceComputer::SetQueryBatch(queries, count, stride);
  const int64_t table_size = artifacts_->rq.ip_table_size();
  group_tables_.resize(static_cast<std::size_t>(count * table_size));
  group_norms_.resize(static_cast<std::size_t>(count));
  for (int g = 0; g < count; ++g) {
    const float* q = GroupQuery(g);
    artifacts_->rq.ComputeIpTable(q, group_tables_.data() + g * table_size);
    group_norms_[static_cast<std::size_t>(g)] =
        simd::Norm2Sqr(q, static_cast<std::size_t>(base_->cols()));
  }
}

void DdcRqCascadeComputer::SelectQuery(int g) {
  RESINFER_DCHECK(g >= 0 && g < group_count_);
  query_ = GroupQuery(g);
  active_ip_table_ =
      group_tables_.data() + g * artifacts_->rq.ip_table_size();
  query_norm_sqr_ = group_norms_[static_cast<std::size_t>(g)];
}

index::EstimateResult DdcRqCascadeComputer::EstimateWithThreshold(
    int64_t id, float tau) {
  ++stats_.candidates;
  const quant::RqCodebook& rq = artifacts_->rq;
  const auto num_levels = static_cast<int64_t>(artifacts_->levels.size());
  const uint8_t* code = artifacts_->codes.data() + id * rq.code_size();

  if (std::isfinite(tau)) {
    float ip = 0.0f;
    int stage = 0;
    for (int64_t l = 0; l < num_levels; ++l) {
      const int stages = artifacts_->levels[static_cast<std::size_t>(l)];
      for (; stage < stages; ++stage) {
        ip += active_ip_table_[static_cast<std::size_t>(
            static_cast<int64_t>(stage) * rq.num_centroids() +
            rq.CodeAt(code, stage))];
        ++stage_lookups_;
      }
      const float approx =
          query_norm_sqr_ - 2.0f * ip +
          artifacts_->level_norms[static_cast<std::size_t>(id * num_levels +
                                                           l)];
      const float extra = artifacts_->level_errors[static_cast<std::size_t>(
          id * num_levels + l)];
      if (artifacts_->correctors[static_cast<std::size_t>(l)]
              .PredictPrunable(approx, tau, extra)) {
        ++stats_.pruned;
        return {true, approx};
      }
    }
  }
  ++stats_.exact_computations;
  stats_.dims_scanned += dim();
  return {false, simd::L2Sqr(query_, base_->Row(id),
                             static_cast<std::size_t>(dim()))};
}

std::string DdcRqCascadeComputer::code_tag() const {
  if (code_tag_.empty()) {
    uint64_t f = quant::FingerprintArray(artifacts_->codes.data(),
                                         artifacts_->codes.size());
    f = quant::FingerprintArray(
        artifacts_->level_norms.data(),
        artifacts_->level_norms.size() * sizeof(float), f);
    f = quant::FingerprintArray(
        artifacts_->level_errors.data(),
        artifacts_->level_errors.size() * sizeof(float), f);
    code_tag_ = quant::MakeCodeTag(
        "ddc-rq-cascade", artifacts_->rq.code_size(),
        2 * static_cast<int>(artifacts_->levels.size()), size(), f,
        artifacts_->rq.layout().packing);
  }
  return code_tag_;
}

quant::CodeStore DdcRqCascadeComputer::MakeCodeStore() const {
  const int64_t code_size = artifacts_->rq.code_size();
  const auto num_levels = static_cast<int64_t>(artifacts_->levels.size());
  quant::CodeStore store(size(), code_size,
                         static_cast<int>(2 * num_levels), code_tag(),
                         artifacts_->rq.layout().packing);
  for (int64_t i = 0; i < size(); ++i) {
    store.SetCode(i, artifacts_->codes.data() + i * code_size);
    for (int64_t l = 0; l < num_levels; ++l) {
      store.SetSidecar(i, static_cast<int>(l),
                       artifacts_->level_norms[static_cast<std::size_t>(
                           i * num_levels + l)]);
      store.SetSidecar(i, static_cast<int>(num_levels + l),
                       artifacts_->level_errors[static_cast<std::size_t>(
                           i * num_levels + l)]);
    }
  }
  return store;
}

void DdcRqCascadeComputer::EstimateBatchCodes(const uint8_t* codes,
                                              const int64_t* ids, int count,
                                              float tau,
                                              index::EstimateResult* out) {
  // Per-candidate cascade identical to EstimateWithThreshold, with the
  // code bytes and per-level norms/errors read off the sequential record
  // stream; only exact fallbacks touch the (id-gathered) base rows.
  const quant::RqCodebook& rq = artifacts_->rq;
  const auto num_levels = static_cast<int64_t>(artifacts_->levels.size());
  const int64_t code_size = rq.code_size();
  const int64_t stride =
      quant::CodeRecordStride(code_size, static_cast<int>(2 * num_levels));
  const bool tau_finite = std::isfinite(tau);

  for (int i = 0; i < count; ++i) {
    const uint8_t* rec = codes + i * stride;
    if (i + 1 < count) RESINFER_PREFETCH(rec + stride);
    ++stats_.candidates;
    bool pruned = false;
    if (tau_finite) {
      const float* norms = quant::RecordSidecars(rec, code_size);
      const float* errors = norms + num_levels;
      float ip = 0.0f;
      int stage = 0;
      for (int64_t l = 0; l < num_levels && !pruned; ++l) {
        const int stages = artifacts_->levels[static_cast<std::size_t>(l)];
        for (; stage < stages; ++stage) {
          ip += active_ip_table_[static_cast<std::size_t>(
              static_cast<int64_t>(stage) * rq.num_centroids() +
              rq.CodeAt(rec, stage))];
          ++stage_lookups_;
        }
        const float approx = query_norm_sqr_ - 2.0f * ip + norms[l];
        if (artifacts_->correctors[static_cast<std::size_t>(l)]
                .PredictPrunable(approx, tau, errors[l])) {
          ++stats_.pruned;
          out[i] = {true, approx};
          pruned = true;
        }
      }
    }
    if (!pruned) {
      ++stats_.exact_computations;
      stats_.dims_scanned += dim();
      out[i] = {false, simd::L2Sqr(query_, base_->Row(ids[i]),
                                   static_cast<std::size_t>(dim()))};
    }
  }
}

float DdcRqCascadeComputer::ExactDistance(int64_t id) {
  RESINFER_DCHECK(query_ != nullptr);
  ++stats_.exact_computations;
  stats_.dims_scanned += dim();
  return simd::L2Sqr(query_, base_->Row(id),
                     static_cast<std::size_t>(dim()));
}

float DdcRqCascadeComputer::ApproximateDistance(int64_t id,
                                                int level) const {
  RESINFER_DCHECK(level >= 0 &&
                  level < static_cast<int>(artifacts_->levels.size()));
  const auto num_levels = static_cast<int64_t>(artifacts_->levels.size());
  return TruncatedAdc(
      artifacts_->rq, active_ip_table_, query_norm_sqr_,
      artifacts_->codes.data() + id * artifacts_->rq.code_size(),
      artifacts_->levels[static_cast<std::size_t>(level)],
      artifacts_->level_norms[static_cast<std::size_t>(id * num_levels +
                                                       level)]);
}

}  // namespace resinfer::core

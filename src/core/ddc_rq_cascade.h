// Incremental data-driven correction over Residual Quantization (§V-B).
//
// §V-B sketches incremental correction for learned correctors: "Each time
// the classifier fails to confirm that dis > tau … we incrementally sample
// additional dimensions to compute a refined approximate distance … and
// train a new classifier." For projections that means more dimensions
// (core/ddc_pca.h); RQ gives the natural quantization analogue — more
// *stages*. Each additional stage refines the reconstruction x̂_s, so the
// asymmetric distance sharpens level by level at one extra table lookup per
// stage.
//
// The cascade trains one classifier per level (stage count), splits the
// target recall geometrically across levels (a candidate must survive all
// of them), and falls back to the exact distance only when every level
// declines to prune. bench_ablation_rq_cascade compares this against the
// single-shot DdcAny(RQ) corrector.
#ifndef RESINFER_CORE_DDC_RQ_CASCADE_H_
#define RESINFER_CORE_DDC_RQ_CASCADE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/linear_corrector.h"
#include "core/training_data.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "quant/rq.h"

namespace resinfer::core {

struct DdcRqCascadeOptions {
  quant::RqOptions rq;  // rq.num_stages is raised to the last level
  // Stage counts after which a classifier fires; strictly increasing.
  std::vector<int> levels = {2, 4, 8};
  // Split the overall target recall geometrically across levels so the
  // cascade's end-to-end survival rate matches the configured target.
  bool split_target_across_levels = true;
  LinearCorrectorOptions corrector;
  TrainingDataOptions training;
};

struct DdcRqCascadeArtifacts {
  quant::RqCodebook rq;
  std::vector<int> levels;
  std::vector<uint8_t> codes;  // n * num_stages
  // Per point, per level: ||x̂_{levels[l]}||^2 (ADC ingredient) and
  // ||x - x̂_{levels[l]}||^2 (the classifier's trust feature). Both are
  // n x L row-major.
  std::vector<float> level_norms;
  std::vector<float> level_errors;
  std::vector<LinearCorrector> correctors;  // one per level
  double train_seconds = 0.0;

  int64_t ExtraBytes() const {
    return static_cast<int64_t>(codes.size()) +
           static_cast<int64_t>(level_norms.size() + level_errors.size()) *
               sizeof(float);
  }
};

DdcRqCascadeArtifacts TrainDdcRqCascade(
    const linalg::Matrix& base, const linalg::Matrix& train_queries,
    const DdcRqCascadeOptions& options = DdcRqCascadeOptions());

class DdcRqCascadeComputer : public index::DistanceComputer {
 public:
  // `base` (original space, for exact fallbacks) and `artifacts` are
  // shared and must outlive the computer.
  DdcRqCascadeComputer(const linalg::Matrix* base,
                       const DdcRqCascadeArtifacts* artifacts);

  int64_t dim() const override { return base_->cols(); }
  int64_t size() const override { return base_->rows(); }
  std::string name() const override { return "ddc-rq-cascade"; }

  void BeginQuery(const float* query) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  // Code-resident form; record = [rq code | level_norms (L floats),
  // level_errors (L floats)] with L = levels.size(). The whole cascade —
  // per-level norms and trust features included — streams sequentially;
  // only the exact fallback gathers the candidate's base row.
  std::string code_tag() const override;
  quant::CodeStore MakeCodeStore() const override;
  void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                          int count, float tau,
                          index::EstimateResult* out) override;
  // Group form: per-member IP tables and query norms built once per
  // SetQueryBatch; SelectQuery swaps pointers.
  void SetQueryBatch(const float* queries, int count,
                     int64_t stride) override;
  void SelectQuery(int g) override;
  float ExactDistance(int64_t id) override;

  // ADC distance truncated to `level` (diagnostics / tests).
  float ApproximateDistance(int64_t id, int level) const;

  // Total table lookups performed across all candidates (cascade depth
  // instrumentation; analogous to scanned dimensions for projections).
  int64_t stage_lookups() const { return stage_lookups_; }

 private:
  const linalg::Matrix* base_;
  const DdcRqCascadeArtifacts* artifacts_;

  const float* query_ = nullptr;
  std::vector<float> ip_table_;
  float query_norm_sqr_ = 0.0f;
  // The table the cascade reads: ip_table_ after BeginQuery, a row of
  // group_tables_ after SelectQuery.
  const float* active_ip_table_ = nullptr;
  std::vector<float> group_tables_;  // group x ip_table_size
  std::vector<float> group_norms_;   // ||q||^2 per member
  int64_t stage_lookups_ = 0;
  // Lazily built (content fingerprint is O(n)); computers are per-thread.
  mutable std::string code_tag_;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_DDC_RQ_CASCADE_H_

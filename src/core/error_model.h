// Gaussian residual-error model for the decomposed distance (§IV-C).
//
// With the exact distance written as dis = C1 - C2 - C3 (Equation 2), the
// estimation error of the projected approximation dis' = C1 - C2 is
// eps = dis' - dis = C3 = 2 <q_r, x_r>. Treating database vectors as draws
// from N(0, Sigma) in the PCA-aligned basis, eps | q is Gaussian with
//   Var(eps) = 4 * sum_{i >= d} q_i^2 * sigma_i^2        (Equation 3)
// where sigma_i^2 are the per-dimension variances (PCA eigenvalues).
//
// The error bound used for correction is m * sigma, with the multiplier m
// derived from a target quantile of the standard normal (e.g. 99.7% -> 2.75
// one-sided; the paper's "empirical rule" 3-sigma line corresponds to the
// 99.87% one-sided quantile).
#ifndef RESINFER_CORE_ERROR_MODEL_H_
#define RESINFER_CORE_ERROR_MODEL_H_

#include <cstdint>
#include <vector>

namespace resinfer::core {

// Inverse standard-normal CDF (Acklam's rational approximation, |rel err| <
// 1.2e-9). Requires 0 < p < 1.
double InverseNormalCdf(double p);

// Multiplier m such that P(eps <= m * sigma) = quantile for eps ~ N(0,
// sigma^2). quantile in (0, 1).
double GaussianQuantileMultiplier(double quantile);

// Per-query residual error bounds over the PCA-rotated basis.
class ResidualErrorModel {
 public:
  ResidualErrorModel() = default;

  // `variances`: per-dimension variances in the rotated basis (PCA
  // eigenvalues, descending).
  explicit ResidualErrorModel(std::vector<float> variances);

  int64_t dim() const { return static_cast<int64_t>(variances_.size()); }

  // Precomputes suffix sums of q_i^2 * var_i for the rotated query
  // (O(D) per query).
  void BeginQuery(const float* rotated_query);

  // Standard deviation of the estimation error when the first `d`
  // dimensions are used: sigma(d) = 2 * sqrt(sum_{i>=d} q_i^2 var_i).
  float Sigma(int64_t d) const;

  // suffix[d] = sum_{i >= d} q_i^2 var_i (length dim()+1).
  const std::vector<float>& suffix() const { return suffix_; }

 private:
  std::vector<float> variances_;
  std::vector<float> suffix_;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_ERROR_MODEL_H_

#include "core/finger.h"

#include <algorithm>
#include <cmath>

#include "core/error_model.h"
#include "linalg/eigen.h"
#include "linalg/vector_ops.h"
#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace resinfer::core {

int64_t FingerArtifacts::ExtraBytes() const {
  int64_t bytes = static_cast<int64_t>(basis.size()) * sizeof(float);
  for (std::size_t u = 0; u < edge_ids.size(); ++u) {
    bytes += static_cast<int64_t>(edge_ids[u].size()) * sizeof(int64_t);
    bytes += static_cast<int64_t>(edge_coeffs[u].size()) * sizeof(float);
    bytes += static_cast<int64_t>(edge_residuals[u].size()) * sizeof(float);
    bytes += static_cast<int64_t>(edge_norms_sqr[u].size()) * sizeof(float);
  }
  return bytes;
}

FingerArtifacts BuildFingerArtifacts(const linalg::Matrix& base,
                                     const index::HnswIndex& graph,
                                     const linalg::Matrix& train_queries,
                                     const FingerOptions& options) {
  RESINFER_CHECK(options.rank >= 1);
  const int64_t n = base.rows();
  const int64_t d = base.cols();
  RESINFER_CHECK(graph.size() == n);
  WallTimer timer;

  FingerArtifacts artifacts;
  artifacts.rank = options.rank;
  const int r = options.rank;
  artifacts.basis.assign(static_cast<std::size_t>(n) * r * d, 0.0f);
  artifacts.edge_ids.resize(n);
  artifacts.edge_coeffs.resize(n);
  artifacts.edge_residuals.resize(n);
  artifacts.edge_norms_sqr.resize(n);

  ParallelForEach(n, [&](int64_t u, int /*thread*/) {
    int count = 0;
    const int64_t* links = graph.NeighborsAtBase(u, &count);
    if (count == 0) return;

    // Residual matrix (count x d).
    linalg::Matrix residuals(count, d);
    const float* u_vec = base.Row(u);
    for (int i = 0; i < count; ++i) {
      linalg::Subtract(base.Row(links[i]), u_vec, residuals.Row(i),
                       static_cast<std::size_t>(d));
    }

    // Top-r principal directions of the residual span from the Gram
    // matrix: G = Res Res^T, G w = lambda w  =>  b = Res^T w / sqrt(lambda)
    // is a unit principal direction in data space.
    linalg::Matrix gram(count, count);
    for (int i = 0; i < count; ++i) {
      for (int j = i; j < count; ++j) {
        float g = simd::InnerProduct(residuals.Row(i), residuals.Row(j),
                                     static_cast<std::size_t>(d));
        gram.At(i, j) = g;
        gram.At(j, i) = g;
      }
    }
    linalg::SymmetricEigenResult eig = linalg::SymmetricEigen(gram);

    float* node_basis = artifacts.basis.data() +
                        static_cast<std::size_t>(u) * r * d;
    const int effective = std::min(r, count);
    const double tol = std::max(1e-10, eig.eigenvalues[0] * 1e-7);
    for (int j = 0; j < effective; ++j) {
      if (eig.eigenvalues[j] <= tol) break;
      const double inv = 1.0 / std::sqrt(eig.eigenvalues[j]);
      float* row = node_basis + static_cast<std::size_t>(j) * d;
      for (int i = 0; i < count; ++i) {
        simd::Axpy(static_cast<float>(eig.eigenvectors.At(j, i) * inv),
                   residuals.Row(i), row, static_cast<std::size_t>(d));
      }
    }

    // Per-edge coefficients and residual energies.
    auto& ids = artifacts.edge_ids[u];
    auto& coeffs = artifacts.edge_coeffs[u];
    auto& res_energy = artifacts.edge_residuals[u];
    auto& norms = artifacts.edge_norms_sqr[u];
    ids.assign(links, links + count);
    coeffs.assign(static_cast<std::size_t>(count) * r, 0.0f);
    res_energy.assign(count, 0.0f);
    norms.assign(count, 0.0f);
    for (int i = 0; i < count; ++i) {
      const float* res = residuals.Row(i);
      float norm_sqr = simd::Norm2Sqr(res, static_cast<std::size_t>(d));
      norms[i] = norm_sqr;
      float coeff_sqr = 0.0f;
      for (int j = 0; j < r; ++j) {
        float c = simd::InnerProduct(
            res, node_basis + static_cast<std::size_t>(j) * d,
            static_cast<std::size_t>(d));
        coeffs[static_cast<std::size_t>(i) * r + j] = c;
        coeff_sqr += c * c;
      }
      res_energy[i] = std::max(0.0f, norm_sqr - coeff_sqr);
    }
  });

  // Calibrate the residual-term constant on training queries: collect the
  // unmodeled inner product normalized by sqrt(res_q * res_v).
  std::vector<double> normalized;
  Rng rng(options.seed);
  const int64_t cal_queries =
      std::min<int64_t>(options.calibration_queries, train_queries.rows());
  std::vector<float> diff(d);
  std::vector<float> proj(r);
  for (int64_t qi = 0; qi < cal_queries; ++qi) {
    const float* q = train_queries.Row(qi);
    for (int trial = 0; trial < 8; ++trial) {
      int64_t u = static_cast<int64_t>(rng.UniformInt(n));
      const auto& ids = artifacts.edge_ids[u];
      if (ids.empty()) continue;
      linalg::Subtract(q, base.Row(u), diff.data(),
                       static_cast<std::size_t>(d));
      const float* node_basis = artifacts.basis.data() +
                                static_cast<std::size_t>(u) * r * d;
      float proj_sqr = 0.0f;
      for (int j = 0; j < r; ++j) {
        proj[j] = simd::InnerProduct(diff.data(),
                                     node_basis +
                                         static_cast<std::size_t>(j) * d,
                                     static_cast<std::size_t>(d));
        proj_sqr += proj[j] * proj[j];
      }
      float q_energy = std::max(
          0.0f, simd::Norm2Sqr(diff.data(), static_cast<std::size_t>(d)) -
                    proj_sqr);
      for (std::size_t e = 0; e < ids.size(); ++e) {
        float denom = q_energy * artifacts.edge_residuals[u][e];
        if (denom <= 1e-12f) continue;
        // full <q-u, v-u> minus the modeled low-rank part.
        float full = simd::InnerProduct(diff.data(), base.Row(ids[e]),
                                        static_cast<std::size_t>(d)) -
                     simd::InnerProduct(diff.data(), base.Row(u),
                                        static_cast<std::size_t>(d));
        float modeled = simd::InnerProduct(
            proj.data(),
            artifacts.edge_coeffs[u].data() + e * static_cast<std::size_t>(r),
            static_cast<std::size_t>(r));
        normalized.push_back((full - modeled) / std::sqrt(denom));
      }
    }
  }
  double stddev = 0.35;  // conservative default when calibration is empty
  if (normalized.size() >= 16) {
    stddev = std::sqrt(linalg::ComputeMeanVar(normalized).variance);
  }
  artifacts.bound_scale = static_cast<float>(
      GaussianQuantileMultiplier(options.quantile) * 2.0 * stddev);
  artifacts.build_seconds = timer.ElapsedSeconds();
  return artifacts;
}

FingerComputer::FingerComputer(const linalg::Matrix* base,
                               const FingerArtifacts* artifacts)
    : base_(base), artifacts_(artifacts) {
  RESINFER_CHECK(base != nullptr && artifacts != nullptr);
  RESINFER_CHECK(artifacts->rank >= 1);
  projection_.resize(artifacts->rank);
  diff_.resize(base->cols());
}

void FingerComputer::BeginQuery(const float* query) {
  query_ = query;
  anchor_ = -1;
}

void FingerComputer::SetExpansionAnchor(int64_t node,
                                        float distance_to_node) {
  anchor_ = node;
  anchor_dist_sqr_ = distance_to_node;
  const int64_t d = base_->cols();
  const int r = artifacts_->rank;
  linalg::Subtract(query_, base_->Row(node), diff_.data(),
                   static_cast<std::size_t>(d));
  const float* node_basis =
      artifacts_->basis.data() + static_cast<std::size_t>(node) * r * d;
  float proj_sqr = 0.0f;
  for (int j = 0; j < r; ++j) {
    projection_[j] = simd::InnerProduct(
        diff_.data(), node_basis + static_cast<std::size_t>(j) * d,
        static_cast<std::size_t>(d));
    proj_sqr += projection_[j] * projection_[j];
  }
  query_residual_energy_ = std::max(0.0f, distance_to_node - proj_sqr);
}

index::EstimateResult FingerComputer::EstimateWithThreshold(int64_t id,
                                                            float tau) {
  ++stats_.candidates;
  if (anchor_ >= 0 && std::isfinite(tau)) {
    const auto& ids = artifacts_->edge_ids[anchor_];
    // Neighbor lists are short (<= 2M); a linear id scan is cheaper than a
    // hash lookup here.
    for (std::size_t e = 0; e < ids.size(); ++e) {
      if (ids[e] != id) continue;
      const int r = artifacts_->rank;
      const float modeled = simd::InnerProduct(
          projection_.data(),
          artifacts_->edge_coeffs[anchor_].data() +
              e * static_cast<std::size_t>(r),
          static_cast<std::size_t>(r));
      const float est = anchor_dist_sqr_ +
                        artifacts_->edge_norms_sqr[anchor_][e] -
                        2.0f * modeled;
      const float bound =
          artifacts_->bound_scale *
          std::sqrt(query_residual_energy_ *
                    artifacts_->edge_residuals[anchor_][e]);
      if (est - bound > tau) {
        ++stats_.pruned;
        return {true, std::max(0.0f, est)};
      }
      break;
    }
  }
  ++stats_.exact_computations;
  stats_.dims_scanned += dim();
  return {false, ExactDistance(id)};
}

float FingerComputer::ExactDistance(int64_t id) {
  return simd::L2Sqr(base_->Row(id), query_,
                     static_cast<std::size_t>(base_->cols()));
}

}  // namespace resinfer::core

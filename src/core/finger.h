// FINGER-style graph-local distance estimation (Chen et al., WWW 2023) —
// the HNSW-only comparator of §VII Exp-4.
//
// FINGER's observation: when a graph search expands node u, every neighbor
// v it evaluates shares the anchor u, so
//   ||q - v||^2 = ||q - u||^2 + ||v - u||^2 - 2 <q - u, v - u>
// and the inner product can be approximated in a low-rank basis of the
// *residual* vectors {v - u} precomputed per node. Our implementation:
//   * per node u: an orthonormal rank-r basis B_u of its neighbors'
//     residuals (computed from the Gram matrix of the residuals — cheap,
//     O(M^2 D) per node);
//   * per edge (u, v): the projection coefficients c_v = B_u (v - u), the
//     residual-energy ||(v-u) - B_u^T c_v||^2 and ||v - u||^2;
//   * at query time, one projection p = B_u (q - u) per expanded node, then
//     each neighbor estimate costs O(r);
//   * the unmodeled term <(q-u)_res, (v-u)_res> is bounded by
//     m * c * sqrt(res_energy_q * res_energy_v) with c calibrated on
//     training queries (where the original uses per-edge LSH signatures).
// This preserves FINGER's published profile: much larger preprocessing
// time/memory than DDC (rank x D floats per node) in exchange for cheap
// per-candidate estimates.
#ifndef RESINFER_CORE_FINGER_H_
#define RESINFER_CORE_FINGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "index/distance_computer.h"
#include "index/hnsw_index.h"
#include "linalg/matrix.h"

namespace resinfer::core {

struct FingerOptions {
  int rank = 8;
  // Quantile for the residual-term bound (multiplier via inverse normal
  // CDF, matching the DDCres convention).
  double quantile = 0.997;
  // Training queries used to calibrate the residual correlation constant.
  int64_t calibration_queries = 64;
  uint64_t seed = 77;
};

struct FingerArtifacts {
  int rank = 0;
  float bound_scale = 0.0f;  // m * c (see header comment)
  // Per node: rank x D basis rows, flattened [node * rank * D].
  std::vector<float> basis;
  // Per node: neighbor ids (mirrors the HNSW base layer), projection
  // coefficients (rank per edge), residual energies and edge norms.
  std::vector<std::vector<int64_t>> edge_ids;
  std::vector<std::vector<float>> edge_coeffs;     // rank per edge
  std::vector<std::vector<float>> edge_residuals;  // per edge
  std::vector<std::vector<float>> edge_norms_sqr;  // per edge
  double build_seconds = 0.0;

  int64_t ExtraBytes() const;
};

// Preprocesses the base layer of `graph`. `train_queries` calibrates the
// residual bound.
FingerArtifacts BuildFingerArtifacts(
    const linalg::Matrix& base, const index::HnswIndex& graph,
    const linalg::Matrix& train_queries,
    const FingerOptions& options = FingerOptions());

class FingerComputer : public index::DistanceComputer {
 public:
  // `base` and `artifacts` must outlive the computer.
  FingerComputer(const linalg::Matrix* base,
                 const FingerArtifacts* artifacts);

  int64_t dim() const override { return base_->cols(); }
  int64_t size() const override { return base_->rows(); }
  std::string name() const override { return "finger"; }

  void BeginQuery(const float* query) override;
  void SetExpansionAnchor(int64_t node, float distance_to_node) override;
  index::EstimateResult EstimateWithThreshold(int64_t id,
                                              float tau) override;
  float ExactDistance(int64_t id) override;

 private:
  const linalg::Matrix* base_;
  const FingerArtifacts* artifacts_;

  const float* query_ = nullptr;
  int64_t anchor_ = -1;
  float anchor_dist_sqr_ = 0.0f;
  float query_residual_energy_ = 0.0f;
  std::vector<float> projection_;  // p = B_u (q - u), rank floats
  std::vector<float> diff_;        // q - u scratch
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_FINGER_H_

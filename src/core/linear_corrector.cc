#include "core/linear_corrector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/macros.h"
#include "util/rng.h"

namespace resinfer::core {

namespace {

struct Scaler {
  double mean[3] = {0.0, 0.0, 0.0};
  double inv_std[3] = {1.0, 1.0, 1.0};
};

Scaler FitScaler(const std::vector<CorrectorSample>& samples,
                 int num_features) {
  Scaler s;
  const double n = static_cast<double>(samples.size());
  for (const auto& sample : samples) {
    const double f[3] = {sample.approx, sample.tau, sample.extra};
    for (int j = 0; j < num_features; ++j) s.mean[j] += f[j];
  }
  for (int j = 0; j < num_features; ++j) s.mean[j] /= n;
  double var[3] = {0.0, 0.0, 0.0};
  for (const auto& sample : samples) {
    const double f[3] = {sample.approx, sample.tau, sample.extra};
    for (int j = 0; j < num_features; ++j) {
      double c = f[j] - s.mean[j];
      var[j] += c * c;
    }
  }
  for (int j = 0; j < num_features; ++j) {
    double stddev = std::sqrt(var[j] / n);
    s.inv_std[j] = stddev > 1e-12 ? 1.0 / stddev : 0.0;
  }
  return s;
}

}  // namespace

LinearCorrector LinearCorrector::Train(
    const std::vector<CorrectorSample>& samples,
    const LinearCorrectorOptions& options) {
  RESINFER_CHECK(options.num_features == 2 || options.num_features == 3);
  LinearCorrector model;
  if (samples.empty()) return model;  // never prunes

  // Degenerate label distributions: stay conservative (never prune) when
  // there are no positive (prunable) examples; prune-always is never safe,
  // so a single-label "all prunable" set also falls back to never pruning —
  // the caller's exact path keeps correctness either way.
  int64_t label1 = 0;
  for (const auto& s : samples) label1 += s.label;
  if (label1 == 0 || label1 == static_cast<int64_t>(samples.size())) {
    model.trained_ = true;
    return model;
  }

  const int nf = options.num_features;
  const Scaler scaler = FitScaler(samples, nf);

  // SGD on standardized features, double weights.
  double w[3] = {0.0, 0.0, 0.0};
  double b = 0.0;
  Rng rng(options.seed);
  std::vector<int64_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(order);
    // 1/sqrt decay keeps late epochs stable without a schedule parameter.
    const double lr =
        options.learning_rate / std::sqrt(1.0 + epoch);
    for (int64_t idx : order) {
      const CorrectorSample& s = samples[idx];
      const double raw[3] = {s.approx, s.tau, s.extra};
      double f[3];
      for (int j = 0; j < nf; ++j)
        f[j] = (raw[j] - scaler.mean[j]) * scaler.inv_std[j];
      double z = b;
      for (int j = 0; j < nf; ++j) z += w[j] * f[j];
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double g = p - static_cast<double>(s.label);  // dBCE/dz
      for (int j = 0; j < nf; ++j)
        w[j] -= lr * (g * f[j] + options.l2 * w[j]);
      b -= lr * g;
    }
  }

  // Fold standardization back into raw-space weights:
  // z = sum w_j (x_j - mu_j) * inv_std_j + b
  //   = sum (w_j * inv_std_j) x_j + (b - sum w_j mu_j inv_std_j).
  double raw_w[3] = {0.0, 0.0, 0.0};
  double raw_b = b;
  for (int j = 0; j < nf; ++j) {
    raw_w[j] = w[j] * scaler.inv_std[j];
    raw_b -= w[j] * scaler.mean[j] * scaler.inv_std[j];
  }
  model.w_approx_ = static_cast<float>(raw_w[0]);
  model.w_tau_ = static_cast<float>(raw_w[1]);
  model.w_extra_ = static_cast<float>(raw_w[2]);
  model.bias_ = static_cast<float>(raw_b);
  model.trained_ = true;

  model.CalibrateIntercept(samples, options.target_recall);
  return model;
}

LinearCorrector::Metrics LinearCorrector::Evaluate(
    const std::vector<CorrectorSample>& samples) const {
  Metrics m;
  int64_t n0 = 0, n1 = 0, kept0 = 0, pruned1 = 0, correct = 0;
  for (const auto& s : samples) {
    bool prune = PredictPrunable(s.approx, s.tau, s.extra);
    if (s.label == 0) {
      ++n0;
      if (!prune) {
        ++kept0;
        ++correct;
      }
    } else {
      ++n1;
      if (prune) {
        ++pruned1;
        ++correct;
      }
    }
  }
  m.label0_recall = n0 > 0 ? static_cast<double>(kept0) / n0 : 1.0;
  m.label1_recall = n1 > 0 ? static_cast<double>(pruned1) / n1 : 0.0;
  m.accuracy = samples.empty()
                   ? 0.0
                   : static_cast<double>(correct) / samples.size();
  return m;
}

void LinearCorrector::CalibrateIntercept(
    const std::vector<CorrectorSample>& samples, double target_recall) {
  RESINFER_CHECK(target_recall > 0.0 && target_recall <= 1.0);
  // Collect intercept-free scores of label-0 samples; choosing
  // bias = -q_r(scores) keeps a >= target_recall fraction of them at
  // score <= 0 (not pruned). This is the exact solution the paper's binary
  // search on beta' converges to.
  std::vector<double> scores;
  for (const auto& s : samples) {
    if (s.label != 0) continue;
    scores.push_back(static_cast<double>(w_approx_) * s.approx +
                     static_cast<double>(w_tau_) * s.tau +
                     static_cast<double>(w_extra_) * s.extra);
  }
  if (scores.empty()) return;
  double cutoff = linalg::EmpiricalQuantile(std::move(scores), target_recall);
  // Nudge below the cutoff so the quantile sample itself is kept.
  bias_ = static_cast<float>(
      -cutoff - 1e-6 * (1.0 + std::abs(cutoff)));
}

}  // namespace resinfer::core

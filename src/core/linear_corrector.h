// Data-driven distance correction (§V-A).
//
// Recasts the error bound as parameters of a linear classifier
//     L = sign(w_approx * dis' + w_tau * tau (+ w_extra * extra) + b > 0)
// with label 1 <=> dis > tau (candidate is prunable). The classifier is a
// logistic regression trained with SGD on BCE loss over samples harvested
// from training queries; after training, the intercept is re-calibrated
// (the paper's beta -> beta' adjustment, implemented as an exact quantile
// computation, equivalent to the paper's binary search) so that the recall
// of label 0 — "a true neighbor is not wrongly pruned" — meets a target
// (default 0.995, the best trade-off per Exp-2).
//
// This makes the correction agnostic to where dis' comes from: plain PCA
// distances (DDCpca), OPQ asymmetric distances (DDCopq), or anything else.
#ifndef RESINFER_CORE_LINEAR_CORRECTOR_H_
#define RESINFER_CORE_LINEAR_CORRECTOR_H_

#include <cstdint>
#include <vector>

namespace resinfer::core {

struct CorrectorSample {
  float approx = 0.0f;  // dis'
  float tau = 0.0f;     // queue threshold when the pair was observed
  float extra = 0.0f;   // optional third feature (e.g. OPQ residual)
  uint8_t label = 0;    // 1 <=> exact distance > tau (prunable)
};

struct LinearCorrectorOptions {
  int num_features = 2;  // 2 = (approx, tau); 3 adds `extra`
  int epochs = 12;
  double learning_rate = 0.1;
  double l2 = 1e-6;
  double target_recall = 0.995;
  uint64_t seed = 31;
};

class LinearCorrector {
 public:
  LinearCorrector() = default;

  static LinearCorrector Train(const std::vector<CorrectorSample>& samples,
                               const LinearCorrectorOptions& options =
                                   LinearCorrectorOptions());

  // Rebuilds a corrector from persisted weights (persist/persist.h).
  static LinearCorrector FromWeights(float w_approx, float w_tau,
                                     float w_extra, float bias,
                                     bool trained) {
    LinearCorrector model;
    model.w_approx_ = w_approx;
    model.w_tau_ = w_tau;
    model.w_extra_ = w_extra;
    model.bias_ = bias;
    model.trained_ = trained;
    return model;
  }

  // Raw decision score; > 0 predicts label 1 (prunable).
  float Score(float approx, float tau, float extra = 0.0f) const {
    return w_approx_ * approx + w_tau_ * tau + w_extra_ * extra + bias_;
  }
  bool PredictPrunable(float approx, float tau, float extra = 0.0f) const {
    return Score(approx, tau, extra) > 0.0f;
  }

  struct Metrics {
    double label0_recall = 0.0;  // kept (not pruned) fraction of label 0
    double label1_recall = 0.0;  // pruned fraction of label 1
    double accuracy = 0.0;
  };
  Metrics Evaluate(const std::vector<CorrectorSample>& samples) const;

  // Re-calibrates the intercept so that at least `target_recall` of the
  // label-0 samples score <= 0, while pruning as much of label 1 as that
  // constraint allows. No-op when the set has no label-0 samples.
  void CalibrateIntercept(const std::vector<CorrectorSample>& samples,
                          double target_recall);

  float w_approx() const { return w_approx_; }
  float w_tau() const { return w_tau_; }
  float w_extra() const { return w_extra_; }
  float bias() const { return bias_; }
  bool trained() const { return trained_; }

 private:
  float w_approx_ = 0.0f;
  float w_tau_ = 0.0f;
  float w_extra_ = 0.0f;
  float bias_ = -1.0f;  // untrained corrector never prunes
  bool trained_ = false;
};

}  // namespace resinfer::core

#endif  // RESINFER_CORE_LINEAR_CORRECTOR_H_

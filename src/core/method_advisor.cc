#include "core/method_advisor.h"

#include <algorithm>
#include <cstdio>

#include "core/method_factory.h"
#include "util/macros.h"
#include "util/rng.h"

namespace resinfer::core {

double SpectrumProfile::ExplainedAt(int64_t k) const {
  if (cumulative_explained.empty()) return 0.0;
  k = std::clamp<int64_t>(k, 0,
                          static_cast<int64_t>(cumulative_explained.size()) -
                              1);
  return cumulative_explained[static_cast<std::size_t>(k)];
}

int64_t SpectrumProfile::DimsForFraction(double fraction) const {
  for (std::size_t k = 0; k < cumulative_explained.size(); ++k) {
    if (cumulative_explained[k] >= fraction) return static_cast<int64_t>(k);
  }
  return dim;
}

SpectrumProfile ProfileSpectrum(const linalg::PcaModel& pca) {
  RESINFER_CHECK(pca.fitted());
  SpectrumProfile profile;
  profile.dim = pca.dim();
  profile.cumulative_explained.resize(
      static_cast<std::size_t>(pca.dim()) + 1, 0.0);
  double total = 0.0;
  for (float v : pca.variances()) total += v;
  double running = 0.0;
  for (int64_t k = 0; k < pca.dim(); ++k) {
    running += pca.variances()[static_cast<std::size_t>(k)];
    profile.cumulative_explained[static_cast<std::size_t>(k) + 1] =
        total > 0.0 ? running / total : 0.0;
  }
  return profile;
}

SpectrumProfile ProfileSpectrum(const linalg::Matrix& data, int64_t max_rows,
                                uint64_t seed) {
  RESINFER_CHECK(data.rows() > 0 && data.cols() > 0);
  const int64_t n = data.rows();
  const int64_t d = data.cols();
  linalg::PcaModel pca;
  if (n > max_rows) {
    Rng rng(seed);
    std::vector<int64_t> pick = rng.SampleWithoutReplacement(n, max_rows);
    linalg::Matrix sample(static_cast<int64_t>(pick.size()), d);
    for (std::size_t i = 0; i < pick.size(); ++i) {
      std::copy(data.Row(pick[i]), data.Row(pick[i]) + d,
                sample.Row(static_cast<int64_t>(i)));
    }
    pca = linalg::PcaModel::Fit(sample.data(), sample.rows(), d);
  } else {
    pca = linalg::PcaModel::Fit(data.data(), n, d);
  }
  return ProfileSpectrum(pca);
}

MethodAdvice AdviseMethod(const SpectrumProfile& profile, double threshold) {
  MethodAdvice advice;
  advice.explained_variance_32 = profile.ExplainedAt(32);

  char buffer[256];
  if (advice.explained_variance_32 >= threshold) {
    advice.recommended = kMethodDdcRes;
    std::snprintf(buffer, sizeof(buffer),
                  "a 32-dim PCA keeps %.0f%% of the variance (>= %.0f%%): "
                  "skewed spectrum, projection-based correction (ddc-res / "
                  "ddc-pca) prunes from few dimensions",
                  100.0 * advice.explained_variance_32, 100.0 * threshold);
  } else {
    advice.recommended = kMethodDdcOpq;
    std::snprintf(buffer, sizeof(buffer),
                  "a 32-dim PCA keeps only %.0f%% of the variance (< "
                  "%.0f%%): flat spectrum, quantization-based correction "
                  "(ddc-opq) estimates better than truncated projections",
                  100.0 * advice.explained_variance_32, 100.0 * threshold);
  }
  advice.rationale = buffer;
  return advice;
}

}  // namespace resinfer::core

// Data-driven method selection (Exp-1's closing observation).
//
// The paper explains its own results table by one dataset property: "a PCA
// projection to 32 dimensions preserves 67% of the variance in the GIST
// dataset and 82% in the SIFT dataset" (projection-based DDC wins there),
// versus 36% / 18% on WORD2VEC / GLOVE (quantization-based DDCopq wins).
// "This observation suggests that analysis of variance skewness can
// effectively guide the selection of our proposed methods."
//
// MethodAdvisor turns that sentence into a function: profile the spectrum
// (from a fitted PCA or a data sample), report the explained-variance curve
// and recommend a DDC method with the paper's anchors as calibration.
#ifndef RESINFER_CORE_METHOD_ADVISOR_H_
#define RESINFER_CORE_METHOD_ADVISOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace resinfer::core {

struct SpectrumProfile {
  int64_t dim = 0;
  // Cumulative explained-variance: prefix[k] = (sum of the top-k PCA
  // eigenvalues) / (total variance); length dim+1, prefix[0] == 0,
  // prefix[dim] == 1 (0 when the data has no variance).
  std::vector<double> cumulative_explained;

  // Fraction of variance kept by a k-dim PCA projection (k clamped).
  double ExplainedAt(int64_t k) const;
  // Smallest k whose projection keeps at least `fraction` of the variance.
  int64_t DimsForFraction(double fraction) const;
};

// Profile from an already-fitted PCA (free) ...
SpectrumProfile ProfileSpectrum(const linalg::PcaModel& pca);
// ... or from data directly (fits a PCA on at most `max_rows` sampled
// rows).
SpectrumProfile ProfileSpectrum(const linalg::Matrix& data,
                                int64_t max_rows = 20000,
                                uint64_t seed = 99);

struct MethodAdvice {
  // One of core::kMethodDdcRes / kMethodDdcOpq.
  std::string recommended;
  // The statistic the decision is based on (paper's anchor dimension).
  double explained_variance_32 = 0.0;
  // Human-readable reasoning for logs / tooling output.
  std::string rationale;
};

// The paper's decision boundary: its projection-friendly datasets keep
// >= 65% of variance in 32 dims, its quantization-friendly ones <= 36%.
// The default threshold sits between the published clusters.
MethodAdvice AdviseMethod(const SpectrumProfile& profile,
                          double threshold = 0.5);

}  // namespace resinfer::core

#endif  // RESINFER_CORE_METHOD_ADVISOR_H_

#include "core/method_factory.h"

#include "linalg/orthogonal.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace resinfer::core {

MethodFactory::MethodFactory(const data::Dataset* dataset,
                             const FactoryOptions& options)
    : dataset_(dataset), options_(options) {
  RESINFER_CHECK(dataset != nullptr);
  RESINFER_CHECK(dataset->base.rows() > 0);
}

const linalg::PcaModel& MethodFactory::EnsurePca() {
  if (!pca_.has_value()) {
    WallTimer timer;
    pca_ = linalg::PcaModel::Fit(dataset_->base.data(), dataset_->base.rows(),
                                 dataset_->base.cols(), options_.pca);
    costs_.pca_seconds += timer.ElapsedSeconds();
  }
  return *pca_;
}

const linalg::Matrix& MethodFactory::EnsurePcaRotatedBase() {
  if (!pca_rotated_base_.has_value()) {
    const linalg::PcaModel& pca = EnsurePca();
    WallTimer timer;
    pca_rotated_base_ =
        pca.TransformBatch(dataset_->base.data(), dataset_->base.rows());
    costs_.pca_seconds += timer.ElapsedSeconds();
  }
  return *pca_rotated_base_;
}

const linalg::Matrix& MethodFactory::EnsureAdsRotation() {
  if (!ads_rotation_.has_value()) {
    WallTimer timer;
    Rng rng(options_.ads_rotation_seed);
    ads_rotation_ = linalg::RandomOrthonormal(dataset_->base.cols(), rng);
    costs_.ads_seconds += timer.ElapsedSeconds();
  }
  return *ads_rotation_;
}

const linalg::Matrix& MethodFactory::EnsureAdsRotatedBase() {
  if (!ads_rotated_base_.has_value()) {
    const linalg::Matrix& rotation = EnsureAdsRotation();
    WallTimer timer;
    const int64_t n = dataset_->base.rows();
    const int64_t d = dataset_->base.cols();
    linalg::Matrix rotated(n, d);
    ParallelFor(n, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        linalg::MatVec(rotation, dataset_->base.Row(i), rotated.Row(i));
      }
    });
    ads_rotated_base_ = std::move(rotated);
    costs_.ads_seconds += timer.ElapsedSeconds();
  }
  return *ads_rotated_base_;
}

const DdcPcaArtifacts& MethodFactory::EnsureDdcPcaArtifacts() {
  if (!ddc_pca_artifacts_.has_value()) {
    const linalg::PcaModel& pca = EnsurePca();
    const linalg::Matrix& rotated = EnsurePcaRotatedBase();
    ddc_pca_artifacts_ = TrainDdcPca(pca, rotated, dataset_->base,
                                     dataset_->train_queries,
                                     options_.ddc_pca);
    costs_.ddc_pca_train_seconds = ddc_pca_artifacts_->train_seconds;
  }
  return *ddc_pca_artifacts_;
}

const DdcOpqArtifacts& MethodFactory::EnsureDdcOpqArtifacts() {
  if (!ddc_opq_artifacts_.has_value()) {
    ddc_opq_artifacts_ = TrainDdcOpq(dataset_->base, dataset_->train_queries,
                                     options_.ddc_opq);
    costs_.opq_seconds = ddc_opq_artifacts_->opq_train_seconds;
    costs_.ddc_opq_train_seconds =
        ddc_opq_artifacts_->corrector_train_seconds;
  }
  return *ddc_opq_artifacts_;
}

const FingerArtifacts& MethodFactory::EnsureFingerArtifacts(
    const index::HnswIndex& graph) {
  if (!finger_artifacts_.has_value()) {
    finger_artifacts_ = BuildFingerArtifacts(
        dataset_->base, graph, dataset_->train_queries, options_.finger);
    costs_.finger_seconds = finger_artifacts_->build_seconds;
    costs_.finger_bytes = finger_artifacts_->ExtraBytes();
  }
  return *finger_artifacts_;
}

std::unique_ptr<index::DistanceComputer> MethodFactory::Make(
    const std::string& method, const index::HnswIndex* graph) {
  if (method == kMethodExact) {
    return std::make_unique<index::FlatDistanceComputer>(
        dataset_->base.data(), dataset_->base.rows(), dataset_->base.cols());
  }
  if (method == kMethodAdSampling) {
    const linalg::Matrix& rotation = EnsureAdsRotation();
    const linalg::Matrix& rotated = EnsureAdsRotatedBase();
    auto computer = std::make_unique<AdSamplingComputer>(
        &rotation, &rotated, options_.ad_sampling);
    costs_.ads_bytes = computer->ExtraBytes();
    return computer;
  }
  if (method == kMethodDdcRes) {
    const linalg::PcaModel& pca = EnsurePca();
    const linalg::Matrix& rotated = EnsurePcaRotatedBase();
    auto computer =
        std::make_unique<DdcResComputer>(&pca, &rotated, options_.ddc_res);
    costs_.ddc_res_bytes = computer->ExtraBytes();
    return computer;
  }
  if (method == kMethodDdcPca) {
    const DdcPcaArtifacts& artifacts = EnsureDdcPcaArtifacts();
    auto computer = std::make_unique<DdcPcaComputer>(
        &*pca_, &*pca_rotated_base_, &artifacts);
    costs_.ddc_pca_bytes = computer->ExtraBytes();
    return computer;
  }
  if (method == kMethodDdcOpq) {
    const DdcOpqArtifacts& artifacts = EnsureDdcOpqArtifacts();
    costs_.ddc_opq_bytes = artifacts.ExtraBytes();
    return std::make_unique<DdcOpqComputer>(&dataset_->base, &artifacts);
  }
  if (method == kMethodFinger) {
    RESINFER_CHECK_MSG(graph != nullptr,
                       "finger requires the HNSW graph it was built for");
    const FingerArtifacts& artifacts = EnsureFingerArtifacts(*graph);
    return std::make_unique<FingerComputer>(&dataset_->base, &artifacts);
  }
  RESINFER_CHECK_MSG(false, ("unknown method: " + method).c_str());
  return nullptr;
}

std::vector<std::string> AllMethodNames(bool include_finger) {
  std::vector<std::string> names = {kMethodExact, kMethodAdSampling,
                                    kMethodDdcOpq, kMethodDdcPca,
                                    kMethodDdcRes};
  if (include_finger) names.push_back(kMethodFinger);
  return names;
}

}  // namespace resinfer::core

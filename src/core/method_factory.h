// MethodFactory — one-stop construction of every distance-computation
// method for a dataset, with shared artifacts and preprocessing-cost
// accounting (feeds Exp-3/Fig 7 and Exp-5/Fig 9).
//
// Sharing mirrors the paper's setup: DDCres and DDCpca use the SAME PCA
// rotation and rotated base; ADSampling uses its own random rotation;
// DDCopq trains OPQ independently. Artifacts are built lazily on first use
// and timed.
//
// The factory must outlive every computer it creates. Computers are
// stateful per query; create one per search thread.
#ifndef RESINFER_CORE_METHOD_FACTORY_H_
#define RESINFER_CORE_METHOD_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ad_sampling.h"
#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_res.h"
#include "core/finger.h"
#include "data/dataset.h"
#include "index/distance_computer.h"
#include "index/hnsw_index.h"
#include "linalg/pca.h"

namespace resinfer::core {

struct FactoryOptions {
  linalg::PcaOptions pca;
  AdSamplingOptions ad_sampling;
  DdcResOptions ddc_res;
  DdcPcaOptions ddc_pca;
  DdcOpqOptions ddc_opq;
  FingerOptions finger;
  uint64_t ads_rotation_seed = 555;
};

// Wall-clock preprocessing cost and extra storage per method.
struct PreprocessCosts {
  double pca_seconds = 0.0;        // fit + base rotation (DDCres & DDCpca)
  double ads_seconds = 0.0;        // random rotation + base rotation
  double opq_seconds = 0.0;        // OPQ train + encode
  double ddc_pca_train_seconds = 0.0;
  double ddc_opq_train_seconds = 0.0;
  double finger_seconds = 0.0;

  int64_t ddc_res_bytes = 0;
  int64_t ads_bytes = 0;
  int64_t ddc_pca_bytes = 0;
  int64_t ddc_opq_bytes = 0;
  int64_t finger_bytes = 0;
};

// Canonical method names accepted by MethodFactory::Make.
inline constexpr const char* kMethodExact = "exact";
inline constexpr const char* kMethodAdSampling = "adsampling";
inline constexpr const char* kMethodDdcRes = "ddc-res";
inline constexpr const char* kMethodDdcPca = "ddc-pca";
inline constexpr const char* kMethodDdcOpq = "ddc-opq";
inline constexpr const char* kMethodFinger = "finger";

class MethodFactory {
 public:
  // `dataset` must outlive the factory.
  explicit MethodFactory(const data::Dataset* dataset,
                         const FactoryOptions& options = FactoryOptions());

  const data::Dataset& dataset() const { return *dataset_; }
  const FactoryOptions& options() const { return options_; }
  const PreprocessCosts& costs() const { return costs_; }

  // Shared artifacts (built lazily, timed into costs()).
  const linalg::PcaModel& EnsurePca();
  const linalg::Matrix& EnsurePcaRotatedBase();
  const linalg::Matrix& EnsureAdsRotation();
  const linalg::Matrix& EnsureAdsRotatedBase();
  const DdcPcaArtifacts& EnsureDdcPcaArtifacts();
  const DdcOpqArtifacts& EnsureDdcOpqArtifacts();
  // FINGER preprocesses a specific HNSW graph; the graph must outlive the
  // factory's artifacts.
  const FingerArtifacts& EnsureFingerArtifacts(const index::HnswIndex& graph);

  // Builds a computer by canonical name. `graph` is required for "finger"
  // and ignored otherwise.
  std::unique_ptr<index::DistanceComputer> Make(
      const std::string& method, const index::HnswIndex* graph = nullptr);

 private:
  const data::Dataset* dataset_;
  FactoryOptions options_;
  PreprocessCosts costs_;

  std::optional<linalg::PcaModel> pca_;
  std::optional<linalg::Matrix> pca_rotated_base_;
  std::optional<linalg::Matrix> ads_rotation_;
  std::optional<linalg::Matrix> ads_rotated_base_;
  std::optional<DdcPcaArtifacts> ddc_pca_artifacts_;
  std::optional<DdcOpqArtifacts> ddc_opq_artifacts_;
  std::optional<FingerArtifacts> finger_artifacts_;
};

// All method names, in the order the paper's figures list them.
std::vector<std::string> AllMethodNames(bool include_finger = false);

}  // namespace resinfer::core

#endif  // RESINFER_CORE_METHOD_FACTORY_H_

// Shared chunk scorer for the PQ-backed estimate paths (DdcAny's
// PqAdcEstimator and DdcOpqComputer).
//
// Both computers score candidate chunks with one of two tiers: the
// byte-per-code float-table gather kernel (PqAdcBatch), or — for packed
// 4-bit codebooks — the quantized-LUT fast-scan plus the shared
// dequantization (PqAdcFastScan; see quant/code_layout.h). This helper is
// the ONE routing point between the tiers: every batch path (id-gather and
// code-resident alike) calls it, so a change to either tier's chunk
// arithmetic cannot drift between call sites and break the bit-identity
// contracts the fastscan-parity suite pins.
#ifndef RESINFER_CORE_PQ_SCAN_H_
#define RESINFER_CORE_PQ_SCAN_H_

#include <cstdint>

#include "quant/pq.h"
#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::core {

// Upper bound on `n` per call (the block-refine chunk; callers feed 16 or
// 32 codes at a time).
inline constexpr int kPqScanChunk = 32;

// out[j] = estimate for codes[j], j in [0, n). Packed tier: exact integer
// LUT sums dequantized through the one shared expression; byte tier: the
// float ADC table accumulation. `table` may be null when packed, and
// `lut`/`scale`/`bias` are ignored when not.
inline void ScorePqChunk(const quant::PqCodebook& codebook, bool packed,
                         const float* table, const uint8_t* lut, float scale,
                         float bias, const uint8_t* const* codes, int n,
                         float* out) {
  RESINFER_DCHECK(n <= kPqScanChunk);
  if (packed) {
    uint16_t sums[kPqScanChunk];
    simd::PqAdcFastScan(lut, codebook.num_subspaces(), codes, n, sums);
    for (int j = 0; j < n; ++j) {
      out[j] =
          quant::PqCodebook::DequantizeFastScanSum(sums[j], scale, bias);
    }
  } else {
    simd::PqAdcBatch(table, codebook.num_subspaces(),
                     codebook.num_centroids(), codes, n, out);
  }
}

}  // namespace resinfer::core

#endif  // RESINFER_CORE_PQ_SCAN_H_

#include "core/training_data.h"

#include <algorithm>
#include <unordered_set>

#include "data/ground_truth.h"
#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace resinfer::core {

std::vector<LabeledPair> CollectLabeledPairs(
    const linalg::Matrix& base, const linalg::Matrix& train_queries,
    const TrainingDataOptions& options) {
  RESINFER_CHECK(base.cols() == train_queries.cols());
  RESINFER_CHECK(options.k >= 1);
  const int64_t num_queries =
      std::min<int64_t>(train_queries.rows(), options.max_queries);
  RESINFER_CHECK(num_queries > 0);
  const int64_t n = base.rows();
  const std::size_t d = static_cast<std::size_t>(base.cols());

  // Exact extended KNN per training query, in parallel. The extension
  // beyond k supplies "hard" negatives: points just outside tau, which is
  // exactly the region an index's refinement phase evaluates. Training on
  // uniform negatives alone would place the decision boundary too
  // aggressively near tau (everything random is far away).
  const int hard_negatives = options.negatives_per_query / 2;
  const int uniform_negatives = options.negatives_per_query - hard_negatives;
  const int extended_k =
      static_cast<int>(std::min<int64_t>(options.k + hard_negatives, n));
  std::vector<std::vector<data::Neighbor>> knn(num_queries);
  ParallelForEach(num_queries, [&](int64_t q, int /*thread*/) {
    knn[q] =
        data::BruteForceKnnSingle(base, train_queries.Row(q), extended_k);
  });

  std::vector<LabeledPair> pairs;
  pairs.reserve(static_cast<std::size_t>(num_queries) *
                (options.k + options.negatives_per_query));
  Rng rng(options.seed);

  for (int64_t q = 0; q < num_queries; ++q) {
    const auto& neighbors = knn[q];
    const int k_here =
        static_cast<int>(std::min<std::size_t>(options.k, neighbors.size()));
    const float tau = neighbors[k_here - 1].distance;

    std::unordered_set<int64_t> seen_ids;
    seen_ids.reserve(neighbors.size() * 2);
    // Positives: the true KNN (label 0). Hard negatives: ranks k+1..k+h,
    // labeled by their true comparison (distance ties keep label 0).
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const auto& nb = neighbors[i];
      seen_ids.insert(nb.id);
      uint8_t label = nb.distance > tau ? 1 : 0;
      pairs.push_back({q, nb.id, tau, nb.distance, label});
    }

    // Uniform negatives: random non-seen points with exact > tau. Uniform
    // sampling occasionally draws a point inside tau; such points are
    // labeled by their true comparison.
    int accepted = 0;
    int attempts = 0;
    const int max_attempts = uniform_negatives * 8;
    while (accepted < uniform_negatives && attempts < max_attempts) {
      ++attempts;
      int64_t id = static_cast<int64_t>(rng.UniformInt(n));
      if (seen_ids.count(id) > 0) continue;
      float exact =
          simd::L2Sqr(base.Row(id), train_queries.Row(q), d);
      uint8_t label = exact > tau ? 1 : 0;
      pairs.push_back({q, id, tau, exact, label});
      if (label == 1) ++accepted;
    }
  }
  return pairs;
}

std::vector<CorrectorSample> MaterializeSamples(
    const std::vector<LabeledPair>& pairs,
    const PairApproximator& approx_fn) {
  std::vector<CorrectorSample> samples;
  samples.reserve(pairs.size());
  for (const auto& pair : pairs) {
    CorrectorSample s;
    float extra = 0.0f;
    s.approx = approx_fn(pair.query_index, pair.id, &extra);
    s.extra = extra;
    s.tau = pair.tau;
    s.label = pair.label;
    samples.push_back(s);
  }
  return samples;
}

}  // namespace resinfer::core

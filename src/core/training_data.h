// Training-data harvesting for the data-driven correctors (§V, §VII-A).
//
// Mirrors the paper's labeling protocol: for each training query, the exact
// KNNs form the positive samples (label 0: dis <= tau, must not be pruned)
// with tau = the K-th exact distance; negatives (label 1: dis > tau) are
// harvested from non-neighbor points visited by a query process — here, a
// uniform sample over the remaining base points, which matches the
// candidate mix seen by IVF/HNSW refinement closely enough to calibrate the
// linear boundary.
//
// The expensive step (exact KNN of every training query) runs once and is
// shared by all correction stages: MaterializeSamples() turns labeled pairs
// into per-stage feature vectors via a caller-provided approximator.
#ifndef RESINFER_CORE_TRAINING_DATA_H_
#define RESINFER_CORE_TRAINING_DATA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/linear_corrector.h"
#include "linalg/matrix.h"

namespace resinfer::core {

struct TrainingDataOptions {
  int k = 100;                   // positives per query (the KNN set)
  int negatives_per_query = 100; // label-1 samples per query
  int64_t max_queries = 1000;    // training queries used
  uint64_t seed = 17;
};

struct LabeledPair {
  int64_t query_index = 0;  // row in the training-query matrix
  int64_t id = 0;           // base row
  float tau = 0.0f;         // K-th exact distance of that query
  float exact = 0.0f;       // exact distance of the pair
  uint8_t label = 0;        // 1 <=> exact > tau
};

// Pairs are grouped by query_index in ascending order, so approximators can
// cache per-query state while materializing.
std::vector<LabeledPair> CollectLabeledPairs(
    const linalg::Matrix& base, const linalg::Matrix& train_queries,
    const TrainingDataOptions& options = TrainingDataOptions());

// approx_fn(query_index, id, *extra) -> dis' for one pair; called in pair
// order (grouped by query). Returns corrector-ready samples.
using PairApproximator =
    std::function<float(int64_t query_index, int64_t id, float* extra)>;

std::vector<CorrectorSample> MaterializeSamples(
    const std::vector<LabeledPair>& pairs, const PairApproximator& approx_fn);

}  // namespace resinfer::core

#endif  // RESINFER_CORE_TRAINING_DATA_H_

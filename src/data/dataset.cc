#include "data/dataset.h"

#include "simd/kernels.h"

namespace resinfer::data {

float ExactL2Sqr(const Matrix& base, int64_t id, const float* query) {
  return simd::L2Sqr(base.Row(id), query,
                     static_cast<std::size_t>(base.cols()));
}

}  // namespace resinfer::data

// Dataset container shared by indexes, trainers and benches.
#ifndef RESINFER_DATA_DATASET_H_
#define RESINFER_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace resinfer::data {

using linalg::Matrix;

// A benchmark dataset: base vectors to index, evaluation queries, and a
// disjoint pool of training queries for the data-driven correctors
// (the paper trains on sampled vectors and keeps the evaluation queries
// clean, §VII-A).
struct Dataset {
  std::string name;
  Matrix base;           // n x d
  Matrix queries;        // q x d
  Matrix train_queries;  // t x d

  int64_t dim() const { return base.cols(); }
  int64_t size() const { return base.rows(); }
};

// Exact squared Euclidean distance between base row `id` and `query`.
float ExactL2Sqr(const Matrix& base, int64_t id, const float* query);

}  // namespace resinfer::data

#endif  // RESINFER_DATA_DATASET_H_

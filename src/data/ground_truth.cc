#include "data/ground_truth.h"

#include <algorithm>
#include <queue>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"

namespace resinfer::data {

namespace {

struct HeapEntry {
  float distance;
  int64_t id;
  // Max-heap by distance; among equal distances keep the larger id on top
  // so that the final ascending order breaks ties by smaller id.
  bool operator<(const HeapEntry& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;
  }
};

}  // namespace

std::vector<Neighbor> BruteForceKnnSingle(const linalg::Matrix& base,
                                          const float* query, int k) {
  const int64_t n = base.rows();
  const std::size_t d = static_cast<std::size_t>(base.cols());
  k = static_cast<int>(std::min<int64_t>(k, n));
  RESINFER_CHECK(k > 0);

  std::priority_queue<HeapEntry> heap;
  for (int64_t i = 0; i < n; ++i) {
    float dist = simd::L2Sqr(base.Row(i), query, d);
    if (static_cast<int>(heap.size()) < k) {
      heap.push({dist, i});
    } else if (HeapEntry{dist, i} < heap.top()) {
      heap.pop();
      heap.push({dist, i});
    }
  }
  std::vector<Neighbor> result(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    result[i] = {heap.top().id, heap.top().distance};
    heap.pop();
  }
  return result;
}

std::vector<std::vector<int64_t>> BruteForceKnn(const linalg::Matrix& base,
                                                const linalg::Matrix& queries,
                                                int k) {
  RESINFER_CHECK(base.cols() == queries.cols());
  std::vector<std::vector<int64_t>> out(queries.rows());
  ParallelForEach(queries.rows(), [&](int64_t q, int /*thread_id*/) {
    std::vector<Neighbor> nn = BruteForceKnnSingle(base, queries.Row(q), k);
    out[q].resize(nn.size());
    for (std::size_t i = 0; i < nn.size(); ++i) out[q][i] = nn[i].id;
  });
  return out;
}

}  // namespace resinfer::data

// Brute-force exact KNN, used as ground truth for recall measurement and to
// label training data for the learned correctors.
#ifndef RESINFER_DATA_GROUND_TRUTH_H_
#define RESINFER_DATA_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace resinfer::data {

// ids[q] = the k base rows closest to queries row q, ascending by squared
// L2 distance (ties broken by id). k is clamped to base.rows().
std::vector<std::vector<int64_t>> BruteForceKnn(const linalg::Matrix& base,
                                                const linalg::Matrix& queries,
                                                int k);

// Single-query variant; also returns the distances.
struct Neighbor {
  int64_t id;
  float distance;
};
std::vector<Neighbor> BruteForceKnnSingle(const linalg::Matrix& base,
                                          const float* query, int k);

}  // namespace resinfer::data

#endif  // RESINFER_DATA_GROUND_TRUTH_H_

#include "data/metric.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::data {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kCosine:
      return "cosine";
    case Metric::kInnerProduct:
      return "ip";
  }
  return "unknown";
}

linalg::Matrix NormalizeRowsL2(const linalg::Matrix& m) {
  linalg::Matrix out(m.rows(), m.cols());
  for (int64_t i = 0; i < m.rows(); ++i) {
    const float* src = m.Row(i);
    float* dst = out.Row(i);
    const float norm = std::sqrt(
        simd::Norm2Sqr(src, static_cast<std::size_t>(m.cols())));
    if (norm > 0.0f) {
      for (int64_t j = 0; j < m.cols(); ++j) dst[j] = src[j] / norm;
    }  // zero rows stay zero
  }
  return out;
}

MipsTransform MipsTransform::Fit(const linalg::Matrix& base) {
  RESINFER_CHECK(base.rows() > 0 && base.cols() > 0);
  float max_norm_sqr = 0.0f;
  for (int64_t i = 0; i < base.rows(); ++i) {
    max_norm_sqr = std::max(
        max_norm_sqr,
        simd::Norm2Sqr(base.Row(i), static_cast<std::size_t>(base.cols())));
  }
  MipsTransform t;
  t.max_norm_ = std::sqrt(max_norm_sqr);
  return t;
}

MipsTransform MipsTransform::FromMaxNorm(float max_norm) {
  RESINFER_CHECK(max_norm >= 0.0f && std::isfinite(max_norm));
  MipsTransform t;
  t.max_norm_ = max_norm;
  return t;
}

linalg::Matrix MipsTransform::TransformBase(
    const linalg::Matrix& base) const {
  linalg::Matrix out(base.rows(), base.cols() + 1);
  const float phi_sqr = max_norm_ * max_norm_;
  for (int64_t i = 0; i < base.rows(); ++i) {
    const float* src = base.Row(i);
    float* dst = out.Row(i);
    std::copy(src, src + base.cols(), dst);
    const float norm_sqr =
        simd::Norm2Sqr(src, static_cast<std::size_t>(base.cols()));
    dst[base.cols()] =
        norm_sqr < phi_sqr ? std::sqrt(phi_sqr - norm_sqr) : 0.0f;
  }
  return out;
}

linalg::Matrix MipsTransform::TransformQueries(
    const linalg::Matrix& queries) const {
  linalg::Matrix out(queries.rows(), queries.cols() + 1);
  for (int64_t i = 0; i < queries.rows(); ++i) {
    const float* src = queries.Row(i);
    std::copy(src, src + queries.cols(), out.Row(i));
    // The padded component is already zero-initialized.
  }
  return out;
}

namespace {

// Shared best-first top-k by a caller-supplied score (larger is better).
template <typename ScoreFn>
std::vector<Neighbor> TopKByScore(int64_t n, int k, ScoreFn&& score) {
  std::vector<Neighbor> all(static_cast<std::size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    all[static_cast<std::size_t>(i)] = {i, score(i)};
  }
  const auto kk = static_cast<std::size_t>(
      std::min<int64_t>(k, n));
  std::partial_sort(all.begin(), all.begin() + kk, all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance)
                        return a.distance > b.distance;
                      return a.id < b.id;
                    });
  all.resize(kk);
  return all;
}

}  // namespace

std::vector<Neighbor> TopKByInnerProduct(const linalg::Matrix& base,
                                         const float* query, int k) {
  return TopKByScore(base.rows(), k, [&](int64_t i) {
    return simd::InnerProduct(base.Row(i), query,
                              static_cast<std::size_t>(base.cols()));
  });
}

std::vector<Neighbor> TopKByCosine(const linalg::Matrix& base,
                                   const float* query, int k) {
  const float qnorm = std::sqrt(
      simd::Norm2Sqr(query, static_cast<std::size_t>(base.cols())));
  return TopKByScore(base.rows(), k, [&](int64_t i) {
    const float* x = base.Row(i);
    const float xnorm = std::sqrt(
        simd::Norm2Sqr(x, static_cast<std::size_t>(base.cols())));
    const float denom = qnorm * xnorm;
    return denom > 0.0f
               ? simd::InnerProduct(x, query,
                                    static_cast<std::size_t>(base.cols())) /
                     denom
               : 0.0f;
  });
}

}  // namespace resinfer::data

// Metric reductions to squared Euclidean distance (§II-A).
//
// The paper restricts its analysis to L2 because "other widely adopted
// distance metrics, such as cosine similarity and inner product, can be
// transformed into Euclidean distance through simple transformations".
// This module implements those transformations so every DDC method (and
// every index) serves cosine / maximum-inner-product workloads unchanged:
//
//   * cosine: L2-normalize base and queries. For unit vectors
//     ||q - x||^2 = 2 - 2 cos(q, x), so ascending L2 == descending cosine.
//   * inner product (MIPS): the order-preserving augmentation of Bachrach
//     et al. (RecSys'14). With Φ = max base norm, map
//         x -> [x, sqrt(Φ^2 - ||x||^2)],   q -> [q, 0].
//     Then ||q' - x'||^2 = ||q||^2 + Φ^2 - 2 <q, x>: ascending L2 over the
//     augmented (D+1)-dim space == descending inner product.
#ifndef RESINFER_DATA_METRIC_H_
#define RESINFER_DATA_METRIC_H_

#include <cstdint>
#include <vector>

#include "data/ground_truth.h"
#include "linalg/matrix.h"

namespace resinfer::data {

enum class Metric {
  kL2 = 0,
  kCosine = 1,
  kInnerProduct = 2,
};

const char* MetricName(Metric metric);

// Copy of `m` with every row scaled to unit L2 norm; all-zero rows are
// left at zero (they are equidistant from everything under cosine anyway).
linalg::Matrix NormalizeRowsL2(const linalg::Matrix& m);

// The MIPS -> L2 reduction. Build once from the base; queries transform
// with the stored norm bound.
class MipsTransform {
 public:
  // Computes Φ = max row norm of `base` and returns the transform.
  static MipsTransform Fit(const linalg::Matrix& base);

  // Rebuilds from a persisted bound (must be >= every base norm used).
  static MipsTransform FromMaxNorm(float max_norm);

  float max_norm() const { return max_norm_; }

  // base (n x d) -> (n x d+1) with the sqrt(Φ^2 - ||x||^2) pad. Rows whose
  // norm exceeds Φ (possible only via FromMaxNorm misuse) pad with 0.
  linalg::Matrix TransformBase(const linalg::Matrix& base) const;

  // queries (q x d) -> (q x d+1) zero-padded.
  linalg::Matrix TransformQueries(const linalg::Matrix& queries) const;

 private:
  float max_norm_ = 0.0f;
};

// Reference top-k under the original metrics, for validating the
// reductions and for examples. Results are ordered best-first (largest
// inner product / cosine first).
std::vector<Neighbor> TopKByInnerProduct(const linalg::Matrix& base,
                                         const float* query, int k);
std::vector<Neighbor> TopKByCosine(const linalg::Matrix& base,
                                   const float* query, int k);

}  // namespace resinfer::data

#endif  // RESINFER_DATA_METRIC_H_

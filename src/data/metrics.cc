#include "data/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "util/macros.h"

namespace resinfer::data {

double RecallAtK(const std::vector<int64_t>& result,
                 const std::vector<int64_t>& truth, int k) {
  RESINFER_CHECK(k > 0);
  const std::size_t truth_k = std::min<std::size_t>(truth.size(), k);
  if (truth_k == 0) return 0.0;
  std::unordered_set<int64_t> truth_set(truth.begin(),
                                        truth.begin() + truth_k);
  std::size_t hits = 0;
  const std::size_t result_k = std::min<std::size_t>(result.size(), k);
  for (std::size_t i = 0; i < result_k; ++i) {
    if (truth_set.count(result[i]) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanRecallAtK(const std::vector<std::vector<int64_t>>& results,
                     const std::vector<std::vector<int64_t>>& truth, int k) {
  RESINFER_CHECK(results.size() == truth.size());
  if (results.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    total += RecallAtK(results[i], truth[i], k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace resinfer::data

// Search-quality metrics (recall@K as defined in §VII-A).
#ifndef RESINFER_DATA_METRICS_H_
#define RESINFER_DATA_METRICS_H_

#include <cstdint>
#include <vector>

namespace resinfer::data {

// recall@K for one query: |result ∩ truth[0..k)| / k.
// `truth` may be longer than k; only its first k entries count.
double RecallAtK(const std::vector<int64_t>& result,
                 const std::vector<int64_t>& truth, int k);

// Mean recall@K across queries. result.size() must equal truth.size().
double MeanRecallAtK(const std::vector<std::vector<int64_t>>& results,
                     const std::vector<std::vector<int64_t>>& truth, int k);

}  // namespace resinfer::data

#endif  // RESINFER_DATA_METRICS_H_

#include "data/synthetic.h"

#include <cmath>
#include <vector>

#include "linalg/orthogonal.h"
#include "linalg/vector_ops.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace resinfer::data {

namespace {

// Per-row RNG stream: deterministic regardless of how rows are sharded
// across threads.
uint64_t RowSeed(uint64_t base_seed, uint64_t stream, int64_t row) {
  uint64_t x = base_seed ^ (stream * 0x9E3779B97F4A7C15ULL) ^
               (static_cast<uint64_t>(row) * 0xBF58476D1CE4E5B9ULL);
  // splitmix64 finalizer for avalanche.
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Latent per-dimension standard deviations following the power-law spectrum,
// scaled so the total variance is `dim` (keeps distances O(sqrt(dim)) across
// alphas, which keeps thresholds comparable between proxies).
std::vector<double> SpectrumStddev(int64_t dim, double alpha) {
  std::vector<double> stddev(dim);
  double total = 0.0;
  for (int64_t i = 0; i < dim; ++i) {
    double lambda = std::pow(static_cast<double>(i + 1), -alpha);
    stddev[i] = lambda;  // temporarily store variance
    total += lambda;
  }
  double scale = static_cast<double>(dim) / total;
  for (int64_t i = 0; i < dim; ++i) stddev[i] = std::sqrt(stddev[i] * scale);
  return stddev;
}

struct MixtureModel {
  std::vector<double> stddev;            // latent per-dim stddev
  std::vector<std::vector<double>> centers;  // num_clusters x dim (latent)
  linalg::Matrix rotation;               // dim x dim, rows orthonormal
};

MixtureModel BuildMixture(const SyntheticSpec& spec) {
  RESINFER_CHECK(spec.dim > 0 && spec.num_clusters > 0);
  RESINFER_CHECK(spec.cluster_spread > 0.0);
  MixtureModel model;
  model.stddev = SpectrumStddev(spec.dim, spec.spectrum_alpha);

  Rng rng(spec.seed);
  model.centers.assign(spec.num_clusters, std::vector<double>(spec.dim));
  for (auto& center : model.centers) {
    for (int64_t i = 0; i < spec.dim; ++i) {
      center[i] = spec.cluster_spread * model.stddev[i] * rng.Gaussian();
    }
  }
  model.rotation = linalg::RandomOrthonormal(spec.dim, rng);
  return model;
}

// Fills `out` (rows x dim) with mixture samples; `stream` separates base /
// query / train-query draws.
void SampleRows(const SyntheticSpec& spec, const MixtureModel& model,
                uint64_t stream, linalg::Matrix& out,
                const std::vector<std::vector<double>>* centers_override =
                    nullptr) {
  const auto& centers =
      centers_override != nullptr ? *centers_override : model.centers;
  const int64_t d = spec.dim;
  ParallelFor(out.rows(), [&](int64_t begin, int64_t end) {
    std::vector<float> latent(d);
    for (int64_t r = begin; r < end; ++r) {
      Rng row_rng(RowSeed(spec.seed, stream, r));
      const auto& center =
          centers[row_rng.UniformInt(static_cast<uint64_t>(centers.size()))];
      for (int64_t i = 0; i < d; ++i) {
        latent[i] = static_cast<float>(center[i] +
                                       model.stddev[i] * row_rng.Gaussian());
      }
      linalg::MatVec(model.rotation, latent.data(), out.Row(r));
      if (spec.normalize) {
        linalg::NormalizeL2(out.Row(r), static_cast<std::size_t>(d));
      }
    }
  });
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  RESINFER_CHECK(spec.num_base > 0);
  MixtureModel model = BuildMixture(spec);

  Dataset ds;
  ds.name = spec.name;
  ds.base = Matrix(spec.num_base, spec.dim);
  SampleRows(spec, model, /*stream=*/1, ds.base);
  ds.queries = Matrix(spec.num_queries, spec.dim);
  SampleRows(spec, model, /*stream=*/2, ds.queries);
  ds.train_queries = Matrix(spec.num_train_queries, spec.dim);
  SampleRows(spec, model, /*stream=*/3, ds.train_queries);
  return ds;
}

Matrix GenerateOutOfDistributionQueries(const SyntheticSpec& spec,
                                        int64_t num_queries,
                                        double shift_scale, uint64_t seed) {
  MixtureModel model = BuildMixture(spec);
  // Shift every mixture center by an independent draw scaled by
  // shift_scale — queries stay in the same ambient space but land between /
  // outside the base clusters.
  Rng rng(seed ^ 0xABCDEF1234567890ULL);
  std::vector<std::vector<double>> shifted = model.centers;
  for (auto& center : shifted) {
    for (int64_t i = 0; i < spec.dim; ++i) {
      center[i] += shift_scale * model.stddev[i] * rng.Gaussian();
    }
  }
  SyntheticSpec ood = spec;
  ood.seed = seed;
  Matrix queries(num_queries, spec.dim);
  SampleRows(ood, model, /*stream=*/7, queries, &shifted);
  return queries;
}

namespace {

SyntheticSpec BaseProxy(const char* name, int64_t dim, double alpha,
                        bool normalize, uint64_t seed, int num_clusters,
                        double cluster_spread) {
  SyntheticSpec spec;
  spec.name = name;
  spec.dim = dim;
  spec.spectrum_alpha = alpha;
  spec.normalize = normalize;
  spec.seed = seed;
  spec.num_clusters = num_clusters;
  spec.cluster_spread = cluster_spread;
  return spec;
}

}  // namespace

// alpha calibration anchors (paper §VII Exp-1): PCA-32 explained variance
// ratio ~0.82 (SIFT), ~0.67 (GIST), ~0.36 (WORD2VEC), ~0.18 (GLOVE).
// Image-like proxies: few strong clusters, skewed spectrum. Text-like
// proxies: many weak clusters (a low cluster count would add a low-rank
// variance component that PCA-32 would soak up, defeating the flat
// spectrum). Values verified in synthetic_test.cc.
SyntheticSpec SiftProxySpec() {
  return BaseProxy("sift-proxy", 128, 1.05, false, 101, 64, 1.5);
}
SyntheticSpec GistProxySpec() {
  return BaseProxy("gist-proxy", 960, 0.95, false, 102, 64, 1.5);
}
SyntheticSpec DeepProxySpec() {
  return BaseProxy("deep-proxy", 256, 0.75, true, 103, 64, 1.5);
}
SyntheticSpec MsongProxySpec() {
  return BaseProxy("msong-proxy", 420, 1.0, false, 104, 64, 1.5);
}
SyntheticSpec TinyProxySpec() {
  return BaseProxy("tiny-proxy", 384, 0.9, false, 105, 64, 1.5);
}
SyntheticSpec GloveProxySpec() {
  return BaseProxy("glove-proxy", 300, 0.05, false, 106, 512, 0.5);
}
SyntheticSpec Word2vecProxySpec() {
  return BaseProxy("word2vec-proxy", 300, 0.58, false, 107, 512, 0.5);
}
SyntheticSpec AntFaceProxySpec() {
  return BaseProxy("antface-proxy", 512, 1.0, true, 108, 64, 1.5);
}

std::vector<SyntheticSpec> AllProxySpecs() {
  return {SiftProxySpec(),  GistProxySpec(),     DeepProxySpec(),
          MsongProxySpec(), TinyProxySpec(),     GloveProxySpec(),
          Word2vecProxySpec(), AntFaceProxySpec()};
}

}  // namespace resinfer::data

// Synthetic dataset generators — the stand-ins for the paper's public
// benchmark datasets (DESIGN.md §2).
//
// The paper's own analysis (§VII Exp-1) attributes the relative behaviour of
// the DDC variants to a single dataset property: the skew of the covariance
// eigen-spectrum (e.g. a 32-dim PCA keeps 67%/82% of the variance on
// GIST/SIFT but only 36%/18% on WORD2VEC/GLOVE). The generator therefore
// samples from a Gaussian mixture whose latent spectrum follows a power law
// lambda_i ~ (i+1)^{-alpha}, rotated by a random orthogonal matrix so that
// nothing is axis-aligned. alpha is calibrated per proxy to reproduce the
// published explained-variance ratios; cluster structure makes IVF/HNSW
// behave realistically.
#ifndef RESINFER_DATA_SYNTHETIC_H_
#define RESINFER_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace resinfer::data {

struct SyntheticSpec {
  std::string name = "synthetic";
  int64_t dim = 128;
  int64_t num_base = 20000;
  int64_t num_queries = 200;
  int64_t num_train_queries = 1000;

  // Gaussian-mixture structure.
  int num_clusters = 64;
  // Ratio of cluster-center dispersion to within-cluster noise; > 0.
  double cluster_spread = 1.5;

  // Power-law exponent of the latent eigen-spectrum; higher = more skew
  // (image-like), near zero = flat (word-embedding-like).
  double spectrum_alpha = 1.0;

  // L2-normalize every vector (DEEP and the Ant face embeddings are unit
  // norm).
  bool normalize = false;

  uint64_t seed = 42;
};

// Deterministic in `spec` (including across thread-count changes).
Dataset GenerateSynthetic(const SyntheticSpec& spec);

// Queries drawn from a *shifted* mixture — out-of-distribution relative to
// GenerateSynthetic(spec) — for the §V-C OOD robustness experiments.
// `shift_scale` controls how far the OOD mixture centers move.
Matrix GenerateOutOfDistributionQueries(const SyntheticSpec& spec,
                                        int64_t num_queries,
                                        double shift_scale, uint64_t seed);

// --- Named proxies for the paper's datasets (Table II) -------------------
// Sizes are laptop-scale defaults; callers override via the fields.
// spectrum_alpha values are calibrated against the explained-variance
// anchors the paper reports (see synthetic_test.cc).

SyntheticSpec SiftProxySpec();      // 128-d image descriptors, strong skew
SyntheticSpec GistProxySpec();      // 960-d image descriptors, strong skew
SyntheticSpec DeepProxySpec();      // 256-d CNN embeddings, normalized
SyntheticSpec MsongProxySpec();     // 420-d audio features
SyntheticSpec TinyProxySpec();      // 384-d image features
SyntheticSpec GloveProxySpec();     // 300-d word embeddings, flat spectrum
SyntheticSpec Word2vecProxySpec();  // 300-d word embeddings, flat-ish
SyntheticSpec AntFaceProxySpec();   // 512-d face embeddings, normalized

// All of the above, for dataset sweeps.
std::vector<SyntheticSpec> AllProxySpecs();

}  // namespace resinfer::data

#endif  // RESINFER_DATA_SYNTHETIC_H_

#include "data/vec_io.h"

#include <cstdio>
#include <memory>

namespace resinfer::data {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Counts records and validates a constant dimension for a (dim, payload)
// framed file with `elem_size` bytes per component.
bool ScanFramedFile(std::FILE* f, const std::string& path,
                    std::size_t elem_size, int64_t* num_records,
                    int32_t* dim, std::string* error) {
  if (std::fseek(f, 0, SEEK_END) != 0) return Fail(error, "seek failed");
  long file_size = std::ftell(f);
  if (file_size < 0) return Fail(error, "ftell failed");
  std::rewind(f);

  int32_t first_dim = 0;
  if (file_size == 0) {
    *num_records = 0;
    *dim = 0;
    return true;
  }
  if (std::fread(&first_dim, sizeof(first_dim), 1, f) != 1)
    return Fail(error, path + ": cannot read leading dimension");
  if (first_dim <= 0)
    return Fail(error, path + ": non-positive vector dimension");

  std::size_t record_bytes = sizeof(int32_t) + elem_size * first_dim;
  if (static_cast<std::size_t>(file_size) % record_bytes != 0)
    return Fail(error,
                path + ": file size is not a multiple of the record size "
                       "(truncated or variable-dimension file)");
  *num_records = static_cast<int64_t>(file_size / record_bytes);
  *dim = first_dim;
  std::rewind(f);
  return true;
}

template <typename Elem>
bool ReadFramed(const std::string& path, linalg::Matrix* out,
                std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Fail(error, path + ": cannot open");

  int64_t n = 0;
  int32_t d = 0;
  if (!ScanFramedFile(f.get(), path, sizeof(Elem), &n, &d, error))
    return false;

  *out = linalg::Matrix(n, d);
  std::vector<Elem> row(d);
  for (int64_t i = 0; i < n; ++i) {
    int32_t row_dim = 0;
    if (std::fread(&row_dim, sizeof(row_dim), 1, f.get()) != 1)
      return Fail(error, path + ": truncated record header");
    if (row_dim != d)
      return Fail(error, path + ": inconsistent dimensions across records");
    if (std::fread(row.data(), sizeof(Elem), d, f.get()) !=
        static_cast<std::size_t>(d))
      return Fail(error, path + ": truncated record payload");
    float* dst = out->Row(i);
    for (int32_t c = 0; c < d; ++c) dst[c] = static_cast<float>(row[c]);
  }
  return true;
}

}  // namespace

bool ReadFvecs(const std::string& path, linalg::Matrix* out,
               std::string* error) {
  return ReadFramed<float>(path, out, error);
}

bool ReadBvecs(const std::string& path, linalg::Matrix* out,
               std::string* error) {
  return ReadFramed<uint8_t>(path, out, error);
}

bool WriteFvecs(const std::string& path, const linalg::Matrix& vectors,
                std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Fail(error, path + ": cannot open for writing");
  const int32_t d = static_cast<int32_t>(vectors.cols());
  for (int64_t i = 0; i < vectors.rows(); ++i) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(vectors.Row(i), sizeof(float), d, f.get()) !=
            static_cast<std::size_t>(d)) {
      return Fail(error, path + ": short write");
    }
  }
  return true;
}

bool ReadIvecs(const std::string& path,
               std::vector<std::vector<int32_t>>* out, std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Fail(error, path + ": cannot open");
  out->clear();
  while (true) {
    int32_t d = 0;
    std::size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;  // clean EOF
    if (d < 0) return Fail(error, path + ": negative dimension");
    std::vector<int32_t> row(d);
    if (d > 0 && std::fread(row.data(), sizeof(int32_t), d, f.get()) !=
                     static_cast<std::size_t>(d))
      return Fail(error, path + ": truncated record payload");
    out->push_back(std::move(row));
  }
  return true;
}

bool WriteIvecs(const std::string& path,
                const std::vector<std::vector<int32_t>>& rows,
                std::string* error) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) return Fail(error, path + ": cannot open for writing");
  for (const auto& row : rows) {
    int32_t d = static_cast<int32_t>(row.size());
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        (d > 0 && std::fwrite(row.data(), sizeof(int32_t), d, f.get()) !=
                      static_cast<std::size_t>(d))) {
      return Fail(error, path + ": short write");
    }
  }
  return true;
}

}  // namespace resinfer::data

#include "data/vec_io.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

namespace resinfer::data {

using util::Status;

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Counts records and validates a constant dimension for a (dim, payload)
// framed file with `elem_size` bytes per component.
Status ScanFramedFile(std::FILE* f, const std::string& path,
                      std::size_t elem_size, int64_t* num_records,
                      int32_t* dim) {
  if (std::fseek(f, 0, SEEK_END) != 0)
    return Status::IOError(path + ": seek failed");
  long file_size = std::ftell(f);
  if (file_size < 0) return Status::IOError(path + ": ftell failed");
  std::rewind(f);

  int32_t first_dim = 0;
  if (file_size == 0) {
    *num_records = 0;
    *dim = 0;
    return Status::Ok();
  }
  if (std::fread(&first_dim, sizeof(first_dim), 1, f) != 1)
    return Status::Corruption(path + ": cannot read leading dimension");
  if (first_dim <= 0)
    return Status::Corruption(path + ": non-positive vector dimension");

  std::size_t record_bytes = sizeof(int32_t) + elem_size * first_dim;
  if (static_cast<std::size_t>(file_size) % record_bytes != 0)
    return Status::Corruption(
        path + ": file size is not a multiple of the record size "
               "(truncated or variable-dimension file)");
  *num_records = static_cast<int64_t>(file_size / record_bytes);
  *dim = first_dim;
  std::rewind(f);
  return Status::Ok();
}

bool RowIsFinite(const float* row, int32_t d) {
  for (int32_t c = 0; c < d; ++c) {
    if (!std::isfinite(row[c])) return false;
  }
  return true;
}

template <typename Elem>
Status ReadFramed(const std::string& path, linalg::Matrix* out,
                  NonFinitePolicy policy, ReadStats* stats) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound(path + ": cannot open");

  int64_t n = 0;
  int32_t d = 0;
  RESINFER_RETURN_IF_ERROR(ScanFramedFile(f.get(), path, sizeof(Elem), &n, &d));

  ReadStats local;
  ReadStats* s = stats != nullptr ? stats : &local;
  *s = ReadStats();

  *out = linalg::Matrix(n, d);
  std::vector<Elem> row(d);
  int64_t kept = 0;
  for (int64_t i = 0; i < n; ++i) {
    int32_t row_dim = 0;
    if (std::fread(&row_dim, sizeof(row_dim), 1, f.get()) != 1)
      return Status::Corruption(path + ": truncated record header");
    if (row_dim != d)
      return Status::Corruption(
          path + ": inconsistent dimensions across records (record " +
          std::to_string(i) + " has dim " + std::to_string(row_dim) +
          ", expected " + std::to_string(d) + ")");
    if (std::fread(row.data(), sizeof(Elem), d, f.get()) !=
        static_cast<std::size_t>(d))
      return Status::Corruption(path + ": truncated record payload");
    float* dst = out->Row(kept);
    for (int32_t c = 0; c < d; ++c) dst[c] = static_cast<float>(row[c]);
    if (!RowIsFinite(dst, d)) {
      if (s->first_bad_row < 0) s->first_bad_row = i;
      switch (policy) {
        case NonFinitePolicy::kError:
          return Status::InvalidArgument(
              path + ": vector " + std::to_string(i) +
              " has NaN/Inf components (use NonFinitePolicy::kDrop to skip "
              "such rows)");
        case NonFinitePolicy::kDrop:
          ++s->dropped_rows;
          continue;  // next record overwrites this row slot
        case NonFinitePolicy::kKeep:
          break;
      }
    }
    ++kept;
  }
  if (kept < n) out->ShrinkRows(kept);
  s->rows_read = kept;
  return Status::Ok();
}

}  // namespace

Status ReadFvecs(const std::string& path, linalg::Matrix* out,
                 NonFinitePolicy policy, ReadStats* stats) {
  return ReadFramed<float>(path, out, policy, stats);
}

Status ReadBvecs(const std::string& path, linalg::Matrix* out,
                 NonFinitePolicy policy, ReadStats* stats) {
  return ReadFramed<uint8_t>(path, out, policy, stats);
}

Status WriteFvecs(const std::string& path, const linalg::Matrix& vectors) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr)
    return Status::IOError(path + ": cannot open for writing");
  const int32_t d = static_cast<int32_t>(vectors.cols());
  for (int64_t i = 0; i < vectors.rows(); ++i) {
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        std::fwrite(vectors.Row(i), sizeof(float), d, f.get()) !=
            static_cast<std::size_t>(d)) {
      return Status::IOError(path + ": short write");
    }
  }
  return Status::Ok();
}

Status ReadIvecs(const std::string& path,
                 std::vector<std::vector<int32_t>>* out) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound(path + ": cannot open");
  out->clear();
  while (true) {
    int32_t d = 0;
    std::size_t got = std::fread(&d, sizeof(d), 1, f.get());
    if (got == 0) break;  // clean EOF
    if (d < 0) return Status::Corruption(path + ": negative dimension");
    std::vector<int32_t> row(d);
    if (d > 0 && std::fread(row.data(), sizeof(int32_t), d, f.get()) !=
                     static_cast<std::size_t>(d))
      return Status::Corruption(path + ": truncated record payload");
    out->push_back(std::move(row));
  }
  return Status::Ok();
}

Status FvecsView::Open(const std::string& path, FvecsView* out) {
  storage::Blob mapping;
  RESINFER_RETURN_IF_ERROR(storage::MapFileReadOnly(path, &mapping));
  FvecsView view;
  if (mapping.size() == 0) {
    *out = std::move(view);
    return Status::Ok();
  }
  if (mapping.size() < static_cast<int64_t>(sizeof(int32_t)))
    return Status::Corruption(path + ": cannot read leading dimension");
  int32_t dim = 0;
  std::memcpy(&dim, mapping.data(), sizeof(dim));
  if (dim <= 0)
    return Status::Corruption(path + ": non-positive vector dimension");
  const int64_t record_bytes =
      static_cast<int64_t>(sizeof(int32_t)) +
      static_cast<int64_t>(sizeof(float)) * dim;
  if (mapping.size() % record_bytes != 0) {
    return Status::Corruption(
        path + ": file size is not a multiple of the record size "
               "(truncated or variable-dimension file)");
  }
  const int64_t rows = mapping.size() / record_bytes;
  // Structural check without paging in the payload: every record's dim
  // header must match the first. One int32 per record is touched — the
  // float payload stays cold.
  for (int64_t i = 1; i < rows; ++i) {
    int32_t row_dim = 0;
    std::memcpy(&row_dim, mapping.data() + i * record_bytes, sizeof(row_dim));
    if (row_dim != dim) {
      return Status::Corruption(
          path + ": inconsistent dimensions across records (record " +
          std::to_string(i) + " has dim " + std::to_string(row_dim) +
          ", expected " + std::to_string(dim) + ")");
    }
  }
  view.rows_ = rows;
  view.dim_ = dim;
  view.mapping_ = std::move(mapping);
  // Cold tier: Row(i) lookups are id-scattered, so fault-around would
  // page in far more than the touched rows.
  storage::AdviseRandomAccess(view.mapping_);
  *out = std::move(view);
  return Status::Ok();
}

const float* FvecsView::Row(int64_t i) const {
  // An out-of-range row id is caller error, not file corruption — the
  // frame structure was validated at Open.
  RESINFER_DCHECK(i >= 0 && i < rows_);  // lint: allow-check
  const int64_t record_bytes =
      static_cast<int64_t>(sizeof(int32_t)) +
      static_cast<int64_t>(sizeof(float)) * dim_;
  return reinterpret_cast<const float*>(
      mapping_.data() + i * record_bytes + sizeof(int32_t));
}

Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr)
    return Status::IOError(path + ": cannot open for writing");
  for (const auto& row : rows) {
    int32_t d = static_cast<int32_t>(row.size());
    if (std::fwrite(&d, sizeof(d), 1, f.get()) != 1 ||
        (d > 0 && std::fwrite(row.data(), sizeof(int32_t), d, f.get()) !=
                      static_cast<std::size_t>(d))) {
      return Status::IOError(path + ": short write");
    }
  }
  return Status::Ok();
}

}  // namespace resinfer::data

// Readers/writers for the standard ANN-benchmark vector file formats:
//   .fvecs — per vector: int32 dim, then dim float32 components
//   .ivecs — per vector: int32 dim, then dim int32 components
//   .bvecs — per vector: int32 dim, then dim uint8 components
//
// These are the formats SIFT/GIST/DEEP etc. are distributed in; the library
// reads real files when present, while the bench harnesses fall back to the
// synthetic proxies (DESIGN.md §2).
//
// All functions return a non-OK util::Status on malformed input (negative
// or inconsistent dimensions, truncated payload, NaN/Inf components under
// the default policy) instead of aborting — file contents are external
// input, not programmer error.
#ifndef RESINFER_DATA_VEC_IO_H_
#define RESINFER_DATA_VEC_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "storage/storage.h"
#include "util/status.h"

namespace resinfer::data {

// What to do with vectors containing NaN/Inf components. Distances against
// non-finite coordinates are poison — NaN estimates propagate through ADC
// tables and corrupt every pruning decision downstream — so the default
// refuses them outright.
enum class NonFinitePolicy {
  kError,  // fail the read with InvalidArgument (default)
  kDrop,   // skip offending rows; callers MUST surface stats.dropped_rows
           // to the user, because dropping silently shifts row ids against
           // any ground-truth file
  kKeep,   // trust the caller to handle them (e.g. pass-through tooling)
};

struct ReadStats {
  int64_t rows_read = 0;       // rows returned in the matrix
  int64_t dropped_rows = 0;    // rows skipped under NonFinitePolicy::kDrop
  int64_t first_bad_row = -1;  // id of the first non-finite row seen, or -1
};

util::Status ReadFvecs(const std::string& path, linalg::Matrix* out,
                       NonFinitePolicy policy = NonFinitePolicy::kError,
                       ReadStats* stats = nullptr);
util::Status WriteFvecs(const std::string& path,
                        const linalg::Matrix& vectors);

util::Status ReadIvecs(const std::string& path,
                       std::vector<std::vector<int32_t>>* out);
util::Status WriteIvecs(const std::string& path,
                        const std::vector<std::vector<int32_t>>& rows);

// uint8 components widened to float (never non-finite, so the policy only
// matters for symmetry with ReadFvecs).
util::Status ReadBvecs(const std::string& path, linalg::Matrix* out,
                       NonFinitePolicy policy = NonFinitePolicy::kError,
                       ReadStats* stats = nullptr);

// Cold-tier fvecs access: the file is mmap'd read-only and rows are served
// in place from the mapping, so opening a multi-GB base costs no heap and
// only the rows actually touched (the exact-rescore epilogue's candidates)
// are ever paged in. The fvecs layout interleaves an int32 dim header with
// every row, so the floats cannot be exposed as one contiguous
// linalg::Matrix — consumers that need a dense matrix still use ReadFvecs;
// this view is for row-at-a-time readers (rescoring, sampling, format
// conversion) that would otherwise double the working set.
//
// Open() validates the frame structure (consistent dim, whole number of
// records) without reading any float payload. Row(i) returns the i-th
// row's components; the pointer stays valid for the view's lifetime and is
// 4-byte aligned (each record is 4 + 4*dim bytes from offset 0).
class FvecsView {
 public:
  FvecsView() = default;

  static util::Status Open(const std::string& path, FvecsView* out);

  int64_t rows() const { return rows_; }
  int64_t dim() const { return dim_; }

  const float* Row(int64_t i) const;

  // The mapping backing the rows; sharing it pins the pages like any other
  // storage handle.
  const storage::Blob& storage() const { return mapping_; }

 private:
  int64_t rows_ = 0;
  int64_t dim_ = 0;
  storage::Blob mapping_;
};

}  // namespace resinfer::data

#endif  // RESINFER_DATA_VEC_IO_H_

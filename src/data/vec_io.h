// Readers/writers for the standard ANN-benchmark vector file formats:
//   .fvecs — per vector: int32 dim, then dim float32 components
//   .ivecs — per vector: int32 dim, then dim int32 components
//   .bvecs — per vector: int32 dim, then dim uint8 components
//
// These are the formats SIFT/GIST/DEEP etc. are distributed in; the library
// reads real files when present, while the bench harnesses fall back to the
// synthetic proxies (DESIGN.md §2).
//
// All functions return false and fill *error on malformed input (negative or
// inconsistent dimensions, truncated payload) instead of aborting — file
// contents are external input, not programmer error.
#ifndef RESINFER_DATA_VEC_IO_H_
#define RESINFER_DATA_VEC_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace resinfer::data {

bool ReadFvecs(const std::string& path, linalg::Matrix* out,
               std::string* error);
bool WriteFvecs(const std::string& path, const linalg::Matrix& vectors,
                std::string* error);

bool ReadIvecs(const std::string& path,
               std::vector<std::vector<int32_t>>* out, std::string* error);
bool WriteIvecs(const std::string& path,
                const std::vector<std::vector<int32_t>>& rows,
                std::string* error);

// uint8 components widened to float.
bool ReadBvecs(const std::string& path, linalg::Matrix* out,
               std::string* error);

}  // namespace resinfer::data

#endif  // RESINFER_DATA_VEC_IO_H_

#include "index/batch.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <numeric>
#include <utility>

#include "quant/kmeans.h"
#include "serve/executor.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace resinfer::index {

double BatchResult::AvgUtilization() const {
  if (wall_seconds <= 0.0 || worker_busy_seconds.empty()) return 0.0;
  double busy = 0.0;
  for (double b : worker_busy_seconds) busy += b;
  return busy /
         (wall_seconds * static_cast<double>(worker_busy_seconds.size()));
}

double BatchResult::MinUtilization() const {
  if (wall_seconds <= 0.0 || worker_busy_seconds.empty()) return 0.0;
  double min_busy = worker_busy_seconds.front();
  for (double b : worker_busy_seconds) min_busy = std::min(min_busy, b);
  return min_busy / wall_seconds;
}

BatchResult RunBatch(const ComputerFactory& factory,
                     const linalg::Matrix& queries, const SearchFn& search,
                     const BatchOptions& options) {
  RESINFER_CHECK(search != nullptr);
  BatchOptions per_query = options;
  per_query.group_size = 1;  // groups of one keep per-query latency exact
  return RunBatchGrouped(
      factory, queries,
      [&search](DistanceComputer& computer, const linalg::Matrix& qs,
                int64_t begin, int64_t count, std::vector<Neighbor>* results) {
        for (int64_t i = 0; i < count; ++i) {
          results[i] = search(computer, qs.Row(begin + i));
        }
      },
      per_query);
}

BatchResult RunBatchGrouped(const ComputerFactory& factory,
                            const linalg::Matrix& queries,
                            const GroupSearchFn& search,
                            const BatchOptions& options) {
  RESINFER_CHECK(factory != nullptr && search != nullptr);
  const int64_t num_queries = queries.rows();
  const int64_t group_size = std::max(1, options.group_size);

  BatchResult batch;
  batch.results.resize(static_cast<std::size_t>(num_queries));
  if (num_queries == 0) return batch;
  const int64_t num_groups = (num_queries + group_size - 1) / group_size;

  const int threads = static_cast<int>(std::clamp<int64_t>(
      ResolveThreadCount(options.num_threads), 1, num_groups));

  struct WorkerState {
    std::unique_ptr<DistanceComputer> computer;
    Histogram latency;        // singleton groups only — true per-query wall
    Histogram group_latency;  // one sample per group, the group's wall
    Histogram group_sizes;
    double busy_seconds = 0.0;
  };
  std::vector<WorkerState> workers(static_cast<std::size_t>(threads));
  for (auto& w : workers) {
    w.computer = factory();
    RESINFER_CHECK(w.computer != nullptr);
    RESINFER_CHECK(w.computer->dim() == queries.cols());
  }

  // Exception containment: a throwing search callback must not
  // std::terminate the executor (an exception escaping a task would). The
  // first thrower wins the abort flag and stashes its exception; the
  // remaining group tasks see the flag and complete without processing
  // (so the WaitGroup always drains), and the winner's exception is
  // rethrown on the caller thread after the executor quiesces.
  std::atomic<bool> abort_flag{false};
  std::exception_ptr first_exception;
  WallTimer wall;
  {
    // The groups are pre-distributed round-robin across the per-worker
    // deques; a worker that finishes its share early steals from the
    // stragglers, which is what keeps skewed query costs from idling
    // threads (the job the old atomic cursor did, now shared with the
    // online serving path).
    serve::Executor::Options executor_options;
    executor_options.num_threads = threads;
    serve::Executor executor(executor_options);
    serve::WaitGroup wait;
    wait.Add(num_groups);
    for (int64_t group = 0; group < num_groups; ++group) {
      const int64_t begin = group * group_size;
      const int64_t count = std::min(group_size, num_queries - begin);
      executor.SubmitTo(
          static_cast<int>(group % threads),
          [&, begin, count](int worker_index) {
            WorkerState& state =
                workers[static_cast<std::size_t>(worker_index)];
            if (abort_flag.load(std::memory_order_acquire)) {
              wait.Done();
              return;
            }
            WallTimer timer;
            try {
              search(*state.computer, queries, begin, count,
                     batch.results.data() + begin);
            } catch (...) {
              if (!abort_flag.exchange(true, std::memory_order_acq_rel)) {
                first_exception = std::current_exception();
              }
              wait.Done();
              return;
            }
            const double elapsed = timer.ElapsedSeconds();
            state.group_latency.Add(elapsed);
            state.group_sizes.Add(static_cast<double>(count));
            if (count == 1) state.latency.Add(elapsed);
            state.busy_seconds += elapsed;
            wait.Done();
          });
    }
    wait.Wait();
    executor.Shutdown();
  }
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
  batch.wall_seconds = wall.ElapsedSeconds();

  batch.worker_busy_seconds.reserve(workers.size());
  for (const auto& w : workers) {
    batch.worker_busy_seconds.push_back(w.busy_seconds);
    batch.latency_seconds.Merge(w.latency);
    batch.group_latency_seconds.Merge(w.group_latency);
    batch.group_sizes.Merge(w.group_sizes);
    batch.stats += w.computer->stats();
  }
  return batch;
}

BatchResult BatchSearchFlat(const FlatIndex& index,
                            const ComputerFactory& factory,
                            const linalg::Matrix& queries, int k,
                            const BatchOptions& options) {
  return RunBatch(
      factory, queries,
      [&index, k](DistanceComputer& computer, const float* query) {
        return index.Search(computer, query, k);
      },
      options);
}

BatchResult BatchSearchIvf(const IvfIndex& index,
                           const ComputerFactory& factory,
                           const linalg::Matrix& queries, int k, int nprobe,
                           const BatchOptions& options) {
  if (options.group_size <= 1 || queries.rows() <= 1) {
    return RunBatch(
        factory, queries,
        [&index, k, nprobe](DistanceComputer& computer, const float* query) {
          return index.Search(computer, query, k, nprobe);
        },
        options);
  }

  // Multi-query path. Rank every query's probe centroids once (the same
  // NearestCentroids call Search would make), order queries
  // lexicographically by probe list so group members co-probe — same lead
  // bucket first, then agreeing tails — and hand the precomputed lists to
  // SearchBatchRange so the ranking isn't paid twice. The sort is stable,
  // so equal probe lists keep the caller's order.
  WallTimer wall;  // includes grouping prep, unlike the pool-only timer
  const int64_t num_queries = queries.rows();
  const int nprobe_used = std::clamp(nprobe, 1, index.num_clusters());
  std::vector<int32_t> probes(
      static_cast<std::size_t>(num_queries * nprobe_used));
  quant::NearestCentroidsBatch(index.centroids(), queries, 0, num_queries,
                               nprobe_used, probes.data());
  const auto run = [&](const linalg::Matrix& qs,
                       const std::vector<int32_t>& probe_rows) {
    return RunBatchGrouped(
        factory, qs,
        [&index, &probe_rows, k, nprobe, nprobe_used](
            DistanceComputer& computer, const linalg::Matrix& rows,
            int64_t begin, int64_t count, std::vector<Neighbor>* results) {
          index.SearchBatchRange(computer, rows, begin, count, k, nprobe,
                                 results,
                                 probe_rows.data() + begin * nprobe_used);
        },
        options);
  };

  BatchResult batch;
  if (!options.sort_queries_by_centroid) {
    // Caller-ordered groups: no permutation, no copies.
    batch = run(queries, probes);
  } else {
    std::vector<int64_t> order(static_cast<std::size_t>(num_queries));
    std::iota(order.begin(), order.end(), int64_t{0});
    std::stable_sort(
        order.begin(), order.end(),
        [&probes, nprobe_used](int64_t a, int64_t b) {
          const int32_t* pa = probes.data() + a * nprobe_used;
          const int32_t* pb = probes.data() + b * nprobe_used;
          return std::lexicographical_compare(pa, pa + nprobe_used, pb,
                                              pb + nprobe_used);
        });
    linalg::Matrix grouped(num_queries, queries.cols());
    std::vector<int32_t> grouped_probes(probes.size());
    for (int64_t i = 0; i < num_queries; ++i) {
      const int64_t q = order[static_cast<std::size_t>(i)];
      const float* src = queries.Row(q);
      std::copy(src, src + queries.cols(), grouped.Row(i));
      std::copy(probes.begin() + q * nprobe_used,
                probes.begin() + (q + 1) * nprobe_used,
                grouped_probes.begin() + i * nprobe_used);
    }
    batch = run(grouped, grouped_probes);
    // Report rows in the caller's query order.
    std::vector<std::vector<Neighbor>> rows(
        static_cast<std::size_t>(num_queries));
    for (int64_t i = 0; i < num_queries; ++i) {
      rows[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
          std::move(batch.results[static_cast<std::size_t>(i)]);
    }
    batch.results = std::move(rows);
  }
  batch.wall_seconds = wall.ElapsedSeconds();
  return batch;
}

BatchResult BatchSearchHnsw(const HnswIndex& index,
                            const ComputerFactory& factory,
                            const linalg::Matrix& queries, int k, int ef,
                            const BatchOptions& options) {
  return RunBatch(
      factory, queries,
      [&index, k, ef](DistanceComputer& computer, const float* query) {
        return index.Search(computer, query, k, ef);
      },
      options);
}

std::vector<std::vector<int64_t>> ResultIds(const BatchResult& batch) {
  std::vector<std::vector<int64_t>> ids;
  ids.reserve(batch.results.size());
  for (const auto& row : batch.results) {
    std::vector<int64_t> r;
    r.reserve(row.size());
    for (const Neighbor& nb : row) r.push_back(nb.id);
    ids.push_back(std::move(r));
  }
  return ids;
}

}  // namespace resinfer::index

#include "index/batch.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/macros.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace resinfer::index {

double BatchResult::AvgUtilization() const {
  if (wall_seconds <= 0.0 || worker_busy_seconds.empty()) return 0.0;
  double busy = 0.0;
  for (double b : worker_busy_seconds) busy += b;
  return busy /
         (wall_seconds * static_cast<double>(worker_busy_seconds.size()));
}

double BatchResult::MinUtilization() const {
  if (wall_seconds <= 0.0 || worker_busy_seconds.empty()) return 0.0;
  double min_busy = worker_busy_seconds.front();
  for (double b : worker_busy_seconds) min_busy = std::min(min_busy, b);
  return min_busy / wall_seconds;
}

BatchResult RunBatch(const ComputerFactory& factory,
                     const linalg::Matrix& queries, const SearchFn& search,
                     const BatchOptions& options) {
  RESINFER_CHECK(factory != nullptr && search != nullptr);
  const int64_t num_queries = queries.rows();

  BatchResult batch;
  batch.results.resize(static_cast<std::size_t>(num_queries));
  if (num_queries == 0) return batch;

  int threads = options.num_threads > 0 ? options.num_threads
                                        : DefaultThreadCount();
  threads = static_cast<int>(
      std::clamp<int64_t>(threads, 1, num_queries));

  struct WorkerState {
    std::unique_ptr<DistanceComputer> computer;
    Histogram latency;
    double busy_seconds = 0.0;
  };
  std::vector<WorkerState> workers(static_cast<std::size_t>(threads));
  for (auto& w : workers) {
    w.computer = factory();
    RESINFER_CHECK(w.computer != nullptr);
    RESINFER_CHECK(w.computer->dim() == queries.cols());
  }

  std::atomic<int64_t> cursor{0};
  WallTimer wall;
  auto worker_loop = [&](int worker_index) {
    WorkerState& state = workers[static_cast<std::size_t>(worker_index)];
    WallTimer timer;
    while (true) {
      const int64_t q = cursor.fetch_add(1, std::memory_order_relaxed);
      if (q >= num_queries) break;
      timer.Reset();
      batch.results[static_cast<std::size_t>(q)] =
          search(*state.computer, queries.Row(q));
      const double elapsed = timer.ElapsedSeconds();
      state.latency.Add(elapsed);
      state.busy_seconds += elapsed;
    }
  };

  if (threads == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker_loop, t);
    }
    for (auto& t : pool) t.join();
  }
  batch.wall_seconds = wall.ElapsedSeconds();

  batch.worker_busy_seconds.reserve(workers.size());
  for (const auto& w : workers) {
    batch.worker_busy_seconds.push_back(w.busy_seconds);
    batch.latency_seconds.Merge(w.latency);
    const ComputerStats& s = w.computer->stats();
    batch.stats.candidates += s.candidates;
    batch.stats.pruned += s.pruned;
    batch.stats.dims_scanned += s.dims_scanned;
    batch.stats.exact_computations += s.exact_computations;
  }
  return batch;
}

BatchResult BatchSearchFlat(const FlatIndex& index,
                            const ComputerFactory& factory,
                            const linalg::Matrix& queries, int k,
                            const BatchOptions& options) {
  return RunBatch(
      factory, queries,
      [&index, k](DistanceComputer& computer, const float* query) {
        return index.Search(computer, query, k);
      },
      options);
}

BatchResult BatchSearchIvf(const IvfIndex& index,
                           const ComputerFactory& factory,
                           const linalg::Matrix& queries, int k, int nprobe,
                           const BatchOptions& options) {
  return RunBatch(
      factory, queries,
      [&index, k, nprobe](DistanceComputer& computer, const float* query) {
        return index.Search(computer, query, k, nprobe);
      },
      options);
}

BatchResult BatchSearchHnsw(const HnswIndex& index,
                            const ComputerFactory& factory,
                            const linalg::Matrix& queries, int k, int ef,
                            const BatchOptions& options) {
  return RunBatch(
      factory, queries,
      [&index, k, ef](DistanceComputer& computer, const float* query) {
        return index.Search(computer, query, k, ef);
      },
      options);
}

std::vector<std::vector<int64_t>> ResultIds(const BatchResult& batch) {
  std::vector<std::vector<int64_t>> ids;
  ids.reserve(batch.results.size());
  for (const auto& row : batch.results) {
    std::vector<int64_t> r;
    r.reserve(row.size());
    for (const Neighbor& nb : row) r.push_back(nb.id);
    ids.push_back(std::move(r));
  }
  return ids;
}

}  // namespace resinfer::index

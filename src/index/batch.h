// Multi-threaded batch query execution.
//
// DistanceComputers are stateful per query, so concurrent search needs one
// computer per thread. RunBatch owns that pattern: it builds a computer per
// worker from a caller-supplied factory, pre-distributes the query groups
// round-robin across the serving executor's per-worker deques (queries
// vary wildly in cost under DDC pruning, so imbalance is corrected by work
// stealing — see serve/executor.h), and aggregates latencies and computer
// statistics. Convenience wrappers cover the three indexes. Online
// (non-pre-materialized) traffic takes the same executor through
// serve/admission.h instead.
//
// Results are deterministic: result row q is always the answer to query q
// regardless of which worker served it.
//
// Latency attribution is honest: latency_seconds holds true per-query
// walls and is filled only by groups of one query (always, for RunBatch);
// grouped runs report true group walls in group_latency_seconds paired
// with group_sizes — a group's wall divided by its size is an attribution,
// not a measurement, and dividing it used to fabricate per-query
// percentiles.
#ifndef RESINFER_INDEX_BATCH_H_
#define RESINFER_INDEX_BATCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "index/distance_computer.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "linalg/matrix.h"
#include "util/histogram.h"

namespace resinfer::index {

struct BatchOptions {
  // <= 0 = DefaultThreadCount() (which honors the RESINFER_THREADS
  // environment override); negative values clamp to the same default.
  int num_threads = 0;
  // Queries per work unit. 1 (the default) is the classic per-query path;
  // > 1 makes workers pull groups of queries so a group-aware search can
  // share per-query setup and bucket streams across them (BatchSearchIvf
  // routes groups through IvfIndex::SearchBatchRange, which chunks them
  // into co-scanned sub-groups of at most kMaxQueryGroup). Results are
  // identical either way; only throughput changes.
  int group_size = 1;
  // With group_size > 1, BatchSearchIvf first orders queries by nearest
  // centroid so adjacent group members co-probe (results are still
  // reported in the caller's query order). Disable to group by the given
  // query order instead, e.g. when the stream is already locality-sorted.
  bool sort_queries_by_centroid = true;
};

struct BatchResult {
  // results[q] ascends by distance, one entry per query row.
  std::vector<std::vector<Neighbor>> results;
  // True per-query wall latency in seconds. Only groups of a single query
  // contribute (RunBatch covers every query; grouped runs contribute just
  // their singleton tail groups, if any) — see the header comment.
  Histogram latency_seconds;
  // One sample per work group: the group's true wall time, and its size.
  // With group_size == 1 these mirror latency_seconds.
  Histogram group_latency_seconds;
  Histogram group_sizes;
  // Computer counters summed over all workers.
  ComputerStats stats;
  // End-to-end wall time of the batch (all threads).
  double wall_seconds = 0.0;
  // Per-worker time spent inside search calls; worker w idles for
  // wall_seconds - worker_busy_seconds[w] (query-cost variance under DDC
  // pruning makes the last workers straggle — these make that visible in
  // bench output instead of being smeared into the aggregate QPS).
  std::vector<double> worker_busy_seconds;

  double Qps() const {
    return wall_seconds > 0.0
               ? static_cast<double>(results.size()) / wall_seconds
               : 0.0;
  }
  // Mean busy/wall fraction across workers, in [0, 1]; 1.0 = no idling.
  double AvgUtilization() const;
  // The most-idle worker's busy/wall fraction; low values = stragglers.
  double MinUtilization() const;
};

// Creates one computer per worker thread; must be thread-safe itself (it is
// invoked before the workers start).
using ComputerFactory = std::function<std::unique_ptr<DistanceComputer>()>;

// One search against one query through the given computer. The callee must
// route the query through `computer` (the indexes do this internally).
using SearchFn = std::function<std::vector<Neighbor>(
    DistanceComputer& computer, const float* query)>;

// One search over a group of queries: rows [begin, begin + count) of
// `queries`, writing the answer for row begin + i to results[i]. The
// callee may share work across the group (shared ADC tables, query-major
// bucket scans) but results[i] must equal a per-query search's answer.
using GroupSearchFn = std::function<void(
    DistanceComputer& computer, const linalg::Matrix& queries, int64_t begin,
    int64_t count, std::vector<Neighbor>* results)>;

BatchResult RunBatch(const ComputerFactory& factory,
                     const linalg::Matrix& queries, const SearchFn& search,
                     const BatchOptions& options = BatchOptions());

// Grouped variant: workers take options.group_size queries at a time and
// hand each group to `search` in one call. Each group's true wall time is
// recorded in group_latency_seconds (with its size in group_sizes);
// latency_seconds receives only singleton groups, so its percentiles are
// never fabricated from divided group walls. Utilization reporting is
// unchanged.
BatchResult RunBatchGrouped(const ComputerFactory& factory,
                            const linalg::Matrix& queries,
                            const GroupSearchFn& search,
                            const BatchOptions& options = BatchOptions());

BatchResult BatchSearchFlat(const FlatIndex& index,
                            const ComputerFactory& factory,
                            const linalg::Matrix& queries, int k,
                            const BatchOptions& options = BatchOptions());

// With options.group_size > 1 this is the multi-query serving path:
// queries are ordered by nearest centroid (co-probing queries end up in
// the same group), workers pull groups, and each group is searched
// query-major through IvfIndex::SearchBatchRange. results[q] still answers
// query q, bit-identically to the per-query path.
BatchResult BatchSearchIvf(const IvfIndex& index,
                           const ComputerFactory& factory,
                           const linalg::Matrix& queries, int k, int nprobe,
                           const BatchOptions& options = BatchOptions());

BatchResult BatchSearchHnsw(const HnswIndex& index,
                            const ComputerFactory& factory,
                            const linalg::Matrix& queries, int k, int ef,
                            const BatchOptions& options = BatchOptions());

// Extracts just the ids from a batch result (recall evaluation helper).
std::vector<std::vector<int64_t>> ResultIds(const BatchResult& batch);

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_BATCH_H_

// Shared exact-refinement loop for the block-scan pipeline.
//
// Every batch computer ends the same way: gather the rows of the candidates
// that survived pruning, run them through L2SqrBatch4 four at a time with
// next-group prefetch, and finish the remainder with single-pair calls.
// This helper is that loop; keeping one copy prevents the call sites from
// drifting (prefetch distance, batch width) and keeps each lane
// bit-identical to the sequential exact path. Stats accounting stays with
// the caller.
#ifndef RESINFER_INDEX_BLOCK_REFINE_H_
#define RESINFER_INDEX_BLOCK_REFINE_H_

#include <algorithm>
#include <cstdint>

#include "index/distance_computer.h"
#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::index {

// Drives `count` candidates through a 4-wide batch kernel: groups of
// simd::kBatchWidth rows are fetched via `row(position)` (any pointer type —
// float rows gathered by id, or records at position * stride in a
// code-resident stream), the next group's rows are prefetched, `kernel4(
// rows, vals)` fills one value per lane, and `lane(position, value)`
// consumes each result. Remainder positions (< kBatchWidth of them, at the
// end) go to `tail(position)`, which must reproduce the single-candidate
// path. Callers that scan by id adapt with row = [&](int pos) {
// return base.Row(ids[pos]); }.
template <typename RowFn, typename Kernel4, typename LaneFn, typename TailFn>
void ScanBatch4(RowFn&& row, Kernel4&& kernel4, LaneFn&& lane, TailFn&& tail,
                int count) {
  using RowPtr = decltype(row(int{0}));
  RowPtr rows[simd::kBatchWidth];
  float vals[simd::kBatchWidth];
  int i = 0;
  for (; i + simd::kBatchWidth <= count; i += simd::kBatchWidth) {
    for (int r = 0; r < simd::kBatchWidth; ++r) {
      rows[r] = row(i + r);
    }
    if (i + 2 * simd::kBatchWidth <= count) {
      for (int r = 0; r < simd::kBatchWidth; ++r) {
        RESINFER_PREFETCH(row(i + simd::kBatchWidth + r));
      }
    }
    kernel4(static_cast<const RowPtr*>(rows), vals);
    for (int r = 0; r < simd::kBatchWidth; ++r) {
      lane(i + r, vals[r]);
    }
  }
  for (; i < count; ++i) tail(i);
}

// Writes {false, L2Sqr(query, row(ids[p]))} to out[p] for each refined
// position p. `row(id)` returns the candidate's d-float vector. `pick`
// selects which positions of ids/out to refine (the survivor indices of a
// pruning pass); pass nullptr to refine positions [0, count).
template <typename RowFn>
void RefineExactL2(const float* query, std::size_t d, RowFn&& row,
                   const int64_t* ids, const int* pick, int count,
                   EstimateResult* out) {
  const auto pos = [pick](int j) { return pick != nullptr ? pick[j] : j; };
  const float* rows[simd::kBatchWidth];
  float dist[simd::kBatchWidth];
  int s = 0;
  for (; s + simd::kBatchWidth <= count; s += simd::kBatchWidth) {
    for (int r = 0; r < simd::kBatchWidth; ++r) {
      rows[r] = row(ids[pos(s + r)]);
    }
    if (s + 2 * simd::kBatchWidth <= count) {
      for (int r = 0; r < simd::kBatchWidth; ++r) {
        RESINFER_PREFETCH(row(ids[pos(s + simd::kBatchWidth + r)]));
      }
    }
    simd::L2SqrBatch4(query, rows, d, dist);
    for (int r = 0; r < simd::kBatchWidth; ++r) {
      out[pos(s + r)] = {false, dist[r]};
    }
  }
  for (; s < count; ++s) {
    out[pos(s)] = {false, simd::L2Sqr(query, row(ids[pos(s)]), d)};
  }
}

// The chunked estimate/prune/refine loop shared by the corrector-backed
// batch computers (DdcAny, DdcOpq): `approx(ids, start, n, out, extras)`
// fills a chunk's approximate distances and per-point trust features
// (extras arrive zeroed, matching the sequential path's scratch); `start`
// is the chunk's offset from the block head, so code-resident callers can
// address records at start * stride in their stream while id-gather
// callers ignore it. `prunable(approx, extra)` applies the corrector at
// the caller's tau. Survivors are refined exactly via RefineExactL2 and
// stats advance as the equivalent sequential loop would.
// Candidates per EstimatePruneRefine chunk; the ApproxFn callback never
// sees more than this many ids per call.
inline constexpr int kRefineChunk = 32;

template <typename RowFn, typename ApproxFn, typename PruneFn>
void EstimatePruneRefine(const float* query, std::size_t d, RowFn&& row,
                         ApproxFn&& approx, PruneFn&& prunable,
                         bool tau_finite, const int64_t* ids, int count,
                         ComputerStats& stats, EstimateResult* out) {
  float approx_dist[kRefineChunk];
  float extra[kRefineChunk];
  int survivors[kRefineChunk];

  for (int i = 0; i < count; i += kRefineChunk) {
    const int block = std::min(kRefineChunk, count - i);
    stats.candidates += block;
    std::fill_n(extra, block, 0.0f);
    approx(ids + i, i, block, approx_dist, extra);

    int num_survivors = 0;
    for (int j = 0; j < block; ++j) {
      if (tau_finite && prunable(approx_dist[j], extra[j])) {
        ++stats.pruned;
        out[i + j] = {true, approx_dist[j]};
      } else {
        survivors[num_survivors++] = i + j;
      }
    }
    stats.exact_computations += num_survivors;
    stats.dims_scanned +=
        static_cast<int64_t>(num_survivors) * static_cast<int64_t>(d);

    RefineExactL2(query, d, row, ids, survivors, num_survivors, out);
  }
}

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_BLOCK_REFINE_H_

#include "index/distance_computer.h"

#include "index/block_refine.h"
#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::index {

void DistanceComputer::EstimateBatch(const int64_t* ids, int count, float tau,
                                     EstimateResult* out) {
  for (int i = 0; i < count; ++i) out[i] = EstimateWithThreshold(ids[i], tau);
}

void DistanceComputer::SetQueryBatch(const float* queries, int count,
                                     int64_t stride) {
  RESINFER_CHECK(queries != nullptr && count > 0 &&
                 count <= kMaxQueryGroup && stride >= dim());
  group_queries_ = queries;
  group_count_ = count;
  group_stride_ = stride;
}

void DistanceComputer::SelectQuery(int g) { BeginQuery(GroupQuery(g)); }

void DistanceComputer::EstimateBatchGroup(const int64_t* ids, int count,
                                          const int* members, int num_members,
                                          const float* taus,
                                          EstimateResult* out) {
  for (int j = 0; j < num_members; ++j) {
    SelectQuery(members[j]);
    EstimateBatch(ids, count, taus[j], out + static_cast<int64_t>(j) * count);
  }
}

void DistanceComputer::EstimateBatchCodesGroup(const uint8_t* codes,
                                               const int64_t* ids, int count,
                                               const int* members,
                                               int num_members,
                                               const float* taus,
                                               EstimateResult* out) {
  for (int j = 0; j < num_members; ++j) {
    SelectQuery(members[j]);
    EstimateBatchCodes(codes, ids, count, taus[j],
                       out + static_cast<int64_t>(j) * count);
  }
}

FlatDistanceComputer::FlatDistanceComputer(const float* base, int64_t n,
                                           int64_t d)
    : base_(base), size_(n), dim_(d) {
  RESINFER_CHECK(base != nullptr && n > 0 && d > 0);
}

EstimateResult FlatDistanceComputer::EstimateWithThreshold(int64_t id,
                                                           float /*tau*/) {
  ++stats_.candidates;
  ++stats_.exact_computations;
  stats_.dims_scanned += dim_;
  return {false, ExactDistance(id)};
}

void FlatDistanceComputer::EstimateBatch(const int64_t* ids, int count,
                                         float /*tau*/, EstimateResult* out) {
  RESINFER_DCHECK(query_ != nullptr);
  stats_.candidates += count;
  stats_.exact_computations += count;
  stats_.dims_scanned += static_cast<int64_t>(count) * dim_;

  for (int i = 0; i < count; ++i) {
    RESINFER_DCHECK(ids[i] >= 0 && ids[i] < size_);
  }
  const std::size_t d = static_cast<std::size_t>(dim_);
  RefineExactL2(
      query_, d, [this](int64_t id) { return base_ + id * dim_; }, ids,
      /*pick=*/nullptr, count, out);
}

void FlatDistanceComputer::EstimateBatchGroup(const int64_t* ids, int count,
                                              const int* members,
                                              int num_members,
                                              const float* taus,
                                              EstimateResult* out) {
  (void)taus;  // the exact computer never prunes
  RESINFER_DCHECK(num_members > 0 && num_members <= kMaxQueryGroup);
  for (int i = 0; i < count; ++i) {
    RESINFER_DCHECK(ids[i] >= 0 && ids[i] < size_);
  }
  const float* queries[kMaxQueryGroup];
  for (int j = 0; j < num_members; ++j) queries[j] = GroupQuery(members[j]);
  for (int j = 0; j < num_members; ++j) {
    stats_.candidates += count;
    stats_.exact_computations += count;
    stats_.dims_scanned += static_cast<int64_t>(count) * dim_;
  }

  // RefineExactL2's loop shape (4-wide groups, next-group prefetch, scalar
  // tail), with each gathered row group scored for every member while it is
  // in L1. Lane (j, r) of L2SqrTile is bit-identical to the per-member
  // L2SqrBatch4 lane, so out matches the default member-by-member loop.
  const std::size_t d = static_cast<std::size_t>(dim_);
  const float* rows[simd::kBatchWidth];
  float vals[kMaxQueryGroup * simd::kBatchWidth];
  int i = 0;
  for (; i + simd::kBatchWidth <= count; i += simd::kBatchWidth) {
    for (int r = 0; r < simd::kBatchWidth; ++r) {
      rows[r] = base_ + ids[i + r] * dim_;
    }
    if (i + 2 * simd::kBatchWidth <= count) {
      for (int r = 0; r < simd::kBatchWidth; ++r) {
        RESINFER_PREFETCH(base_ + ids[i + simd::kBatchWidth + r] * dim_);
      }
    }
    simd::L2SqrTile(queries, num_members, rows, d, vals);
    for (int j = 0; j < num_members; ++j) {
      for (int r = 0; r < simd::kBatchWidth; ++r) {
        out[static_cast<int64_t>(j) * count + i + r] = {
            false, vals[j * simd::kBatchWidth + r]};
      }
    }
  }
  for (; i < count; ++i) {
    const float* row = base_ + ids[i] * dim_;
    for (int j = 0; j < num_members; ++j) {
      out[static_cast<int64_t>(j) * count + i] = {
          false, simd::L2Sqr(queries[j], row, d)};
    }
  }
  // The equivalent member loop ends with the last member selected.
  SelectQuery(members[num_members - 1]);
}

float FlatDistanceComputer::ExactDistance(int64_t id) {
  RESINFER_DCHECK(query_ != nullptr);
  RESINFER_DCHECK(id >= 0 && id < size_);
  return simd::L2Sqr(base_ + id * dim_, query_,
                     static_cast<std::size_t>(dim_));
}

}  // namespace resinfer::index

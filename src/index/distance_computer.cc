#include "index/distance_computer.h"

#include "index/block_refine.h"
#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::index {

void DistanceComputer::EstimateBatch(const int64_t* ids, int count, float tau,
                                     EstimateResult* out) {
  for (int i = 0; i < count; ++i) out[i] = EstimateWithThreshold(ids[i], tau);
}

FlatDistanceComputer::FlatDistanceComputer(const float* base, int64_t n,
                                           int64_t d)
    : base_(base), size_(n), dim_(d) {
  RESINFER_CHECK(base != nullptr && n > 0 && d > 0);
}

EstimateResult FlatDistanceComputer::EstimateWithThreshold(int64_t id,
                                                           float /*tau*/) {
  ++stats_.candidates;
  ++stats_.exact_computations;
  stats_.dims_scanned += dim_;
  return {false, ExactDistance(id)};
}

void FlatDistanceComputer::EstimateBatch(const int64_t* ids, int count,
                                         float /*tau*/, EstimateResult* out) {
  RESINFER_DCHECK(query_ != nullptr);
  stats_.candidates += count;
  stats_.exact_computations += count;
  stats_.dims_scanned += static_cast<int64_t>(count) * dim_;

  for (int i = 0; i < count; ++i) {
    RESINFER_DCHECK(ids[i] >= 0 && ids[i] < size_);
  }
  const std::size_t d = static_cast<std::size_t>(dim_);
  RefineExactL2(
      query_, d, [this](int64_t id) { return base_ + id * dim_; }, ids,
      /*pick=*/nullptr, count, out);
}

float FlatDistanceComputer::ExactDistance(int64_t id) {
  RESINFER_DCHECK(query_ != nullptr);
  RESINFER_DCHECK(id >= 0 && id < size_);
  return simd::L2Sqr(base_ + id * dim_, query_,
                     static_cast<std::size_t>(dim_));
}

}  // namespace resinfer::index

#include "index/distance_computer.h"

#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::index {

FlatDistanceComputer::FlatDistanceComputer(const float* base, int64_t n,
                                           int64_t d)
    : base_(base), size_(n), dim_(d) {
  RESINFER_CHECK(base != nullptr && n > 0 && d > 0);
}

EstimateResult FlatDistanceComputer::EstimateWithThreshold(int64_t id,
                                                           float /*tau*/) {
  ++stats_.candidates;
  ++stats_.exact_computations;
  stats_.dims_scanned += dim_;
  return {false, ExactDistance(id)};
}

float FlatDistanceComputer::ExactDistance(int64_t id) {
  RESINFER_DCHECK(query_ != nullptr);
  RESINFER_DCHECK(id >= 0 && id < size_);
  return simd::L2Sqr(base_ + id * dim_, query_,
                     static_cast<std::size_t>(dim_));
}

}  // namespace resinfer::index

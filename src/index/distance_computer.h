// The distance-computation plug-in interface (the paper's central
// abstraction).
//
// Every AKNN index in this library routes candidate evaluation during the
// refinement phase through a DistanceComputer. The exact computer simply
// evaluates ||q - x||^2; the ADSampling / DDC computers implement the
// "estimate, correct, prune-or-refine" protocol of §III-§V:
//
//   EstimateWithThreshold(id, tau):
//     * pruned == true  -> the computer concluded dis(q, x_id) > tau at its
//       configured confidence; `distance` is an approximation (usable for
//       candidate ordering but NOT exact).
//     * pruned == false -> `distance` is the exact distance.
//
// Batch protocol (the block-scan refinement path):
//   EstimateBatch(ids, count, tau, out) evaluates `count` candidates and
//   writes out[i] for ids[i], in order. The contract every override must
//   honor:
//     * Equivalence: out[i] is bit-identical (same prune decision, same
//       distance down to floating-point rounding) to calling
//       EstimateWithThreshold(ids[i], tau) sequentially at the same SIMD
//       level. Overrides only amortize virtual calls, share query loads and
//       prefetch rows — they never reassociate per-candidate arithmetic.
//     * Stats: ComputerStats counters (candidates, pruned, dims_scanned,
//       exact_computations) advance exactly as the equivalent sequential
//       loop would, so scan-rate/pruned-rate figures stay comparable
//       between paths.
//     * tau semantics: tau is constant within a block — it is the caller's
//       result-queue bound at block start. Callers that tighten tau as
//       results arrive (IVF/HNSW scans) therefore prune slightly less than
//       a candidate-at-a-time loop: the extra candidates are refined
//       exactly, so recall is equal or better, but the returned top-k can
//       differ from a sequential scan's when the sequential path would have
//       mispruned one of them (pruning is a learned estimate). Block scans
//       are deterministic for a fixed block schedule, not bit-identical to
//       candidate-at-a-time search.
//
// Computers are stateful per query (BeginQuery rotates the query / builds
// lookup tables); use one computer instance per search thread.
#ifndef RESINFER_INDEX_DISTANCE_COMPUTER_H_
#define RESINFER_INDEX_DISTANCE_COMPUTER_H_

#include <cstdint>
#include <limits>
#include <string>

#include "quant/code_store.h"
#include "util/macros.h"

namespace resinfer::index {

struct EstimateResult {
  bool pruned = false;
  float distance = 0.0f;
};

// Instrumentation for Fig 10 (scan-dimension ratio, pruned rate) and the
// general efficiency analysis of §VI.
struct ComputerStats {
  int64_t candidates = 0;          // EstimateWithThreshold calls
  int64_t pruned = 0;              // candidates rejected via the bound
  int64_t dims_scanned = 0;        // projection dims touched (proj. methods)
  int64_t exact_computations = 0;  // full-dimension evaluations

  void Reset() { *this = ComputerStats(); }

  // The only sanctioned way to merge counters (batch workers, bench
  // aggregation). Any counter added to this struct must be summed here —
  // field-by-field merging at call sites silently drops new fields, which
  // is exactly the bug this operator replaces.
  ComputerStats& operator+=(const ComputerStats& other) {
    candidates += other.candidates;
    pruned += other.pruned;
    dims_scanned += other.dims_scanned;
    exact_computations += other.exact_computations;
    return *this;
  }

  // Counter delta (serving folds per-group deltas of a cumulative computer
  // into guarded aggregate stats). Same every-field rule as operator+=.
  ComputerStats& operator-=(const ComputerStats& other) {
    candidates -= other.candidates;
    pruned -= other.pruned;
    dims_scanned -= other.dims_scanned;
    exact_computations -= other.exact_computations;
    return *this;
  }

  double PrunedRate() const {
    return candidates > 0 ? static_cast<double>(pruned) / candidates : 0.0;
  }
  // Average fraction of the full dimension scanned per candidate.
  double ScanRate(int64_t full_dim) const {
    return candidates > 0 && full_dim > 0
               ? static_cast<double>(dims_scanned) /
                     (static_cast<double>(candidates) * full_dim)
               : 0.0;
  }
};

// Upper bound on the query-group sizes the library's computers support:
// the tiled scan paths keep per-member scratch (taus, per-member results,
// ADC table pointers) on the stack, sized by this. Multi-query entry points
// (IvfIndex::SearchBatch) chunk larger batches into groups of at most this
// many queries. 32 keeps the largest per-group scratch (32 queries x
// 32-candidate block of EstimateResults) at 8KB while giving co-probing
// queries enough company that popular buckets are streamed once for many
// members.
inline constexpr int kMaxQueryGroup = 32;

class DistanceComputer {
 public:
  virtual ~DistanceComputer() = default;

  // Original (full) data dimensionality D.
  virtual int64_t dim() const = 0;
  // Number of indexable points.
  virtual int64_t size() const = 0;
  virtual std::string name() const = 0;

  // Prepares per-query state. `query` has dim() floats in the ORIGINAL
  // space; computers apply their own rotations internally.
  virtual void BeginQuery(const float* query) = 0;

  // The estimate/correct/prune protocol described above. `tau` is the
  // current result-queue threshold; pass +infinity to force an exact
  // computation path.
  virtual EstimateResult EstimateWithThreshold(int64_t id, float tau) = 0;

  // Evaluates a block of candidates against one threshold; see the batch
  // protocol contract in the header comment. The base implementation loops
  // over EstimateWithThreshold; computers with a cheaper blocked form
  // (contiguous rows, ADC table accumulation) override it.
  virtual void EstimateBatch(const int64_t* ids, int count, float tau,
                             EstimateResult* out);

  // --- Code-resident scan support (quant::CodeStore) ----------------------
  //
  // Computers whose estimation stage can decode straight from a packed code
  // stream report a non-empty code_tag() and override EstimateBatchCodes;
  // everyone else inherits the gather fallback below, so flat/HNSW paths
  // keep working unchanged.

  // Identifies the record layout this computer can scan (matches the tag of
  // the store MakeCodeStore builds). Empty = no code-resident support.
  virtual std::string code_tag() const { return {}; }

  // Packs this computer's per-point codes + sidecar features into an
  // id-ordered store (record i describes point i). Indexes permute it into
  // their own candidate order (IvfIndex::AttachCodes) and own the copy; the
  // returned store is otherwise independent of the computer. Empty store =
  // no code-resident support.
  virtual quant::CodeStore MakeCodeStore() const { return {}; }

  // Code-resident batch evaluation: candidate i's record starts at
  // codes + i * stride, where the layout (code_size, sidecars, stride) is
  // the one MakeCodeStore declares. `ids` still names the candidates —
  // exact refinement of survivors reads full-precision rows by id, exactly
  // like EstimateBatch. The equivalence/stats/tau contract above applies
  // verbatim: out[i] must be bit-identical to the id-gather path. The
  // default ignores the stream and gathers.
  virtual void EstimateBatchCodes(const uint8_t* codes, const int64_t* ids,
                                  int count, float tau, EstimateResult* out) {
    (void)codes;
    EstimateBatch(ids, count, tau, out);
  }

  // --- Query-group serving (the multi-query batched path) -----------------
  //
  // IvfIndex::SearchBatch scans buckets query-major: a group of co-probing
  // queries shares each probed bucket's stream, so the computer must switch
  // between the group's queries cheaply. SetQueryBatch declares the group
  // (member g starts at queries + g * stride floats, count <=
  // kMaxQueryGroup); SelectQuery(g) makes member g current — equivalent to
  // BeginQuery(queries + g * stride) — after which every per-query entry
  // point above serves that member. The base implementation literally calls
  // BeginQuery on each switch, which is correct for any computer; the DDC
  // computers override the pair to build all per-query state (ADC tables,
  // rotated queries, cascade bounds) once in SetQueryBatch and make
  // SelectQuery a pointer swap. Calling BeginQuery directly afterwards
  // reverts to plain single-query operation.
  virtual void SetQueryBatch(const float* queries, int count, int64_t stride);
  virtual void SelectQuery(int g);

  // Scores one candidate block for several group members in one call.
  // Equivalent to — and bit-identical with, ComputerStats included —
  //
  //   for (int j = 0; j < num_members; ++j) {
  //     SelectQuery(members[j]);
  //     EstimateBatch(ids, count, taus[j], out + j * count);
  //   }
  //
  // leaving the last listed member selected. `members` indexes into the
  // current query batch; `taus[j]` is member j's threshold. Overrides keep
  // that per-member contract but share the candidate loads across members
  // (the tiled kernels in simd/).
  virtual void EstimateBatchGroup(const int64_t* ids, int count,
                                  const int* members, int num_members,
                                  const float* taus, EstimateResult* out);

  // Code-resident counterpart: the equivalent loop calls
  // EstimateBatchCodes(codes, ids, count, taus[j], out + j * count).
  virtual void EstimateBatchCodesGroup(const uint8_t* codes,
                                       const int64_t* ids, int count,
                                       const int* members, int num_members,
                                       const float* taus,
                                       EstimateResult* out);

  // Scan-order hint for query-major bucket scans. True asks the index to
  // score each small candidate block for all members in one
  // EstimateBatch*Group call (profitable when per-query state is tiny —
  // the exact computer's query row — so the tiled kernels reuse candidate
  // loads from L1). False (the default) asks for member-major runs: one
  // member scans the whole bucket before the next, so a large per-query
  // table (PQ/RQ/OPQ ADC, ~tens of KB) stays cache-resident for a whole
  // run instead of being cycled through the cache on every block. Either
  // order is bit-identical per member; only memory behavior differs.
  virtual bool group_scan_tiles_blocks() const { return false; }

  // Exact distance to point `id` for the current query.
  virtual float ExactDistance(int64_t id) = 0;

  // Hook for graph indexes: called when the search expands node `node` so
  // that neighborhood-aware computers (FINGER) can switch their local
  // estimation context. `distance_to_node` is the (exact or approximate)
  // distance from the query to the expanded node. Default: ignore.
  virtual void SetExpansionAnchor(int64_t /*node*/,
                                  float /*distance_to_node*/) {}

  // Virtual so forwarding wrappers (e.g. the sequential-path adapter in
  // bench_batch_scaling) can expose the wrapped computer's counters without
  // mirroring them on every call.
  virtual ComputerStats& stats() { return stats_; }
  virtual const ComputerStats& stats() const { return stats_; }

 protected:
  const float* GroupQuery(int g) const {
    RESINFER_DCHECK(group_queries_ != nullptr && g >= 0 &&
                    g < group_count_);
    return group_queries_ + static_cast<int64_t>(g) * group_stride_;
  }

  ComputerStats stats_;
  // Group pointers stashed by the base SetQueryBatch (overrides call the
  // base first, then build their per-member state).
  const float* group_queries_ = nullptr;
  int group_count_ = 0;
  int64_t group_stride_ = 0;
};

inline constexpr float kInfDistance = std::numeric_limits<float>::infinity();

// Exact squared-L2 computer over a row-major base owned elsewhere.
class FlatDistanceComputer : public DistanceComputer {
 public:
  // `base` (n x d) must outlive the computer.
  FlatDistanceComputer(const float* base, int64_t n, int64_t d);

  int64_t dim() const override { return dim_; }
  int64_t size() const override { return size_; }
  std::string name() const override { return "exact"; }

  void BeginQuery(const float* query) override { query_ = query; }
  EstimateResult EstimateWithThreshold(int64_t id, float tau) override;
  void EstimateBatch(const int64_t* ids, int count, float tau,
                     EstimateResult* out) override;
  // Tiled: the four gathered candidate rows are scored for every group
  // member via simd::L2SqrTile while they are hot in L1.
  void EstimateBatchGroup(const int64_t* ids, int count, const int* members,
                          int num_members, const float* taus,
                          EstimateResult* out) override;
  // Per-query state is a single pointer, so block-level member tiling is
  // pure win (shared candidate loads, nothing to thrash).
  bool group_scan_tiles_blocks() const override { return true; }
  float ExactDistance(int64_t id) override;

 private:
  const float* base_;
  int64_t size_;
  int64_t dim_;
  const float* query_ = nullptr;
};

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_DISTANCE_COMPUTER_H_

#include "index/flat_index.h"

#include <algorithm>
#include <queue>

#include "util/macros.h"

namespace resinfer::index {

std::vector<Neighbor> FlatIndex::Search(DistanceComputer& computer,
                                        const float* query, int k) const {
  const int64_t n = size();
  k = static_cast<int>(std::min<int64_t>(k, n));
  RESINFER_CHECK(k > 0);
  computer.BeginQuery(query);

  using Entry = std::pair<float, int64_t>;  // max-heap by distance
  std::priority_queue<Entry> heap;
  for (int64_t i = 0; i < n; ++i) {
    float tau = static_cast<int>(heap.size()) == k ? heap.top().first
                                                   : kInfDistance;
    EstimateResult est = computer.EstimateWithThreshold(i, tau);
    if (est.pruned) continue;
    if (static_cast<int>(heap.size()) < k) {
      heap.emplace(est.distance, i);
    } else if (est.distance < heap.top().first) {
      heap.pop();
      heap.emplace(est.distance, i);
    }
  }

  std::vector<Neighbor> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[i] = {heap.top().second, heap.top().first};
    heap.pop();
  }
  return out;
}

}  // namespace resinfer::index

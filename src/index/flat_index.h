// Linear-scan index.
//
// With the exact computer this produces ground truth; with a DDC/ADSampling
// computer it reproduces the paper's Exp-7 setting ("directly apply our
// method to scan the points in the database"): the scan keeps a top-k heap
// whose k-th distance is the pruning threshold tau.
#ifndef RESINFER_INDEX_FLAT_INDEX_H_
#define RESINFER_INDEX_FLAT_INDEX_H_

#include <vector>

#include "data/ground_truth.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"

namespace resinfer::index {

using data::Neighbor;

class FlatIndex {
 public:
  // `base` must outlive the index.
  explicit FlatIndex(const linalg::Matrix& base) : base_(&base) {}

  int64_t size() const { return base_->rows(); }
  int64_t dim() const { return base_->cols(); }

  // Scans all points through the computer. Results ascend by distance.
  // Pruned candidates never enter the heap; un-pruned ones enter with their
  // exact distance, so the returned distances are exact.
  std::vector<Neighbor> Search(DistanceComputer& computer, const float* query,
                               int k) const;

 private:
  const linalg::Matrix* base_;
};

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_FLAT_INDEX_H_

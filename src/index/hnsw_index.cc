#include "index/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/rng.h"

namespace resinfer::index {

namespace {

// Min-heap on distance via greater-than comparison.
using MinHeap =
    std::priority_queue<std::pair<float, int64_t>,
                        std::vector<std::pair<float, int64_t>>,
                        std::greater<std::pair<float, int64_t>>>;
// Max-heap on distance.
using MaxHeap = std::priority_queue<std::pair<float, int64_t>>;

}  // namespace

struct HnswIndex::BuildContext {
  const linalg::Matrix* base = nullptr;
  std::vector<uint32_t> visited;
  uint32_t stamp = 0;

  float Distance(const float* q, int64_t id) const {
    return simd::L2Sqr(q, base->Row(id),
                       static_cast<std::size_t>(base->cols()));
  }
  void NextStamp() {
    if (++stamp == 0) {
      std::fill(visited.begin(), visited.end(), 0u);
      stamp = 1;
    }
  }
  bool Visit(int64_t id) {
    if (visited[id] == stamp) return false;
    visited[id] = stamp;
    return true;
  }
};

int64_t* HnswIndex::MutableLinks(int64_t node, int level) {
  if (level == 0) {
    return base_links_.data() + node * (2 * options_.M + 1);
  }
  return upper_links_[node][level - 1].data();
}

const int64_t* HnswIndex::Links(int64_t node, int level, int* count) const {
  const int64_t* slot =
      level == 0 ? base_links_.data() + node * (2 * options_.M + 1)
                 : upper_links_[node][level - 1].data();
  *count = static_cast<int>(slot[0]);
  return slot + 1;
}

void HnswIndex::SetLinkCount(int64_t node, int level, int count) {
  MutableLinks(node, level)[0] = count;
}

const int64_t* HnswIndex::NeighborsAtBase(int64_t node, int* count) const {
  return Links(node, 0, count);
}

int64_t HnswIndex::GraphBytes() const {
  int64_t bytes = static_cast<int64_t>(base_links_.size()) * sizeof(int64_t);
  for (const auto& per_node : upper_links_) {
    for (const auto& level : per_node)
      bytes += static_cast<int64_t>(level.size()) * sizeof(int64_t);
  }
  return bytes;
}

std::vector<HnswIndex::HeapEntry> HnswIndex::SearchLayerBuild(
    BuildContext& ctx, const float* q, int64_t entry, float entry_dist,
    int level, int ef) const {
  ctx.NextStamp();
  MinHeap candidates;
  MaxHeap results;
  candidates.emplace(entry_dist, entry);
  results.emplace(entry_dist, entry);
  ctx.Visit(entry);

  while (!candidates.empty()) {
    auto [dist, node] = candidates.top();
    if (dist > results.top().first &&
        static_cast<int>(results.size()) >= ef) {
      break;
    }
    candidates.pop();
    int count = 0;
    const int64_t* links = Links(node, level, &count);
    for (int i = 0; i < count; ++i) {
      int64_t next = links[i];
      if (!ctx.Visit(next)) continue;
      float next_dist = ctx.Distance(q, next);
      if (static_cast<int>(results.size()) < ef ||
          next_dist < results.top().first) {
        candidates.emplace(next_dist, next);
        results.emplace(next_dist, next);
        if (static_cast<int>(results.size()) > ef) results.pop();
      }
    }
  }

  std::vector<HeapEntry> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back({results.top().first, results.top().second});
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // ascending by distance
  return out;
}

std::vector<int64_t> HnswIndex::SelectNeighborsHeuristic(
    const linalg::Matrix& base, const float* /*q*/,
    std::vector<HeapEntry> candidates, int m) const {
  // `candidates` ascend by distance to the inserted point. Keep a candidate
  // only if it is closer to the new point than to any already-selected
  // neighbor (HNSW Algorithm 4) — this spreads links across directions.
  std::vector<int64_t> selected;
  selected.reserve(m);
  const std::size_t d = static_cast<std::size_t>(base.cols());
  for (const HeapEntry& cand : candidates) {
    if (static_cast<int>(selected.size()) >= m) break;
    bool keep = true;
    for (int64_t chosen : selected) {
      float dist_to_chosen =
          simd::L2Sqr(base.Row(cand.id), base.Row(chosen), d);
      if (dist_to_chosen < cand.distance) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(cand.id);
  }
  return selected;
}

HnswIndex HnswIndex::Build(const linalg::Matrix& base,
                           const HnswOptions& options) {
  const int64_t n = base.rows();
  RESINFER_CHECK(n > 0);
  RESINFER_CHECK(options.M >= 2);
  RESINFER_CHECK(options.ef_construction >= options.M);

  HnswIndex index;
  index.options_ = options;
  index.size_ = n;
  index.levels_.resize(n);
  index.base_links_.assign(n * (2 * options.M + 1), 0);
  index.upper_links_.resize(n);

  const double ml = 1.0 / std::log(static_cast<double>(options.M));
  Rng rng(options.level_seed);

  BuildContext ctx;
  ctx.base = &base;
  ctx.visited.assign(n, 0u);

  for (int64_t i = 0; i < n; ++i) {
    double u = rng.Uniform();
    if (u <= 0.0) u = 1e-12;
    int level = static_cast<int>(-std::log(u) * ml);
    index.levels_[i] = level;
    index.upper_links_[i].assign(
        level, std::vector<int64_t>(options.M + 1, 0));

    if (index.entry_point_ < 0) {
      index.entry_point_ = i;
      index.max_level_ = level;
      continue;
    }

    const float* q = base.Row(i);
    int64_t current = index.entry_point_;
    float current_dist = ctx.Distance(q, current);

    // Greedy descent through layers above the node's level.
    for (int l = index.max_level_; l > level; --l) {
      bool improved = true;
      while (improved) {
        improved = false;
        int count = 0;
        const int64_t* links = index.Links(current, l, &count);
        for (int j = 0; j < count; ++j) {
          float dist = ctx.Distance(q, links[j]);
          if (dist < current_dist) {
            current_dist = dist;
            current = links[j];
            improved = true;
          }
        }
      }
    }

    // Insert on each layer from min(level, max_level) down to 0.
    for (int l = std::min(level, index.max_level_); l >= 0; --l) {
      std::vector<HeapEntry> found = index.SearchLayerBuild(
          ctx, q, current, current_dist, l, options.ef_construction);
      int m = static_cast<int>(index.LinkCapacity(l));
      std::vector<int64_t> neighbors =
          index.SelectNeighborsHeuristic(base, q, found, m);

      // Connect i -> neighbors.
      int64_t* my_links = index.MutableLinks(i, l);
      my_links[0] = static_cast<int64_t>(neighbors.size());
      for (std::size_t j = 0; j < neighbors.size(); ++j)
        my_links[j + 1] = neighbors[j];

      // Connect neighbors -> i, shrinking with the heuristic on overflow.
      for (int64_t nb : neighbors) {
        int count = 0;
        const int64_t* links = index.Links(nb, l, &count);
        int64_t capacity = index.LinkCapacity(l);
        if (count < capacity) {
          int64_t* slot = index.MutableLinks(nb, l);
          slot[count + 1] = i;
          slot[0] = count + 1;
          continue;
        }
        // Re-select among existing links + i relative to nb.
        std::vector<HeapEntry> pool;
        pool.reserve(count + 1);
        const float* nb_vec = base.Row(nb);
        pool.push_back({ctx.Distance(nb_vec, i), i});
        for (int j = 0; j < count; ++j)
          pool.push_back({ctx.Distance(nb_vec, links[j]), links[j]});
        std::sort(pool.begin(), pool.end(),
                  [](const HeapEntry& a, const HeapEntry& b) {
                    return a.distance < b.distance;
                  });
        std::vector<int64_t> reselected = index.SelectNeighborsHeuristic(
            base, nb_vec, pool, static_cast<int>(capacity));
        int64_t* slot = index.MutableLinks(nb, l);
        slot[0] = static_cast<int64_t>(reselected.size());
        for (std::size_t j = 0; j < reselected.size(); ++j)
          slot[j + 1] = reselected[j];
      }

      // Next layer starts from the closest found candidate.
      if (!found.empty()) {
        current = found.front().id;
        current_dist = found.front().distance;
      }
    }

    if (level > index.max_level_) {
      index.max_level_ = level;
      index.entry_point_ = i;
    }
  }
  return index;
}

void HnswIndex::SaveTo(BinaryWriter& writer) const {
  writer.Write(options_.M);
  writer.Write(options_.ef_construction);
  writer.Write(options_.level_seed);
  writer.Write(size_);
  writer.Write(max_level_);
  writer.Write(entry_point_);
  writer.WriteVector(levels_);
  writer.WriteVector(base_links_);
  for (const auto& per_node : upper_links_) {
    writer.Write<int32_t>(static_cast<int32_t>(per_node.size()));
    for (const auto& level : per_node) writer.WriteVector(level);
  }
}

util::Status HnswIndex::LoadFrom(BinaryReader& reader, HnswIndex* out) {
  const auto fail = [](const char* what) {
    return util::Status::Corruption(what);
  };
  HnswIndex index;
  if (!reader.Read(&index.options_.M) ||
      !reader.Read(&index.options_.ef_construction) ||
      !reader.Read(&index.options_.level_seed) ||
      !reader.Read(&index.size_) || !reader.Read(&index.max_level_) ||
      !reader.Read(&index.entry_point_)) {
    return fail("truncated hnsw graph header");
  }
  if (index.size_ <= 0 || index.options_.M < 2 ||
      index.entry_point_ < 0 || index.entry_point_ >= index.size_) {
    return fail("hnsw size/M/entry point out of range");
  }
  if (!reader.ReadVector(&index.levels_) ||
      !reader.ReadVector(&index.base_links_)) {
    return fail("truncated hnsw levels/links");
  }
  if (static_cast<int64_t>(index.levels_.size()) != index.size_ ||
      static_cast<int64_t>(index.base_links_.size()) !=
          index.size_ * (2 * index.options_.M + 1)) {
    return fail("hnsw levels/links size disagrees with node count");
  }
  index.upper_links_.resize(index.size_);
  for (int64_t i = 0; i < index.size_; ++i) {
    int32_t levels = 0;
    if (!reader.Read(&levels) || levels < 0 || levels > 64)
      return fail("hnsw per-node level count out of range");
    index.upper_links_[i].resize(levels);
    for (int32_t l = 0; l < levels; ++l) {
      if (!reader.ReadVector(&index.upper_links_[i][l]))
        return fail("truncated hnsw upper links");
    }
  }
  // Validate link ids.
  for (int64_t i = 0; i < index.size_; ++i) {
    int count = 0;
    const int64_t* links = index.Links(i, 0, &count);
    if (count < 0 || count > 2 * index.options_.M)
      return fail("hnsw link count out of range");
    for (int j = 0; j < count; ++j) {
      if (links[j] < 0 || links[j] >= index.size_)
        return fail("hnsw link id out of range");
    }
  }
  *out = std::move(index);
  return util::Status::Ok();
}

std::vector<Neighbor> HnswIndex::Search(DistanceComputer& computer,
                                        const float* query, int k, int ef,
                                        HnswScratch* scratch) const {
  RESINFER_CHECK(size_ > 0);
  // Arguments are clamped instead of surprising the caller, mirroring
  // IvfIndex::Search: k <= 0 returns an empty result, k > n simply yields
  // fewer neighbors, and ef < k (including ef <= 0) widens to k.
  if (k <= 0) return {};
  ef = std::max(ef, k);
  computer.BeginQuery(query);

  HnswScratch local;
  HnswScratch* s = scratch != nullptr ? scratch : &local;
  if (static_cast<int64_t>(s->visited.size()) < size_) {
    s->visited.assign(size_, 0u);
    s->stamp = 0;
  }
  if (++s->stamp == 0) {
    std::fill(s->visited.begin(), s->visited.end(), 0u);
    s->stamp = 1;
  }
  const uint32_t stamp = s->stamp;

  int64_t current = entry_point_;
  float current_dist = computer.ExactDistance(current);

  // Greedy descent with exact distances on the sparse upper layers.
  for (int l = max_level_; l >= 1; --l) {
    bool improved = true;
    while (improved) {
      improved = false;
      int count = 0;
      const int64_t* links = Links(current, l, &count);
      for (int j = 0; j < count; ++j) {
        float dist = computer.ExactDistance(links[j]);
        if (dist < current_dist) {
          current_dist = dist;
          current = links[j];
          improved = true;
        }
      }
    }
  }

  // Base-layer beam search through the plug-in computer. Each expansion
  // gathers the unvisited neighbors into one block and evaluates it through
  // EstimateBatch, so the computer amortizes its virtual call and prefetches
  // the candidate rows; tau is the result-queue bound at block start (see
  // the batch protocol in distance_computer.h).
  MinHeap candidates;
  MaxHeap results;
  candidates.emplace(current_dist, current);
  results.emplace(current_dist, current);
  s->visited[current] = stamp;

  const std::size_t max_degree = static_cast<std::size_t>(2 * options_.M);
  if (s->block.size() < max_degree) {
    s->block.resize(max_degree);
    s->block_results.resize(max_degree);
  }

  while (!candidates.empty()) {
    auto [dist, node] = candidates.top();
    if (static_cast<int>(results.size()) >= ef &&
        dist > results.top().first) {
      break;
    }
    candidates.pop();
    computer.SetExpansionAnchor(node, dist);

    int count = 0;
    const int64_t* links = Links(node, 0, &count);
    int gathered = 0;
    for (int j = 0; j < count; ++j) {
      const int64_t next = links[j];
      if (s->visited[next] == stamp) continue;
      s->visited[next] = stamp;
      s->block[gathered++] = next;
    }
    if (gathered == 0) continue;

    const float tau = static_cast<int>(results.size()) >= ef
                          ? results.top().first
                          : kInfDistance;
    computer.EstimateBatch(s->block.data(), gathered, tau,
                           s->block_results.data());
    for (int j = 0; j < gathered; ++j) {
      const EstimateResult& est = s->block_results[j];
      if (est.pruned) continue;
      if (static_cast<int>(results.size()) < ef ||
          est.distance < results.top().first) {
        candidates.emplace(est.distance, s->block[j]);
        results.emplace(est.distance, s->block[j]);
        if (static_cast<int>(results.size()) > ef) results.pop();
      }
    }
  }

  while (static_cast<int>(results.size()) > k) results.pop();
  std::vector<Neighbor> out(results.size());
  for (int64_t i = static_cast<int64_t>(results.size()) - 1; i >= 0; --i) {
    out[i] = {results.top().second, results.top().first};
    results.pop();
  }
  return out;
}

}  // namespace resinfer::index

// Hierarchical Navigable Small World graph (Malkov & Yashunin, TPAMI 2020).
//
// Construction follows the reference algorithm: exponentially distributed
// node levels, greedy descent through the upper layers, ef_construction
// beam search per layer, and the distance-based neighbor-selection heuristic
// (Algorithm 4 of the HNSW paper) with bidirectional link repair.
//
// Construction always uses exact distances — the paper's methods (and
// ADSampling before them) accelerate only the query phase, so one graph is
// built per dataset and shared by every DistanceComputer.
//
// Query: greedy descent with exact distances on the sparse upper layers,
// then a base-layer beam search in which every neighbor evaluation goes
// through DistanceComputer::EstimateWithThreshold with the current ef-th
// result distance as the threshold. Pruned candidates are skipped entirely
// (the HNSW++ integration style of the ADSampling paper). The result queue
// only ever holds exact distances.
#ifndef RESINFER_INDEX_HNSW_INDEX_H_
#define RESINFER_INDEX_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/ground_truth.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "util/binary_io.h"
#include "util/status.h"

namespace resinfer::index {

using data::Neighbor;

struct HnswOptions {
  // Max links per node on upper layers; level 0 uses 2*M. Paper: M = 16.
  int M = 16;
  // Beam width during construction. Paper: 500; small-scale benches lower
  // this (printed in their output).
  int ef_construction = 200;
  uint64_t level_seed = 2024;
};

// Reusable per-thread search scratch (visited stamps). Optional; pass
// nullptr and Search allocates internally.
struct HnswScratch {
  std::vector<uint32_t> visited;
  uint32_t stamp = 0;
  // Per-expansion gather buffers for the block-scan refinement: unvisited
  // neighbors of the expanded node and their EstimateBatch results.
  std::vector<int64_t> block;
  std::vector<EstimateResult> block_results;
};

class HnswIndex {
 public:
  HnswIndex() = default;

  // `base` must outlive the index; search re-reads vectors through the
  // DistanceComputer, the index itself stores only the graph.
  static HnswIndex Build(const linalg::Matrix& base,
                         const HnswOptions& options = HnswOptions());

  int64_t size() const { return size_; }
  int max_level() const { return max_level_; }
  int64_t entry_point() const { return entry_point_; }
  const HnswOptions& options() const { return options_; }

  // Level-0 adjacency of `node`: pointer to `count` neighbor ids.
  const int64_t* NeighborsAtBase(int64_t node, int* count) const;

  // Approximate memory footprint of the graph structure in bytes.
  int64_t GraphBytes() const;

  // Results ascend by exact distance; size <= k. Arguments are clamped
  // instead of aborting, mirroring IvfIndex::Search: k <= 0 returns an
  // empty result, k > size() simply yields fewer neighbors, and ef < k
  // (including ef <= 0) widens to k.
  std::vector<Neighbor> Search(DistanceComputer& computer, const float* query,
                               int k, int ef,
                               HnswScratch* scratch = nullptr) const;

  // Graph persistence (the vectors themselves are not stored; pair with a
  // persisted dataset / rotated base). See persist/persist.h for
  // file-level helpers with magic headers.
  void SaveTo(BinaryWriter& writer) const;
  // Reads what SaveTo wrote, validating every count and link id; a corrupt
  // stream returns a non-OK Status naming the first inconsistency.
  static util::Status LoadFrom(BinaryReader& reader, HnswIndex* out);

 private:
  struct BuildContext;

  // Max-heap entry ordered by distance.
  struct HeapEntry {
    float distance;
    int64_t id;
    bool operator<(const HeapEntry& other) const {
      return distance < other.distance;
    }
    bool operator>(const HeapEntry& other) const {
      return distance > other.distance;
    }
  };

  int64_t LinkCapacity(int level) const {
    return level == 0 ? 2 * options_.M : options_.M;
  }
  int64_t* MutableLinks(int64_t node, int level);
  const int64_t* Links(int64_t node, int level, int* count) const;
  void SetLinkCount(int64_t node, int level, int count);

  std::vector<HeapEntry> SearchLayerBuild(BuildContext& ctx, const float* q,
                                          int64_t entry, float entry_dist,
                                          int level, int ef) const;
  std::vector<int64_t> SelectNeighborsHeuristic(
      const linalg::Matrix& base, const float* q,
      std::vector<HeapEntry> candidates, int m) const;

  HnswOptions options_;
  int64_t size_ = 0;
  int max_level_ = -1;
  int64_t entry_point_ = -1;

  std::vector<int> levels_;  // per node
  // Level 0: flattened [count, id x (2M)] per node.
  std::vector<int64_t> base_links_;
  // Upper levels: per node, per level-1, [count, id x M].
  std::vector<std::vector<std::vector<int64_t>>> upper_links_;
};

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_HNSW_INDEX_H_

#include "index/ivf_index.h"

#include <algorithm>
#include <queue>
#include <string>
#include <utility>

#include "util/macros.h"

namespace resinfer::index {

namespace {

// Candidates per EstimateBatch call in Search. Large enough to amortize the
// virtual dispatch and keep the batched kernels fed, small enough that the
// block's ids and results stay in L1.
constexpr int kScanBlock = 32;

// (distance, id) max-heap: the running top-k during a scan.
using HeapEntry = std::pair<float, int64_t>;
using ResultHeap = std::priority_queue<HeapEntry>;

std::vector<Neighbor> DrainHeap(ResultHeap& heap) {
  std::vector<Neighbor> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[i] = {heap.top().second, heap.top().first};
    heap.pop();
  }
  return out;
}

}  // namespace

IvfIndex IvfIndex::Build(const linalg::Matrix& base,
                         const IvfOptions& options,
                         const quant::CodeStore* codes) {
  const int64_t n = base.rows();
  RESINFER_CHECK(n > 0);
  int k = options.num_clusters;
  int cap = static_cast<int>(
      std::max<int64_t>(1, n / std::max(1, options.min_points_per_cluster)));
  k = std::clamp(k, 1, cap);

  quant::KMeansResult km =
      quant::KMeans(base.data(), n, base.cols(), k, options.kmeans);

  // Counting sort of the assignments into the CSR layout.
  IvfIndex index;
  index.size_ = n;
  index.centroids_ = std::move(km.centroids);
  index.bucket_offsets_.assign(k + 1, 0);
  for (int64_t i = 0; i < n; ++i) {
    ++index.bucket_offsets_[km.assignments[i] + 1];
  }
  for (int b = 0; b < k; ++b) {
    index.bucket_offsets_[b + 1] += index.bucket_offsets_[b];
  }
  index.ids_.resize(n);
  std::vector<int64_t> cursor(index.bucket_offsets_.begin(),
                              index.bucket_offsets_.end() - 1);
  for (int64_t i = 0; i < n; ++i) {
    index.ids_[cursor[km.assignments[i]]++] = i;
  }
  if (codes != nullptr) index.AttachCodes(*codes);
  return index;
}

IvfIndex IvfIndex::FromComponents(
    int64_t size, linalg::Matrix centroids,
    std::vector<std::vector<int64_t>> buckets) {
  RESINFER_CHECK(centroids.rows() == static_cast<int64_t>(buckets.size()));
  std::vector<int64_t> offsets;
  offsets.reserve(buckets.size() + 1);
  offsets.push_back(0);
  std::vector<int64_t> ids;
  for (const auto& bucket : buckets) {
    ids.insert(ids.end(), bucket.begin(), bucket.end());
    offsets.push_back(static_cast<int64_t>(ids.size()));
  }
  return FromCsr(size, std::move(centroids), std::move(offsets),
                 std::move(ids));
}

util::Status IvfIndex::ValidateCsr(int64_t size, int64_t num_clusters,
                                   const std::vector<int64_t>& bucket_offsets,
                                   const std::vector<int64_t>& ids) {
  const auto fail = [](const char* what) {
    return util::Status::Corruption(what);
  };
  if (size <= 0) return fail("ivf size must be positive");
  if (static_cast<int64_t>(bucket_offsets.size()) != num_clusters + 1 ||
      bucket_offsets.empty() || bucket_offsets.front() != 0 ||
      bucket_offsets.back() != static_cast<int64_t>(ids.size())) {
    return fail("inconsistent ivf offsets");
  }
  for (std::size_t b = 1; b < bucket_offsets.size(); ++b) {
    if (bucket_offsets[b] < bucket_offsets[b - 1]) {
      return fail("ivf offsets not monotonic");
    }
  }
  for (int64_t id : ids) {
    if (id < 0 || id >= size) return fail("bucket id out of range");
  }
  return util::Status::Ok();
}

IvfIndex IvfIndex::FromCsr(int64_t size, linalg::Matrix centroids,
                           std::vector<int64_t> bucket_offsets,
                           std::vector<int64_t> ids,
                           const quant::CodeStore* codes) {
  RESINFER_CHECK(
      ValidateCsr(size, centroids.rows(), bucket_offsets, ids).ok());

  IvfIndex index;
  index.size_ = size;
  index.centroids_ = std::move(centroids);
  index.bucket_offsets_ = std::move(bucket_offsets);
  index.ids_ = std::move(ids);
  if (codes != nullptr) index.AttachCodes(*codes);
  return index;
}

void IvfIndex::AttachCodes(const quant::CodeStore& source) {
  RESINFER_CHECK(source.size() == size_);
  codes_ = source.PermutedBy(ids_);
}

void IvfIndex::AttachPermutedCodes(quant::CodeStore codes) {
  // One record per CSR entry (== size_ when the buckets partition the base,
  // which persist enforces on its files).
  RESINFER_CHECK(codes.size() == static_cast<int64_t>(ids_.size()));
  codes_ = std::move(codes);
}

void IvfIndex::AttachSharedCodes(const quant::CodeStore& source) {
  RESINFER_CHECK(source.size() == static_cast<int64_t>(ids_.size()));
  codes_ = source.ShareView();
}

bool IvfIndex::AttachCodesFrom(const DistanceComputer& computer) {
  quant::CodeStore store = computer.MakeCodeStore();
  if (store.empty()) return false;
  AttachCodes(store);
  return true;
}

std::vector<Neighbor> IvfIndex::Search(DistanceComputer& computer,
                                       const float* query, int k,
                                       int nprobe) const {
  if (k <= 0) return {};  // nothing asked for; clamp instead of aborting
  nprobe = std::clamp(nprobe, 1, num_clusters());
  computer.BeginQuery(query);

  std::vector<int32_t> probe =
      quant::NearestCentroids(centroids_, query, nprobe);

  ResultHeap heap;
  EstimateResult est[kScanBlock];

  // Route through the code-resident stream only when the attached store
  // was built by (a computer identical to) `computer` — the tag encodes
  // method + record layout + a content fingerprint, so a mismatched or
  // stale store is never misread. One virtual call per search; computers
  // cache the string.
  const std::string computer_tag =
      has_codes() ? computer.code_tag() : std::string();
  const bool code_resident =
      !computer_tag.empty() && codes_.tag() == computer_tag;
  const int64_t code_stride = code_resident ? codes_.stride() : 0;

  for (int32_t bucket : probe) {
    const int64_t* bucket_ids = BucketIds(bucket);
    const int64_t len = BucketSize(bucket);
    const uint8_t* bucket_codes =
        code_resident ? BucketCodes(bucket) : nullptr;
    for (int64_t pos = 0; pos < len; pos += kScanBlock) {
      const int block =
          static_cast<int>(std::min<int64_t>(kScanBlock, len - pos));
      // Pull the next block's id range toward the cache while this block
      // computes (the candidate rows themselves are prefetched inside the
      // computers' EstimateBatch overrides).
      if (pos + block < len) {
        RESINFER_PREFETCH(bucket_ids + pos + block);
        RESINFER_PREFETCH(bucket_ids + pos + block + 8);
      }
      const float tau = static_cast<int>(heap.size()) == k
                            ? heap.top().first
                            : kInfDistance;
      if (code_resident) {
        computer.EstimateBatchCodes(bucket_codes + pos * code_stride,
                                    bucket_ids + pos, block, tau, est);
      } else {
        computer.EstimateBatch(bucket_ids + pos, block, tau, est);
      }
      for (int j = 0; j < block; ++j) {
        if (est[j].pruned) continue;
        if (static_cast<int>(heap.size()) < k) {
          heap.emplace(est[j].distance, bucket_ids[pos + j]);
        } else if (est[j].distance < heap.top().first) {
          heap.pop();
          heap.emplace(est[j].distance, bucket_ids[pos + j]);
        }
      }
    }
  }

  return DrainHeap(heap);
}

void IvfIndex::SearchBatchRange(DistanceComputer& computer,
                                const linalg::Matrix& queries, int64_t begin,
                                int64_t count, int k, int nprobe,
                                std::vector<Neighbor>* results,
                                const int32_t* probe_lists) const {
  RESINFER_CHECK(begin >= 0 && count >= 0 &&
                 begin + count <= queries.rows());
  RESINFER_CHECK(queries.cols() == computer.dim());
  if (count == 0) return;
  if (k <= 0) {  // same clamp as Search
    for (int64_t i = 0; i < count; ++i) results[i].clear();
    return;
  }
  nprobe = std::clamp(nprobe, 1, num_clusters());

  // Route through the code-resident stream under the same tag match as
  // Search; resolved once for the whole batch.
  const std::string computer_tag =
      has_codes() ? computer.code_tag() : std::string();
  const bool code_resident =
      !computer_tag.empty() && codes_.tag() == computer_tag;
  const int64_t code_stride = code_resident ? codes_.stride() : 0;
  const bool tile_blocks = computer.group_scan_tiles_blocks();

  for (int64_t start = 0; start < count; start += kMaxQueryGroup) {
    const int group = static_cast<int>(
        std::min<int64_t>(kMaxQueryGroup, count - start));
    const int64_t row0 = begin + start;
    computer.SetQueryBatch(queries.Row(row0), group, queries.cols());

    std::vector<int32_t> probe_storage;
    const int32_t* probes[kMaxQueryGroup];
    if (probe_lists == nullptr) {
      // Rank the group's centroids in one tiled pass (bit-identical to
      // per-query NearestCentroids, each centroid row streamed once).
      probe_storage.resize(static_cast<std::size_t>(group) * nprobe);
      quant::NearestCentroidsBatch(centroids_, queries, row0, group, nprobe,
                                   probe_storage.data());
    }
    for (int g = 0; g < group; ++g) {
      probes[g] = probe_lists != nullptr
                      ? probe_lists + (start + g) * nprobe
                      : probe_storage.data() + static_cast<int64_t>(g) * nprobe;
    }

    ResultHeap heaps[kMaxQueryGroup];
    EstimateResult est[kMaxQueryGroup * kScanBlock];
    float taus[kMaxQueryGroup];
    int members[kMaxQueryGroup];
    int cursor[kMaxQueryGroup] = {0};

    // Co-probe scheduling: each member consumes its probe list strictly in
    // rank order (that plus the per-block tau refresh is what makes every
    // member bit-identical to its sequential Search), but members need not
    // advance in lock step. Every round picks the bucket the most members
    // want next, scans it once, and advances exactly those members — so
    // probe lists that agree on buckets at different ranks still converge
    // onto shared streams.
    while (true) {
      int best_count = 0;
      int32_t best_bucket = -1;
      for (int g = 0; g < group; ++g) {
        if (cursor[g] >= nprobe) continue;
        const int32_t bucket = probes[g][cursor[g]];
        if (bucket == best_bucket) continue;  // counted when first seen
        int cnt = 0;
        for (int h = g; h < group; ++h) {
          if (cursor[h] < nprobe && probes[h][cursor[h]] == bucket) ++cnt;
        }
        if (cnt > best_count) {
          best_count = cnt;
          best_bucket = bucket;
        }
      }
      if (best_count == 0) break;  // every member exhausted its probes

      int num_members = 0;
      for (int g = 0; g < group; ++g) {
        if (cursor[g] < nprobe && probes[g][cursor[g]] == best_bucket) {
          members[num_members++] = g;
          ++cursor[g];
        }
      }

      const int64_t* bucket_ids = BucketIds(best_bucket);
      const int64_t len = BucketSize(best_bucket);
      const uint8_t* bucket_codes =
          code_resident ? BucketCodes(best_bucket) : nullptr;
      const auto push = [k](ResultHeap& heap, const EstimateResult* vals,
                            const int64_t* ids, int block) {
        for (int c = 0; c < block; ++c) {
          if (vals[c].pruned) continue;
          if (static_cast<int>(heap.size()) < k) {
            heap.emplace(vals[c].distance, ids[c]);
          } else if (vals[c].distance < heap.top().first) {
            heap.pop();
            heap.emplace(vals[c].distance, ids[c]);
          }
        }
      };
      if (tile_blocks && num_members > 1) {
        // Block-tiled order: each kScanBlock block is scored for every
        // member in one group call while its candidates sit in L1.
        for (int64_t pos = 0; pos < len; pos += kScanBlock) {
          const int block =
              static_cast<int>(std::min<int64_t>(kScanBlock, len - pos));
          if (pos + block < len) {
            RESINFER_PREFETCH(bucket_ids + pos + block);
            RESINFER_PREFETCH(bucket_ids + pos + block + 8);
          }
          for (int j = 0; j < num_members; ++j) {
            const ResultHeap& heap = heaps[members[j]];
            taus[j] = static_cast<int>(heap.size()) == k ? heap.top().first
                                                         : kInfDistance;
          }
          if (code_resident) {
            computer.EstimateBatchCodesGroup(
                bucket_codes + pos * code_stride, bucket_ids + pos, block,
                members, num_members, taus, est);
          } else {
            computer.EstimateBatchGroup(bucket_ids + pos, block, members,
                                        num_members, taus, est);
          }
          for (int j = 0; j < num_members; ++j) {
            push(heaps[members[j]], est + j * block, bucket_ids + pos,
                 block);
          }
        }
      } else {
        // Member-major order: one member scans the whole bucket before
        // the next, so large per-query state (ADC tables) stays
        // cache-resident for the run while the bucket's records are
        // re-read from L1/L2 by later members. Both orders preserve each
        // member's sequential block-and-tau schedule.
        for (int j = 0; j < num_members; ++j) {
          computer.SelectQuery(members[j]);
          ResultHeap& heap = heaps[members[j]];
          for (int64_t pos = 0; pos < len; pos += kScanBlock) {
            const int block =
                static_cast<int>(std::min<int64_t>(kScanBlock, len - pos));
            if (pos + block < len) {
              RESINFER_PREFETCH(bucket_ids + pos + block);
              RESINFER_PREFETCH(bucket_ids + pos + block + 8);
            }
            const float tau = static_cast<int>(heap.size()) == k
                                  ? heap.top().first
                                  : kInfDistance;
            if (code_resident) {
              computer.EstimateBatchCodes(bucket_codes + pos * code_stride,
                                          bucket_ids + pos, block, tau, est);
            } else {
              computer.EstimateBatch(bucket_ids + pos, block, tau, est);
            }
            push(heap, est, bucket_ids + pos, block);
          }
        }
      }
    }

    for (int g = 0; g < group; ++g) {
      results[start + g] = DrainHeap(heaps[g]);
    }
  }
}

std::vector<std::vector<Neighbor>> IvfIndex::SearchBatch(
    DistanceComputer& computer, const linalg::Matrix& queries, int k,
    int nprobe) const {
  std::vector<std::vector<Neighbor>> results(
      static_cast<std::size_t>(queries.rows()));
  SearchBatchRange(computer, queries, 0, queries.rows(), k, nprobe,
                   results.data());
  return results;
}

}  // namespace resinfer::index

#include "index/ivf_index.h"

#include <algorithm>
#include <queue>

#include "util/macros.h"

namespace resinfer::index {

IvfIndex IvfIndex::Build(const linalg::Matrix& base,
                         const IvfOptions& options) {
  const int64_t n = base.rows();
  RESINFER_CHECK(n > 0);
  int k = options.num_clusters;
  int cap = static_cast<int>(
      std::max<int64_t>(1, n / std::max(1, options.min_points_per_cluster)));
  k = std::clamp(k, 1, cap);

  quant::KMeansResult km =
      quant::KMeans(base.data(), n, base.cols(), k, options.kmeans);

  IvfIndex index;
  index.size_ = n;
  index.centroids_ = std::move(km.centroids);
  index.buckets_.assign(k, {});
  for (int64_t i = 0; i < n; ++i) {
    index.buckets_[km.assignments[i]].push_back(i);
  }
  return index;
}

IvfIndex IvfIndex::FromComponents(
    int64_t size, linalg::Matrix centroids,
    std::vector<std::vector<int64_t>> buckets) {
  RESINFER_CHECK(size > 0);
  RESINFER_CHECK(centroids.rows() ==
                 static_cast<int64_t>(buckets.size()));
  for (const auto& bucket : buckets) {
    for (int64_t id : bucket) RESINFER_CHECK(id >= 0 && id < size);
  }
  IvfIndex index;
  index.size_ = size;
  index.centroids_ = std::move(centroids);
  index.buckets_ = std::move(buckets);
  return index;
}

std::vector<Neighbor> IvfIndex::Search(DistanceComputer& computer,
                                       const float* query, int k,
                                       int nprobe) const {
  RESINFER_CHECK(k > 0);
  computer.BeginQuery(query);

  std::vector<int32_t> probe =
      quant::NearestCentroids(centroids_, query, nprobe);

  using Entry = std::pair<float, int64_t>;  // max-heap by distance
  std::priority_queue<Entry> heap;
  for (int32_t bucket : probe) {
    for (int64_t id : buckets_[bucket]) {
      float tau = static_cast<int>(heap.size()) == k ? heap.top().first
                                                     : kInfDistance;
      EstimateResult est = computer.EstimateWithThreshold(id, tau);
      if (est.pruned) continue;
      if (static_cast<int>(heap.size()) < k) {
        heap.emplace(est.distance, id);
      } else if (est.distance < heap.top().first) {
        heap.pop();
        heap.emplace(est.distance, id);
      }
    }
  }

  std::vector<Neighbor> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[i] = {heap.top().second, heap.top().first};
    heap.pop();
  }
  return out;
}

}  // namespace resinfer::index

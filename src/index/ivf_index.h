// Inverted-file index (IVF, §II-A).
//
// Build: k-means over the base vectors; each cluster owns a bucket of point
// ids. Search: rank centroids by exact distance to the query, scan the
// `nprobe` nearest buckets, and evaluate every member through the plugged
// DistanceComputer with the running top-k threshold — the candidate
// generation / refinement split the paper builds on.
//
// Bucket storage is a CSR-style flat layout: one contiguous id array plus
// per-bucket offsets. Probed buckets are therefore scanned in cache-resident
// blocks through DistanceComputer::EstimateBatch (with next-block prefetch)
// instead of pointer-chasing nested vectors.
//
// Code-resident mode: the index can additionally own a bucket-contiguous
// copy of a computer's quantized codes + sidecar features (quant::CodeStore
// records permuted into id order of the CSR array). When the attached
// store's tag matches the probing computer's code_tag(), Search streams
// records sequentially through EstimateBatchCodes instead of gathering
// codes by id — results are bit-identical to the gather path (the
// EstimateBatchCodes contract), only the memory access pattern changes.
#ifndef RESINFER_INDEX_IVF_INDEX_H_
#define RESINFER_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/ground_truth.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "quant/code_store.h"
#include "quant/kmeans.h"

namespace resinfer::index {

using data::Neighbor;

struct IvfOptions {
  // Paper default is 4096 clusters (§VII-A); Build caps this at
  // max(1, n / min_points_per_cluster) so small benches stay sensible.
  int num_clusters = 4096;
  int min_points_per_cluster = 8;
  quant::KMeansOptions kmeans;
};

class IvfIndex {
 public:
  IvfIndex() = default;

  // `base` must outlive the index (buckets store row ids, not copies).
  // When `codes` is given (id-indexed, one record per base row) it is
  // permuted into bucket order and owned by the index — the code-resident
  // mode above.
  static IvfIndex Build(const linalg::Matrix& base,
                        const IvfOptions& options = IvfOptions(),
                        const quant::CodeStore* codes = nullptr);

  // Rebuilds an index from persisted parts (persist/persist.h). `size` is
  // the number of indexed points; bucket ids must lie in [0, size). The
  // nested-vector overload serves the legacy (v1) on-disk format and is
  // flattened on entry.
  static IvfIndex FromComponents(int64_t size, linalg::Matrix centroids,
                                 std::vector<std::vector<int64_t>> buckets);

  // CSR parts: `bucket_offsets` has num_clusters + 1 entries with
  // bucket_offsets[0] == 0, non-decreasing, and
  // bucket_offsets.back() == ids.size(). FromCsr CHECK-aborts on invalid
  // parts (programmer error); callers handling untrusted input (persist)
  // pre-validate with ValidateCsr to fail recoverably. `codes`, when
  // given, is id-indexed and gets permuted into bucket order.
  static IvfIndex FromCsr(int64_t size, linalg::Matrix centroids,
                          std::vector<int64_t> bucket_offsets,
                          std::vector<int64_t> ids,
                          const quant::CodeStore* codes = nullptr);

  // The single source of truth for the CSR invariants FromCsr enforces
  // (offset shape/monotonicity, id range — NOT the on-disk partition
  // requirement, which is persist's); returns a non-OK Status naming the
  // first violation.
  static util::Status ValidateCsr(int64_t size, int64_t num_clusters,
                                  const std::vector<int64_t>& bucket_offsets,
                                  const std::vector<int64_t>& ids);

  int num_clusters() const { return static_cast<int>(centroids_.rows()); }
  int64_t size() const { return size_; }
  const linalg::Matrix& centroids() const { return centroids_; }

  // CSR accessors: ids of bucket b are ids()[bucket_offsets()[b] ..
  // bucket_offsets()[b + 1]).
  const std::vector<int64_t>& bucket_offsets() const {
    return bucket_offsets_;
  }
  const std::vector<int64_t>& ids() const { return ids_; }
  int64_t BucketSize(int bucket) const {
    return bucket_offsets_[bucket + 1] - bucket_offsets_[bucket];
  }
  const int64_t* BucketIds(int bucket) const {
    return ids_.data() + bucket_offsets_[bucket];
  }

  // --- Code-resident mode --------------------------------------------------

  bool has_codes() const { return !codes_.empty(); }
  const quant::CodeStore& codes() const { return codes_; }
  // First record of bucket b; records mirror BucketIds(b) order. Requires
  // has_codes().
  const uint8_t* BucketCodes(int bucket) const {
    return codes_.record(bucket_offsets_[bucket]);
  }

  // Permutes an id-indexed store (record i describes point i; typically
  // computer.MakeCodeStore()) into bucket-contiguous order and owns the
  // copy. The permutation is an inherent copy (records move between
  // positions); for records already in bucket order use
  // AttachPermutedCodes (move) or AttachSharedCodes (zero-copy view)
  // instead of paying 2x the section's footprint. CHECK-aborts unless
  // source.size() == size().
  void AttachCodes(const quant::CodeStore& source);
  // Installs records already in bucket order (the persist load path).
  void AttachPermutedCodes(quant::CodeStore codes);
  // Zero-copy attach of bucket-ordered records: shares `source`'s storage
  // handle instead of copying bytes, so attaching an already-permuted
  // store (a persisted section, another index's attached store, an mmap
  // slice) adds no peak RSS. Caller contract: record j describes the point
  // ids()[j], exactly as AttachPermutedCodes requires.
  void AttachSharedCodes(const quant::CodeStore& source);
  // Convenience: builds the computer's store and attaches it; returns
  // false (attaching nothing) for computers without code-resident support.
  bool AttachCodesFrom(const DistanceComputer& computer);
  void DetachCodes() { codes_ = quant::CodeStore(); }

  // Results ascend by exact distance. Arguments are clamped instead of
  // surprising the caller: nprobe to [1, num_clusters()], and k <= 0
  // returns an empty result (k > size() simply yields fewer neighbors).
  // Scans stream through EstimateBatchCodes when the attached store
  // matches `computer` (see the header comment), else gather by id.
  std::vector<Neighbor> Search(DistanceComputer& computer, const float* query,
                               int k, int nprobe) const;

  // --- Multi-query serving -------------------------------------------------
  //
  // Query-major search over a batch: queries are chunked into groups of at
  // most kMaxQueryGroup, the computer prepares each group once
  // (SetQueryBatch), and buckets co-probed by several group members are
  // streamed once while every member scores them (EstimateBatch*Group).
  // Each member still visits its own probe list in rank order with its own
  // running threshold, so results[i] is bit-identical to
  // Search(computer, queries.Row(i), k, nprobe) — grouping changes memory
  // traffic, never answers. Argument clamping matches Search.
  std::vector<std::vector<Neighbor>> SearchBatch(DistanceComputer& computer,
                                                 const linalg::Matrix& queries,
                                                 int k, int nprobe) const;

  // Searches query rows [begin, begin + count) and writes results[i] for
  // row begin + i, chunking internally into groups of kMaxQueryGroup.
  // Callers wanting co-probe locality should order adjacent rows by probe
  // similarity (BatchSearchIvf sorts lexicographically by probe list).
  // `probe_lists`, when given, holds count rows of
  // min(max(nprobe, 1), num_clusters()) precomputed centroid ids each —
  // row i for query row begin + i, as NearestCentroids returns them — so
  // a caller that already ranked centroids (to sort queries) doesn't pay
  // for the ranking twice.
  void SearchBatchRange(DistanceComputer& computer,
                        const linalg::Matrix& queries, int64_t begin,
                        int64_t count, int k, int nprobe,
                        std::vector<Neighbor>* results,
                        const int32_t* probe_lists = nullptr) const;

 private:
  int64_t size_ = 0;
  linalg::Matrix centroids_;
  std::vector<int64_t> bucket_offsets_;  // num_clusters + 1
  std::vector<int64_t> ids_;             // size_ entries, bucket-contiguous
  quant::CodeStore codes_;  // empty, or one record per ids_ entry (same order)
};

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_IVF_INDEX_H_

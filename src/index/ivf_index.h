// Inverted-file index (IVF, §II-A).
//
// Build: k-means over the base vectors; each cluster owns a bucket of point
// ids. Search: rank centroids by exact distance to the query, scan the
// `nprobe` nearest buckets, and evaluate every member through the plugged
// DistanceComputer with the running top-k threshold — the candidate
// generation / refinement split the paper builds on.
#ifndef RESINFER_INDEX_IVF_INDEX_H_
#define RESINFER_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "data/ground_truth.h"
#include "index/distance_computer.h"
#include "linalg/matrix.h"
#include "quant/kmeans.h"

namespace resinfer::index {

using data::Neighbor;

struct IvfOptions {
  // Paper default is 4096 clusters (§VII-A); Build caps this at
  // max(1, n / min_points_per_cluster) so small benches stay sensible.
  int num_clusters = 4096;
  int min_points_per_cluster = 8;
  quant::KMeansOptions kmeans;
};

class IvfIndex {
 public:
  IvfIndex() = default;

  // `base` must outlive the index (buckets store row ids, not copies).
  static IvfIndex Build(const linalg::Matrix& base,
                        const IvfOptions& options = IvfOptions());

  // Rebuilds an index from persisted parts (persist/persist.h). `size` is
  // the number of indexed points; bucket ids must lie in [0, size).
  static IvfIndex FromComponents(int64_t size, linalg::Matrix centroids,
                                 std::vector<std::vector<int64_t>> buckets);

  int num_clusters() const { return static_cast<int>(centroids_.rows()); }
  int64_t size() const { return size_; }
  const linalg::Matrix& centroids() const { return centroids_; }
  const std::vector<std::vector<int64_t>>& buckets() const { return buckets_; }

  // Results ascend by exact distance. nprobe is clamped to num_clusters().
  std::vector<Neighbor> Search(DistanceComputer& computer, const float* query,
                               int k, int nprobe) const;

 private:
  int64_t size_ = 0;
  linalg::Matrix centroids_;
  std::vector<std::vector<int64_t>> buckets_;
};

}  // namespace resinfer::index

#endif  // RESINFER_INDEX_IVF_INDEX_H_

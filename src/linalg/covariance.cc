#include "linalg/covariance.h"

#include <vector>

#include "util/macros.h"
#include "util/parallel.h"

namespace resinfer::linalg {

MeanCovariance ComputeMeanCovariance(const float* data, int64_t n,
                                     int64_t d) {
  RESINFER_CHECK(n >= 1 && d >= 1);

  std::vector<double> mean(d, 0.0);
  for (int64_t r = 0; r < n; ++r) {
    const float* row = data + r * d;
    for (int64_t c = 0; c < d; ++c) mean[c] += row[c];
  }
  for (int64_t c = 0; c < d; ++c) mean[c] /= static_cast<double>(n);

  // Upper triangle of sum (x - mu)(x - mu)^T with per-thread accumulators.
  const int threads = DefaultThreadCount();
  const int64_t tri = d * (d + 1) / 2;
  std::vector<std::vector<double>> partial(
      threads, std::vector<double>(static_cast<std::size_t>(tri), 0.0));

  ParallelForEach(n, [&](int64_t r, int thread_id) {
    std::vector<double>& acc = partial[thread_id];
    const float* row = data + r * d;
    // Small stack-friendly centered copy.
    thread_local std::vector<double> centered;
    centered.resize(d);
    for (int64_t c = 0; c < d; ++c) centered[c] = row[c] - mean[c];
    std::size_t idx = 0;
    for (int64_t i = 0; i < d; ++i) {
      double ci = centered[i];
      for (int64_t j = i; j < d; ++j) acc[idx++] += ci * centered[j];
    }
  });

  MeanCovariance result;
  result.mean.resize(d);
  for (int64_t c = 0; c < d; ++c)
    result.mean[c] = static_cast<float>(mean[c]);
  result.covariance = Matrix(d, d);
  std::size_t idx = 0;
  const double inv_n = 1.0 / static_cast<double>(n);
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i; j < d; ++j) {
      double total = 0.0;
      for (int t = 0; t < threads; ++t) total += partial[t][idx];
      ++idx;
      float value = static_cast<float>(total * inv_n);
      result.covariance.At(i, j) = value;
      result.covariance.At(j, i) = value;
    }
  }
  return result;
}

}  // namespace resinfer::linalg

// Mean and covariance of a row-major sample, double-accumulated.
#ifndef RESINFER_LINALG_COVARIANCE_H_
#define RESINFER_LINALG_COVARIANCE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace resinfer::linalg {

struct MeanCovariance {
  std::vector<float> mean;  // length d
  Matrix covariance;        // d x d, population normalization (1/n)
};

// Computes mean and covariance over `n` rows of dimension `d`.
// Requires n >= 1.
MeanCovariance ComputeMeanCovariance(const float* data, int64_t n, int64_t d);

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_COVARIANCE_H_

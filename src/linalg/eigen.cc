#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/macros.h"

namespace resinfer::linalg {

namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

double SignLike(double magnitude, double sign_source) {
  return sign_source >= 0.0 ? std::abs(magnitude) : -std::abs(magnitude);
}

// Householder reduction of the symmetric matrix stored in `z` (n x n,
// row-major) to tridiagonal form. On exit `d` holds the diagonal, `e` the
// sub-diagonal (e[0] unused), and `z` the accumulated orthogonal transform
// (columns are the basis in which the tridiagonal matrix lives).
void Tridiagonalize(std::vector<double>& z, int n, std::vector<double>& d,
                    std::vector<double>& e) {
  auto a = [&](int i, int j) -> double& { return z[i * n + j]; };

  for (int i = n - 1; i >= 1; --i) {
    int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (int k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (int k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = a(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (int k = 0; k <= j; ++k) a(j, k) -= f * e[k] + g * a(i, k);
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (int i = 0; i < n; ++i) {
    int l = i - 1;
    if (d[i] != 0.0) {
      for (int j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (int k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (int j = 0; j <= l; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal matrix (d, e), rotating the
// transform accumulated in `z` so its columns become eigenvectors of the
// original matrix. Returns false if an eigenvalue fails to converge.
bool QlImplicitShifts(std::vector<double>& d, std::vector<double>& e, int n,
                      std::vector<double>& z) {
  auto zc = [&](int i, int j) -> double& { return z[i * n + j]; };
  constexpr int kMaxIterations = 50;
  const double eps = std::numeric_limits<double>::epsilon();

  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= eps * dd) break;
      }
      if (m != l) {
        if (iter++ == kMaxIterations) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = Hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + SignLike(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i;
        for (i = m - 1; i >= l; --i) {
          double f = s * e[i];
          double b = c * e[i];
          r = Hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            f = zc(k, i + 1);
            zc(k, i + 1) = s * zc(k, i) + c * f;
            zc(k, i) = c * zc(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

}  // namespace

SymmetricEigenResult SymmetricEigen(const Matrix& a) {
  RESINFER_CHECK(a.rows() == a.cols());
  const int n = static_cast<int>(a.rows());
  RESINFER_CHECK(n > 0);

  // Symmetrize into double working storage.
  std::vector<double> z(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      z[static_cast<std::size_t>(i) * n + j] =
          0.5 * (static_cast<double>(a.At(i, j)) + a.At(j, i));
    }
  }

  std::vector<double> d(n, 0.0);
  std::vector<double> e(n, 0.0);
  if (n == 1) {
    SymmetricEigenResult res;
    res.eigenvalues = {z[0]};
    res.eigenvectors = Matrix::Identity(1);
    return res;
  }

  Tridiagonalize(z, n, d, e);
  RESINFER_CHECK_MSG(QlImplicitShifts(d, e, n, z),
                     "QL iteration failed to converge");

  // Sort eigenpairs in descending eigenvalue order.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return d[x] > d[y]; });

  SymmetricEigenResult res;
  res.eigenvalues.resize(n);
  res.eigenvectors = Matrix(n, n);
  for (int r = 0; r < n; ++r) {
    int src = order[r];
    res.eigenvalues[r] = d[src];
    float* row = res.eigenvectors.Row(r);
    // Eigenvectors are columns of z.
    for (int k = 0; k < n; ++k)
      row[k] = static_cast<float>(z[static_cast<std::size_t>(k) * n + src]);
  }
  return res;
}

}  // namespace resinfer::linalg

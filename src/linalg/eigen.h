// Symmetric eigendecomposition.
//
// Implements Householder tridiagonalization followed by the implicit-shift
// QL iteration, in double precision. This is the standard dense-symmetric
// path (LAPACK's xSYEV family uses the same structure); it is O(d^3) once,
// which is what PCA and OPQ training need for d up to ~1000.
#ifndef RESINFER_LINALG_EIGEN_H_
#define RESINFER_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace resinfer::linalg {

struct SymmetricEigenResult {
  // Eigenvalues in descending order.
  std::vector<double> eigenvalues;
  // Row i is the unit eigenvector paired with eigenvalues[i].
  Matrix eigenvectors;
};

// Decomposes a symmetric matrix. Symmetry is enforced by averaging
// a[i][j] and a[j][i]; callers should still pass symmetric input.
// Aborts if the QL iteration fails to converge (pathological input).
SymmetricEigenResult SymmetricEigen(const Matrix& a);

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_EIGEN_H_

#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"
#include "util/parallel.h"

namespace resinfer::linalg {

Matrix::Matrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  RESINFER_CHECK(rows >= 0 && cols >= 0);
  data_.Resize(static_cast<std::size_t>(rows) * cols);
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0f;
  return m;
}

Matrix Matrix::View(const float* data, int64_t rows, int64_t cols) {
  RESINFER_CHECK(rows >= 0 && cols >= 0 &&
                 (rows * cols == 0 || data != nullptr));
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.view_ = data;
  return m;
}

Matrix Matrix::Clone() const {
  Matrix copy(rows_, cols_);
  std::copy(data(), data() + size(), copy.data());
  return copy;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    const float* row = Row(r);
    for (int64_t c = 0; c < cols_; ++c) t.At(c, r) = row[c];
  }
  return t;
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  RESINFER_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double acc = 0.0;
  for (int64_t i = 0; i < size(); ++i) {
    double d = static_cast<double>(data()[i]) - other.data()[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  RESINFER_CHECK(a.cols() == b.rows());
  // Inner products against rows of b^T keep both operands contiguous.
  return MatMulBt(a, b.Transposed());
}

Matrix MatMulBt(const Matrix& a, const Matrix& b) {
  RESINFER_CHECK(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  const int64_t k = a.cols();
  ParallelFor(a.rows(), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* arow = a.Row(i);
      float* crow = c.Row(i);
      for (int64_t j = 0; j < b.rows(); ++j) {
        crow[j] = simd::InnerProduct(arow, b.Row(j),
                                     static_cast<std::size_t>(k));
      }
    }
  });
  return c;
}

void MatVec(const Matrix& a, const float* x, float* out) {
  for (int64_t i = 0; i < a.rows(); ++i) {
    out[i] =
        simd::InnerProduct(a.Row(i), x, static_cast<std::size_t>(a.cols()));
  }
}

double MaxAbsDifference(const Matrix& a, const Matrix& b) {
  RESINFER_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double max_abs = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    max_abs = std::max(
        max_abs, std::abs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return max_abs;
}

}  // namespace resinfer::linalg

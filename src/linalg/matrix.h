// Dense row-major float matrix with cache-line-aligned storage.
//
// This is the workhorse container for datasets (n x d), rotation matrices
// (d x d) and codebooks. It is move-only; use Clone() for the rare explicit
// copy. Heavy numerics (eigen/SVD) convert to double internally — see
// eigen.h / svd.h.
#ifndef RESINFER_LINALG_MATRIX_H_
#define RESINFER_LINALG_MATRIX_H_

#include <cstdint>

#include "util/aligned_buffer.h"
#include "util/macros.h"

namespace resinfer::linalg {

class Matrix {
 public:
  Matrix() = default;
  // Zero-initialized rows x cols matrix.
  Matrix(int64_t rows, int64_t cols);

  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
  Matrix(const Matrix&) = delete;
  Matrix& operator=(const Matrix&) = delete;

  static Matrix Identity(int64_t n);

  // Non-owning view over external row-major storage (e.g. the float
  // payload of an mmap'd matrix file — the persist v3 cold tier). The
  // caller keeps `data` alive and unchanged for the view's lifetime;
  // mutating accessors are off-limits on a view (debug-checked).
  static Matrix View(const float* data, int64_t rows, int64_t cols);
  // True when this matrix borrows its storage instead of owning it.
  bool is_view() const { return view_ != nullptr; }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  float* Row(int64_t r) {
    RESINFER_DCHECK(r >= 0 && r < rows_ && !is_view());
    return data_.data() + r * cols_;
  }
  const float* Row(int64_t r) const {
    RESINFER_DCHECK(r >= 0 && r < rows_);
    return data() + r * cols_;
  }

  float& At(int64_t r, int64_t c) {
    RESINFER_DCHECK(c >= 0 && c < cols_);
    return Row(r)[c];
  }
  float At(int64_t r, int64_t c) const {
    RESINFER_DCHECK(c >= 0 && c < cols_);
    return Row(r)[c];
  }

  float* data() {
    RESINFER_DCHECK(!is_view());
    return data_.data();
  }
  const float* data() const {
    return view_ != nullptr ? view_ : data_.data();
  }
  int64_t size() const { return rows_ * cols_; }

  // Drops trailing rows (new_rows <= rows()); the storage is retained, so
  // this is O(1) — vec_io uses it after skipping non-finite rows.
  void ShrinkRows(int64_t new_rows) {
    RESINFER_CHECK(new_rows >= 0 && new_rows <= rows_);
    rows_ = new_rows;
  }

  Matrix Clone() const;
  Matrix Transposed() const;

  // Frobenius norm of (this - other). Requires same shape.
  double FrobeniusDistance(const Matrix& other) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  AlignedBuffer<float> data_;
  // Borrowed storage for View() matrices; null for owning ones. The const
  // read path (data() const / Row const) prefers it, so every consumer of
  // a base matrix works identically over owned and mapped storage.
  const float* view_ = nullptr;
};

// c = a * b. Shapes must agree ((m x k) * (k x n) -> m x n).
Matrix MatMul(const Matrix& a, const Matrix& b);

// c = a * b^T, the common case for applying row-stored rotations to
// row-stored data without materializing a transpose.
Matrix MatMulBt(const Matrix& a, const Matrix& b);

// out = a * x for a (m x n) matrix and n-vector x; out has m entries.
void MatVec(const Matrix& a, const float* x, float* out);

// Max |a[i,j] - b[i,j]|; shapes must agree.
double MaxAbsDifference(const Matrix& a, const Matrix& b);

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_MATRIX_H_

#include "linalg/orthogonal.h"

#include <cmath>
#include <vector>

#include "util/macros.h"

namespace resinfer::linalg {

Matrix RandomOrthonormal(int64_t d, Rng& rng) {
  RESINFER_CHECK(d > 0);
  // Work in double; rows of `rows` are orthonormalized in place.
  std::vector<std::vector<double>> rows(d, std::vector<double>(d));
  for (auto& row : rows)
    for (auto& x : row) x = rng.Gaussian();

  for (int64_t i = 0; i < d; ++i) {
    // Two MGS passes against all previous rows.
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t j = 0; j < i; ++j) {
        double dot = 0.0;
        for (int64_t k = 0; k < d; ++k) dot += rows[i][k] * rows[j][k];
        for (int64_t k = 0; k < d; ++k) rows[i][k] -= dot * rows[j][k];
      }
    }
    double norm_sqr = 0.0;
    for (double x : rows[i]) norm_sqr += x * x;
    // A fresh Gaussian row being (numerically) inside the span of < d
    // previous rows has probability ~0; regenerate if it happens.
    while (norm_sqr < 1e-12) {
      for (auto& x : rows[i]) x = rng.Gaussian();
      for (int64_t j = 0; j < i; ++j) {
        double dot = 0.0;
        for (int64_t k = 0; k < d; ++k) dot += rows[i][k] * rows[j][k];
        for (int64_t k = 0; k < d; ++k) rows[i][k] -= dot * rows[j][k];
      }
      norm_sqr = 0.0;
      for (double x : rows[i]) norm_sqr += x * x;
    }
    double inv = 1.0 / std::sqrt(norm_sqr);
    for (double& x : rows[i]) x *= inv;
  }

  Matrix r(d, d);
  for (int64_t i = 0; i < d; ++i)
    for (int64_t j = 0; j < d; ++j)
      r.At(i, j) = static_cast<float>(rows[i][j]);
  return r;
}

double OrthonormalityError(const Matrix& r) {
  RESINFER_CHECK(r.rows() == r.cols());
  const int64_t d = r.rows();
  double worst = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = i; j < d; ++j) {
      double dot = 0.0;
      for (int64_t k = 0; k < d; ++k)
        dot += static_cast<double>(r.At(i, k)) * r.At(j, k);
      double expected = i == j ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(dot - expected));
    }
  }
  return worst;
}

}  // namespace resinfer::linalg

// Random orthonormal (rotation) matrices.
//
// ADSampling's random projection is "sample d coordinates of a randomly
// rotated vector"; the rotation must be orthonormal so that distances are
// preserved exactly when all D dimensions are used. We draw a Gaussian
// matrix and orthonormalize it (modified Gram–Schmidt with a second
// re-orthogonalization pass), which yields a Haar-distributed rotation up to
// column signs — sufficient for the JL-style bounds used here.
#ifndef RESINFER_LINALG_ORTHOGONAL_H_
#define RESINFER_LINALG_ORTHOGONAL_H_

#include "linalg/matrix.h"
#include "util/rng.h"

namespace resinfer::linalg {

// Returns a d x d matrix whose ROWS are orthonormal, usable directly as a
// rotation y = R x via MatVec.
Matrix RandomOrthonormal(int64_t d, Rng& rng);

// Max deviation of R R^T from identity (diagnostic / test helper).
double OrthonormalityError(const Matrix& r);

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_ORTHOGONAL_H_

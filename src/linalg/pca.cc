#include "linalg/pca.h"

#include <algorithm>
#include <vector>

#include "linalg/covariance.h"
#include "linalg/eigen.h"
#include "util/macros.h"
#include "util/parallel.h"

namespace resinfer::linalg {

PcaModel PcaModel::Fit(const float* data, int64_t n, int64_t d,
                       const Options& options) {
  RESINFER_CHECK(n >= 2 && d >= 1);

  // Optionally subsample rows for the covariance estimate.
  std::vector<float> sampled;
  const float* train_data = data;
  int64_t train_n = n;
  if (n > options.max_train_rows) {
    Rng rng(options.sample_seed);
    std::vector<int64_t> pick =
        rng.SampleWithoutReplacement(n, options.max_train_rows);
    sampled.resize(static_cast<std::size_t>(pick.size()) * d);
    for (std::size_t i = 0; i < pick.size(); ++i) {
      const float* src = data + pick[i] * d;
      std::copy(src, src + d, sampled.data() + i * d);
    }
    train_data = sampled.data();
    train_n = static_cast<int64_t>(pick.size());
  }

  MeanCovariance mc = ComputeMeanCovariance(train_data, train_n, d);
  SymmetricEigenResult eig = SymmetricEigen(mc.covariance);

  PcaModel model;
  model.dim_ = d;
  if (options.center) {
    model.mean_ = std::move(mc.mean);
  } else {
    model.mean_.assign(d, 0.0f);
  }
  model.rotation_ = std::move(eig.eigenvectors);
  model.variances_.resize(d);
  for (int64_t i = 0; i < d; ++i) {
    model.variances_[i] =
        static_cast<float>(std::max(0.0, eig.eigenvalues[i]));
  }
  model.suffix_variance_.assign(d + 1, 0.0f);
  // Suffix sums accumulated in double to keep tail values exact.
  double acc = 0.0;
  for (int64_t i = d - 1; i >= 0; --i) {
    acc += model.variances_[i];
    model.suffix_variance_[i] = static_cast<float>(acc);
  }
  return model;
}

PcaModel PcaModel::FromComponents(std::vector<float> mean, Matrix rotation,
                                  std::vector<float> variances) {
  const int64_t d = rotation.rows();
  RESINFER_CHECK(rotation.cols() == d);
  RESINFER_CHECK(static_cast<int64_t>(mean.size()) == d);
  RESINFER_CHECK(static_cast<int64_t>(variances.size()) == d);
  PcaModel model;
  model.dim_ = d;
  model.mean_ = std::move(mean);
  model.rotation_ = std::move(rotation);
  model.variances_ = std::move(variances);
  model.suffix_variance_.assign(d + 1, 0.0f);
  double acc = 0.0;
  for (int64_t i = d - 1; i >= 0; --i) {
    acc += model.variances_[i];
    model.suffix_variance_[i] = static_cast<float>(acc);
  }
  return model;
}

void PcaModel::Transform(const float* x, float* out) const {
  RESINFER_DCHECK(fitted());
  std::vector<float> centered(dim_);
  for (int64_t i = 0; i < dim_; ++i) centered[i] = x[i] - mean_[i];
  MatVec(rotation_, centered.data(), out);
}

Matrix PcaModel::TransformBatch(const float* data, int64_t n) const {
  RESINFER_CHECK(fitted());
  Matrix out(n, dim_);
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    std::vector<float> centered(dim_);
    for (int64_t r = begin; r < end; ++r) {
      const float* src = data + r * dim_;
      for (int64_t i = 0; i < dim_; ++i) centered[i] = src[i] - mean_[i];
      MatVec(rotation_, centered.data(), out.Row(r));
    }
  });
  return out;
}

double PcaModel::ExplainedVarianceRatio(int64_t k) const {
  RESINFER_CHECK(fitted());
  k = std::clamp<int64_t>(k, 0, dim_);
  double total = suffix_variance_[0];
  if (total <= 0.0) return 1.0;
  return (total - suffix_variance_[k]) / total;
}

}  // namespace resinfer::linalg

// PCA rotation model (§IV of the paper).
//
// Theorem 1: among all orthogonal projections, the PCA basis maximizes the
// variance captured by the first d coordinates and therefore minimizes the
// residual variance that drives the estimation error of the decomposed
// distance (Equation 3). This model owns:
//   * the centering vector mu,
//   * the full D x D rotation R (rows = principal axes, descending variance),
//   * per-dimension variances (eigenvalues) and their suffix sums, which the
//     residual error model (core/error_model.h) turns into query-specific
//     error bounds.
//
// Transform(x) = R (x - mu). Centering and rotation both preserve pairwise
// Euclidean distances, so exact distances can be computed in the rotated
// space.
#ifndef RESINFER_LINALG_PCA_H_
#define RESINFER_LINALG_PCA_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace resinfer::linalg {

struct PcaOptions {
  // Cap on rows used to estimate the covariance; mirroring the paper's
  // practice of sampling 1M points on the large datasets (§VII Exp-1).
  int64_t max_train_rows = 100000;
  uint64_t sample_seed = 1234;
  // When true, skip centering (mu = 0). The distance decomposition is
  // valid either way; centering matches the paper's zero-mean assumption.
  bool center = true;
};

class PcaModel {
 public:
  using Options = PcaOptions;

  PcaModel() = default;

  // Fits mean + rotation on `n` rows of dimension `d`.
  static PcaModel Fit(const float* data, int64_t n, int64_t d,
                      const Options& options = PcaOptions());

  // Rebuilds a model from persisted components (persist/persist.h); suffix
  // variance sums are recomputed. rotation must be d x d, mean/variances of
  // length d.
  static PcaModel FromComponents(std::vector<float> mean, Matrix rotation,
                                 std::vector<float> variances);

  bool fitted() const { return dim_ > 0; }
  int64_t dim() const { return dim_; }

  // Rows are principal axes, sorted by descending variance.
  const Matrix& rotation() const { return rotation_; }
  const std::vector<float>& mean() const { return mean_; }

  // Per-dimension variance in the rotated basis (eigenvalues, descending,
  // clamped at >= 0).
  const std::vector<float>& variances() const { return variances_; }

  // suffix_variance()[k] = sum_{i >= k} variances()[i]; length dim()+1 with
  // suffix_variance()[dim()] == 0. Used for residual error bounds.
  const std::vector<float>& suffix_variance() const {
    return suffix_variance_;
  }

  // out = R (x - mu); out must hold dim() floats. x is not modified.
  void Transform(const float* x, float* out) const;

  // Row-parallel batch transform of an (n x dim) block into a new matrix.
  Matrix TransformBatch(const float* data, int64_t n) const;

  // Fraction of total variance captured by the first k dimensions.
  double ExplainedVarianceRatio(int64_t k) const;

 private:
  int64_t dim_ = 0;
  std::vector<float> mean_;
  Matrix rotation_;
  std::vector<float> variances_;
  std::vector<float> suffix_variance_;
};

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_PCA_H_

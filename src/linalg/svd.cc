#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.h"
#include "linalg/vector_ops.h"
#include "util/macros.h"
#include "util/rng.h"

namespace resinfer::linalg {

namespace {

// Gram–Schmidt completion: fills column `col` of u (m x n, row-major float)
// with a unit vector orthogonal to all columns in `fixed_cols`.
void CompleteOrthonormalColumn(Matrix& u, int64_t col,
                               const std::vector<int64_t>& fixed_cols,
                               Rng& rng) {
  const int64_t m = u.rows();
  std::vector<double> cand(m);
  for (int attempt = 0; attempt < 32; ++attempt) {
    for (int64_t i = 0; i < m; ++i) cand[i] = rng.Gaussian();
    // Two orthogonalization passes ("twice is enough").
    for (int pass = 0; pass < 2; ++pass) {
      for (int64_t other : fixed_cols) {
        double dot = 0.0;
        for (int64_t i = 0; i < m; ++i) dot += cand[i] * u.At(i, other);
        for (int64_t i = 0; i < m; ++i) cand[i] -= dot * u.At(i, other);
      }
    }
    double norm_sqr = 0.0;
    for (double x : cand) norm_sqr += x * x;
    if (norm_sqr > 1e-12) {
      double inv = 1.0 / std::sqrt(norm_sqr);
      for (int64_t i = 0; i < m; ++i)
        u.At(i, col) = static_cast<float>(cand[i] * inv);
      return;
    }
  }
  RESINFER_CHECK_MSG(false, "failed to complete orthonormal basis");
}

}  // namespace

SvdResult Svd(const Matrix& a) {
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  RESINFER_CHECK(m >= n && n > 0);

  // B = A^T A in double, folded into a float Matrix for the eigensolver
  // (which re-promotes to double internally; the float round-trip costs
  // ~1e-7 relative error on singular values, fine for our consumers).
  Matrix b(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      double acc = 0.0;
      for (int64_t r = 0; r < m; ++r)
        acc += static_cast<double>(a.At(r, i)) * a.At(r, j);
      b.At(i, j) = static_cast<float>(acc);
      b.At(j, i) = static_cast<float>(acc);
    }
  }

  SymmetricEigenResult eig = SymmetricEigen(b);

  SvdResult res;
  res.singular_values.resize(n);
  res.v = Matrix(n, n);
  for (int64_t j = 0; j < n; ++j) {
    res.singular_values[j] = std::sqrt(std::max(0.0, eig.eigenvalues[j]));
    // Eigenvector rows become V columns.
    for (int64_t i = 0; i < n; ++i) res.v.At(i, j) = eig.eigenvectors.At(j, i);
  }

  // U columns: u_j = A v_j / s_j when s_j is well above noise. The noise
  // floor of singular values obtained through a float-precision A^T A is
  // ~sqrt(float eps) ~ 3e-4 relative to s_0; anything below that is rank
  // noise and its U column is produced by basis completion instead.
  res.u = Matrix(m, n);
  const double tol =
      res.singular_values.empty() ? 0.0 : res.singular_values[0] * 1e-3;
  std::vector<int64_t> good_cols;
  std::vector<int64_t> degenerate_cols;
  std::vector<double> av(m);
  for (int64_t j = 0; j < n; ++j) {
    if (res.singular_values[j] <= tol) {
      degenerate_cols.push_back(j);
      continue;
    }
    for (int64_t r = 0; r < m; ++r) {
      double acc = 0.0;
      const float* arow = a.Row(r);
      for (int64_t c = 0; c < n; ++c)
        acc += static_cast<double>(arow[c]) * res.v.At(c, j);
      av[r] = acc;
    }
    double inv = 1.0 / res.singular_values[j];
    for (int64_t r = 0; r < m; ++r)
      res.u.At(r, j) = static_cast<float>(av[r] * inv);
    good_cols.push_back(j);
  }
  Rng rng(/*seed=*/0x5fd5u);
  for (int64_t j : degenerate_cols) {
    CompleteOrthonormalColumn(res.u, j, good_cols, rng);
    good_cols.push_back(j);
  }
  return res;
}

Matrix ProcrustesRotation(const Matrix& m) {
  RESINFER_CHECK(m.rows() == m.cols());
  SvdResult svd = Svd(m);
  // R = U V^T; MatMulBt(U, V) computes U * V^T directly.
  return MatMulBt(svd.u, svd.v);
}

}  // namespace resinfer::linalg

// Singular value decomposition, A = U * diag(s) * V^T, for square or tall
// matrices (rows >= cols).
//
// Computed through the symmetric eigendecomposition of A^T A: this costs one
// O(n^3) eigensolve plus an O(m n^2) back-multiplication, which is exactly
// what the OPQ rotation update (orthogonal Procrustes) needs. Left singular
// vectors for (near-)zero singular values are completed to an orthonormal
// basis so that U is always fully orthonormal — Procrustes requires a proper
// rotation even for rank-deficient correlation matrices.
#ifndef RESINFER_LINALG_SVD_H_
#define RESINFER_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"

namespace resinfer::linalg {

struct SvdResult {
  // m x n; column j is the left singular vector for singular_values[j].
  Matrix u;
  // Descending, length n, clamped at >= 0.
  std::vector<double> singular_values;
  // n x n; column j is the right singular vector for singular_values[j].
  Matrix v;
};

// Requires a.rows() >= a.cols().
SvdResult Svd(const Matrix& a);

// Orthogonal Procrustes: the orthogonal matrix R = U V^T (n x n) closest to
// M in the Frobenius sense, i.e. argmax_R trace(R^T M) over orthogonal R.
// Used by OPQ's alternating rotation update. Requires square input.
Matrix ProcrustesRotation(const Matrix& m);

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_SVD_H_

#include "linalg/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"
#include "util/macros.h"

namespace resinfer::linalg {

void Subtract(const float* a, const float* b, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void Add(const float* a, const float* b, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void Scale(float* x, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void NormalizeL2(float* x, std::size_t n) {
  float norm_sqr = simd::Norm2Sqr(x, n);
  if (norm_sqr <= 0.0f) return;
  Scale(x, 1.0f / std::sqrt(norm_sqr), n);
}

double DotDouble(const float* a, const float* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

MeanVar ComputeMeanVar(const std::vector<double>& values) {
  MeanVar mv;
  if (values.empty()) return mv;
  double sum = 0.0;
  for (double v : values) sum += v;
  mv.mean = sum / values.size();
  double ss = 0.0;
  for (double v : values) {
    double d = v - mv.mean;
    ss += d * d;
  }
  mv.variance = ss / values.size();
  return mv;
}

double EmpiricalQuantile(std::vector<double> values, double q) {
  RESINFER_CHECK(!values.empty());
  RESINFER_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * (values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - lo;
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace resinfer::linalg

// Small dense-vector helpers layered over the SIMD kernels.
#ifndef RESINFER_LINALG_VECTOR_OPS_H_
#define RESINFER_LINALG_VECTOR_OPS_H_

#include <cstddef>
#include <vector>

namespace resinfer::linalg {

// out[i] = a[i] - b[i]
void Subtract(const float* a, const float* b, float* out, std::size_t n);

// out[i] = a[i] + b[i]
void Add(const float* a, const float* b, float* out, std::size_t n);

// x[i] *= s
void Scale(float* x, float s, std::size_t n);

// Normalizes x to unit L2 norm in place; leaves zero vectors untouched.
void NormalizeL2(float* x, std::size_t n);

// Double-accumulated dot product, for training code where float drift across
// hundreds of thousands of samples matters.
double DotDouble(const float* a, const float* b, std::size_t n);

// Mean and (population) variance of a scalar sample.
struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
};
MeanVar ComputeMeanVar(const std::vector<double>& values);

// Empirical quantile (linear interpolation) of a sample, q in [0, 1].
// The input is copied and sorted. Requires a non-empty sample.
double EmpiricalQuantile(std::vector<double> values, double q);

}  // namespace resinfer::linalg

#endif  // RESINFER_LINALG_VECTOR_OPS_H_

#include "persist/persist.h"

#include <vector>

#include "util/binary_io.h"

namespace resinfer::persist {

namespace {

constexpr uint32_t kVersion = 1;
// Quantizer/artifact format v2 records the code layout (bits + packing,
// quant/code_layout.h) so packed 4-bit codes round-trip; v1 files predate
// nbits-honest code sizes and load as the byte-per-code layout they were
// written with.
constexpr uint32_t kVersionCodeLayout = 2;
// IVF v2 switched bucket storage to the CSR layout (offsets + flat ids);
// v1 nested-bucket files still load.
constexpr uint32_t kIvfVersionCsr = 2;
// IVF v3 appends an optional code-resident section: the bucket-permuted
// quant::CodeStore (tag + layout + raw records). v1/v2 files still load —
// they simply come back without attached codes.
constexpr uint32_t kIvfVersionCodes = 3;
// IVF v4 adds the code section's packing byte (packed 4-bit vs
// byte-per-code records). v3 sections load as byte-per-code.
constexpr uint32_t kIvfVersionPacked = 4;
constexpr char kMatrixMagic[8] = {'R', 'I', 'M', 'A', 'T', 'R', 'X', '1'};
constexpr char kPcaMagic[8] = {'R', 'I', 'P', 'C', 'A', 'M', 'D', '1'};
constexpr char kPqMagic[8] = {'R', 'I', 'P', 'Q', 'C', 'B', 'K', '1'};
constexpr char kOpqMagic[8] = {'R', 'I', 'O', 'P', 'Q', 'M', 'D', '1'};
constexpr char kHnswMagic[8] = {'R', 'I', 'H', 'N', 'S', 'W', 'G', '1'};
constexpr char kIvfMagic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
constexpr char kDdcPcaMagic[8] = {'R', 'I', 'D', 'P', 'C', 'A', 'A', '1'};
constexpr char kDdcOpqMagic[8] = {'R', 'I', 'D', 'O', 'P', 'Q', 'A', '1'};
constexpr char kRqMagic[8] = {'R', 'I', 'R', 'Q', 'C', 'B', 'K', '1'};
constexpr char kSqMagic[8] = {'R', 'I', 'S', 'Q', 'C', 'B', 'K', '1'};
constexpr char kCorrectorMagic[8] = {'R', 'I', 'L', 'I', 'N', 'C', 'R', '1'};
constexpr char kDdcRqCascadeMagic[8] = {'R', 'I', 'D', 'R', 'Q', 'C', 'A', '1'};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Reads a magic/version header whose version may be any of [1,
// max_version] — the hand-versioned counterpart of ExpectHeader for
// formats with older revisions still on disk.
bool ReadVersionedHeader(BinaryReader& reader, const char magic[8],
                         uint32_t max_version, uint32_t* version) {
  char got[8] = {};
  reader.ReadBytes(got, 8);
  return reader.Read(version) && std::memcmp(got, magic, 8) == 0 &&
         *version >= 1 && *version <= max_version;
}

void WriteCodeLayout(BinaryWriter& writer, const quant::CodeLayout& layout) {
  writer.Write<int32_t>(layout.bits);
  writer.Write<uint8_t>(static_cast<uint8_t>(layout.packing));
}

bool ReadCodeLayout(BinaryReader& reader, quant::CodeLayout* out) {
  int32_t bits = 0;
  uint8_t packing = 0;
  if (!reader.Read(&bits) || !reader.Read(&packing)) return false;
  if (bits < 1 || bits > 8 || packing > 1) return false;
  if (packing == static_cast<uint8_t>(quant::CodePacking::kPacked4) &&
      bits > 4) {
    return false;
  }
  out->bits = bits;
  out->packing = static_cast<quant::CodePacking>(packing);
  return true;
}

bool FinishWrite(BinaryWriter& writer, const std::string& path,
                 std::string* error) {
  // Close explicitly so a failed buffered flush is reported here instead
  // of being swallowed by the destructor.
  if (!writer.Close()) return Fail(error, path + ": write failed");
  return true;
}

void WriteMatrixPayload(BinaryWriter& writer, const linalg::Matrix& m) {
  writer.Write(m.rows());
  writer.Write(m.cols());
  writer.WriteFloats(m.data(), m.size());
}

bool ReadMatrixPayload(BinaryReader& reader, linalg::Matrix* out) {
  int64_t rows = 0, cols = 0;
  if (!reader.Read(&rows) || !reader.Read(&cols)) return false;
  if (rows < 0 || cols < 0 || rows * cols > reader.max_elements()) {
    return false;
  }
  *out = linalg::Matrix(rows, cols);
  return reader.ReadFloats(out->data(), out->size());
}

void WriteCorrectorPayload(BinaryWriter& writer,
                           const core::LinearCorrector& corrector) {
  writer.Write(corrector.w_approx());
  writer.Write(corrector.w_tau());
  writer.Write(corrector.w_extra());
  writer.Write(corrector.bias());
  writer.Write<uint8_t>(corrector.trained() ? 1 : 0);
}

bool ReadCorrectorPayload(BinaryReader& reader,
                          core::LinearCorrector* out) {
  float w_approx = 0, w_tau = 0, w_extra = 0, bias = 0;
  uint8_t trained = 0;
  if (!reader.Read(&w_approx) || !reader.Read(&w_tau) ||
      !reader.Read(&w_extra) || !reader.Read(&bias) ||
      !reader.Read(&trained)) {
    return false;
  }
  *out = core::LinearCorrector::FromWeights(w_approx, w_tau, w_extra, bias,
                                            trained != 0);
  return true;
}

}  // namespace

bool SaveMatrix(const std::string& path, const linalg::Matrix& m,
                std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kMatrixMagic, kVersion);
  WriteMatrixPayload(writer, m);
  return FinishWrite(writer, path, error);
}

bool LoadMatrix(const std::string& path, linalg::Matrix* out,
                std::string* error) {
  BinaryReader reader(path);
  if (!reader.ExpectHeader(kMatrixMagic, kVersion))
    return Fail(error, path + ": bad matrix header");
  if (!ReadMatrixPayload(reader, out))
    return Fail(error, path + ": truncated matrix payload");
  return true;
}

bool SavePca(const std::string& path, const linalg::PcaModel& model,
             std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kPcaMagic, kVersion);
  writer.WriteVector(model.mean());
  WriteMatrixPayload(writer, model.rotation());
  writer.WriteVector(model.variances());
  return FinishWrite(writer, path, error);
}

bool LoadPca(const std::string& path, linalg::PcaModel* out,
             std::string* error) {
  BinaryReader reader(path);
  if (!reader.ExpectHeader(kPcaMagic, kVersion))
    return Fail(error, path + ": bad pca header");
  std::vector<float> mean, variances;
  linalg::Matrix rotation;
  if (!reader.ReadVector(&mean) || !ReadMatrixPayload(reader, &rotation) ||
      !reader.ReadVector(&variances)) {
    return Fail(error, path + ": truncated pca payload");
  }
  if (rotation.rows() != rotation.cols() ||
      static_cast<int64_t>(mean.size()) != rotation.rows() ||
      static_cast<int64_t>(variances.size()) != rotation.rows()) {
    return Fail(error, path + ": inconsistent pca shapes");
  }
  *out = linalg::PcaModel::FromComponents(std::move(mean),
                                          std::move(rotation),
                                          std::move(variances));
  return true;
}

bool SavePq(const std::string& path, const quant::PqCodebook& pq,
            std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kPqMagic, kVersionCodeLayout);
  writer.Write<int32_t>(pq.num_subspaces());
  WriteCodeLayout(writer, pq.layout());
  for (int s = 0; s < pq.num_subspaces(); ++s) {
    WriteMatrixPayload(writer, pq.centroids(s));
  }
  return FinishWrite(writer, path, error);
}

bool LoadPq(const std::string& path, quant::PqCodebook* out,
            std::string* error) {
  BinaryReader reader(path);
  uint32_t version = 0;
  if (!ReadVersionedHeader(reader, kPqMagic, kVersionCodeLayout, &version))
    return Fail(error, path + ": bad pq header");
  int32_t m = 0;
  if (!reader.Read(&m) || m <= 0 || m > 4096)
    return Fail(error, path + ": bad subspace count");
  quant::CodeLayout layout;  // v1 files are byte-per-code
  if (version >= kVersionCodeLayout && !ReadCodeLayout(reader, &layout))
    return Fail(error, path + ": bad pq code layout");
  if (layout.packed() && m > 256)
    return Fail(error, path + ": packed layout requires m <= 256");
  std::vector<linalg::Matrix> codebooks;
  codebooks.reserve(m);
  for (int32_t s = 0; s < m; ++s) {
    linalg::Matrix table;
    if (!ReadMatrixPayload(reader, &table))
      return Fail(error, path + ": truncated pq payload");
    codebooks.push_back(std::move(table));
  }
  for (const auto& table : codebooks) {
    if (table.rows() != codebooks[0].rows() ||
        table.cols() != codebooks[0].cols() || table.rows() > 256) {
      return Fail(error, path + ": inconsistent pq codebook shapes");
    }
  }
  if (codebooks[0].rows() > (int64_t{1} << layout.bits))
    return Fail(error, path + ": pq codebook larger than layout bits");
  *out = quant::PqCodebook::FromCodebooks(std::move(codebooks), layout);
  return true;
}

bool SaveOpq(const std::string& path, const quant::OpqModel& model,
             std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kOpqMagic, kVersionCodeLayout);
  WriteMatrixPayload(writer, model.rotation());
  const quant::PqCodebook& pq = model.codebook();
  writer.Write<int32_t>(pq.num_subspaces());
  WriteCodeLayout(writer, pq.layout());
  for (int s = 0; s < pq.num_subspaces(); ++s) {
    WriteMatrixPayload(writer, pq.centroids(s));
  }
  return FinishWrite(writer, path, error);
}

bool LoadOpq(const std::string& path, quant::OpqModel* out,
             std::string* error) {
  BinaryReader reader(path);
  uint32_t version = 0;
  if (!ReadVersionedHeader(reader, kOpqMagic, kVersionCodeLayout, &version))
    return Fail(error, path + ": bad opq header");
  linalg::Matrix rotation;
  if (!ReadMatrixPayload(reader, &rotation))
    return Fail(error, path + ": truncated opq rotation");
  int32_t m = 0;
  if (!reader.Read(&m) || m <= 0 || m > 4096)
    return Fail(error, path + ": bad subspace count");
  quant::CodeLayout layout;  // v1 files are byte-per-code
  if (version >= kVersionCodeLayout && !ReadCodeLayout(reader, &layout))
    return Fail(error, path + ": bad opq code layout");
  if (layout.packed() && m > 256)
    return Fail(error, path + ": packed layout requires m <= 256");
  std::vector<linalg::Matrix> codebooks;
  for (int32_t s = 0; s < m; ++s) {
    linalg::Matrix table;
    if (!ReadMatrixPayload(reader, &table))
      return Fail(error, path + ": truncated opq codebooks");
    codebooks.push_back(std::move(table));
  }
  for (const auto& table : codebooks) {
    if (table.rows() != codebooks[0].rows() ||
        table.cols() != codebooks[0].cols() || table.rows() > 256) {
      return Fail(error, path + ": inconsistent opq codebook shapes");
    }
  }
  if (codebooks[0].rows() > (int64_t{1} << layout.bits))
    return Fail(error, path + ": opq codebook larger than layout bits");
  quant::PqCodebook pq =
      quant::PqCodebook::FromCodebooks(std::move(codebooks), layout);
  if (pq.dim() != rotation.rows() || rotation.rows() != rotation.cols())
    return Fail(error, path + ": opq rotation/codebook dim mismatch");
  *out = quant::OpqModel::FromComponents(std::move(rotation), std::move(pq));
  return true;
}

bool SaveRq(const std::string& path, const quant::RqCodebook& rq,
            std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kRqMagic, kVersionCodeLayout);
  writer.Write<int32_t>(rq.num_stages());
  WriteCodeLayout(writer, rq.layout());
  for (int s = 0; s < rq.num_stages(); ++s) {
    WriteMatrixPayload(writer, rq.centroids(s));
  }
  return FinishWrite(writer, path, error);
}

bool LoadRq(const std::string& path, quant::RqCodebook* out,
            std::string* error) {
  BinaryReader reader(path);
  uint32_t version = 0;
  if (!ReadVersionedHeader(reader, kRqMagic, kVersionCodeLayout, &version))
    return Fail(error, path + ": bad rq header");
  int32_t m = 0;
  if (!reader.Read(&m) || m <= 0 || m > 256)
    return Fail(error, path + ": bad rq stage count");
  quant::CodeLayout layout;  // v1 files are byte-per-code
  if (version >= kVersionCodeLayout && !ReadCodeLayout(reader, &layout))
    return Fail(error, path + ": bad rq code layout");
  std::vector<linalg::Matrix> codebooks;
  codebooks.reserve(m);
  for (int32_t s = 0; s < m; ++s) {
    linalg::Matrix table;
    if (!ReadMatrixPayload(reader, &table))
      return Fail(error, path + ": truncated rq payload");
    codebooks.push_back(std::move(table));
  }
  for (const auto& table : codebooks) {
    if (table.rows() != codebooks[0].rows() ||
        table.cols() != codebooks[0].cols() || table.rows() > 256 ||
        table.rows() <= 0) {
      return Fail(error, path + ": inconsistent rq codebook shapes");
    }
  }
  if (codebooks[0].rows() > (int64_t{1} << layout.bits))
    return Fail(error, path + ": rq codebook larger than layout bits");
  *out = quant::RqCodebook::FromCodebooks(std::move(codebooks), layout);
  return true;
}

bool SaveSq(const std::string& path, const quant::SqCodebook& sq,
            std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kSqMagic, kVersion);
  writer.WriteVector(sq.vmin());
  writer.WriteVector(sq.step());
  return FinishWrite(writer, path, error);
}

bool LoadSq(const std::string& path, quant::SqCodebook* out,
            std::string* error) {
  BinaryReader reader(path);
  if (!reader.ExpectHeader(kSqMagic, kVersion))
    return Fail(error, path + ": bad sq header");
  std::vector<float> vmin, step;
  if (!reader.ReadVector(&vmin) || !reader.ReadVector(&step))
    return Fail(error, path + ": truncated sq payload");
  if (vmin.empty() || vmin.size() != step.size())
    return Fail(error, path + ": inconsistent sq ranges");
  for (float s : step) {
    if (!(s >= 0.0f)) return Fail(error, path + ": negative sq step");
  }
  *out = quant::SqCodebook::FromParams(std::move(vmin), std::move(step));
  return true;
}

bool SaveCorrector(const std::string& path,
                   const core::LinearCorrector& corrector,
                   std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kCorrectorMagic, kVersion);
  WriteCorrectorPayload(writer, corrector);
  return FinishWrite(writer, path, error);
}

bool LoadCorrector(const std::string& path, core::LinearCorrector* out,
                   std::string* error) {
  BinaryReader reader(path);
  if (!reader.ExpectHeader(kCorrectorMagic, kVersion))
    return Fail(error, path + ": bad corrector header");
  if (!ReadCorrectorPayload(reader, out))
    return Fail(error, path + ": truncated corrector payload");
  return true;
}

bool SaveHnsw(const std::string& path, const index::HnswIndex& hnsw,
              std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kHnswMagic, kVersion);
  hnsw.SaveTo(writer);
  return FinishWrite(writer, path, error);
}

bool LoadHnsw(const std::string& path, index::HnswIndex* out,
              std::string* error) {
  BinaryReader reader(path);
  if (!reader.ExpectHeader(kHnswMagic, kVersion))
    return Fail(error, path + ": bad hnsw header");
  if (!index::HnswIndex::LoadFrom(reader, out))
    return Fail(error, path + ": corrupt hnsw payload");
  return true;
}

bool SaveIvf(const std::string& path, const index::IvfIndex& ivf,
             std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kIvfMagic, kIvfVersionPacked);
  writer.Write(ivf.size());
  WriteMatrixPayload(writer, ivf.centroids());
  writer.Write<int32_t>(ivf.num_clusters());
  writer.WriteVector(ivf.bucket_offsets());
  writer.WriteVector(ivf.ids());
  // Code section (v3): the bucket-permuted store, saved record-for-record
  // so loads re-attach without re-permuting; v4 adds the packing byte.
  writer.Write<uint8_t>(ivf.has_codes() ? 1 : 0);
  if (ivf.has_codes()) {
    const quant::CodeStore& codes = ivf.codes();
    writer.Write<int64_t>(codes.code_size());
    writer.Write<int32_t>(codes.num_sidecars());
    writer.Write<uint8_t>(static_cast<uint8_t>(codes.packing()));
    writer.WriteString(codes.tag());
    writer.WriteVector(codes.raw());
  }
  return FinishWrite(writer, path, error);
}

bool LoadIvf(const std::string& path, index::IvfIndex* out,
             std::string* error) {
  BinaryReader reader(path);
  // Versioned by hand: v4 adds the code section's packing byte, v3 the
  // code section itself, v2 the CSR layout; v1 is the legacy nested
  // buckets.
  uint32_t version = 0;
  if (!ReadVersionedHeader(reader, kIvfMagic, kIvfVersionPacked, &version))
    return Fail(error, path + ": bad ivf header");
  int64_t size = 0;
  linalg::Matrix centroids;
  int32_t clusters = 0;
  if (!reader.Read(&size) || !ReadMatrixPayload(reader, &centroids) ||
      !reader.Read(&clusters)) {
    return Fail(error, path + ": truncated ivf payload");
  }
  if (size <= 0 || clusters <= 0 || clusters != centroids.rows())
    return Fail(error, path + ": inconsistent ivf shapes");

  std::vector<int64_t> offsets;
  std::vector<int64_t> ids;
  if (version >= kIvfVersionCsr) {
    if (!reader.ReadVector(&offsets) || !reader.ReadVector(&ids))
      return Fail(error, path + ": truncated ivf buckets");
  } else {
    offsets.reserve(clusters + 1);
    offsets.push_back(0);
    for (int32_t b = 0; b < clusters; ++b) {
      std::vector<int64_t> bucket;
      if (!reader.ReadVector(&bucket))
        return Fail(error, path + ": truncated ivf buckets");
      ids.insert(ids.end(), bucket.begin(), bucket.end());
      offsets.push_back(static_cast<int64_t>(ids.size()));
    }
  }
  // Shared with FromCsr so a corrupt file fails here recoverably instead of
  // tripping the constructor's CHECK.
  std::string why;
  if (!index::IvfIndex::ValidateCsr(size, clusters, offsets, ids, &why))
    return Fail(error, path + ": " + why);
  if (static_cast<int64_t>(ids.size()) != size)
    return Fail(error, path + ": buckets do not partition the base");

  // Code section (v3 onward, optional; v4 adds the packing byte).
  quant::CodeStore codes;
  bool has_codes = false;
  if (version >= kIvfVersionCodes) {
    uint8_t flag = 0;
    if (!reader.Read(&flag))
      return Fail(error, path + ": truncated ivf code flag");
    if (flag != 0) {
      int64_t code_size = 0;
      int32_t num_sidecars = 0;
      uint8_t packing = 0;  // v3 stores are byte-per-code
      std::string tag;
      std::vector<uint8_t> data;
      if (!reader.Read(&code_size) || !reader.Read(&num_sidecars) ||
          (version >= kIvfVersionPacked && !reader.Read(&packing)) ||
          !reader.ReadString(&tag) || !reader.ReadVector(&data)) {
        return Fail(error, path + ": truncated ivf code section");
      }
      if (packing > 1)
        return Fail(error, path + ": bad ivf code packing");
      // The packing byte and the tag's layout marker must agree, or a
      // packed store could tag-match a byte-per-code computer (or vice
      // versa) and be misindexed at scan time with no error anywhere —
      // the confusion the explicit layout exists to rule out.
      const bool tag_packed =
          tag.size() >= 4 && tag.compare(tag.size() - 4, 4, "/pk4") == 0;
      if (tag_packed !=
          (packing == static_cast<uint8_t>(quant::CodePacking::kPacked4))) {
        return Fail(error,
                    path + ": ivf code packing disagrees with store tag");
      }
      // FromParts rejects truncated or oversized payloads (the data must be
      // exactly one record per indexed point).
      if (!quant::CodeStore::FromParts(
              size, code_size, num_sidecars, std::move(tag),
              std::move(data), &codes, &why,
              static_cast<quant::CodePacking>(packing))) {
        return Fail(error, path + ": ivf code section: " + why);
      }
      has_codes = true;
    }
  }

  *out = index::IvfIndex::FromCsr(size, std::move(centroids),
                                  std::move(offsets), std::move(ids));
  if (has_codes) out->AttachPermutedCodes(std::move(codes));
  return true;
}

bool SaveDdcPcaArtifacts(const std::string& path,
                         const core::DdcPcaArtifacts& artifacts,
                         std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kDdcPcaMagic, kVersion);
  writer.WriteVector(artifacts.stage_dims);
  writer.Write<int32_t>(static_cast<int32_t>(artifacts.correctors.size()));
  for (const auto& corrector : artifacts.correctors) {
    WriteCorrectorPayload(writer, corrector);
  }
  return FinishWrite(writer, path, error);
}

bool LoadDdcPcaArtifacts(const std::string& path, core::DdcPcaArtifacts* out,
                         std::string* error) {
  BinaryReader reader(path);
  if (!reader.ExpectHeader(kDdcPcaMagic, kVersion))
    return Fail(error, path + ": bad ddc-pca header");
  core::DdcPcaArtifacts artifacts;
  if (!reader.ReadVector(&artifacts.stage_dims))
    return Fail(error, path + ": truncated stage dims");
  int32_t count = 0;
  if (!reader.Read(&count) ||
      count != static_cast<int32_t>(artifacts.stage_dims.size())) {
    return Fail(error, path + ": corrector count mismatch");
  }
  artifacts.correctors.resize(count);
  for (int32_t i = 0; i < count; ++i) {
    if (!ReadCorrectorPayload(reader, &artifacts.correctors[i]))
      return Fail(error, path + ": truncated corrector payload");
  }
  *out = std::move(artifacts);
  return true;
}

bool SaveDdcOpqArtifacts(const std::string& path,
                         const core::DdcOpqArtifacts& artifacts,
                         std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kDdcOpqMagic, kVersionCodeLayout);
  WriteMatrixPayload(writer, artifacts.opq.rotation());
  const quant::PqCodebook& pq = artifacts.opq.codebook();
  writer.Write<int32_t>(pq.num_subspaces());
  WriteCodeLayout(writer, pq.layout());
  for (int s = 0; s < pq.num_subspaces(); ++s) {
    WriteMatrixPayload(writer, pq.centroids(s));
  }
  writer.WriteVector(artifacts.codes);
  writer.WriteVector(artifacts.recon_errors);
  WriteCorrectorPayload(writer, artifacts.corrector);
  return FinishWrite(writer, path, error);
}

bool LoadDdcOpqArtifacts(const std::string& path, core::DdcOpqArtifacts* out,
                         std::string* error) {
  BinaryReader reader(path);
  uint32_t version = 0;
  if (!ReadVersionedHeader(reader, kDdcOpqMagic, kVersionCodeLayout,
                           &version))
    return Fail(error, path + ": bad ddc-opq header");
  linalg::Matrix rotation;
  if (!ReadMatrixPayload(reader, &rotation))
    return Fail(error, path + ": truncated rotation");
  int32_t m = 0;
  if (!reader.Read(&m) || m <= 0 || m > 4096)
    return Fail(error, path + ": bad subspace count");
  quant::CodeLayout layout;  // v1 files are byte-per-code
  if (version >= kVersionCodeLayout && !ReadCodeLayout(reader, &layout))
    return Fail(error, path + ": bad ddc-opq code layout");
  if (layout.packed() && m > 256)
    return Fail(error, path + ": packed layout requires m <= 256");
  std::vector<linalg::Matrix> codebooks;
  for (int32_t s = 0; s < m; ++s) {
    linalg::Matrix table;
    if (!ReadMatrixPayload(reader, &table))
      return Fail(error, path + ": truncated codebooks");
    codebooks.push_back(std::move(table));
  }
  for (const auto& table : codebooks) {
    if (table.rows() != codebooks[0].rows() ||
        table.cols() != codebooks[0].cols() || table.rows() > 256) {
      return Fail(error, path + ": inconsistent codebook shapes");
    }
  }
  if (codebooks[0].rows() > (int64_t{1} << layout.bits))
    return Fail(error, path + ": codebook larger than layout bits");
  core::DdcOpqArtifacts artifacts;
  quant::PqCodebook pq =
      quant::PqCodebook::FromCodebooks(std::move(codebooks), layout);
  if (pq.dim() != rotation.rows() || rotation.rows() != rotation.cols())
    return Fail(error, path + ": rotation/codebook dim mismatch");
  artifacts.opq = quant::OpqModel::FromComponents(std::move(rotation),
                                                  std::move(pq));
  if (!reader.ReadVector(&artifacts.codes) ||
      !reader.ReadVector(&artifacts.recon_errors)) {
    return Fail(error, path + ": truncated codes");
  }
  const int64_t code_size = artifacts.opq.codebook().code_size();
  if (code_size <= 0 ||
      artifacts.codes.size() % static_cast<std::size_t>(code_size) != 0 ||
      artifacts.codes.size() / static_cast<std::size_t>(code_size) !=
          artifacts.recon_errors.size()) {
    return Fail(error, path + ": codes / reconstruction errors mismatch");
  }
  if (!ReadCorrectorPayload(reader, &artifacts.corrector))
    return Fail(error, path + ": truncated corrector");
  *out = std::move(artifacts);
  return true;
}

bool SaveDdcRqCascadeArtifacts(const std::string& path,
                               const core::DdcRqCascadeArtifacts& artifacts,
                               std::string* error) {
  BinaryWriter writer(path);
  WriteHeader(writer, kDdcRqCascadeMagic, kVersionCodeLayout);
  writer.Write<int32_t>(artifacts.rq.num_stages());
  WriteCodeLayout(writer, artifacts.rq.layout());
  for (int m = 0; m < artifacts.rq.num_stages(); ++m) {
    WriteMatrixPayload(writer, artifacts.rq.centroids(m));
  }
  std::vector<int32_t> levels(artifacts.levels.begin(),
                              artifacts.levels.end());
  writer.WriteVector(levels);
  writer.WriteVector(artifacts.codes);
  writer.WriteVector(artifacts.level_norms);
  writer.WriteVector(artifacts.level_errors);
  writer.Write<int32_t>(static_cast<int32_t>(artifacts.correctors.size()));
  for (const auto& corrector : artifacts.correctors) {
    WriteCorrectorPayload(writer, corrector);
  }
  return FinishWrite(writer, path, error);
}

bool LoadDdcRqCascadeArtifacts(const std::string& path,
                               core::DdcRqCascadeArtifacts* out,
                               std::string* error) {
  BinaryReader reader(path);
  uint32_t version = 0;
  if (!ReadVersionedHeader(reader, kDdcRqCascadeMagic, kVersionCodeLayout,
                           &version))
    return Fail(error, path + ": bad ddc-rq-cascade header");
  int32_t stages = 0;
  if (!reader.Read(&stages) || stages <= 0 || stages > 256)
    return Fail(error, path + ": bad stage count");
  quant::CodeLayout layout;  // v1 files are byte-per-code
  if (version >= kVersionCodeLayout && !ReadCodeLayout(reader, &layout))
    return Fail(error, path + ": bad cascade code layout");
  std::vector<linalg::Matrix> codebooks;
  for (int32_t m = 0; m < stages; ++m) {
    linalg::Matrix table;
    if (!ReadMatrixPayload(reader, &table))
      return Fail(error, path + ": truncated rq codebooks");
    codebooks.push_back(std::move(table));
  }
  for (const auto& table : codebooks) {
    if (table.rows() != codebooks[0].rows() ||
        table.cols() != codebooks[0].cols() || table.rows() > 256 ||
        table.rows() <= 0) {
      return Fail(error, path + ": inconsistent rq codebook shapes");
    }
  }

  if (codebooks[0].rows() > (int64_t{1} << layout.bits))
    return Fail(error, path + ": rq codebook larger than layout bits");
  core::DdcRqCascadeArtifacts artifacts;
  artifacts.rq =
      quant::RqCodebook::FromCodebooks(std::move(codebooks), layout);

  std::vector<int32_t> levels;
  if (!reader.ReadVector(&levels) || levels.empty())
    return Fail(error, path + ": truncated levels");
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (levels[l] <= 0 || levels[l] > stages ||
        (l > 0 && levels[l] <= levels[l - 1])) {
      return Fail(error, path + ": invalid cascade levels");
    }
  }
  artifacts.levels.assign(levels.begin(), levels.end());

  if (!reader.ReadVector(&artifacts.codes) ||
      !reader.ReadVector(&artifacts.level_norms) ||
      !reader.ReadVector(&artifacts.level_errors)) {
    return Fail(error, path + ": truncated cascade payload");
  }
  // The honest per-point byte count (packed layouts shrink it below the
  // stage count), so a packed cascade's codes validate against what its
  // readers will actually index.
  const auto code_size = static_cast<std::size_t>(artifacts.rq.code_size());
  const std::size_t num_levels = levels.size();
  if (artifacts.codes.size() % code_size != 0)
    return Fail(error, path + ": codes size mismatch");
  const std::size_t n = artifacts.codes.size() / code_size;
  if (artifacts.level_norms.size() != n * num_levels ||
      artifacts.level_errors.size() != n * num_levels) {
    return Fail(error, path + ": per-level payload size mismatch");
  }

  int32_t num_correctors = 0;
  if (!reader.Read(&num_correctors) ||
      num_correctors != static_cast<int32_t>(num_levels)) {
    return Fail(error, path + ": corrector count mismatch");
  }
  artifacts.correctors.resize(static_cast<std::size_t>(num_correctors));
  for (auto& corrector : artifacts.correctors) {
    if (!ReadCorrectorPayload(reader, &corrector))
      return Fail(error, path + ": truncated corrector payload");
  }
  *out = std::move(artifacts);
  return true;
}

}  // namespace resinfer::persist

#include "persist/persist.h"

#include <atomic>
#include <cstdio>
#include <functional>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "simd/kernels.h"
#include "util/binary_io.h"

namespace resinfer::persist {

using util::Status;

namespace {

constexpr uint32_t kVersion = 1;
// Quantizer/artifact format v2 records the code layout (bits + packing,
// quant/code_layout.h) so packed 4-bit codes round-trip; v1 files predate
// nbits-honest code sizes and load as the byte-per-code layout they were
// written with.
constexpr uint32_t kVersionCodeLayout = 2;
// Checksummed revisions (docs/persistence.md): the payload is wrapped in
// the v5-style section envelope (per-section CRC32C + footer digest) and
// written atomically. kVersionChecksum succeeds kVersion-era formats,
// kVersionLayoutChecksum the kVersionCodeLayout-era ones; the payload
// layout inside the sections is unchanged from the previous revision.
constexpr uint32_t kVersionChecksum = 2;
constexpr uint32_t kVersionLayoutChecksum = 3;
// Matrix v3 aligns the float payload to a 64-byte file offset (an explicit
// [u32 pad_len][zeros] between the shape and the floats), so a mapped file
// serves rows in place — the raw-vector cold tier. v1/v2 matrix files
// still load (heap path only).
constexpr uint32_t kMatrixVersionAligned = 3;
// IVF v2 switched bucket storage to the CSR layout (offsets + flat ids);
// v1 nested-bucket files still load.
constexpr uint32_t kIvfVersionCsr = 2;
// IVF v3 appends an optional code-resident section: the bucket-permuted
// quant::CodeStore (tag + layout + raw records). v1/v2 files still load —
// they simply come back without attached codes.
constexpr uint32_t kIvfVersionCodes = 3;
// IVF v4 adds the code section's packing byte (packed 4-bit vs
// byte-per-code records). v3 sections load as byte-per-code.
constexpr uint32_t kIvfVersionPacked = 4;
// IVF v5 wraps the payload in the checksummed envelope.
constexpr uint32_t kIvfVersionChecksum = 5;
// IVF v6 restructures the code section for storage backends: the record
// payload carries an explicit byte count and an alignment pad that lands
// the first record on a 64-byte file offset, so an mmap'd file serves the
// records zero-copy at the same alignment the heap allocator guarantees.
constexpr uint32_t kIvfVersionStorage = 6;
constexpr char kMatrixMagic[8] = {'R', 'I', 'M', 'A', 'T', 'R', 'X', '1'};
constexpr char kPcaMagic[8] = {'R', 'I', 'P', 'C', 'A', 'M', 'D', '1'};
constexpr char kPqMagic[8] = {'R', 'I', 'P', 'Q', 'C', 'B', 'K', '1'};
constexpr char kOpqMagic[8] = {'R', 'I', 'O', 'P', 'Q', 'M', 'D', '1'};
constexpr char kHnswMagic[8] = {'R', 'I', 'H', 'N', 'S', 'W', 'G', '1'};
constexpr char kIvfMagic[8] = {'R', 'I', 'I', 'V', 'F', 'I', 'X', '1'};
constexpr char kDdcPcaMagic[8] = {'R', 'I', 'D', 'P', 'C', 'A', 'A', '1'};
constexpr char kDdcOpqMagic[8] = {'R', 'I', 'D', 'O', 'P', 'Q', 'A', '1'};
constexpr char kRqMagic[8] = {'R', 'I', 'R', 'Q', 'C', 'B', 'K', '1'};
constexpr char kSqMagic[8] = {'R', 'I', 'S', 'Q', 'C', 'B', 'K', '1'};
constexpr char kCorrectorMagic[8] = {'R', 'I', 'L', 'I', 'N', 'C', 'R', '1'};
constexpr char kDdcRqCascadeMagic[8] = {'R', 'I', 'D', 'R', 'Q', 'C', 'A', '1'};

// Injected write budget for the ENOSPC fault tests; -1 = unlimited.
std::atomic<int64_t> g_write_limit{-1};

// Appends the reader's own diagnosis ("unexpected end of file", "section
// 'codes': checksum mismatch", ...) to the loader's context so the Status
// message says both what the loader was doing and why the bytes failed.
Status Corrupt(const BinaryReader& reader, const std::string& path,
               const std::string& what) {
  std::string msg = path + ": " + what;
  if (!reader.fail_reason().empty()) msg += " (" + reader.fail_reason() + ")";
  return Status::Corruption(msg);
}

Status OpenForRead(const BinaryReader& reader, const std::string& path) {
  if (!reader.ok())
    return Status::NotFound(path + ": cannot open for reading");
  return Status::Ok();
}

// Reads a magic/version header whose version may be any of
// [1, max_version] and flips the reader into checksummed mode for
// versions >= checksum_version — the hand-versioned counterpart of
// ExpectHeader for formats with older revisions still on disk.
Status ReadVersionedHeader(BinaryReader& reader, const std::string& path,
                           const char* what, const char magic[8],
                           uint32_t max_version, uint32_t checksum_version,
                           uint32_t* version) {
  char got[8] = {};
  reader.ReadBytes(got, 8);
  if (!reader.Read(version))
    return Corrupt(reader, path,
                   std::string("truncated ") + what + " header");
  if (std::memcmp(got, magic, 8) != 0)
    return Status::InvalidArgument(path + ": not a " + what +
                                   " file (magic mismatch)");
  if (*version < 1 || *version > max_version)
    return Status::Corruption(
        path + ": " + what + " version " + std::to_string(*version) +
        " is outside this build's supported range [1, " +
        std::to_string(max_version) + "]");
  reader.set_checksummed(*version >= checksum_version);
  return Status::Ok();
}

void WriteCodeLayout(BinaryWriter& writer, const quant::CodeLayout& layout) {
  writer.Write<int32_t>(layout.bits);
  writer.Write<uint8_t>(static_cast<uint8_t>(layout.packing));
}

bool ReadCodeLayout(BinaryReader& reader, quant::CodeLayout* out) {
  int32_t bits = 0;
  uint8_t packing = 0;
  if (!reader.Read(&bits) || !reader.Read(&packing)) return false;
  if (bits < 1 || bits > 8 || packing > 1) return false;
  if (packing == static_cast<uint8_t>(quant::CodePacking::kPacked4) &&
      bits > 4) {
    return false;
  }
  out->bits = bits;
  out->packing = static_cast<quant::CodePacking>(packing);
  return true;
}

void WriteMatrixPayload(BinaryWriter& writer, const linalg::Matrix& m) {
  writer.Write(m.rows());
  writer.Write(m.cols());
  writer.WriteFloats(m.data(), m.size());
}

bool ReadMatrixPayload(BinaryReader& reader, linalg::Matrix* out) {
  int64_t rows = 0, cols = 0;
  if (!reader.Read(&rows) || !reader.Read(&cols)) return false;
  // Division-form bound check: rows * cols would overflow on hostile
  // headers before a product-form comparison could reject them.
  if (rows < 0 || cols < 0 ||
      (cols > 0 && rows > reader.max_elements() / cols)) {
    return false;
  }
  *out = linalg::Matrix(rows, cols);
  return reader.ReadFloats(out->data(), out->size());
}

void WriteCorrectorPayload(BinaryWriter& writer,
                           const core::LinearCorrector& corrector) {
  writer.Write(corrector.w_approx());
  writer.Write(corrector.w_tau());
  writer.Write(corrector.w_extra());
  writer.Write(corrector.bias());
  writer.Write<uint8_t>(corrector.trained() ? 1 : 0);
}

bool ReadCorrectorPayload(BinaryReader& reader,
                          core::LinearCorrector* out) {
  float w_approx = 0, w_tau = 0, w_extra = 0, bias = 0;
  uint8_t trained = 0;
  if (!reader.Read(&w_approx) || !reader.Read(&w_tau) ||
      !reader.Read(&w_extra) || !reader.Read(&bias) ||
      !reader.Read(&trained)) {
    return false;
  }
  *out = core::LinearCorrector::FromWeights(w_approx, w_tau, w_extra, bias,
                                            trained != 0);
  return true;
}

// Atomic save protocol: the payload lands in `path + ".tmp.<pid>"` (same
// directory, so the rename cannot cross filesystems), is flushed and
// fsync'd, and only then renamed over the destination. A failure at any
// point deletes the temp file and leaves whatever `path` held before —
// including nothing — untouched, so a crash or full disk mid-save can
// never replace a good index with a half-written one.
Status AtomicSave(const std::string& path,
                  const std::function<void(BinaryWriter&)>& write_payload) {
  const std::string tmp =
#if !defined(_WIN32)
      path + ".tmp." + std::to_string(::getpid());
#else
      path + ".tmp";
#endif
  BinaryWriter writer(tmp);
  if (!writer.ok())
    return Status::IOError(tmp + ": cannot open for writing");
  const int64_t limit = g_write_limit.load(std::memory_order_relaxed);
  if (limit >= 0) writer.set_write_limit_for_testing(limit);
  write_payload(writer);
  writer.WriteChecksumFooter();
  bool okay = writer.ok() && writer.SyncToDisk();
  okay = writer.Close() && okay;
  if (!okay) {
    std::string reason = writer.fail_reason().empty()
                             ? "write failed"
                             : writer.fail_reason();
    std::remove(tmp.c_str());
    return Status::IOError(path + ": save failed (" + reason +
                           "); existing file left untouched");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError(path +
                           ": rename from temp file failed; existing file "
                           "left untouched");
  }
  return Status::Ok();
}

}  // namespace

void SetWriteFailureForTesting(int64_t bytes) {
  g_write_limit.store(bytes, std::memory_order_relaxed);
}

Status SaveMatrix(const std::string& path, const linalg::Matrix& m) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kMatrixMagic, kMatrixVersionAligned);
    writer.BeginSection("matrix");
    writer.Write(m.rows());
    writer.Write(m.cols());
    writer.WriteAlignmentPad(kCacheLineBytes);
    writer.WriteFloats(m.data(), m.size());
    writer.EndSection();
  });
}

namespace {

// Shape + (v3) alignment pad of the standalone matrix format, leaving the
// reader positioned at the float payload. Bounds-checks the shape like
// ReadMatrixPayload.
Status ReadMatrixPrefix(BinaryReader& reader, const std::string& path,
                        uint32_t version, int64_t* rows, int64_t* cols) {
  if (!reader.BeginSection("matrix") || !reader.Read(rows) ||
      !reader.Read(cols)) {
    return Corrupt(reader, path, "bad matrix payload");
  }
  if (*rows < 0 || *cols < 0 ||
      (*cols > 0 && *rows > reader.max_elements() / *cols)) {
    return Status::Corruption(path + ": implausible matrix shape");
  }
  if (version >= kMatrixVersionAligned &&
      !reader.ReadAlignmentPad(kCacheLineBytes)) {
    return Corrupt(reader, path, "bad matrix alignment pad");
  }
  return Status::Ok();
}

}  // namespace

Status LoadMatrix(const std::string& path, linalg::Matrix* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "matrix", kMatrixMagic, kMatrixVersionAligned,
      kVersionChecksum, &version));
  int64_t rows = 0, cols = 0;
  RESINFER_RETURN_IF_ERROR(ReadMatrixPrefix(reader, path, version, &rows,
                                            &cols));
  *out = linalg::Matrix(rows, cols);
  if (!reader.ReadFloats(out->data(), out->size()) || !reader.EndSection()) {
    return Corrupt(reader, path, "bad matrix payload");
  }
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad matrix footer");
  return Status::Ok();
}

Status LoadMatrixMapped(const std::string& path, MappedMatrix* out,
                        storage::StorageBackend backend) {
  MappedMatrix result;
  result.backend = storage::StorageBackend::kMemory;
  if (backend == storage::StorageBackend::kMmap) {
    BinaryReader reader(path);
    RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
    uint32_t version = 0;
    RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
        reader, path, "matrix", kMatrixMagic, kMatrixVersionAligned,
        kVersionChecksum, &version));
    if (version >= kMatrixVersionAligned) {
      int64_t rows = 0, cols = 0;
      RESINFER_RETURN_IF_ERROR(ReadMatrixPrefix(reader, path, version, &rows,
                                                &cols));
      const int64_t floats_offset = reader.Tell();
      const int64_t float_bytes =
          rows * cols * static_cast<int64_t>(sizeof(float));
      if (floats_offset < 0 ||
          floats_offset % static_cast<int64_t>(kCacheLineBytes) != 0) {
        return Status::Corruption(path +
                                  ": matrix float payload is not 64-byte "
                                  "aligned despite the v3 header");
      }
      if (!reader.SkipPayload(static_cast<uint64_t>(float_bytes)) ||
          !reader.EndSection() || !reader.ExpectChecksumFooter()) {
        return Corrupt(reader, path, "bad matrix payload");
      }
      storage::Blob mapping;
      RESINFER_RETURN_IF_ERROR(storage::MapFileReadOnly(path, &mapping));
      if (floats_offset + float_bytes > mapping.size()) {
        return Status::Corruption(path +
                                  ": matrix payload extends past the file");
      }
      result.pin = mapping.Slice(floats_offset, float_bytes);
      // Cold tier: rescore ids are scattered, so disable fault-around —
      // otherwise each touched row pages in a neighborhood and RSS creeps
      // toward the full file.
      storage::AdviseRandomAccess(result.pin);
      result.matrix = linalg::Matrix::View(
          reinterpret_cast<const float*>(result.pin.data()), rows, cols);
      result.backend = storage::StorageBackend::kMmap;
      *out = std::move(result);
      return Status::Ok();
    }
    // Pre-v3 files have no aligned payload to map; fall through to the
    // heap load below, reporting the memory backend.
  }
  RESINFER_RETURN_IF_ERROR(LoadMatrix(path, &result.matrix));
  *out = std::move(result);
  return Status::Ok();
}

Status SavePca(const std::string& path, const linalg::PcaModel& model) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kPcaMagic, kVersionChecksum);
    writer.BeginSection("mean");
    writer.WriteVector(model.mean());
    writer.EndSection();
    writer.BeginSection("rotation");
    WriteMatrixPayload(writer, model.rotation());
    writer.EndSection();
    writer.BeginSection("variances");
    writer.WriteVector(model.variances());
    writer.EndSection();
  });
}

Status LoadPca(const std::string& path, linalg::PcaModel* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(reader, path, "pca",
                                               kPcaMagic, kVersionChecksum,
                                               kVersionChecksum, &version));
  std::vector<float> mean, variances;
  linalg::Matrix rotation;
  if (!reader.BeginSection("mean") || !reader.ReadVector(&mean) ||
      !reader.EndSection() || !reader.BeginSection("rotation") ||
      !ReadMatrixPayload(reader, &rotation) || !reader.EndSection() ||
      !reader.BeginSection("variances") || !reader.ReadVector(&variances) ||
      !reader.EndSection()) {
    return Corrupt(reader, path, "bad pca payload");
  }
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad pca footer");
  if (rotation.rows() != rotation.cols() ||
      static_cast<int64_t>(mean.size()) != rotation.rows() ||
      static_cast<int64_t>(variances.size()) != rotation.rows()) {
    return Status::Corruption(path + ": inconsistent pca shapes");
  }
  *out = linalg::PcaModel::FromComponents(std::move(mean),
                                          std::move(rotation),
                                          std::move(variances));
  return Status::Ok();
}

namespace {

// PQ-style codebook payloads (PQ, OPQ's and DDC-OPQ's embedded codebook):
// subspace count + code layout in a "meta" section, the per-subspace
// centroid matrices in a "codebooks" section.
void WritePqPayload(BinaryWriter& writer, const quant::PqCodebook& pq) {
  writer.BeginSection("meta");
  writer.Write<int32_t>(pq.num_subspaces());
  WriteCodeLayout(writer, pq.layout());
  writer.EndSection();
  writer.BeginSection("codebooks");
  for (int s = 0; s < pq.num_subspaces(); ++s) {
    WriteMatrixPayload(writer, pq.centroids(s));
  }
  writer.EndSection();
}

// Reads the payload written by WritePqPayload — and its unchecksummed v1/v2
// ancestors (v1 has no code layout; the section calls no-op below the
// checksummed version). `what` names the format for error messages;
// `max_subspaces` keeps RQ's tighter stage bound.
Status ReadPqPayload(BinaryReader& reader, const std::string& path,
                     const char* what, uint32_t version,
                     uint32_t layout_version, int32_t max_subspaces,
                     quant::PqCodebook* out) {
  const std::string ctx = std::string(what);
  int32_t m = 0;
  if (!reader.BeginSection("meta") || !reader.Read(&m))
    return Corrupt(reader, path, "bad " + ctx + " meta");
  if (m <= 0 || m > max_subspaces)
    return Status::Corruption(path + ": bad " + ctx + " subspace count");
  quant::CodeLayout layout;  // v1 files are byte-per-code
  if (version >= layout_version && !ReadCodeLayout(reader, &layout))
    return Corrupt(reader, path, "bad " + ctx + " code layout");
  if (!reader.EndSection())
    return Corrupt(reader, path, "bad " + ctx + " meta");
  if (layout.packed() && m > 256)
    return Status::Corruption(path + ": packed layout requires m <= 256");
  std::vector<linalg::Matrix> codebooks;
  codebooks.reserve(m);
  if (!reader.BeginSection("codebooks"))
    return Corrupt(reader, path, "bad " + ctx + " codebooks");
  for (int32_t s = 0; s < m; ++s) {
    linalg::Matrix table;
    if (!ReadMatrixPayload(reader, &table))
      return Corrupt(reader, path, "truncated " + ctx + " codebooks");
    codebooks.push_back(std::move(table));
  }
  if (!reader.EndSection())
    return Corrupt(reader, path, "bad " + ctx + " codebooks");
  for (const auto& table : codebooks) {
    if (table.rows() != codebooks[0].rows() ||
        table.cols() != codebooks[0].cols() || table.rows() > 256 ||
        table.rows() <= 0) {
      return Status::Corruption(path + ": inconsistent " + ctx +
                                " codebook shapes");
    }
  }
  if (codebooks[0].rows() > (int64_t{1} << layout.bits))
    return Status::Corruption(path + ": " + ctx +
                              " codebook larger than layout bits");
  *out = quant::PqCodebook::FromCodebooks(std::move(codebooks), layout);
  return Status::Ok();
}

}  // namespace

Status SavePq(const std::string& path, const quant::PqCodebook& pq) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kPqMagic, kVersionLayoutChecksum);
    WritePqPayload(writer, pq);
  });
}

Status LoadPq(const std::string& path, quant::PqCodebook* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(
      ReadVersionedHeader(reader, path, "pq", kPqMagic, kVersionLayoutChecksum,
                          kVersionLayoutChecksum, &version));
  RESINFER_RETURN_IF_ERROR(ReadPqPayload(reader, path, "pq", version,
                                         kVersionCodeLayout, 4096, out));
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad pq footer");
  return Status::Ok();
}

Status SaveOpq(const std::string& path, const quant::OpqModel& model) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kOpqMagic, kVersionLayoutChecksum);
    writer.BeginSection("rotation");
    WriteMatrixPayload(writer, model.rotation());
    writer.EndSection();
    WritePqPayload(writer, model.codebook());
  });
}

Status LoadOpq(const std::string& path, quant::OpqModel* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "opq", kOpqMagic, kVersionLayoutChecksum,
      kVersionLayoutChecksum, &version));
  linalg::Matrix rotation;
  if (!reader.BeginSection("rotation") ||
      !ReadMatrixPayload(reader, &rotation) || !reader.EndSection()) {
    return Corrupt(reader, path, "bad opq rotation");
  }
  quant::PqCodebook pq;
  RESINFER_RETURN_IF_ERROR(ReadPqPayload(reader, path, "opq", version,
                                         kVersionCodeLayout, 4096, &pq));
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad opq footer");
  if (pq.dim() != rotation.rows() || rotation.rows() != rotation.cols())
    return Status::Corruption(path + ": opq rotation/codebook dim mismatch");
  *out = quant::OpqModel::FromComponents(std::move(rotation), std::move(pq));
  return Status::Ok();
}

Status SaveRq(const std::string& path, const quant::RqCodebook& rq) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kRqMagic, kVersionLayoutChecksum);
    writer.BeginSection("meta");
    writer.Write<int32_t>(rq.num_stages());
    WriteCodeLayout(writer, rq.layout());
    writer.EndSection();
    writer.BeginSection("codebooks");
    for (int s = 0; s < rq.num_stages(); ++s) {
      WriteMatrixPayload(writer, rq.centroids(s));
    }
    writer.EndSection();
  });
}

Status LoadRq(const std::string& path, quant::RqCodebook* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(
      ReadVersionedHeader(reader, path, "rq", kRqMagic, kVersionLayoutChecksum,
                          kVersionLayoutChecksum, &version));
  quant::PqCodebook as_pq;
  RESINFER_RETURN_IF_ERROR(ReadPqPayload(reader, path, "rq", version,
                                         kVersionCodeLayout, 256, &as_pq));
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad rq footer");
  // RQ shares PQ's payload wire format (stage count + stagewise centroid
  // matrices); rebuild the RQ view from the parsed parts.
  std::vector<linalg::Matrix> codebooks;
  codebooks.reserve(as_pq.num_subspaces());
  for (int s = 0; s < as_pq.num_subspaces(); ++s) {
    codebooks.push_back(as_pq.centroids(s).Clone());
  }
  *out = quant::RqCodebook::FromCodebooks(std::move(codebooks),
                                          as_pq.layout());
  return Status::Ok();
}

Status SaveSq(const std::string& path, const quant::SqCodebook& sq) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kSqMagic, kVersionChecksum);
    writer.BeginSection("vmin");
    writer.WriteVector(sq.vmin());
    writer.EndSection();
    writer.BeginSection("step");
    writer.WriteVector(sq.step());
    writer.EndSection();
  });
}

Status LoadSq(const std::string& path, quant::SqCodebook* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(reader, path, "sq", kSqMagic,
                                               kVersionChecksum,
                                               kVersionChecksum, &version));
  std::vector<float> vmin, step;
  if (!reader.BeginSection("vmin") || !reader.ReadVector(&vmin) ||
      !reader.EndSection() || !reader.BeginSection("step") ||
      !reader.ReadVector(&step) || !reader.EndSection()) {
    return Corrupt(reader, path, "bad sq payload");
  }
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad sq footer");
  if (vmin.empty() || vmin.size() != step.size())
    return Status::Corruption(path + ": inconsistent sq ranges");
  for (float s : step) {
    if (!(s >= 0.0f))
      return Status::Corruption(path + ": negative sq step");
  }
  *out = quant::SqCodebook::FromParams(std::move(vmin), std::move(step));
  return Status::Ok();
}

Status SaveCorrector(const std::string& path,
                     const core::LinearCorrector& corrector) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kCorrectorMagic, kVersionChecksum);
    writer.BeginSection("corrector");
    WriteCorrectorPayload(writer, corrector);
    writer.EndSection();
  });
}

Status LoadCorrector(const std::string& path, core::LinearCorrector* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "corrector", kCorrectorMagic, kVersionChecksum,
      kVersionChecksum, &version));
  if (!reader.BeginSection("corrector") ||
      !ReadCorrectorPayload(reader, out) || !reader.EndSection()) {
    return Corrupt(reader, path, "bad corrector payload");
  }
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad corrector footer");
  return Status::Ok();
}

Status SaveHnsw(const std::string& path, const index::HnswIndex& hnsw) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kHnswMagic, kVersionChecksum);
    writer.BeginSection("graph");
    hnsw.SaveTo(writer);
    writer.EndSection();
  });
}

Status LoadHnsw(const std::string& path, index::HnswIndex* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(reader, path, "hnsw",
                                               kHnswMagic, kVersionChecksum,
                                               kVersionChecksum, &version));
  if (!reader.BeginSection("graph"))
    return Corrupt(reader, path, "bad hnsw payload");
  util::Status graph = index::HnswIndex::LoadFrom(reader, out);
  if (!graph.ok()) {
    if (!reader.fail_reason().empty())
      return Status::Corruption(path + ": " + graph.message() + " (" +
                                reader.fail_reason() + ")");
    return Status::Corruption(path + ": " + graph.message());
  }
  if (!reader.EndSection() || !reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad hnsw footer");
  return Status::Ok();
}

Status SaveIvf(const std::string& path, const index::IvfIndex& ivf) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kIvfMagic, kIvfVersionStorage);
    writer.BeginSection("meta");
    writer.Write(ivf.size());
    writer.EndSection();
    writer.BeginSection("centroids");
    WriteMatrixPayload(writer, ivf.centroids());
    writer.EndSection();
    writer.BeginSection("buckets");
    writer.Write<int32_t>(ivf.num_clusters());
    writer.WriteVector(ivf.bucket_offsets());
    writer.WriteVector(ivf.ids());
    writer.EndSection();
    // Code section (v3): the bucket-permuted store, saved record-for-record
    // so loads re-attach without re-permuting; v4 adds the packing byte.
    // v6 replaces the count-prefixed record vector with an explicit byte
    // count followed by an alignment pad, so the first record sits on a
    // 64-byte file offset and an mmap load can serve the records in place
    // at the alignment the heap allocator would have provided.
    writer.BeginSection("codes");
    writer.Write<uint8_t>(ivf.has_codes() ? 1 : 0);
    if (ivf.has_codes()) {
      const quant::CodeStore& codes = ivf.codes();
      writer.Write<int64_t>(codes.code_size());
      writer.Write<int32_t>(codes.num_sidecars());
      writer.Write<uint8_t>(static_cast<uint8_t>(codes.packing()));
      writer.WriteString(codes.tag());
      writer.Write<uint64_t>(static_cast<uint64_t>(codes.data_bytes()));
      writer.WriteAlignmentPad(kCacheLineBytes);
      writer.WriteBytes(codes.data(),
                        static_cast<std::size_t>(codes.data_bytes()));
    }
    writer.EndSection();
  });
}

Status LoadIvf(const std::string& path, index::IvfIndex* out) {
  return LoadIvf(path, out, IvfLoadOptions());
}

Status LoadIvf(const std::string& path, index::IvfIndex* out,
               const IvfLoadOptions& options) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  // Versioned by hand: v6 restructures the code section for storage
  // backends, v5 adds the checksummed envelope, v4 the code section's
  // packing byte, v3 the code section itself, v2 the CSR layout; v1 is the
  // legacy nested buckets.
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "ivf", kIvfMagic, kIvfVersionStorage,
      kIvfVersionChecksum, &version));
  int64_t size = 0;
  linalg::Matrix centroids;
  int32_t clusters = 0;
  if (!reader.BeginSection("meta") || !reader.Read(&size) ||
      !reader.EndSection() || !reader.BeginSection("centroids") ||
      !ReadMatrixPayload(reader, &centroids) || !reader.EndSection() ||
      !reader.BeginSection("buckets") || !reader.Read(&clusters)) {
    return Corrupt(reader, path, "truncated ivf payload");
  }
  if (size <= 0 || clusters <= 0 || clusters != centroids.rows())
    return Status::Corruption(path + ": inconsistent ivf shapes");

  std::vector<int64_t> offsets;
  std::vector<int64_t> ids;
  if (version >= kIvfVersionCsr) {
    if (!reader.ReadVector(&offsets) || !reader.ReadVector(&ids))
      return Corrupt(reader, path, "truncated ivf buckets");
  } else {
    offsets.reserve(clusters + 1);
    offsets.push_back(0);
    for (int32_t b = 0; b < clusters; ++b) {
      std::vector<int64_t> bucket;
      if (!reader.ReadVector(&bucket))
        return Corrupt(reader, path, "truncated ivf buckets");
      ids.insert(ids.end(), bucket.begin(), bucket.end());
      offsets.push_back(static_cast<int64_t>(ids.size()));
    }
  }
  if (!reader.EndSection())
    return Corrupt(reader, path, "bad ivf buckets");
  // Shared with FromCsr so a corrupt file fails here recoverably instead of
  // tripping the constructor's CHECK.
  util::Status csr = index::IvfIndex::ValidateCsr(size, clusters, offsets, ids);
  if (!csr.ok())
    return Status::Corruption(path + ": " + csr.message());
  if (static_cast<int64_t>(ids.size()) != size)
    return Status::Corruption(path + ": buckets do not partition the base");

  // Code section (v3 onward, optional; v4 adds the packing byte, v6 the
  // explicit byte count + alignment pad that makes the records mappable).
  quant::CodeStore codes;
  bool has_codes = false;
  // Deferred zero-copy attach: with the mmap backend the parse records
  // where the aligned payload sits, skips over it, finishes the envelope,
  // and only then maps the file — the mapping must cover the footer-
  // validated structure, not a file still mid-parse.
  bool map_codes = false;
  int64_t map_offset = 0;
  uint64_t map_bytes = 0;
  int64_t map_code_size = 0;
  int32_t map_num_sidecars = 0;
  uint8_t map_packing = 0;
  std::string map_tag;
  if (version >= kIvfVersionCodes) {
    uint8_t flag = 0;
    if (!reader.BeginSection("codes") || !reader.Read(&flag))
      return Corrupt(reader, path, "truncated ivf code flag");
    if (flag != 0) {
      int64_t code_size = 0;
      int32_t num_sidecars = 0;
      uint8_t packing = 0;  // v3 stores are byte-per-code
      std::string tag;
      if (!reader.Read(&code_size) || !reader.Read(&num_sidecars) ||
          (version >= kIvfVersionPacked && !reader.Read(&packing)) ||
          !reader.ReadString(&tag)) {
        return Corrupt(reader, path, "truncated ivf code section");
      }
      if (packing > 1)
        return Status::Corruption(path + ": bad ivf code packing");
      // The packing byte and the tag's layout marker must agree, or a
      // packed store could tag-match a byte-per-code computer (or vice
      // versa) and be misindexed at scan time with no error anywhere —
      // the confusion the explicit layout exists to rule out.
      const bool tag_packed =
          tag.size() >= 4 && tag.compare(tag.size() - 4, 4, "/pk4") == 0;
      if (tag_packed !=
          (packing == static_cast<uint8_t>(quant::CodePacking::kPacked4))) {
        return Status::Corruption(
            path + ": ivf code packing disagrees with store tag");
      }
      std::vector<uint8_t> data;
      if (version >= kIvfVersionStorage) {
        uint64_t record_bytes = 0;
        if (!reader.Read(&record_bytes) ||
            !reader.ReadAlignmentPad(kCacheLineBytes)) {
          return Corrupt(reader, path, "truncated ivf code section");
        }
        if (record_bytes > static_cast<uint64_t>(reader.max_elements()))
          return Status::Corruption(path + ": ivf code payload out of range");
        if (options.backend == storage::StorageBackend::kMmap) {
          map_offset = reader.Tell();
          if (map_offset < 0 ||
              map_offset % static_cast<int64_t>(kCacheLineBytes) != 0) {
            return Status::Corruption(
                path +
                ": ivf code records are not 64-byte aligned despite the v6 "
                "header");
          }
          if (!reader.SkipPayload(record_bytes))
            return Corrupt(reader, path, "truncated ivf code section");
          map_bytes = record_bytes;
          map_code_size = code_size;
          map_num_sidecars = num_sidecars;
          map_packing = packing;
          map_tag = std::move(tag);
          map_codes = true;
        } else {
          data.resize(static_cast<std::size_t>(record_bytes));
          if (record_bytes > 0) {
            reader.ReadBytes(data.data(),
                             static_cast<std::size_t>(record_bytes));
          }
          if (!reader.ok())
            return Corrupt(reader, path, "truncated ivf code section");
        }
      } else if (!reader.ReadVector(&data)) {
        // v3–v5 record payloads are a count-prefixed vector; they always
        // deserialize onto the heap (no alignment guarantee to map), so a
        // requested mmap backend silently falls back to memory here.
        return Corrupt(reader, path, "truncated ivf code section");
      }
      if (!map_codes) {
        // FromParts rejects truncated or oversized payloads (the data must
        // be exactly one record per indexed point).
        util::Status parts = quant::CodeStore::FromParts(
            size, code_size, num_sidecars, std::move(tag), std::move(data),
            &codes, static_cast<quant::CodePacking>(packing));
        if (!parts.ok())
          return Status::Corruption(path + ": ivf code section: " +
                                    parts.message());
        has_codes = true;
      }
    }
    if (!reader.EndSection())
      return Corrupt(reader, path, "bad ivf code section");
  }
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad ivf footer");

  if (map_codes) {
    storage::Blob mapping;
    RESINFER_RETURN_IF_ERROR(storage::MapFileReadOnly(path, &mapping));
    if (map_bytes > static_cast<uint64_t>(mapping.size()) ||
        map_offset > mapping.size() - static_cast<int64_t>(map_bytes)) {
      return Status::Corruption(path +
                                ": ivf code payload extends past the file");
    }
    util::Status blob = quant::CodeStore::FromBlob(
        size, map_code_size, map_num_sidecars, std::move(map_tag),
        mapping.Slice(map_offset, static_cast<int64_t>(map_bytes)), &codes,
        static_cast<quant::CodePacking>(map_packing),
        storage::StorageBackend::kMmap);
    if (!blob.ok())
      return Status::Corruption(path + ": ivf code section: " +
                                blob.message());
    has_codes = true;
  }

  *out = index::IvfIndex::FromCsr(size, std::move(centroids),
                                  std::move(offsets), std::move(ids));
  if (has_codes) out->AttachPermutedCodes(std::move(codes));
  return Status::Ok();
}

util::StatusOr<index::IvfIndex> LoadIvfIndex(const std::string& path,
                                             const IvfLoadOptions& options) {
  index::IvfIndex ivf;
  RESINFER_RETURN_IF_ERROR(LoadIvf(path, &ivf, options));
  return ivf;
}

Status SaveDdcPcaArtifacts(const std::string& path,
                           const core::DdcPcaArtifacts& artifacts) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kDdcPcaMagic, kVersionChecksum);
    writer.BeginSection("stage_dims");
    writer.WriteVector(artifacts.stage_dims);
    writer.EndSection();
    writer.BeginSection("correctors");
    writer.Write<int32_t>(static_cast<int32_t>(artifacts.correctors.size()));
    for (const auto& corrector : artifacts.correctors) {
      WriteCorrectorPayload(writer, corrector);
    }
    writer.EndSection();
  });
}

Status LoadDdcPcaArtifacts(const std::string& path,
                           core::DdcPcaArtifacts* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "ddc-pca", kDdcPcaMagic, kVersionChecksum,
      kVersionChecksum, &version));
  core::DdcPcaArtifacts artifacts;
  if (!reader.BeginSection("stage_dims") ||
      !reader.ReadVector(&artifacts.stage_dims) || !reader.EndSection()) {
    return Corrupt(reader, path, "truncated stage dims");
  }
  int32_t count = 0;
  if (!reader.BeginSection("correctors") || !reader.Read(&count))
    return Corrupt(reader, path, "truncated corrector count");
  if (count != static_cast<int32_t>(artifacts.stage_dims.size()))
    return Status::Corruption(path + ": corrector count mismatch");
  artifacts.correctors.resize(count);
  for (int32_t i = 0; i < count; ++i) {
    if (!ReadCorrectorPayload(reader, &artifacts.correctors[i]))
      return Corrupt(reader, path, "truncated corrector payload");
  }
  if (!reader.EndSection() || !reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad ddc-pca footer");
  *out = std::move(artifacts);
  return Status::Ok();
}

Status SaveDdcOpqArtifacts(const std::string& path,
                           const core::DdcOpqArtifacts& artifacts) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kDdcOpqMagic, kVersionLayoutChecksum);
    writer.BeginSection("rotation");
    WriteMatrixPayload(writer, artifacts.opq.rotation());
    writer.EndSection();
    WritePqPayload(writer, artifacts.opq.codebook());
    writer.BeginSection("codes");
    writer.WriteVector(artifacts.codes);
    writer.WriteVector(artifacts.recon_errors);
    writer.EndSection();
    writer.BeginSection("corrector");
    WriteCorrectorPayload(writer, artifacts.corrector);
    writer.EndSection();
  });
}

Status LoadDdcOpqArtifacts(const std::string& path,
                           core::DdcOpqArtifacts* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "ddc-opq", kDdcOpqMagic, kVersionLayoutChecksum,
      kVersionLayoutChecksum, &version));
  linalg::Matrix rotation;
  if (!reader.BeginSection("rotation") ||
      !ReadMatrixPayload(reader, &rotation) || !reader.EndSection()) {
    return Corrupt(reader, path, "truncated rotation");
  }
  quant::PqCodebook pq;
  RESINFER_RETURN_IF_ERROR(ReadPqPayload(reader, path, "ddc-opq", version,
                                         kVersionCodeLayout, 4096, &pq));
  core::DdcOpqArtifacts artifacts;
  if (pq.dim() != rotation.rows() || rotation.rows() != rotation.cols())
    return Status::Corruption(path + ": rotation/codebook dim mismatch");
  artifacts.opq = quant::OpqModel::FromComponents(std::move(rotation),
                                                  std::move(pq));
  if (!reader.BeginSection("codes") ||
      !reader.ReadVector(&artifacts.codes) ||
      !reader.ReadVector(&artifacts.recon_errors) || !reader.EndSection()) {
    return Corrupt(reader, path, "truncated codes");
  }
  const int64_t code_size = artifacts.opq.codebook().code_size();
  if (code_size <= 0 ||
      artifacts.codes.size() % static_cast<std::size_t>(code_size) != 0 ||
      artifacts.codes.size() / static_cast<std::size_t>(code_size) !=
          artifacts.recon_errors.size()) {
    return Status::Corruption(path +
                              ": codes / reconstruction errors mismatch");
  }
  if (!reader.BeginSection("corrector") ||
      !ReadCorrectorPayload(reader, &artifacts.corrector) ||
      !reader.EndSection()) {
    return Corrupt(reader, path, "truncated corrector");
  }
  if (!reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad ddc-opq footer");
  *out = std::move(artifacts);
  return Status::Ok();
}

Status SaveDdcRqCascadeArtifacts(
    const std::string& path, const core::DdcRqCascadeArtifacts& artifacts) {
  return AtomicSave(path, [&](BinaryWriter& writer) {
    WriteHeader(writer, kDdcRqCascadeMagic, kVersionLayoutChecksum);
    writer.BeginSection("meta");
    writer.Write<int32_t>(artifacts.rq.num_stages());
    WriteCodeLayout(writer, artifacts.rq.layout());
    writer.EndSection();
    writer.BeginSection("codebooks");
    for (int m = 0; m < artifacts.rq.num_stages(); ++m) {
      WriteMatrixPayload(writer, artifacts.rq.centroids(m));
    }
    writer.EndSection();
    writer.BeginSection("levels");
    std::vector<int32_t> levels(artifacts.levels.begin(),
                                artifacts.levels.end());
    writer.WriteVector(levels);
    writer.EndSection();
    writer.BeginSection("codes");
    writer.WriteVector(artifacts.codes);
    writer.WriteVector(artifacts.level_norms);
    writer.WriteVector(artifacts.level_errors);
    writer.EndSection();
    writer.BeginSection("correctors");
    writer.Write<int32_t>(static_cast<int32_t>(artifacts.correctors.size()));
    for (const auto& corrector : artifacts.correctors) {
      WriteCorrectorPayload(writer, corrector);
    }
    writer.EndSection();
  });
}

Status LoadDdcRqCascadeArtifacts(const std::string& path,
                                 core::DdcRqCascadeArtifacts* out) {
  BinaryReader reader(path);
  RESINFER_RETURN_IF_ERROR(OpenForRead(reader, path));
  uint32_t version = 0;
  RESINFER_RETURN_IF_ERROR(ReadVersionedHeader(
      reader, path, "ddc-rq-cascade", kDdcRqCascadeMagic,
      kVersionLayoutChecksum, kVersionLayoutChecksum, &version));
  quant::PqCodebook as_pq;
  RESINFER_RETURN_IF_ERROR(ReadPqPayload(reader, path, "ddc-rq-cascade",
                                         version, kVersionCodeLayout, 256,
                                         &as_pq));
  core::DdcRqCascadeArtifacts artifacts;
  {
    std::vector<linalg::Matrix> codebooks;
    codebooks.reserve(as_pq.num_subspaces());
    for (int s = 0; s < as_pq.num_subspaces(); ++s) {
      codebooks.push_back(as_pq.centroids(s).Clone());
    }
    artifacts.rq = quant::RqCodebook::FromCodebooks(std::move(codebooks),
                                                    as_pq.layout());
  }
  const int32_t stages = artifacts.rq.num_stages();

  std::vector<int32_t> levels;
  if (!reader.BeginSection("levels") || !reader.ReadVector(&levels) ||
      !reader.EndSection()) {
    return Corrupt(reader, path, "truncated levels");
  }
  if (levels.empty())
    return Status::Corruption(path + ": truncated levels");
  for (std::size_t l = 0; l < levels.size(); ++l) {
    if (levels[l] <= 0 || levels[l] > stages ||
        (l > 0 && levels[l] <= levels[l - 1])) {
      return Status::Corruption(path + ": invalid cascade levels");
    }
  }
  artifacts.levels.assign(levels.begin(), levels.end());

  if (!reader.BeginSection("codes") ||
      !reader.ReadVector(&artifacts.codes) ||
      !reader.ReadVector(&artifacts.level_norms) ||
      !reader.ReadVector(&artifacts.level_errors) || !reader.EndSection()) {
    return Corrupt(reader, path, "truncated cascade payload");
  }
  // The honest per-point byte count (packed layouts shrink it below the
  // stage count), so a packed cascade's codes validate against what its
  // readers will actually index.
  const auto code_size = static_cast<std::size_t>(artifacts.rq.code_size());
  const std::size_t num_levels = levels.size();
  if (artifacts.codes.size() % code_size != 0)
    return Status::Corruption(path + ": codes size mismatch");
  const std::size_t n = artifacts.codes.size() / code_size;
  if (artifacts.level_norms.size() != n * num_levels ||
      artifacts.level_errors.size() != n * num_levels) {
    return Status::Corruption(path + ": per-level payload size mismatch");
  }

  int32_t num_correctors = 0;
  if (!reader.BeginSection("correctors") || !reader.Read(&num_correctors))
    return Corrupt(reader, path, "truncated corrector count");
  if (num_correctors != static_cast<int32_t>(num_levels))
    return Status::Corruption(path + ": corrector count mismatch");
  artifacts.correctors.resize(static_cast<std::size_t>(num_correctors));
  for (auto& corrector : artifacts.correctors) {
    if (!ReadCorrectorPayload(reader, &corrector))
      return Corrupt(reader, path, "truncated corrector payload");
  }
  if (!reader.EndSection() || !reader.ExpectChecksumFooter())
    return Corrupt(reader, path, "bad cascade footer");
  *out = std::move(artifacts);
  return Status::Ok();
}

namespace {

struct FormatInfo {
  const char* magic;
  const char* name;
  uint32_t checksum_version;
  uint32_t max_version;
};

constexpr FormatInfo kFormats[] = {
    {kMatrixMagic, "matrix", kVersionChecksum, kMatrixVersionAligned},
    {kPcaMagic, "pca model", kVersionChecksum, kVersionChecksum},
    {kPqMagic, "pq codebook", kVersionLayoutChecksum, kVersionLayoutChecksum},
    {kOpqMagic, "opq model", kVersionLayoutChecksum, kVersionLayoutChecksum},
    {kRqMagic, "rq codebook", kVersionLayoutChecksum, kVersionLayoutChecksum},
    {kSqMagic, "sq codebook", kVersionChecksum, kVersionChecksum},
    {kCorrectorMagic, "linear corrector", kVersionChecksum, kVersionChecksum},
    {kHnswMagic, "hnsw graph", kVersionChecksum, kVersionChecksum},
    {kIvfMagic, "ivf index", kIvfVersionChecksum, kIvfVersionStorage},
    {kDdcPcaMagic, "ddc-pca artifacts", kVersionChecksum, kVersionChecksum},
    {kDdcOpqMagic, "ddc-opq artifacts", kVersionLayoutChecksum,
     kVersionLayoutChecksum},
    {kDdcRqCascadeMagic, "ddc-rq-cascade artifacts", kVersionLayoutChecksum,
     kVersionLayoutChecksum},
};

}  // namespace

// Format-agnostic envelope walk: the section frames are self-describing
// ([name_len][name][payload_len][payload][crc]), so checksums can be
// verified without any knowledge of the payload layout — this is what
// `resinfer_inspect --verify` runs before anything tries a full load.
Status VerifyFile(const std::string& path, std::string* format_name) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound(path + ": cannot open for reading");
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  char magic[8];
  uint32_t version = 0;
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::fread(&version, sizeof(version), 1, f) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  const FormatInfo* format = nullptr;
  for (const auto& candidate : kFormats) {
    if (std::memcmp(magic, candidate.magic, 8) == 0) {
      format = &candidate;
      break;
    }
  }
  if (format == nullptr)
    return Status::InvalidArgument(path + ": not a resinfer persist file");
  if (format_name != nullptr) *format_name = format->name;
  if (version < 1 || version > format->max_version)
    return Status::Corruption(
        path + ": " + format->name + " version " + std::to_string(version) +
        " is outside this build's supported range [1, " +
        std::to_string(format->max_version) + "]");
  if (version < format->checksum_version)
    return Status::FailedPrecondition(
        path + ": " + format->name + " version " + std::to_string(version) +
        " predates checksums (v" + std::to_string(format->checksum_version) +
        "); only a full load can validate it");

  std::vector<uint32_t> section_crcs;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    uint8_t name_len = 0;
    if (std::fread(&name_len, 1, 1, f) != 1)
      return Status::Corruption(path + ": truncated before footer");
    if (name_len == 0) break;  // footer marker
    char name[256];
    if (std::fread(name, 1, name_len, f) != name_len)
      return Status::Corruption(path + ": truncated section name");
    name[name_len] = '\0';
    uint64_t payload_len = 0;
    if (std::fread(&payload_len, sizeof(payload_len), 1, f) != 1)
      return Status::Corruption(path + ": section '" + std::string(name) +
                                "': truncated length");
    uint32_t crc = 0;
    uint64_t remaining = payload_len;
    while (remaining > 0) {
      const std::size_t chunk = remaining < buf.size()
                                    ? static_cast<std::size_t>(remaining)
                                    : buf.size();
      if (std::fread(buf.data(), 1, chunk, f) != chunk)
        return Status::Corruption(path + ": section '" + std::string(name) +
                                  "': truncated payload");
      crc = simd::Crc32c(crc, buf.data(), chunk);
      remaining -= chunk;
    }
    uint32_t stored = 0;
    if (std::fread(&stored, sizeof(stored), 1, f) != 1)
      return Status::Corruption(path + ": section '" + std::string(name) +
                                "': truncated checksum");
    if (stored != crc)
      return Status::Corruption(path + ": section '" + std::string(name) +
                                "': checksum mismatch");
    section_crcs.push_back(stored);
  }
  uint32_t count = 0, digest = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1 ||
      std::fread(&digest, sizeof(digest), 1, f) != 1) {
    return Status::Corruption(path + ": truncated footer");
  }
  if (count != section_crcs.size())
    return Status::Corruption(path + ": footer section count mismatch");
  const uint32_t expected =
      section_crcs.empty()
          ? simd::Crc32c(0, nullptr, 0)
          : simd::Crc32c(0, section_crcs.data(),
                         section_crcs.size() * sizeof(uint32_t));
  if (digest != expected)
    return Status::Corruption(path + ": footer digest mismatch");
  // Trailing bytes after the footer are not part of any section and would
  // otherwise escape checksumming entirely.
  uint8_t extra = 0;
  if (std::fread(&extra, 1, 1, f) == 1)
    return Status::Corruption(path + ": trailing bytes after footer");
  return Status::Ok();
}

// Same envelope walk as VerifyFile but structural only: payloads are
// seeked over, not hashed, so listing a multi-GB index touches a few KB of
// frames. The offsets it reports are what the mmap loader aligns against.
Status ListSections(const std::string& path, std::vector<SectionInfo>* out,
                    std::string* format_name, uint32_t* version_out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound(path + ": cannot open for reading");
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  char magic[8];
  uint32_t version = 0;
  if (std::fread(magic, 1, 8, f) != 8 ||
      std::fread(&version, sizeof(version), 1, f) != 1) {
    return Status::Corruption(path + ": truncated header");
  }
  const FormatInfo* format = nullptr;
  for (const auto& candidate : kFormats) {
    if (std::memcmp(magic, candidate.magic, 8) == 0) {
      format = &candidate;
      break;
    }
  }
  if (format == nullptr)
    return Status::InvalidArgument(path + ": not a resinfer persist file");
  if (format_name != nullptr) *format_name = format->name;
  if (version_out != nullptr) *version_out = version;
  if (version < 1 || version > format->max_version)
    return Status::Corruption(
        path + ": " + format->name + " version " + std::to_string(version) +
        " is outside this build's supported range [1, " +
        std::to_string(format->max_version) + "]");
  if (version < format->checksum_version)
    return Status::FailedPrecondition(
        path + ": " + format->name + " version " + std::to_string(version) +
        " predates the section envelope; there are no sections to list");

  for (;;) {
    uint8_t name_len = 0;
    if (std::fread(&name_len, 1, 1, f) != 1)
      return Status::Corruption(path + ": truncated before footer");
    if (name_len == 0) break;  // footer marker
    char name[256];
    if (std::fread(name, 1, name_len, f) != name_len)
      return Status::Corruption(path + ": truncated section name");
    name[name_len] = '\0';
    uint64_t payload_len = 0;
    if (std::fread(&payload_len, sizeof(payload_len), 1, f) != 1)
      return Status::Corruption(path + ": section '" + std::string(name) +
                                "': truncated length");
    SectionInfo info;
    info.name = name;
    info.payload_offset = static_cast<int64_t>(std::ftell(f));
    info.payload_bytes = static_cast<int64_t>(payload_len);
    info.aligned =
        info.payload_offset % static_cast<int64_t>(kCacheLineBytes) == 0;
    if (info.payload_offset < 0 || info.payload_bytes < 0 ||
        std::fseek(f, static_cast<long>(payload_len), SEEK_CUR) != 0) {
      return Status::Corruption(path + ": section '" + std::string(name) +
                                "': truncated payload");
    }
    if (std::fread(&info.crc, sizeof(info.crc), 1, f) != 1)
      return Status::Corruption(path + ": section '" + std::string(name) +
                                "': truncated checksum");
    out->push_back(std::move(info));
  }
  uint32_t count = 0, digest = 0;
  if (std::fread(&count, sizeof(count), 1, f) != 1 ||
      std::fread(&digest, sizeof(digest), 1, f) != 1) {
    return Status::Corruption(path + ": truncated footer");
  }
  if (count != out->size())
    return Status::Corruption(path + ": footer section count mismatch");
  return Status::Ok();
}

}  // namespace resinfer::persist

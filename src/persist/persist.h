// File-level persistence for trained models and indexes.
//
// Every format starts with an 8-byte magic and a uint32 version so stale or
// mismatched files fail loudly. Loaders validate all counts and ids; a
// corrupted file returns a non-OK util::Status naming the file and the
// section that disagreed rather than aborting — see persist_test.cc and
// fault_injection_test.cc for the failure-injection suites.
//
// Current files are written with the checksummed envelope (per-section
// CRC32C + footer digest, docs/persistence.md) and published atomically:
// the payload lands in a temp file in the same directory, is fsync'd, and
// is renamed over the destination, so a crash mid-save never leaves a
// half-written file where a good one stood. All earlier format versions
// (back to v1) still load.
//
// The base vectors are persisted separately (SaveMatrix / vec_io's
// WriteFvecs): indexes and computers reference them by row id, so one copy
// of the vectors serves every method, mirroring the in-memory design.
#ifndef RESINFER_PERSIST_PERSIST_H_
#define RESINFER_PERSIST_PERSIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_rq_cascade.h"
#include "core/linear_corrector.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "quant/rq.h"
#include "quant/sq.h"
#include "storage/storage.h"
#include "util/status.h"

namespace resinfer::persist {

util::Status SaveMatrix(const std::string& path, const linalg::Matrix& m);
util::Status LoadMatrix(const std::string& path, linalg::Matrix* out);

// A matrix served from a storage backend instead of a heap copy: `matrix`
// is a non-owning view when the backend is mmap (the v3 aligned float
// payload read in place from the mapping `pin` keeps alive), an ordinary
// owning matrix otherwise. This is the raw-vector cold tier: computers
// hold `const linalg::Matrix*`, so a mapped base pages in only the rows
// the exact-rescore epilogue actually touches.
struct MappedMatrix {
  linalg::Matrix matrix;
  storage::Blob pin;  // empty for the memory backend
  // The backend actually serving the floats: requests for mmap on files
  // whose version predates the aligned payload (v1/v2) fall back to a
  // heap load, reported here.
  storage::StorageBackend backend = storage::StorageBackend::kMemory;
};

// Loads a matrix through the chosen backend (default: RESINFER_STORAGE).
// Zero-copy requires a v3 (aligned-payload) file; earlier versions load
// into memory regardless of the requested backend.
util::Status LoadMatrixMapped(
    const std::string& path, MappedMatrix* out,
    storage::StorageBackend backend = storage::DefaultStorageBackend());

util::Status SavePca(const std::string& path, const linalg::PcaModel& model);
util::Status LoadPca(const std::string& path, linalg::PcaModel* out);

util::Status SavePq(const std::string& path, const quant::PqCodebook& pq);
util::Status LoadPq(const std::string& path, quant::PqCodebook* out);

util::Status SaveOpq(const std::string& path, const quant::OpqModel& model);
util::Status LoadOpq(const std::string& path, quant::OpqModel* out);

util::Status SaveRq(const std::string& path, const quant::RqCodebook& rq);
util::Status LoadRq(const std::string& path, quant::RqCodebook* out);

util::Status SaveSq(const std::string& path, const quant::SqCodebook& sq);
util::Status LoadSq(const std::string& path, quant::SqCodebook* out);

// Standalone linear corrector (the trained artifact of core/ddc_any.h).
util::Status SaveCorrector(const std::string& path,
                           const core::LinearCorrector& corrector);
util::Status LoadCorrector(const std::string& path,
                           core::LinearCorrector* out);

util::Status SaveHnsw(const std::string& path, const index::HnswIndex& hnsw);
util::Status LoadHnsw(const std::string& path, index::HnswIndex* out);

util::Status SaveIvf(const std::string& path, const index::IvfIndex& ivf);

// How LoadIvf materializes the code section. kMemory deserializes into an
// aligned heap allocation (every format version). kMmap serves the records
// zero-copy from a read-only mapping of the file — possible only for v6
// files, whose record payload sits on a 64-byte-aligned offset; earlier
// versions fall back to the memory path. The loaded index reports which
// backend actually serves it via codes().storage_backend(). Scans are
// bit-identical across backends (asserted by the storage-parity suite):
// both expose the same bytes at the same alignment.
struct IvfLoadOptions {
  storage::StorageBackend backend = storage::DefaultStorageBackend();
};

// Two-argument form resolves the backend from RESINFER_STORAGE.
util::Status LoadIvf(const std::string& path, index::IvfIndex* out);
util::Status LoadIvf(const std::string& path, index::IvfIndex* out,
                     const IvfLoadOptions& options);
// Factory-style variant of the same load.
util::StatusOr<index::IvfIndex> LoadIvfIndex(
    const std::string& path, const IvfLoadOptions& options = IvfLoadOptions());

// Trained DDC artifacts (classifiers, codes, reconstruction errors).
util::Status SaveDdcPcaArtifacts(const std::string& path,
                                 const core::DdcPcaArtifacts& artifacts);
util::Status LoadDdcPcaArtifacts(const std::string& path,
                                 core::DdcPcaArtifacts* out);

util::Status SaveDdcOpqArtifacts(const std::string& path,
                                 const core::DdcOpqArtifacts& artifacts);
util::Status LoadDdcOpqArtifacts(const std::string& path,
                                 core::DdcOpqArtifacts* out);

util::Status SaveDdcRqCascadeArtifacts(
    const std::string& path, const core::DdcRqCascadeArtifacts& artifacts);
util::Status LoadDdcRqCascadeArtifacts(const std::string& path,
                                       core::DdcRqCascadeArtifacts* out);

// Verifies the checksummed envelope of any resinfer persist file without
// constructing the object: recomputes every section CRC and the footer
// digest, reporting the first corrupt section by name. Returns
// FailedPrecondition for files whose version predates checksums (they can
// only be validated by a full load), InvalidArgument for unknown magics.
// On success `*format_name` (if non-null) receives the human name of the
// format ("ivf index", "pq codebook", ...).
util::Status VerifyFile(const std::string& path,
                        std::string* format_name = nullptr);

// One section frame of a checksummed persist file, as ListSections reports
// it: where the payload starts in the file, how long it is, and its stored
// CRC. `aligned` is payload_offset % 64 == 0 — the property the v6 layout
// guarantees for the section carrying the code records.
struct SectionInfo {
  std::string name;
  int64_t payload_offset = 0;
  int64_t payload_bytes = 0;
  uint32_t crc = 0;
  bool aligned = false;
};

// Structural walk of the checksummed envelope (no CRC recomputation —
// pair with VerifyFile for content verification): reports the format,
// version, and every section frame. The same FailedPrecondition /
// InvalidArgument contract as VerifyFile applies to pre-checksum versions
// and unknown magics. `resinfer_inspect` renders this as the per-section
// size/alignment table.
util::Status ListSections(const std::string& path,
                          std::vector<SectionInfo>* out,
                          std::string* format_name = nullptr,
                          uint32_t* version = nullptr);

// Fault injection for tests: saves fail (as if the disk were full) once
// they would write more than `bytes`; negative disables. Affects every
// Save* in this process until reset — pair with a scoped reset in tests.
void SetWriteFailureForTesting(int64_t bytes);

}  // namespace resinfer::persist

#endif  // RESINFER_PERSIST_PERSIST_H_

// File-level persistence for trained models and indexes.
//
// Every format starts with an 8-byte magic and a uint32 version so stale or
// mismatched files fail loudly. Loaders validate all counts and ids; a
// corrupted file returns false (with a message in *error) rather than
// aborting — see persist_test.cc for the failure-injection suite.
//
// The base vectors are persisted separately (SaveMatrix / vec_io's
// WriteFvecs): indexes and computers reference them by row id, so one copy
// of the vectors serves every method, mirroring the in-memory design.
#ifndef RESINFER_PERSIST_PERSIST_H_
#define RESINFER_PERSIST_PERSIST_H_

#include <string>

#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_rq_cascade.h"
#include "core/linear_corrector.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "quant/rq.h"
#include "quant/sq.h"

namespace resinfer::persist {

bool SaveMatrix(const std::string& path, const linalg::Matrix& m,
                std::string* error);
bool LoadMatrix(const std::string& path, linalg::Matrix* out,
                std::string* error);

bool SavePca(const std::string& path, const linalg::PcaModel& model,
             std::string* error);
bool LoadPca(const std::string& path, linalg::PcaModel* out,
             std::string* error);

bool SavePq(const std::string& path, const quant::PqCodebook& pq,
            std::string* error);
bool LoadPq(const std::string& path, quant::PqCodebook* out,
            std::string* error);

bool SaveOpq(const std::string& path, const quant::OpqModel& model,
             std::string* error);
bool LoadOpq(const std::string& path, quant::OpqModel* out,
             std::string* error);

bool SaveRq(const std::string& path, const quant::RqCodebook& rq,
            std::string* error);
bool LoadRq(const std::string& path, quant::RqCodebook* out,
            std::string* error);

bool SaveSq(const std::string& path, const quant::SqCodebook& sq,
            std::string* error);
bool LoadSq(const std::string& path, quant::SqCodebook* out,
            std::string* error);

// Standalone linear corrector (the trained artifact of core/ddc_any.h).
bool SaveCorrector(const std::string& path,
                   const core::LinearCorrector& corrector,
                   std::string* error);
bool LoadCorrector(const std::string& path, core::LinearCorrector* out,
                   std::string* error);

bool SaveHnsw(const std::string& path, const index::HnswIndex& hnsw,
              std::string* error);
bool LoadHnsw(const std::string& path, index::HnswIndex* out,
              std::string* error);

bool SaveIvf(const std::string& path, const index::IvfIndex& ivf,
             std::string* error);
bool LoadIvf(const std::string& path, index::IvfIndex* out,
             std::string* error);

// Trained DDC artifacts (classifiers, codes, reconstruction errors).
bool SaveDdcPcaArtifacts(const std::string& path,
                         const core::DdcPcaArtifacts& artifacts,
                         std::string* error);
bool LoadDdcPcaArtifacts(const std::string& path,
                         core::DdcPcaArtifacts* out, std::string* error);

bool SaveDdcOpqArtifacts(const std::string& path,
                         const core::DdcOpqArtifacts& artifacts,
                         std::string* error);
bool LoadDdcOpqArtifacts(const std::string& path,
                         core::DdcOpqArtifacts* out, std::string* error);

bool SaveDdcRqCascadeArtifacts(const std::string& path,
                               const core::DdcRqCascadeArtifacts& artifacts,
                               std::string* error);
bool LoadDdcRqCascadeArtifacts(const std::string& path,
                               core::DdcRqCascadeArtifacts* out,
                               std::string* error);

}  // namespace resinfer::persist

#endif  // RESINFER_PERSIST_PERSIST_H_

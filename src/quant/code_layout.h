// Code layout: how a quantizer's per-point sub-codes map onto bytes.
//
// PQ/RQ accept nbits in [1, 8] at train time, but until this header existed
// every consumer assumed one byte per sub-code, so nbits < 8 silently wasted
// half (or more) of the code storage and code_size() lied about the record
// width. CodeLayout makes the packing explicit:
//
//   kBytePerCode — one byte per sub-code, any nbits in [1, 8]. The legacy
//     layout; every persisted pre-v2 quantizer file loads as this.
//   kPacked4     — two sub-codes per byte (even sub-code in the low nibble),
//     nbits <= 4. The fast-scan operand: 16-entry sub-tables fit a SIMD
//     register, so ADC accumulation runs as in-register shuffles
//     (simd::PqAdcFastScan) instead of per-code gathers.
//
// Accessors below are the single source of truth for nibble addressing;
// every reader of raw code bytes (estimators, the RQ cascade, tests) goes
// through CodeAt instead of indexing code[s] directly.
#ifndef RESINFER_QUANT_CODE_LAYOUT_H_
#define RESINFER_QUANT_CODE_LAYOUT_H_

#include <cstdint>

namespace resinfer::quant {

enum class CodePacking : uint8_t {
  kBytePerCode = 0,
  kPacked4 = 1,
};

struct CodeLayout {
  int bits = 8;
  CodePacking packing = CodePacking::kBytePerCode;

  // The layout Train picks for a bits setting: pack pairs whenever the
  // sub-codes fit a nibble, one byte per sub-code otherwise (5..8 bits
  // round up to the byte the hardware addresses anyway).
  static CodeLayout ForBits(int bits) {
    return {bits, bits <= 4 ? CodePacking::kPacked4 : CodePacking::kBytePerCode};
  }

  bool packed() const { return packing == CodePacking::kPacked4; }

  // True byte count of a record of `num_codes` sub-codes — the honest
  // code_size(). Packed pairs share a byte; an odd trailing sub-code keeps
  // its high nibble zero.
  int64_t CodeBytes(int num_codes) const {
    return packed() ? (static_cast<int64_t>(num_codes) + 1) / 2
                    : static_cast<int64_t>(num_codes);
  }

  bool operator==(const CodeLayout& other) const {
    return bits == other.bits && packing == other.packing;
  }
  bool operator!=(const CodeLayout& other) const { return !(*this == other); }
};

// Sub-code s of a raw code record under `layout`.
inline uint8_t CodeAt(const uint8_t* code, int s, const CodeLayout& layout) {
  if (!layout.packed()) return code[s];
  const uint8_t byte = code[s >> 1];
  return (s & 1) ? static_cast<uint8_t>(byte >> 4)
                 : static_cast<uint8_t>(byte & 0x0f);
}

// Writes sub-code s (value < 16 when packed) into a record whose other
// nibble of the shared byte must be preserved.
inline void SetCodeAt(uint8_t* code, int s, uint8_t value,
                      const CodeLayout& layout) {
  if (!layout.packed()) {
    code[s] = value;
    return;
  }
  uint8_t& byte = code[s >> 1];
  byte = (s & 1) ? static_cast<uint8_t>((byte & 0x0f) | (value << 4))
                 : static_cast<uint8_t>((byte & 0xf0) | (value & 0x0f));
}

// Packs m byte-per-code sub-codes (each < 16) into (m + 1) / 2 bytes; the
// pad nibble of an odd tail byte is zero so packed records fingerprint
// deterministically.
inline void PackCodes4(const uint8_t* unpacked, int m, uint8_t* packed) {
  int s = 0;
  for (; s + 2 <= m; s += 2) {
    packed[s >> 1] =
        static_cast<uint8_t>((unpacked[s] & 0x0f) | (unpacked[s + 1] << 4));
  }
  if (s < m) packed[s >> 1] = static_cast<uint8_t>(unpacked[s] & 0x0f);
}

inline void UnpackCodes4(const uint8_t* packed, int m, uint8_t* unpacked) {
  for (int s = 0; s < m; ++s) {
    const uint8_t byte = packed[s >> 1];
    unpacked[s] = (s & 1) ? static_cast<uint8_t>(byte >> 4)
                          : static_cast<uint8_t>(byte & 0x0f);
  }
}

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_CODE_LAYOUT_H_

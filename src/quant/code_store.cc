#include "quant/code_store.h"

#include "util/macros.h"

namespace resinfer::quant {

CodeStore::CodeStore(int64_t n, int64_t code_size, int num_sidecars,
                     std::string tag, CodePacking packing)
    : n_(n),
      code_size_(code_size),
      num_sidecars_(num_sidecars),
      stride_(CodeRecordStride(code_size, num_sidecars)),
      packing_(packing),
      tag_(std::move(tag)) {
  RESINFER_CHECK(n >= 0 && code_size > 0 && num_sidecars >= 0);
  data_ = storage::Blob::AllocateAligned(n * stride_, &mutable_data_);
}

CodeStore CodeStore::PermutedBy(const std::vector<int64_t>& order) const {
  CodeStore out(static_cast<int64_t>(order.size()), code_size_, num_sidecars_,
                tag_, packing_);
  for (std::size_t j = 0; j < order.size(); ++j) {
    const int64_t i = order[j];
    RESINFER_CHECK(i >= 0 && i < n_);
    std::memcpy(out.mutable_record(static_cast<int64_t>(j)), record(i),
                static_cast<std::size_t>(stride_));
  }
  return out;
}

CodeStore CodeStore::ShareView() const {
  CodeStore view;
  view.n_ = n_;
  view.code_size_ = code_size_;
  view.num_sidecars_ = num_sidecars_;
  view.stride_ = stride_;
  view.packing_ = packing_;
  view.backend_ = backend_;
  view.tag_ = tag_;
  view.data_ = data_;  // shares the owner; no bytes move
  // mutable_data_ stays null: once a second handle to the bytes exists,
  // treating them as frozen is what makes sharing race-free.
  return view;
}

CodeStore CodeStore::Clone() const {
  CodeStore copy(n_, code_size_, num_sidecars_, tag_, packing_);
  if (n_ > 0) {
    std::memcpy(copy.mutable_data_, data_.data(),
                static_cast<std::size_t>(data_.size()));
  }
  return copy;
}

namespace {

util::Status ValidateLayout(int64_t n, int64_t code_size, int num_sidecars,
                            int64_t payload_bytes, int64_t* stride) {
  const auto fail = [](const char* what) {
    return util::Status::Corruption(what);
  };
  if (n < 0) return fail("negative code-store size");
  // Bound the declared layout before any arithmetic: untrusted (persisted)
  // values must not be able to overflow n * stride into a size that
  // happens to match the payload.
  constexpr int64_t kMaxCodeSize = int64_t{1} << 32;
  if (code_size <= 0 || code_size > kMaxCodeSize) {
    return fail("implausible code size");
  }
  if (num_sidecars < 0 || num_sidecars > 4096) {
    return fail("implausible sidecar count");
  }
  *stride = CodeRecordStride(code_size, num_sidecars);
  if (payload_bytes / *stride != n || payload_bytes % *stride != 0) {
    return fail("code payload does not match n * stride");
  }
  return util::Status::Ok();
}

}  // namespace

util::Status CodeStore::FromParts(int64_t n, int64_t code_size,
                                  int num_sidecars, std::string tag,
                                  std::vector<uint8_t> data, CodeStore* out,
                                  CodePacking packing) {
  return FromBlob(n, code_size, num_sidecars, std::move(tag),
                  storage::Blob::TakeVector(std::move(data)), out, packing,
                  storage::StorageBackend::kMemory);
}

util::Status CodeStore::FromBlob(int64_t n, int64_t code_size,
                                 int num_sidecars, std::string tag,
                                 storage::Blob data, CodeStore* out,
                                 CodePacking packing,
                                 storage::StorageBackend backend) {
  int64_t stride = 0;
  RESINFER_RETURN_IF_ERROR(
      ValidateLayout(n, code_size, num_sidecars, data.size(), &stride));
  CodeStore store;
  store.n_ = n;
  store.code_size_ = code_size;
  store.num_sidecars_ = num_sidecars;
  store.stride_ = stride;
  store.packing_ = packing;
  store.backend_ = backend;
  store.tag_ = std::move(tag);
  store.data_ = std::move(data);
  *out = std::move(store);
  return util::Status::Ok();
}

uint64_t FingerprintBytes(const void* data, std::size_t bytes,
                          uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FingerprintArray(const void* data, std::size_t bytes,
                          uint64_t seed) {
  constexpr std::size_t kChunk = 4096;
  constexpr std::size_t kMaxChunks = 16;
  uint64_t h = FingerprintBytes(&bytes, sizeof(bytes), seed);
  if (bytes <= kChunk * kMaxChunks) return FingerprintBytes(data, bytes, h);
  const auto* p = static_cast<const uint8_t*>(data);
  const std::size_t step = (bytes - kChunk) / (kMaxChunks - 1);
  for (std::size_t c = 0; c < kMaxChunks; ++c) {
    h = FingerprintBytes(p + c * step, kChunk, h);
  }
  return h;
}

std::string MakeCodeTag(const std::string& method, int64_t code_size,
                        int num_sidecars, int64_t n, uint64_t fingerprint,
                        CodePacking packing) {
  std::string tag = method + "/cs" + std::to_string(code_size) + "/sc" +
                    std::to_string(num_sidecars) + "/n" + std::to_string(n) +
                    "/f" + std::to_string(fingerprint);
  if (packing == CodePacking::kPacked4) tag += "/pk4";
  return tag;
}

}  // namespace resinfer::quant

// CodeStore: fixed-stride packed per-point records for code-resident scans.
//
// Every distance-estimation method in this library keeps its quantized
// codes in an id-indexed array plus one or more per-point float "sidecar"
// features (reconstruction errors, reconstruction norms — the corrector
// inputs). The refinement hot loop therefore performs one random memory
// access per candidate even when the candidate *ids* are bucket-contiguous
// (the PR 2 CSR layout). A CodeStore packs everything a method needs per
// point into one fixed-stride record:
//
//   record(i) = [ code bytes (code_size) | pad to 4 | sidecar floats ]
//
// so that an IVF bucket can own a bucket-contiguous copy (see
// IvfIndex::AttachCodes) and estimators can stream records sequentially via
// DistanceComputer::EstimateBatchCodes instead of gathering by id. Records
// start at 4-byte-aligned offsets, so the sidecar floats (and float-typed
// code payloads, e.g. the PCA-rotated rows DDCpca/DDCres use) can be read
// in place.
//
// Ownership (PR 10): the record bytes live in a storage::Blob — a
// shared-ownership handle whose backing may be a heap allocation or a
// slice of an mmap'd index file. A store is *mutable* only while it was
// built by the filling constructor (or Clone/PermutedBy) and still owns
// its bytes exclusively; ShareView() hands out zero-copy immutable views
// that keep the bytes alive (the attach path IvfIndex and the serving
// layer use instead of deep-copying multi-GB code sections), and
// FromBlob() wraps persisted bytes — including mmap slices — without
// copying. The class is move-only: an accidental copy of a code section is
// always a bug; say Clone() or ShareView() to state which one you meant.
//
// The `tag` string identifies the producing method and layout
// (MakeCodeTag); indexes compare it against DistanceComputer::code_tag()
// before routing a scan through the code-resident path, so a store built
// for one method is never fed to another.
#ifndef RESINFER_QUANT_CODE_STORE_H_
#define RESINFER_QUANT_CODE_STORE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "quant/code_layout.h"
#include "storage/storage.h"
#include "util/macros.h"
#include "util/status.h"

namespace resinfer::quant {

// Byte offset of the sidecar floats inside a record: the packed code,
// padded to the next 4-byte boundary.
constexpr int64_t CodeSidecarOffset(int64_t code_size) {
  return (code_size + 3) & ~int64_t{3};
}

// Bytes per record. With zero sidecars the record is just the padded code,
// so successive records stay 4-byte aligned either way.
constexpr int64_t CodeRecordStride(int64_t code_size, int num_sidecars) {
  return CodeSidecarOffset(code_size) +
         static_cast<int64_t>(num_sidecars) * static_cast<int64_t>(sizeof(float));
}

// Sidecar floats of a record laid out with the given code_size. The store
// guarantees 4-byte alignment of this address.
inline const float* RecordSidecars(const uint8_t* record, int64_t code_size) {
  return reinterpret_cast<const float*>(record + CodeSidecarOffset(code_size));
}

class CodeStore {
 public:
  CodeStore() = default;
  // n zero-initialized records in a fresh 64-byte-aligned heap allocation;
  // fill with SetCode / SetSidecar. `packing` declares how the code bytes
  // encode sub-codes (quant/code_layout.h) so a packed 4-bit store can
  // never be mistaken for a byte-per-code one — scan routing checks the
  // tag, persist validates the explicit field.
  CodeStore(int64_t n, int64_t code_size, int num_sidecars, std::string tag,
            CodePacking packing = CodePacking::kBytePerCode);

  // Move-only (see the header comment): copies must be spelled Clone()
  // (deep, mutable) or ShareView() (zero-copy, immutable).
  CodeStore(CodeStore&&) noexcept = default;
  CodeStore& operator=(CodeStore&&) noexcept = default;
  CodeStore(const CodeStore&) = delete;
  CodeStore& operator=(const CodeStore&) = delete;

  bool empty() const { return n_ == 0; }
  int64_t size() const { return n_; }
  int64_t code_size() const { return code_size_; }
  int num_sidecars() const { return num_sidecars_; }
  CodePacking packing() const { return packing_; }
  int64_t sidecar_offset() const { return CodeSidecarOffset(code_size_); }
  int64_t stride() const { return stride_; }
  const std::string& tag() const { return tag_; }

  const uint8_t* data() const { return data_.data(); }
  int64_t data_bytes() const { return data_.size(); }

  // The storage handle backing the records. Sharing it (directly or via
  // ShareView) keeps the bytes alive — this is what the serving layer pins
  // per dispatched group.
  const storage::Blob& storage() const { return data_; }
  // Where the record bytes physically live: kMemory for built/deserialized
  // stores, kMmap for stores wrapped around a mapped file slice.
  storage::StorageBackend storage_backend() const { return backend_; }
  // True for stores created by ShareView/FromBlob: the records are
  // immutable and (possibly) shared, so the mutation API is off-limits.
  bool is_view() const { return mutable_data_ == nullptr && n_ > 0; }

  const uint8_t* record(int64_t i) const { return data_.data() + i * stride_; }
  uint8_t* mutable_record(int64_t i) {
    RESINFER_DCHECK(mutable_data_ != nullptr);
    return mutable_data_ + i * stride_;
  }

  void SetCode(int64_t i, const uint8_t* code) {
    std::memcpy(mutable_record(i), code, static_cast<std::size_t>(code_size_));
  }
  void SetSidecar(int64_t i, int feature, float value) {
    std::memcpy(mutable_record(i) + sidecar_offset() +
                    static_cast<int64_t>(feature) * sizeof(float),
                &value, sizeof(float));
  }
  float Sidecar(int64_t i, int feature) const {
    return RecordSidecars(record(i), code_size_)[feature];
  }

  // New store with out.record(j) == record(order[j]) — the bucket
  // permutation. Every entry of `order` must lie in [0, size()).
  CodeStore PermutedBy(const std::vector<int64_t>& order) const;

  // Zero-copy immutable view of the same records: shares the storage
  // handle, so no bytes move and the backing (heap block or mmap) stays
  // alive as long as any view does. This is the attach/pin path — the
  // alternative to the deep copy AttachCodes used to make.
  CodeStore ShareView() const;

  // Deep, independently mutable copy (the old copy-constructor semantics,
  // now explicit).
  CodeStore Clone() const;

  // Rebuilds a store from persisted parts; validates that `data` is exactly
  // n records of the declared layout (rejecting truncated or oversized
  // payloads) and returns a non-OK Status otherwise — the parts come off
  // disk, so nothing here may abort. The vector is adopted without copying.
  static util::Status FromParts(int64_t n, int64_t code_size,
                                int num_sidecars, std::string tag,
                                std::vector<uint8_t> data, CodeStore* out,
                                CodePacking packing =
                                    CodePacking::kBytePerCode);

  // Same validation as FromParts over an existing storage handle — the
  // zero-copy load path: `data` is typically a 64-byte-aligned slice of an
  // mmap'd v6 index file, and `backend` records where those bytes live.
  // The resulting store is an immutable view.
  static util::Status FromBlob(int64_t n, int64_t code_size, int num_sidecars,
                               std::string tag, storage::Blob data,
                               CodeStore* out,
                               CodePacking packing = CodePacking::kBytePerCode,
                               storage::StorageBackend backend =
                                   storage::StorageBackend::kMemory);

 private:
  int64_t n_ = 0;
  int64_t code_size_ = 0;
  int num_sidecars_ = 0;
  int64_t stride_ = 0;
  CodePacking packing_ = CodePacking::kBytePerCode;
  storage::StorageBackend backend_ = storage::StorageBackend::kMemory;
  std::string tag_;
  // Record bytes. stride_ is a multiple of 4 and every backing starts at
  // least 4-byte aligned (64 for built stores and v6 mmap slices), so
  // in-record floats are always readable in place.
  storage::Blob data_;
  // Non-null only while this store exclusively owns freshly built bytes;
  // views and blob-wrapped stores leave it null, making mutation a
  // (debug-checked) contract violation rather than a data race.
  uint8_t* mutable_data_ = nullptr;
};

// FNV-1a over a byte range; chain calls through `seed` to fingerprint
// several arrays as one value.
inline constexpr uint64_t kFingerprintSeed = 1469598103934665603ull;
uint64_t FingerprintBytes(const void* data, std::size_t bytes,
                          uint64_t seed = kFingerprintSeed);

// Bounded-cost array fingerprint: hashes the length plus at most ~64KB of
// evenly spaced chunks, so tagging a computer stays cheap even when the
// records are the whole rotated base (DDCpca/DDCres at millions of rows).
// Retrained artifacts differ essentially everywhere, so sampling still
// catches staleness; this is a guard against accidental store/computer
// mismatch, not an integrity MAC.
uint64_t FingerprintArray(const void* data, std::size_t bytes,
                          uint64_t seed = kFingerprintSeed);

// Canonical tag for a method's store: method name, the layout numbers that
// must match at scan time, and a fingerprint of the content the records
// were packed from. Layout alone is not enough — retraining a codebook
// with the same shape produces byte-different codes, and a stale persisted
// store must fall back to the gather path, not be streamed as current.
// Packed stores carry a "/pk4" marker (byte-per-code tags are unchanged so
// pre-existing persisted stores keep matching their computers): a packed
// store can therefore never tag-match a byte-per-code scan or vice versa.
std::string MakeCodeTag(const std::string& method, int64_t code_size,
                        int num_sidecars, int64_t n, uint64_t fingerprint,
                        CodePacking packing = CodePacking::kBytePerCode);

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_CODE_STORE_H_

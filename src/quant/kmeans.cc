#include "quant/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace resinfer::quant {

namespace {

// k-means++: each next seed is drawn proportionally to its squared distance
// from the nearest already-chosen seed.
linalg::Matrix SeedPlusPlus(const float* data, int64_t n, int64_t d, int k,
                            Rng& rng) {
  linalg::Matrix centroids(k, d);
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());

  int64_t first = static_cast<int64_t>(rng.UniformInt(n));
  std::copy(data + first * d, data + (first + 1) * d, centroids.Row(0));

  for (int c = 1; c < k; ++c) {
    const float* last = centroids.Row(c - 1);
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double dist = simd::L2Sqr(data + i * d, last,
                                static_cast<std::size_t>(d));
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    int64_t chosen = n - 1;
    if (total > 0.0) {
      double target = rng.Uniform() * total;
      double acc = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int64_t>(rng.UniformInt(n));
    }
    std::copy(data + chosen * d, data + (chosen + 1) * d, centroids.Row(c));
  }
  return centroids;
}

}  // namespace

KMeansResult KMeans(const float* data, int64_t n, int64_t d, int k,
                    const KMeansOptions& options) {
  RESINFER_CHECK(n >= 1 && d >= 1);
  RESINFER_CHECK(k >= 1 && k <= n);

  Rng rng(options.seed);
  KMeansResult result;
  result.centroids = SeedPlusPlus(data, n, d, k, rng);
  result.assignments.assign(n, 0);

  std::vector<float> best_dist(n, 0.0f);
  double prev_inertia = std::numeric_limits<double>::max();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    ParallelForEach(n, [&](int64_t i, int /*thread*/) {
      float dist = 0.0f;
      result.assignments[i] =
          NearestCentroid(result.centroids, data + i * d, &dist);
      best_dist[i] = dist;
    });
    double inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) inertia += best_dist[i];
    result.inertia = inertia;

    // Update step (double accumulation).
    std::vector<double> sums(static_cast<std::size_t>(k) * d, 0.0);
    std::vector<int64_t> counts(k, 0);
    for (int64_t i = 0; i < n; ++i) {
      int32_t c = result.assignments[i];
      ++counts[c];
      const float* row = data + i * d;
      double* sum = sums.data() + static_cast<std::size_t>(c) * d;
      for (int64_t j = 0; j < d; ++j) sum[j] += row[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the globally farthest point.
        int64_t farthest = 0;
        for (int64_t i = 1; i < n; ++i)
          if (best_dist[i] > best_dist[farthest]) farthest = i;
        std::copy(data + farthest * d, data + (farthest + 1) * d,
                  result.centroids.Row(c));
        best_dist[farthest] = 0.0f;  // avoid re-picking the same point
        continue;
      }
      float* centroid = result.centroids.Row(c);
      double inv = 1.0 / static_cast<double>(counts[c]);
      const double* sum = sums.data() + static_cast<std::size_t>(c) * d;
      for (int64_t j = 0; j < d; ++j)
        centroid[j] = static_cast<float>(sum[j] * inv);
    }

    if (prev_inertia < std::numeric_limits<double>::max() &&
        prev_inertia - inertia <= options.tolerance * prev_inertia) {
      break;
    }
    prev_inertia = inertia;
  }

  // Final assignment against the last centroid update.
  ParallelForEach(n, [&](int64_t i, int /*thread*/) {
    float dist = 0.0f;
    result.assignments[i] =
        NearestCentroid(result.centroids, data + i * d, &dist);
    best_dist[i] = dist;
  });
  result.inertia = 0.0;
  for (int64_t i = 0; i < n; ++i) result.inertia += best_dist[i];
  return result;
}

int32_t NearestCentroid(const linalg::Matrix& centroids, const float* x,
                        float* distance) {
  const std::size_t d = static_cast<std::size_t>(centroids.cols());
  int32_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (int64_t c = 0; c < centroids.rows(); ++c) {
    float dist = simd::L2Sqr(centroids.Row(c), x, d);
    if (dist < best_dist) {
      best_dist = dist;
      best = static_cast<int32_t>(c);
    }
  }
  if (distance != nullptr) *distance = best_dist;
  return best;
}

void NearestCentroidsBatch(const linalg::Matrix& centroids,
                           const linalg::Matrix& queries, int64_t begin,
                           int64_t count, int nprobe, int32_t* out) {
  const std::size_t d = static_cast<std::size_t>(centroids.cols());
  const int64_t num_centroids = centroids.rows();
  RESINFER_CHECK(nprobe > 0 && nprobe <= num_centroids);
  RESINFER_CHECK(queries.cols() == centroids.cols());
  RESINFER_CHECK(begin >= 0 && begin + count <= queries.rows());

  // Queries per tile pass; bounds the live heaps and the tile output.
  constexpr int kTile = 16;
  using Entry = std::pair<float, int32_t>;  // (distance, id), max-heap

  for (int64_t q0 = 0; q0 < count; q0 += kTile) {
    const int nq = static_cast<int>(std::min<int64_t>(kTile, count - q0));
    const float* query_ptrs[kTile];
    for (int g = 0; g < nq; ++g) {
      query_ptrs[g] = queries.Row(begin + q0 + g);
    }
    std::priority_queue<Entry> heaps[kTile];

    // Same per-query centroid order and same keep-if-strictly-closer heap
    // logic as NearestCentroids, so ties resolve identically; the tile
    // kernel's lanes are bit-identical to the single-pair L2Sqr it uses.
    const auto consider = [&heaps, nprobe, nq](int64_t c,
                                               const float* dist) {
      for (int g = 0; g < nq; ++g) {
        auto& heap = heaps[g];
        if (static_cast<int>(heap.size()) < nprobe) {
          heap.emplace(dist[g], static_cast<int32_t>(c));
        } else if (dist[g] < heap.top().first) {
          heap.pop();
          heap.emplace(dist[g], static_cast<int32_t>(c));
        }
      }
    };

    float tile[kTile * simd::kBatchWidth];
    float single[kTile];
    const float* rows[simd::kBatchWidth];
    int64_t c = 0;
    for (; c + simd::kBatchWidth <= num_centroids;
         c += simd::kBatchWidth) {
      for (int r = 0; r < simd::kBatchWidth; ++r) {
        rows[r] = centroids.Row(c + r);
      }
      simd::L2SqrTile(query_ptrs, nq, rows, d, tile);
      for (int r = 0; r < simd::kBatchWidth; ++r) {
        for (int g = 0; g < nq; ++g) {
          single[g] = tile[g * simd::kBatchWidth + r];
        }
        consider(c + r, single);
      }
    }
    for (; c < num_centroids; ++c) {
      for (int g = 0; g < nq; ++g) {
        single[g] = simd::L2Sqr(centroids.Row(c), query_ptrs[g], d);
      }
      consider(c, single);
    }

    for (int g = 0; g < nq; ++g) {
      int32_t* row = out + (q0 + g) * nprobe;
      auto& heap = heaps[g];
      for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
        row[i] = heap.top().second;
        heap.pop();
      }
    }
  }
}

std::vector<int32_t> NearestCentroids(const linalg::Matrix& centroids,
                                      const float* x, int nprobe) {
  const std::size_t d = static_cast<std::size_t>(centroids.cols());
  nprobe = static_cast<int>(
      std::min<int64_t>(nprobe, centroids.rows()));
  RESINFER_CHECK(nprobe > 0);

  using Entry = std::pair<float, int32_t>;  // (distance, id), max-heap
  std::priority_queue<Entry> heap;
  for (int64_t c = 0; c < centroids.rows(); ++c) {
    float dist = simd::L2Sqr(centroids.Row(c), x, d);
    if (static_cast<int>(heap.size()) < nprobe) {
      heap.emplace(dist, static_cast<int32_t>(c));
    } else if (dist < heap.top().first) {
      heap.pop();
      heap.emplace(dist, static_cast<int32_t>(c));
    }
  }
  std::vector<int32_t> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[i] = heap.top().second;
    heap.pop();
  }
  return out;
}

}  // namespace resinfer::quant

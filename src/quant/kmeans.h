// Lloyd's k-means with k-means++ seeding.
//
// Used as the coarse quantizer of the IVF index and as the sub-space
// codebook trainer of PQ/OPQ. Deterministic given the seed; empty clusters
// are re-seeded to the point farthest from its centroid.
#ifndef RESINFER_QUANT_KMEANS_H_
#define RESINFER_QUANT_KMEANS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace resinfer::quant {

struct KMeansOptions {
  int max_iterations = 25;
  // Stop when the relative decrease of the objective falls below this.
  double tolerance = 1e-4;
  uint64_t seed = 42;
};

struct KMeansResult {
  linalg::Matrix centroids;          // k x d
  std::vector<int32_t> assignments;  // n
  double inertia = 0.0;              // sum of squared distances
  int iterations = 0;
};

// Requires 1 <= k <= n.
KMeansResult KMeans(const float* data, int64_t n, int64_t d, int k,
                    const KMeansOptions& options = KMeansOptions());

// Index of the centroid closest to x (squared L2); optionally outputs the
// distance.
int32_t NearestCentroid(const linalg::Matrix& centroids, const float* x,
                        float* distance = nullptr);

// Indices of the `nprobe` closest centroids, ascending by distance.
std::vector<int32_t> NearestCentroids(const linalg::Matrix& centroids,
                                      const float* x, int nprobe);

// Query-tiled ranking for the multi-query serving path: fills
// out[i * nprobe .. (i+1) * nprobe) with NearestCentroids(centroids,
// queries.Row(begin + i), nprobe) for i in [0, count) — identical ids in
// identical order (distances per (query, centroid) are bit-identical via
// the tiled kernel contract, and the selection logic is the same) — while
// streaming each centroid row once per group of queries instead of once
// per query. Requires 1 <= nprobe <= centroids.rows().
void NearestCentroidsBatch(const linalg::Matrix& centroids,
                           const linalg::Matrix& queries, int64_t begin,
                           int64_t count, int nprobe, int32_t* out);

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_KMEANS_H_

#include "quant/opq.h"

#include <algorithm>
#include <vector>

#include "linalg/orthogonal.h"
#include "linalg/svd.h"
#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace resinfer::quant {

namespace {

// M = sum_i x_i y_i^T accumulated in double, returned as float matrix.
// x rows come from `x` (n x d), y rows from `y` (n x d).
linalg::Matrix CrossCorrelation(const float* x, const linalg::Matrix& y,
                                int64_t n, int64_t d) {
  std::vector<double> acc(static_cast<std::size_t>(d) * d, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const float* xi = x + i * d;
    const float* yi = y.Row(i);
    for (int64_t r = 0; r < d; ++r) {
      double xr = xi[r];
      double* row = acc.data() + static_cast<std::size_t>(r) * d;
      for (int64_t c = 0; c < d; ++c) row[c] += xr * yi[c];
    }
  }
  linalg::Matrix m(d, d);
  for (int64_t r = 0; r < d; ++r)
    for (int64_t c = 0; c < d; ++c)
      m.At(r, c) =
          static_cast<float>(acc[static_cast<std::size_t>(r) * d + c]);
  return m;
}

}  // namespace

OpqModel OpqModel::Train(const float* data, int64_t n, int64_t d,
                         const OpqOptions& options) {
  RESINFER_CHECK(n >= 1 && d >= 1);

  // Subsample once; all alternating rounds reuse the same sample.
  std::vector<float> sampled;
  const float* train = data;
  int64_t train_n = n;
  if (n > options.pq.max_train_rows) {
    Rng rng(options.pq.sample_seed);
    std::vector<int64_t> pick =
        rng.SampleWithoutReplacement(n, options.pq.max_train_rows);
    sampled.resize(pick.size() * static_cast<std::size_t>(d));
    for (std::size_t i = 0; i < pick.size(); ++i) {
      const float* src = data + pick[i] * d;
      std::copy(src, src + d, sampled.data() + i * d);
    }
    train = sampled.data();
    train_n = static_cast<int64_t>(pick.size());
  }

  OpqModel model;
  if (options.random_init) {
    Rng rng(options.rotation_seed);
    model.rotation_ = linalg::RandomOrthonormal(d, rng);
  } else {
    model.rotation_ = linalg::Matrix::Identity(d);
  }

  linalg::Matrix rotated(train_n, d);
  std::vector<uint8_t> codes;
  linalg::Matrix reconstructed(train_n, d);

  PqOptions pq_options = options.pq;
  // The alternating rounds train on the full (already sampled) block.
  pq_options.max_train_rows = train_n;

  for (int iter = 0; iter < std::max(1, options.num_iterations); ++iter) {
    // Rotate the training sample: rotated = train * R^T.
    ParallelFor(train_n, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        linalg::MatVec(model.rotation_, train + i * d, rotated.Row(i));
      }
    });

    model.codebook_ = PqCodebook::Train(rotated.data(), train_n, d,
                                        pq_options);

    if (iter + 1 >= options.num_iterations) break;

    // Reconstruction of the rotated sample.
    codes = model.codebook_.EncodeBatch(rotated.data(), train_n);
    ParallelFor(train_n, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        model.codebook_.Decode(codes.data() + i * model.codebook_.code_size(),
                               reconstructed.Row(i));
      }
    });

    // Procrustes: maximize sum_i <R x_i, y_i>, i.e. trace(R M) with
    // M = sum_i x_i y_i^T = U S V^T; the optimum is R = V U^T.
    linalg::Matrix m = CrossCorrelation(train, reconstructed, train_n, d);
    linalg::SvdResult svd = linalg::Svd(m);
    model.rotation_ = linalg::MatMulBt(svd.v, svd.u);
  }
  return model;
}

OpqModel OpqModel::FromComponents(linalg::Matrix rotation,
                                  PqCodebook codebook) {
  RESINFER_CHECK(rotation.rows() == rotation.cols());
  RESINFER_CHECK(codebook.trained());
  RESINFER_CHECK(codebook.dim() == rotation.rows());
  OpqModel model;
  model.rotation_ = std::move(rotation);
  model.codebook_ = std::move(codebook);
  return model;
}

void OpqModel::Rotate(const float* x, float* out) const {
  linalg::MatVec(rotation_, x, out);
}

linalg::Matrix OpqModel::RotateBatch(const float* data, int64_t n) const {
  const int64_t d = rotation_.rows();
  linalg::Matrix out(n, d);
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      linalg::MatVec(rotation_, data + i * d, out.Row(i));
    }
  });
  return out;
}

double OpqModel::MeanReconstructionError(const float* data, int64_t n) const {
  RESINFER_CHECK(trained());
  const int64_t d = rotation_.rows();
  std::vector<float> rotated(d);
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    Rotate(data + i * d, rotated.data());
    total += codebook_.ReconstructionError(rotated.data());
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

}  // namespace resinfer::quant

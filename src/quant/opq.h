// Optimized Product Quantization (Ge et al., TPAMI 2014), non-parametric
// variant: alternately (1) train PQ codebooks on the rotated data and
// (2) update the rotation R by solving the orthogonal Procrustes problem
// between the rotated data and its quantized reconstruction.
//
// This is the quantization backend of DDCopq (§V-B): asymmetric distances
// are computed in the rotated space, and the rotation cost O(D^2) per query
// matches the paper's cost analysis (§VI-B).
#ifndef RESINFER_QUANT_OPQ_H_
#define RESINFER_QUANT_OPQ_H_

#include <cstdint>

#include "linalg/matrix.h"
#include "quant/pq.h"

namespace resinfer::quant {

struct OpqOptions {
  PqOptions pq;
  // Alternating optimization rounds; each round retrains the PQ codebooks
  // and re-solves the rotation.
  int num_iterations = 4;
  // Initialize the rotation from a random orthonormal matrix (true) or the
  // identity (false). Random breaks axis alignment in already-rotated data.
  bool random_init = false;
  uint64_t rotation_seed = 7;
};

class OpqModel {
 public:
  OpqModel() = default;

  static OpqModel Train(const float* data, int64_t n, int64_t d,
                        const OpqOptions& options = OpqOptions());

  // Rebuilds a model from persisted parts (persist/persist.h).
  static OpqModel FromComponents(linalg::Matrix rotation,
                                 PqCodebook codebook);

  bool trained() const { return codebook_.trained(); }
  int64_t dim() const { return rotation_.rows(); }

  // Rows are orthonormal; y = R x via Rotate().
  const linalg::Matrix& rotation() const { return rotation_; }
  const PqCodebook& codebook() const { return codebook_; }

  void Rotate(const float* x, float* out) const;
  linalg::Matrix RotateBatch(const float* data, int64_t n) const;

  // Mean squared reconstruction error on a sample (diagnostic; OPQ should
  // not be worse than plain PQ on the same data).
  double MeanReconstructionError(const float* data, int64_t n) const;

 private:
  linalg::Matrix rotation_;
  PqCodebook codebook_;
};

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_OPQ_H_

#include "quant/pq.h"

#include <algorithm>
#include <limits>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace resinfer::quant {

PqCodebook PqCodebook::Train(const float* data, int64_t n, int64_t d,
                             const PqOptions& options) {
  RESINFER_CHECK(n >= 1 && d >= 1);
  RESINFER_CHECK(options.num_subspaces >= 1);
  RESINFER_CHECK_MSG(d % options.num_subspaces == 0,
                     "num_subspaces must divide the dimension");
  RESINFER_CHECK(options.nbits >= 1 && options.nbits <= 8);

  // Subsample training rows.
  std::vector<float> sampled;
  const float* train = data;
  int64_t train_n = n;
  if (n > options.max_train_rows) {
    Rng rng(options.sample_seed);
    std::vector<int64_t> pick =
        rng.SampleWithoutReplacement(n, options.max_train_rows);
    sampled.resize(pick.size() * static_cast<std::size_t>(d));
    for (std::size_t i = 0; i < pick.size(); ++i) {
      const float* src = data + pick[i] * d;
      std::copy(src, src + d, sampled.data() + i * d);
    }
    train = sampled.data();
    train_n = static_cast<int64_t>(pick.size());
  }

  PqCodebook pq;
  pq.dim_ = d;
  pq.m_ = options.num_subspaces;
  pq.dsub_ = d / options.num_subspaces;
  pq.ksub_ = std::min<int64_t>(1 << options.nbits, train_n);
  // The fast-scan tier's u16 accumulators cap the packed layout at m <=
  // 256 (m * 255 must fit); larger m keeps the byte-per-code layout
  // instead of training a codebook that would abort at query time.
  pq.layout_ = pq.m_ <= 256 ? CodeLayout::ForBits(options.nbits)
                            : CodeLayout{options.nbits,
                                         CodePacking::kBytePerCode};
  pq.codebooks_.reserve(pq.m_);

  std::vector<float> sub(train_n * pq.dsub_);
  for (int s = 0; s < pq.m_; ++s) {
    // Gather the sub-space slice contiguously for k-means.
    for (int64_t i = 0; i < train_n; ++i) {
      const float* src = train + i * d + s * pq.dsub_;
      std::copy(src, src + pq.dsub_, sub.data() + i * pq.dsub_);
    }
    KMeansOptions km = options.kmeans;
    km.seed = options.kmeans.seed + static_cast<uint64_t>(s) * 7919;
    KMeansResult res = KMeans(sub.data(), train_n, pq.dsub_, pq.ksub_, km);
    pq.codebooks_.push_back(std::move(res.centroids));
  }
  return pq;
}

PqCodebook PqCodebook::FromCodebooks(
    std::vector<linalg::Matrix> codebooks, CodeLayout layout) {
  RESINFER_CHECK(!codebooks.empty());
  const int64_t ksub = codebooks[0].rows();
  const int64_t dsub = codebooks[0].cols();
  RESINFER_CHECK(ksub > 0 && ksub <= 256 && dsub > 0);
  RESINFER_CHECK(layout.bits >= 1 && layout.bits <= 8);
  RESINFER_CHECK_MSG(ksub <= (int64_t{1} << layout.bits),
                     "codebook has more centroids than the layout's bits");
  RESINFER_CHECK_MSG(!layout.packed() || layout.bits <= 4,
                     "packed 4-bit layout requires bits <= 4");
  RESINFER_CHECK_MSG(!layout.packed() || codebooks.size() <= 256,
                     "packed layout requires m <= 256 (u16 LUT accumulators)");
  for (const auto& table : codebooks) {
    RESINFER_CHECK(table.rows() == ksub && table.cols() == dsub);
  }
  PqCodebook pq;
  pq.m_ = static_cast<int>(codebooks.size());
  pq.dsub_ = dsub;
  pq.ksub_ = static_cast<int>(ksub);
  pq.dim_ = pq.m_ * dsub;
  pq.layout_ = layout;
  pq.codebooks_ = std::move(codebooks);
  return pq;
}

void PqCodebook::Encode(const float* x, uint8_t* code) const {
  RESINFER_DCHECK(trained());
  if (layout_.packed()) {
    // Zero first so the pad nibble of an odd-m tail byte is deterministic.
    std::fill_n(code, static_cast<std::size_t>(code_size()), uint8_t{0});
  }
  for (int s = 0; s < m_; ++s) {
    SetCodeAt(code, s,
              static_cast<uint8_t>(
                  NearestCentroid(codebooks_[s], x + s * dsub_)),
              layout_);
  }
}

void PqCodebook::Decode(const uint8_t* code, float* out) const {
  RESINFER_DCHECK(trained());
  for (int s = 0; s < m_; ++s) {
    const float* centroid = codebooks_[s].Row(CodeAt(code, s));
    std::copy(centroid, centroid + dsub_, out + s * dsub_);
  }
}

float PqCodebook::ReconstructionError(const float* x) const {
  RESINFER_DCHECK(trained());
  float total = 0.0f;
  for (int s = 0; s < m_; ++s) {
    int32_t c = NearestCentroid(codebooks_[s], x + s * dsub_);
    total += simd::L2Sqr(codebooks_[s].Row(c), x + s * dsub_,
                         static_cast<std::size_t>(dsub_));
  }
  return total;
}

void PqCodebook::ComputeAdcTable(const float* query, float* table) const {
  RESINFER_DCHECK(trained());
  for (int s = 0; s < m_; ++s) {
    const float* qsub = query + s * dsub_;
    float* row = table + static_cast<int64_t>(s) * ksub_;
    for (int c = 0; c < ksub_; ++c) {
      row[c] = simd::L2Sqr(codebooks_[s].Row(c), qsub,
                           static_cast<std::size_t>(dsub_));
    }
  }
}

float PqCodebook::AdcDistance(const float* table, const uint8_t* code) const {
  float total = 0.0f;
  const float* row = table;
  for (int s = 0; s < m_; ++s, row += ksub_) total += row[CodeAt(code, s)];
  return total;
}

void PqCodebook::QuantizeAdcTable(const float* table, uint8_t* lut,
                                  float* scale, float* bias) const {
  RESINFER_DCHECK(trained());
  RESINFER_CHECK_MSG(layout_.packed(),
                     "quantized LUTs require the packed 4-bit layout");
  // m * 255 must fit the kernels' u16 accumulators.
  RESINFER_CHECK(m_ <= 256);

  // Shared scale: the widest per-sub-space range, so no entry clips and the
  // rounding error stays <= scale / 2 per sub-space.
  float range = 0.0f;
  float bias_sum = 0.0f;
  std::vector<float> mins(static_cast<std::size_t>(m_));
  for (int s = 0; s < m_; ++s) {
    const float* row = table + static_cast<int64_t>(s) * ksub_;
    float lo = row[0], hi = row[0];
    for (int c = 1; c < ksub_; ++c) {
      lo = std::min(lo, row[c]);
      hi = std::max(hi, row[c]);
    }
    mins[static_cast<std::size_t>(s)] = lo;
    bias_sum += lo;
    range = std::max(range, hi - lo);
  }
  const float s255 = range / 255.0f;
  const float inv = s255 > 0.0f ? 1.0f / s255 : 0.0f;

  // Sub-table s lives at lut + s * 16; entries past ksub_ and the odd-m pad
  // row are zero so a small-training-set codebook (ksub < 16) can never
  // surface uninitialized bytes.
  std::fill_n(lut, static_cast<std::size_t>(fast_scan_lut_bytes()),
              uint8_t{0});
  for (int s = 0; s < m_; ++s) {
    const float* row = table + static_cast<int64_t>(s) * ksub_;
    uint8_t* qrow = lut + static_cast<int64_t>(s) * 16;
    const float lo = mins[static_cast<std::size_t>(s)];
    for (int c = 0; c < ksub_; ++c) {
      const int q = static_cast<int>((row[c] - lo) * inv + 0.5f);
      qrow[c] = static_cast<uint8_t>(std::clamp(q, 0, 255));
    }
  }
  *scale = s255;
  *bias = bias_sum;
}

std::vector<uint8_t> PqCodebook::EncodeBatch(const float* data,
                                             int64_t n) const {
  RESINFER_CHECK(trained());
  const int64_t code_bytes = code_size();
  std::vector<uint8_t> codes(static_cast<std::size_t>(n * code_bytes));
  ParallelFor(n, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Encode(data + i * dim_, codes.data() + i * code_bytes);
    }
  });
  return codes;
}

int LargestDivisorAtMost(int64_t dim, int target) {
  RESINFER_CHECK(dim >= 1 && target >= 1);
  for (int m = std::min<int64_t>(target, dim); m >= 1; --m) {
    if (dim % m == 0) return m;
  }
  return 1;
}

}  // namespace resinfer::quant

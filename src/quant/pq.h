// Product Quantization (Jégou et al., TPAMI 2011).
//
// Splits the D-dimensional space into m sub-spaces of D/m dimensions, trains
// a 2^nbits-entry k-means codebook per sub-space, and represents each vector
// by m code bytes. Query-time asymmetric distances (ADC) are m table lookups
// against a per-query lookup table — the "quantization" approximate distance
// of §II-B that DDCopq corrects.
#ifndef RESINFER_QUANT_PQ_H_
#define RESINFER_QUANT_PQ_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "quant/kmeans.h"

namespace resinfer::quant {

struct PqOptions {
  // Number of sub-spaces; must divide the dimension.
  int num_subspaces = 8;
  // Bits per code; 8 (256 centroids per sub-space) is the standard setting
  // and what the paper's storage analysis assumes (§VI-B).
  int nbits = 8;
  KMeansOptions kmeans;
  // Training-sample cap; the paper samples 65,536 points for OPQ (§VII).
  int64_t max_train_rows = 65536;
  uint64_t sample_seed = 99;
};

class PqCodebook {
 public:
  PqCodebook() = default;

  static PqCodebook Train(const float* data, int64_t n, int64_t d,
                          const PqOptions& options = PqOptions());

  // Rebuilds a codebook from persisted sub-space centroid tables
  // (persist/persist.h). Each table must be ksub x dsub with identical
  // shapes; dim = m * dsub.
  static PqCodebook FromCodebooks(std::vector<linalg::Matrix> codebooks);

  bool trained() const { return dim_ > 0; }
  int64_t dim() const { return dim_; }
  int num_subspaces() const { return m_; }
  int64_t subspace_dim() const { return dsub_; }
  int num_centroids() const { return ksub_; }
  int64_t code_size() const { return m_; }  // bytes per vector (nbits == 8)

  // Centroid table for sub-space s: ksub x dsub.
  const linalg::Matrix& centroids(int s) const { return codebooks_[s]; }

  // code must hold code_size() bytes.
  void Encode(const float* x, uint8_t* code) const;
  void Decode(const uint8_t* code, float* out) const;

  // Squared L2 distance between x and its reconstruction.
  float ReconstructionError(const float* x) const;

  // Per-query ADC lookup table: table[s * ksub + c] = || q_s - centroid_sc ||^2.
  // table must hold m * ksub floats.
  void ComputeAdcTable(const float* query, float* table) const;
  int64_t adc_table_size() const { return static_cast<int64_t>(m_) * ksub_; }

  // Asymmetric distance: sum over sub-spaces of the table entries selected
  // by the code. This approximates ||q - x||^2.
  float AdcDistance(const float* table, const uint8_t* code) const;

  // Batch-encode n rows into a contiguous code array (n * code_size()).
  std::vector<uint8_t> EncodeBatch(const float* data, int64_t n) const;

 private:
  int64_t dim_ = 0;
  int m_ = 0;
  int64_t dsub_ = 0;
  int ksub_ = 0;
  std::vector<linalg::Matrix> codebooks_;  // m entries, each ksub x dsub
};

// Largest divisor of `dim` that is <= target; used to pick num_subspaces =~
// dim/4 per the paper's storage discussion even when dim is not a power of
// two.
int LargestDivisorAtMost(int64_t dim, int target);

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_PQ_H_

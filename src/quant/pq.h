// Product Quantization (Jégou et al., TPAMI 2011).
//
// Splits the D-dimensional space into m sub-spaces of D/m dimensions, trains
// a 2^nbits-entry k-means codebook per sub-space, and represents each vector
// by m sub-codes (one byte each for nbits in [5, 8], nibble pairs for nbits
// <= 4 — see quant/code_layout.h). Query-time asymmetric distances (ADC) are
// m table lookups against a per-query lookup table — the "quantization"
// approximate distance of §II-B that DDCopq corrects.
#ifndef RESINFER_QUANT_PQ_H_
#define RESINFER_QUANT_PQ_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "quant/code_layout.h"
#include "quant/kmeans.h"

namespace resinfer::quant {

struct PqOptions {
  // Number of sub-spaces; must divide the dimension.
  int num_subspaces = 8;
  // Bits per code; 8 (256 centroids per sub-space) is the standard setting
  // and what the paper's storage analysis assumes (§VI-B).
  int nbits = 8;
  KMeansOptions kmeans;
  // Training-sample cap; the paper samples 65,536 points for OPQ (§VII).
  int64_t max_train_rows = 65536;
  uint64_t sample_seed = 99;
};

class PqCodebook {
 public:
  PqCodebook() = default;

  static PqCodebook Train(const float* data, int64_t n, int64_t d,
                          const PqOptions& options = PqOptions());

  // Rebuilds a codebook from persisted sub-space centroid tables
  // (persist/persist.h). Each table must be ksub x dsub with identical
  // shapes; dim = m * dsub. `layout` defaults to the legacy byte-per-code
  // layout pre-v2 files were written with; ksub must fit layout.bits.
  static PqCodebook FromCodebooks(std::vector<linalg::Matrix> codebooks,
                                  CodeLayout layout = CodeLayout());

  bool trained() const { return dim_ > 0; }
  int64_t dim() const { return dim_; }
  int num_subspaces() const { return m_; }
  int64_t subspace_dim() const { return dsub_; }
  int num_centroids() const { return ksub_; }
  const CodeLayout& layout() const { return layout_; }
  // TRUE bytes per encoded vector under the code layout: (m + 1) / 2 for
  // the packed 4-bit layout, m otherwise. Every buffer sized off this must
  // read codes through CodeAt()/the packed kernels, never code[s].
  int64_t code_size() const { return layout_.CodeBytes(m_); }
  // Sub-code s of an encoded vector.
  uint8_t CodeAt(const uint8_t* code, int s) const {
    return quant::CodeAt(code, s, layout_);
  }

  // Centroid table for sub-space s: ksub x dsub.
  const linalg::Matrix& centroids(int s) const { return codebooks_[s]; }

  // code must hold code_size() bytes.
  void Encode(const float* x, uint8_t* code) const;
  void Decode(const uint8_t* code, float* out) const;

  // Squared L2 distance between x and its reconstruction.
  float ReconstructionError(const float* x) const;

  // Per-query ADC lookup table: table[s * ksub + c] = || q_s - centroid_sc ||^2.
  // table must hold m * ksub floats.
  void ComputeAdcTable(const float* query, float* table) const;
  int64_t adc_table_size() const { return static_cast<int64_t>(m_) * ksub_; }

  // Asymmetric distance: sum over sub-spaces of the table entries selected
  // by the code. This approximates ||q - x||^2.
  float AdcDistance(const float* table, const uint8_t* code) const;

  // --- Quantized LUT (the fast-scan operand; packed layout only) ----------
  //
  // Quantizes a ComputeAdcTable result to one u8 16-entry sub-table per
  // sub-space, laid out for simd::PqAdcFastScan (sub-table s at lut +
  // s * 16; ceil(m/2) * 32 bytes total, odd-m pad row zeroed). The affine
  // map is shared across sub-spaces: entry_q = round((entry - min_s) /
  // scale) with scale = max_s(range_s) / 255, so
  //     adc ≈ scale * sum_q + bias,  |error| <= m * scale / 2
  // (bias = sum_s min_s; no clipping occurs by choice of scale). Tail
  // entries [ksub, 16) of every sub-table are zero-filled so a codebook
  // clamped by a small training set (ksub < 2^bits) can never surface
  // uninitialized LUT bytes.
  int64_t fast_scan_lut_bytes() const {
    return (static_cast<int64_t>(m_) + 1) / 2 * 32;
  }
  void QuantizeAdcTable(const float* table, uint8_t* lut, float* scale,
                        float* bias) const;
  // The documented |quantized - float| ADC bound for a given scale.
  float FastScanErrorBound(float scale) const {
    return 0.5f * static_cast<float>(m_) * scale;
  }
  // The one dequantization expression every fast-scan consumer shares:
  // sums are exact integers, so routing all paths (sequential, batch,
  // grouped, any SIMD level) through this keeps their estimates
  // bit-identical.
  static float DequantizeFastScanSum(uint16_t sum, float scale, float bias) {
    return scale * static_cast<float>(sum) + bias;
  }

  // Batch-encode n rows into a contiguous code array (n * code_size()).
  std::vector<uint8_t> EncodeBatch(const float* data, int64_t n) const;

 private:
  int64_t dim_ = 0;
  int m_ = 0;
  int64_t dsub_ = 0;
  int ksub_ = 0;
  CodeLayout layout_;
  std::vector<linalg::Matrix> codebooks_;  // m entries, each ksub x dsub
};

// Largest divisor of `dim` that is <= target; used to pick num_subspaces =~
// dim/4 per the paper's storage discussion even when dim is not a power of
// two.
int LargestDivisorAtMost(int64_t dim, int target);

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_PQ_H_

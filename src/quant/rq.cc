#include "quant/rq.h"

#include <algorithm>
#include <cstring>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/rng.h"

namespace resinfer::quant {

RqCodebook RqCodebook::Train(const float* data, int64_t n, int64_t d,
                             const RqOptions& options) {
  RESINFER_CHECK(n >= 1 && d >= 1);
  RESINFER_CHECK(options.num_stages >= 1);
  RESINFER_CHECK(options.nbits >= 1 && options.nbits <= 8);

  // Subsample training rows, matching the PQ trainer.
  std::vector<float> sampled;
  const float* train = data;
  int64_t train_n = n;
  if (n > options.max_train_rows) {
    Rng rng(options.sample_seed);
    std::vector<int64_t> pick =
        rng.SampleWithoutReplacement(n, options.max_train_rows);
    sampled.resize(pick.size() * static_cast<std::size_t>(d));
    for (std::size_t i = 0; i < pick.size(); ++i) {
      const float* src = data + pick[i] * d;
      std::copy(src, src + d, sampled.data() + i * d);
    }
    train = sampled.data();
    train_n = static_cast<int64_t>(pick.size());
  }

  RqCodebook rq;
  rq.dim_ = d;
  rq.m_ = options.num_stages;
  rq.ksub_ = static_cast<int>(std::min<int64_t>(1 << options.nbits, train_n));
  rq.layout_ = CodeLayout::ForBits(options.nbits);
  rq.codebooks_.reserve(rq.m_);

  // Stage-wise training on the running residuals: after a stage's k-means
  // converges, each training row's residual shrinks by its assigned
  // centroid before the next stage trains.
  std::vector<float> residuals(train, train + train_n * d);
  for (int s = 0; s < rq.m_; ++s) {
    KMeansOptions km = options.kmeans;
    km.seed = options.kmeans.seed + static_cast<uint64_t>(s) * 6151 + 13;
    KMeansResult res =
        KMeans(residuals.data(), train_n, d, rq.ksub_, km);
    for (int64_t i = 0; i < train_n; ++i) {
      const float* c = res.centroids.Row(res.assignments[i]);
      float* r = residuals.data() + i * d;
      for (int64_t j = 0; j < d; ++j) r[j] -= c[j];
    }
    rq.codebooks_.push_back(std::move(res.centroids));
  }
  return rq;
}

RqCodebook RqCodebook::FromCodebooks(std::vector<linalg::Matrix> codebooks,
                                     CodeLayout layout) {
  RESINFER_CHECK(!codebooks.empty());
  const int64_t ksub = codebooks[0].rows();
  const int64_t d = codebooks[0].cols();
  RESINFER_CHECK(ksub > 0 && ksub <= 256 && d > 0);
  RESINFER_CHECK(layout.bits >= 1 && layout.bits <= 8);
  RESINFER_CHECK_MSG(ksub <= (int64_t{1} << layout.bits),
                     "codebook has more centroids than the layout's bits");
  for (const auto& table : codebooks) {
    RESINFER_CHECK(table.rows() == ksub && table.cols() == d);
  }
  RqCodebook rq;
  rq.dim_ = d;
  rq.m_ = static_cast<int>(codebooks.size());
  rq.ksub_ = static_cast<int>(ksub);
  rq.layout_ = layout;
  rq.codebooks_ = std::move(codebooks);
  return rq;
}

void RqCodebook::Encode(const float* x, uint8_t* code) const {
  RESINFER_DCHECK(trained());
  if (layout_.packed()) {
    // Zero first so the pad nibble of an odd-m tail byte is deterministic.
    std::fill_n(code, static_cast<std::size_t>(code_size()), uint8_t{0});
  }
  std::vector<float> residual(x, x + dim_);
  for (int s = 0; s < m_; ++s) {
    int32_t best = NearestCentroid(codebooks_[s], residual.data());
    SetCodeAt(code, s, static_cast<uint8_t>(best), layout_);
    const float* c = codebooks_[s].Row(best);
    for (int64_t j = 0; j < dim_; ++j) residual[j] -= c[j];
  }
}

void RqCodebook::Decode(const uint8_t* code, float* out) const {
  RESINFER_DCHECK(trained());
  std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(dim_));
  for (int s = 0; s < m_; ++s) {
    RESINFER_DCHECK(CodeAt(code, s) < ksub_);
    const float* c = codebooks_[s].Row(CodeAt(code, s));
    for (int64_t j = 0; j < dim_; ++j) out[j] += c[j];
  }
}

float RqCodebook::ReconstructionError(const float* x) const {
  std::vector<uint8_t> code(code_size());
  Encode(x, code.data());
  std::vector<float> recon(dim_);
  Decode(code.data(), recon.data());
  return simd::L2Sqr(x, recon.data(), static_cast<std::size_t>(dim_));
}

void RqCodebook::ComputeIpTable(const float* query, float* table) const {
  RESINFER_DCHECK(trained());
  for (int s = 0; s < m_; ++s) {
    const linalg::Matrix& cb = codebooks_[s];
    float* row = table + static_cast<int64_t>(s) * ksub_;
    for (int c = 0; c < ksub_; ++c) {
      row[c] =
          simd::InnerProduct(query, cb.Row(c), static_cast<std::size_t>(dim_));
    }
  }
}

float RqCodebook::AdcDistance(const float* table, float query_norm_sqr,
                              const uint8_t* code,
                              float recon_norm_sqr) const {
  float ip = 0.0f;
  for (int s = 0; s < m_; ++s) {
    ip += table[static_cast<int64_t>(s) * ksub_ + CodeAt(code, s)];
  }
  return query_norm_sqr - 2.0f * ip + recon_norm_sqr;
}

float RqCodebook::ReconstructionNormSqr(const uint8_t* code) const {
  std::vector<float> recon(dim_);
  Decode(code, recon.data());
  return simd::Norm2Sqr(recon.data(), static_cast<std::size_t>(dim_));
}

std::vector<uint8_t> RqCodebook::EncodeBatch(
    const float* data, int64_t n, std::vector<float>* recon_norms) const {
  RESINFER_CHECK(trained());
  RESINFER_CHECK(recon_norms != nullptr);
  std::vector<uint8_t> codes(static_cast<std::size_t>(n) * code_size());
  recon_norms->assign(static_cast<std::size_t>(n), 0.0f);
  std::vector<float> recon(dim_);
  for (int64_t i = 0; i < n; ++i) {
    uint8_t* code = codes.data() + i * code_size();
    Encode(data + i * dim_, code);
    Decode(code, recon.data());
    (*recon_norms)[static_cast<std::size_t>(i)] =
        simd::Norm2Sqr(recon.data(), static_cast<std::size_t>(dim_));
  }
  return codes;
}

}  // namespace resinfer::quant

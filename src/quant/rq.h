// Residual Quantization (the second quantization family named in §II-B).
//
// Unlike PQ, which partitions the *dimensions*, RQ quantizes the *whole*
// vector in M successive stages: stage s trains a k-means codebook on the
// residuals left by stages 0..s-1, and a vector is encoded greedily as the
// sum of one centroid per stage. Reconstruction error is non-increasing in
// the number of stages.
//
// Query-time asymmetric distances use the expansion
//     ||q - x̂||^2 = ||q||^2 - 2 <q, x̂> + ||x̂||^2,
// where <q, x̂> = Σ_s <q, c_s[code_s]> is M lookups into a per-query
// inner-product table and ||x̂||^2 is precomputed per encoded vector at
// encode time (the standard RQ trick; see EncodeBatch).
//
// RQ is one of the "arbitrary distance estimation" sources the data-driven
// correction of §V must accommodate — core/ddc_any.h plugs it into the same
// learned corrector that serves OPQ.
#ifndef RESINFER_QUANT_RQ_H_
#define RESINFER_QUANT_RQ_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "quant/code_layout.h"
#include "quant/kmeans.h"

namespace resinfer::quant {

struct RqOptions {
  // Number of residual stages M; each contributes one code byte.
  int num_stages = 4;
  // Bits per stage; 8 (256 centroids) is the standard setting.
  int nbits = 8;
  KMeansOptions kmeans;
  // Training-sample cap, matching the PQ/OPQ trainers.
  int64_t max_train_rows = 65536;
  uint64_t sample_seed = 101;
};

class RqCodebook {
 public:
  RqCodebook() = default;

  static RqCodebook Train(const float* data, int64_t n, int64_t d,
                          const RqOptions& options = RqOptions());

  // Rebuilds a codebook from persisted stage centroid tables, each
  // ksub x dim with identical shapes. `layout` defaults to the legacy
  // byte-per-code layout pre-v2 files were written with.
  static RqCodebook FromCodebooks(std::vector<linalg::Matrix> codebooks,
                                  CodeLayout layout = CodeLayout());

  bool trained() const { return dim_ > 0; }
  int64_t dim() const { return dim_; }
  int num_stages() const { return m_; }
  int num_centroids() const { return ksub_; }
  const CodeLayout& layout() const { return layout_; }
  // TRUE bytes per encoded vector under the code layout: (m + 1) / 2 for
  // the packed 4-bit layout, m otherwise. Readers of raw code bytes must
  // address stages through CodeAt(), never code[s].
  int64_t code_size() const { return layout_.CodeBytes(m_); }
  // Stage-s sub-code of an encoded vector.
  uint8_t CodeAt(const uint8_t* code, int s) const {
    return quant::CodeAt(code, s, layout_);
  }

  // Centroid table for stage s: ksub x dim.
  const linalg::Matrix& centroids(int s) const { return codebooks_[s]; }

  // Greedy stage-wise encoding; code must hold code_size() bytes.
  void Encode(const float* x, uint8_t* code) const;
  // x̂ = Σ_s c_s[code_s]; out must hold dim() floats.
  void Decode(const uint8_t* code, float* out) const;

  // Squared L2 distance between x and its reconstruction.
  float ReconstructionError(const float* x) const;

  // Per-query inner-product table: table[s * ksub + c] = <q, centroid_sc>.
  // table must hold ip_table_size() floats.
  void ComputeIpTable(const float* query, float* table) const;
  int64_t ip_table_size() const { return static_cast<int64_t>(m_) * ksub_; }

  // Asymmetric distance ||q - x̂||^2 from the per-query table, the query's
  // squared norm, the code, and the precomputed ||x̂||^2.
  float AdcDistance(const float* table, float query_norm_sqr,
                    const uint8_t* code, float recon_norm_sqr) const;

  // ||x̂||^2 for a code (used to rebuild norms from persisted codes).
  float ReconstructionNormSqr(const uint8_t* code) const;

  // Batch-encode n rows into a contiguous code array (n * code_size()),
  // recording each row's ||x̂||^2 into recon_norms (resized to n) for
  // query-time AdcDistance.
  std::vector<uint8_t> EncodeBatch(const float* data, int64_t n,
                                   std::vector<float>* recon_norms) const;

 private:
  int64_t dim_ = 0;
  int m_ = 0;
  int ksub_ = 0;
  CodeLayout layout_;
  std::vector<linalg::Matrix> codebooks_;  // m entries, each ksub x dim
};

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_RQ_H_

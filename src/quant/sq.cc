#include "quant/sq.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simd/kernels.h"
#include "util/macros.h"
#include "util/rng.h"

namespace resinfer::quant {

namespace {

constexpr float kLevels = 255.0f;

// Value at quantile q of `column` (linear-interpolation-free nth_element;
// adequate for range training).
float ColumnQuantile(std::vector<float>& column, double q) {
  const auto rank = static_cast<int64_t>(
      q * static_cast<double>(column.size() - 1) + 0.5);
  const int64_t clamped =
      std::clamp<int64_t>(rank, 0, static_cast<int64_t>(column.size()) - 1);
  std::nth_element(column.begin(), column.begin() + clamped, column.end());
  return column[static_cast<std::size_t>(clamped)];
}

}  // namespace

SqCodebook SqCodebook::Train(const float* data, int64_t n, int64_t d,
                             const SqOptions& options) {
  RESINFER_CHECK(n >= 1 && d >= 1);
  RESINFER_CHECK(options.trim_quantile >= 0.0 && options.trim_quantile < 0.5);

  // Subsample training rows, matching the PQ/RQ trainers.
  std::vector<int64_t> pick;
  if (n > options.max_train_rows) {
    Rng rng(options.sample_seed);
    pick = rng.SampleWithoutReplacement(n, options.max_train_rows);
  } else {
    pick.resize(static_cast<std::size_t>(n));
    for (int64_t i = 0; i < n; ++i) pick[static_cast<std::size_t>(i)] = i;
  }

  SqCodebook sq;
  sq.vmin_.resize(static_cast<std::size_t>(d));
  sq.step_.resize(static_cast<std::size_t>(d));
  std::vector<float> column(pick.size());
  for (int64_t j = 0; j < d; ++j) {
    for (std::size_t i = 0; i < pick.size(); ++i) {
      column[i] = data[pick[i] * d + j];
    }
    float lo;
    float hi;
    if (options.trim_quantile > 0.0 && pick.size() > 2) {
      lo = ColumnQuantile(column, options.trim_quantile);
      hi = ColumnQuantile(column, 1.0 - options.trim_quantile);
    } else {
      auto [mn, mx] = std::minmax_element(column.begin(), column.end());
      lo = *mn;
      hi = *mx;
    }
    if (hi < lo) std::swap(lo, hi);
    sq.vmin_[static_cast<std::size_t>(j)] = lo;
    sq.step_[static_cast<std::size_t>(j)] = (hi - lo) / kLevels;
  }
  return sq;
}

SqCodebook SqCodebook::FromParams(std::vector<float> vmin,
                                  std::vector<float> step) {
  RESINFER_CHECK(!vmin.empty());
  RESINFER_CHECK(vmin.size() == step.size());
  for (float s : step) RESINFER_CHECK(s >= 0.0f && std::isfinite(s));
  SqCodebook sq;
  sq.vmin_ = std::move(vmin);
  sq.step_ = std::move(step);
  return sq;
}

void SqCodebook::Encode(const float* x, uint8_t* code) const {
  RESINFER_DCHECK(trained());
  const int64_t d = dim();
  for (int64_t j = 0; j < d; ++j) {
    const float step = step_[static_cast<std::size_t>(j)];
    if (step <= 0.0f) {
      code[j] = 0;  // constant dimension
      continue;
    }
    const float scaled =
        (x[j] - vmin_[static_cast<std::size_t>(j)]) / step;
    code[j] = static_cast<uint8_t>(
        std::clamp(std::lround(scaled), 0L, 255L));
  }
}

void SqCodebook::Decode(const uint8_t* code, float* out) const {
  RESINFER_DCHECK(trained());
  const int64_t d = dim();
  for (int64_t j = 0; j < d; ++j) {
    out[j] = vmin_[static_cast<std::size_t>(j)] +
             static_cast<float>(code[j]) * step_[static_cast<std::size_t>(j)];
  }
}

float SqCodebook::ReconstructionError(const float* x) const {
  std::vector<uint8_t> code(static_cast<std::size_t>(code_size()));
  Encode(x, code.data());
  const int64_t d = dim();
  float sum = 0.0f;
  for (int64_t j = 0; j < d; ++j) {
    const float recon =
        vmin_[static_cast<std::size_t>(j)] +
        static_cast<float>(code[j]) * step_[static_cast<std::size_t>(j)];
    const float diff = x[j] - recon;
    sum += diff * diff;
  }
  return sum;
}

float SqCodebook::AdcDistance(const float* query, const uint8_t* code) const {
  RESINFER_DCHECK(trained());
  return simd::SqAdcL2Sqr(query, code, vmin_.data(), step_.data(),
                          static_cast<std::size_t>(dim()));
}

std::vector<uint8_t> SqCodebook::EncodeBatch(const float* data,
                                             int64_t n) const {
  RESINFER_CHECK(trained());
  std::vector<uint8_t> codes(static_cast<std::size_t>(n * code_size()));
  for (int64_t i = 0; i < n; ++i) {
    Encode(data + i * dim(), codes.data() + i * code_size());
  }
  return codes;
}

}  // namespace resinfer::quant

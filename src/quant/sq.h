// 8-bit Scalar Quantization.
//
// Each dimension j is affinely mapped to a byte with a trained range
// [vmin_j, vmax_j]: code_j = round((x_j - vmin_j) / step_j), step_j =
// (vmax_j - vmin_j) / 255. This is the simplest "approximate distance from
// compressed codes" source — 4x smaller than float32, O(D) asymmetric
// distances with no codebook — and serves as a third distance-estimation
// backend (after OPQ and RQ) for the source-agnostic correction of §V
// (core/ddc_any.h).
//
// Ranges can be trained on trimmed quantiles instead of the raw min/max so
// that a single outlier does not stretch the step size for everyone.
#ifndef RESINFER_QUANT_SQ_H_
#define RESINFER_QUANT_SQ_H_

#include <cstdint>
#include <vector>

namespace resinfer::quant {

struct SqOptions {
  // Train the per-dimension range on the [q, 1-q] quantiles of the sample;
  // 0 uses the exact min/max. Values outside the range clamp at encode
  // time. Must be in [0, 0.5).
  double trim_quantile = 0.0;
  int64_t max_train_rows = 65536;
  uint64_t sample_seed = 103;
};

class SqCodebook {
 public:
  SqCodebook() = default;

  static SqCodebook Train(const float* data, int64_t n, int64_t d,
                          const SqOptions& options = SqOptions());

  // Rebuilds from persisted per-dimension ranges; vmin/step must have equal
  // non-zero size and every step must be >= 0.
  static SqCodebook FromParams(std::vector<float> vmin,
                               std::vector<float> step);

  bool trained() const { return !vmin_.empty(); }
  int64_t dim() const { return static_cast<int64_t>(vmin_.size()); }
  int64_t code_size() const { return dim(); }  // one byte per dimension

  const std::vector<float>& vmin() const { return vmin_; }
  const std::vector<float>& step() const { return step_; }

  // code must hold code_size() bytes; out-of-range components clamp.
  void Encode(const float* x, uint8_t* code) const;
  void Decode(const uint8_t* code, float* out) const;

  // Squared L2 distance between x and its reconstruction.
  float ReconstructionError(const float* x) const;

  // Asymmetric distance ||q - decode(code)||^2, computed dimension-wise
  // without materializing the reconstruction.
  float AdcDistance(const float* query, const uint8_t* code) const;

  // Batch-encode n rows into a contiguous code array (n * code_size()).
  std::vector<uint8_t> EncodeBatch(const float* data, int64_t n) const;

 private:
  std::vector<float> vmin_;
  std::vector<float> step_;  // (vmax - vmin) / 255; 0 for constant dims
};

}  // namespace resinfer::quant

#endif  // RESINFER_QUANT_SQ_H_

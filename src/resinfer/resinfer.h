// Umbrella header: the public API of the resinfer library.
//
// Layers (see DESIGN.md):
//   util/    — aligned buffers, RNG, timers, parallel-for
//   simd/    — distance kernels (scalar + AVX2, runtime-switchable)
//   linalg/  — matrix, eigen/SVD, PCA, random rotations
//   data/    — dataset container, fvecs/ivecs/bvecs I/O, synthetic proxies,
//              ground truth, recall metrics
//   quant/   — k-means, PQ, OPQ
//   index/   — DistanceComputer plug-in interface, Flat / IVF / HNSW
//   core/    — the paper's contribution: ADSampling, DDCres, DDCpca,
//              DDCopq, FINGER baseline, MethodFactory
//   serve/   — online serving: work-stealing executor, coalescing
//              admission (IvfServer)
#ifndef RESINFER_RESINFER_H_
#define RESINFER_RESINFER_H_

#include "core/ad_sampling.h"
#include "core/ddc_any.h"
#include "core/ddc_opq.h"
#include "core/ddc_pca.h"
#include "core/ddc_res.h"
#include "core/ddc_rq_cascade.h"
#include "core/error_model.h"
#include "core/finger.h"
#include "core/linear_corrector.h"
#include "core/method_advisor.h"
#include "core/method_factory.h"
#include "core/training_data.h"
#include "data/dataset.h"
#include "data/ground_truth.h"
#include "data/metric.h"
#include "data/metrics.h"
#include "data/synthetic.h"
#include "data/vec_io.h"
#include "index/batch.h"
#include "index/distance_computer.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "index/ivf_index.h"
#include "linalg/covariance.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/orthogonal.h"
#include "linalg/pca.h"
#include "linalg/svd.h"
#include "linalg/vector_ops.h"
#include "quant/code_store.h"
#include "quant/kmeans.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "quant/rq.h"
#include "quant/sq.h"
#include "serve/admission.h"
#include "serve/executor.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "util/aligned_buffer.h"
#include "util/histogram.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

#endif  // RESINFER_RESINFER_H_

#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "linalg/matrix.h"
#include "quant/kmeans.h"
#include "storage/storage.h"
#include "util/macros.h"

namespace resinfer::serve {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

IvfServer::IvfServer(const index::IvfIndex* index,
                     index::ComputerFactory factory)
    : IvfServer(index, std::move(factory), AdmissionOptions()) {}

IvfServer::IvfServer(const index::IvfIndex* index,
                     index::ComputerFactory factory,
                     const AdmissionOptions& options)
    : index_(index),
      options_(options),
      executor_([&options] {
        Executor::Options eo;
        eo.num_threads = options.num_threads;
        return eo;
      }()) {
  RESINFER_CHECK(index_ != nullptr);
  RESINFER_CHECK(index_->num_clusters() > 0);
  RESINFER_CHECK(factory != nullptr);
  options_.max_group_size =
      std::clamp(options_.max_group_size, 1, index::kMaxQueryGroup);
  options_.linger_micros = std::max<int64_t>(0, options_.linger_micros);

  computers_.reserve(static_cast<std::size_t>(executor_.num_threads()));
  for (int t = 0; t < executor_.num_threads(); ++t) {
    computers_.push_back(factory());
    RESINFER_CHECK(computers_.back() != nullptr);
  }
  dim_ = computers_.front()->dim();
  RESINFER_CHECK(dim_ == index_->centroids().cols());

  if (options_.coalesce) {
    // Rank each centroid's nearest centroids once: the dispatch-time
    // top-up walks this to pull spatially-adjacent donors first.
    const int num_clusters = index_->num_clusters();
    const int fanout = std::min(num_clusters, kNeighborLeads);
    centroid_neighbors_.resize(static_cast<std::size_t>(num_clusters));
    for (int c = 0; c < num_clusters; ++c) {
      centroid_neighbors_[static_cast<std::size_t>(c)] =
          quant::NearestCentroids(index_->centroids(),
                                  index_->centroids().Row(c), fanout);
    }
    flusher_ = std::thread(&IvfServer::FlusherLoop, this);
  }
}

IvfServer::~IvfServer() { Shutdown(); }

std::future<std::vector<index::Neighbor>> IvfServer::Submit(
    const float* query, int k, int nprobe) {
  RESINFER_CHECK(query != nullptr);
  const Clock::time_point admitted_at = Clock::now();

  if (k <= 0) {
    // Mirrors Search's clamp: an empty answer, no group membership.
    std::promise<std::vector<index::Neighbor>> promise;
    promise.set_value({});
    util::MutexLock lock(stats_mu_);
    ++stats_.requests;
    stats_.latency_seconds.Add(0.0);
    return promise.get_future();
  }

  // The same centroid ranking Search performs first; doing it at admission
  // yields the affinity key, and the list rides along to SearchBatchRange
  // so the work is never repeated.
  const int nprobe_used = std::clamp(nprobe, 1, index_->num_clusters());
  std::vector<int32_t> probes =
      quant::NearestCentroids(index_->centroids(), query, nprobe_used);
  const GroupKey key{k, nprobe, probes.front()};

  std::shared_ptr<PendingGroup> to_dispatch;
  std::future<std::vector<index::Neighbor>> future;
  bool new_group = false;
  {
    util::MutexLock lock(pending_mu_);
    RESINFER_CHECK(accepting_);  // Submit after Shutdown is a caller bug
    std::shared_ptr<PendingGroup>* slot = nullptr;
    if (options_.coalesce) {
      auto [it, inserted] = pending_.try_emplace(key);
      if (inserted) {
        it->second = std::make_shared<PendingGroup>();
        it->second->key = key;
        it->second->deadline =
            admitted_at + std::chrono::microseconds(options_.linger_micros);
        new_group = true;
      }
      slot = &it->second;
    } else {
      to_dispatch = std::make_shared<PendingGroup>();
      to_dispatch->key = key;
      slot = &to_dispatch;
    }
    PendingGroup& group = **slot;
    group.queries.insert(group.queries.end(), query, query + dim_);
    group.probes.insert(group.probes.end(), probes.begin(), probes.end());
    group.admitted_at.push_back(admitted_at);
    group.promises.emplace_back();
    future = group.promises.back().get_future();
    if (options_.coalesce && group.count() >= options_.max_group_size) {
      to_dispatch = std::move(*slot);
      pending_.erase(key);
      new_group = false;
    }
  }
  {
    util::MutexLock lock(stats_mu_);
    ++stats_.requests;
    if (to_dispatch != nullptr && options_.coalesce) ++stats_.full_flushes;
  }
  if (to_dispatch != nullptr) {
    Dispatch(std::move(to_dispatch));
  } else if (new_group) {
    flusher_cv_.NotifyOne();  // a fresh deadline may now be the earliest
  }
  return future;
}

// Moves as many members as still fit in `to` from the front of `from`.
// Both groups must share (k, nprobe), so probe rows have one stride.
void IvfServer::TakeMembers(PendingGroup& from, PendingGroup& to) {
  const int64_t take =
      std::min<int64_t>(options_.max_group_size - to.count(), from.count());
  if (take <= 0) return;
  const int64_t stride =
      static_cast<int64_t>(from.probes.size()) / from.count();
  to.queries.insert(to.queries.end(), from.queries.begin(),
                    from.queries.begin() + take * dim_);
  from.queries.erase(from.queries.begin(),
                     from.queries.begin() + take * dim_);
  to.probes.insert(to.probes.end(), from.probes.begin(),
                   from.probes.begin() + take * stride);
  from.probes.erase(from.probes.begin(), from.probes.begin() + take * stride);
  to.promises.insert(to.promises.end(),
                     std::make_move_iterator(from.promises.begin()),
                     std::make_move_iterator(from.promises.begin() + take));
  from.promises.erase(from.promises.begin(), from.promises.begin() + take);
  to.admitted_at.insert(to.admitted_at.end(), from.admitted_at.begin(),
                        from.admitted_at.begin() + take);
  from.admitted_at.erase(from.admitted_at.begin(),
                         from.admitted_at.begin() + take);
}

void IvfServer::Dispatch(std::shared_ptr<PendingGroup> group) {
  {
    util::MutexLock lock(stats_mu_);
    ++stats_.groups;
    stats_.group_occupancy.Add(static_cast<double>(group->count()));
  }
  // Pin the code storage for the lifetime of the dispatched work: the
  // handle shares ownership of the backing bytes (heap block or mmap of
  // the index file), so the scan below reads from storage that cannot be
  // unmapped or freed under it regardless of which backend serves the
  // index — the bit-identity contract is backend-independent.
  storage::Blob storage_pin =
      index_->has_codes() ? index_->codes().storage() : storage::Blob();
  executor_.Submit([this, group = std::move(group),
                    pin = std::move(storage_pin)](int worker) {
    (void)pin;
    const int64_t count = group->count();
    linalg::Matrix queries(count, dim_);
    std::copy(group->queries.begin(), group->queries.end(), queries.data());
    std::vector<std::vector<index::Neighbor>> results(
        static_cast<std::size_t>(count));
    index::DistanceComputer& computer =
        *computers_[static_cast<std::size_t>(worker)];
    // The worker's computer is single-threaded state (only worker thread
    // `worker` ever touches it); snapshotting its cumulative counters
    // around the scan yields this group's delta, which is folded into the
    // guarded stats below. That keeps ServingStats::computer_stats
    // coherent under concurrent stats() calls — the live computers are
    // never read from another thread.
    const index::ComputerStats before = computer.stats();
    index_->SearchBatchRange(computer, queries, 0, count, group->key.k,
                             group->key.nprobe, results.data(),
                             group->probes.data());
    index::ComputerStats scan_stats = computer.stats();
    scan_stats -= before;
    const Clock::time_point done = Clock::now();
    {
      util::MutexLock lock(stats_mu_);
      for (int64_t i = 0; i < count; ++i) {
        stats_.latency_seconds.Add(
            std::chrono::duration<double>(
                done - group->admitted_at[static_cast<std::size_t>(i)])
                .count());
      }
      stats_.computer_stats += scan_stats;
    }
    for (int64_t i = 0; i < count; ++i) {
      group->promises[static_cast<std::size_t>(i)].set_value(
          std::move(results[static_cast<std::size_t>(i)]));
    }
    // Capacity just freed: wake the flusher so a held group (adaptive
    // batching under saturation) dispatches immediately, not on a poll.
    flusher_cv_.NotifyOne();
  });
}

void IvfServer::FlusherLoop() {
  while (true) {
    // One expired group is extracted per lock hold; the dispatch itself
    // happens outside the critical section so Submit never blocks behind
    // executor handoff.
    std::shared_ptr<PendingGroup> group;
    {
      util::MutexLock lock(pending_mu_);
      if (stop_flusher_) return;
      if (pending_.empty()) {
        while (!stop_flusher_ && pending_.empty()) {
          flusher_cv_.Wait(pending_mu_);
        }
        continue;
      }
      auto oldest = pending_.begin();
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->second->deadline < oldest->second->deadline) oldest = it;
      }
      if (Clock::now() < oldest->second->deadline) {
        flusher_cv_.WaitUntil(pending_mu_, oldest->second->deadline);
        continue;  // re-evaluate: new groups / Flush / stop may have raced
      }
      // The oldest group has expired. If every worker already has queued
      // follow-on work, dispatching now would only move its wait from the
      // admission side into the executor queue — hold it instead, where it
      // keeps coalescing with incoming traffic, and re-check as the queue
      // drains (adaptive batching under saturation; see the header).
      if (executor_.queued() >= executor_.num_threads()) {
        // Workers notify flusher_cv_ as groups complete, so this wakes as
        // soon as capacity frees; the timeout is only a safety net.
        flusher_cv_.WaitFor(pending_mu_, std::chrono::milliseconds(1));
        continue;
      }
      group = std::move(oldest->second);
      pending_.erase(oldest);
      // Top the group up to max_group_size with members of pending groups
      // that share (k, nprobe), nearest lead centroid first: probe lists
      // ride per member, so mixed leads stay bit-identical, and spatial
      // adjacency keeps the co-probe sharing dense — this rebuilds the
      // packing a pre-sorted batch enjoys (whose groups also span several
      // adjacent leads) online, instead of stranding each lead in its own
      // small dispatch. Donors keep their deadline for whatever remains.
      const auto& neighbors = centroid_neighbors_[static_cast<std::size_t>(
          group->key.lead_centroid)];
      for (int32_t lead : neighbors) {
        if (group->count() >= options_.max_group_size) break;
        auto donor_it =
            pending_.find(GroupKey{group->key.k, group->key.nprobe, lead});
        if (donor_it == pending_.end()) continue;
        TakeMembers(*donor_it->second, *group);
        if (donor_it->second->count() == 0) pending_.erase(donor_it);
      }
      // Fallback beyond the neighbor fanout: with only a handful of pending
      // groups (light load), amortizing the group overhead beats insisting
      // on spatial adjacency, so take any same-(k, nprobe) donor.
      auto donor_it =
          pending_.lower_bound(GroupKey{group->key.k, group->key.nprobe, 0});
      while (group->count() < options_.max_group_size &&
             donor_it != pending_.end() &&
             donor_it->first.k == group->key.k &&
             donor_it->first.nprobe == group->key.nprobe) {
        TakeMembers(*donor_it->second, *group);
        donor_it = donor_it->second->count() == 0 ? pending_.erase(donor_it)
                                                  : ++donor_it;
      }
    }
    {
      util::MutexLock stats_lock(stats_mu_);
      ++stats_.linger_flushes;
    }
    Dispatch(std::move(group));
  }
}

void IvfServer::Flush() {
  std::vector<std::shared_ptr<PendingGroup>> drained;
  {
    util::MutexLock lock(pending_mu_);
    drained.reserve(pending_.size());
    for (auto& [key, group] : pending_) drained.push_back(std::move(group));
    pending_.clear();
  }
  {
    util::MutexLock lock(stats_mu_);
    stats_.drain_flushes += static_cast<int64_t>(drained.size());
  }
  for (auto& group : drained) Dispatch(std::move(group));
}

void IvfServer::Shutdown() {
  {
    util::MutexLock lock(pending_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
    stop_flusher_ = true;
  }
  flusher_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  Flush();
  executor_.Shutdown();  // waits for every dispatched group to complete
}

ServingStats IvfServer::stats() const {
  // computer_stats is folded in per completed group under stats_mu_
  // (see Dispatch), so the snapshot is coherent even mid-flight.
  util::MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace resinfer::serve

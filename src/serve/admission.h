// Coalescing admission for online IVF serving.
//
// The grouped scan (IvfIndex::SearchBatchRange, PR 4) shares bucket
// streams and per-query setup across up to kMaxQueryGroup queries — but
// until now a caller had to materialize thousands of queries and pre-sort
// them by probe list to reach it. A server does not get that luxury:
// queries arrive one at a time, in arbitrary order, from many clients.
//
// IvfServer makes batching emerge from traffic instead. Submit(query, k,
// nprobe) ranks the query's probe centroids once (the same ranking Search
// would perform first — handing the list to SearchBatchRange means it is
// never paid twice) and files the request under the coalescing key
// (k, nprobe, lead centroid). Requests sharing a key accumulate into a
// pending group; a group is dispatched to the work-stealing executor when
//
//   * it reaches max_group_size members (a full flush), or
//   * its oldest member has lingered past linger_micros (the bounded
//     latency cost of waiting for co-probing traffic) AND a worker can
//     actually take it, or
//   * Flush()/Shutdown() drains it.
//
// The AND clause is adaptive batching under saturation: when every worker
// already has queued follow-on work, dispatching an expired group would
// only move its wait from the admission side into the executor queue, as
// a needlessly small group. Holding it costs no end-to-end latency to
// first order — the members wait either way — but lets the group keep
// coalescing with incoming traffic, so occupancy (and throughput) rises
// exactly when the system needs it. The linger budget is therefore the
// bound on *voluntary idle* waiting; under backlog a request's wait is
// queue-drain-dominated, as in any saturated server.
//
// Dispatched groups run through SearchBatchRange, whose contract makes
// every member's answer bit-identical to a solo Search(query, k, nprobe)
// — coalescing changes memory traffic and throughput, never results. Keys
// include k and nprobe so requests with different parameters are never
// mixed into one grouped scan.
//
// Lead-centroid affinity is deliberately coarse: queries whose nearest
// centroid agrees overlap heavily in their remaining probe lists (they are
// close in space), so grouping by the lead captures most of the co-probe
// sharing that full lexicographic sorting finds, at O(1) admission cost.
// At dispatch the flusher additionally tops an expired group up to
// max_group_size with members of pending same-(k, nprobe) groups whose
// lead centroid is spatially closest to the expired group's lead (a
// centroid-to-centroid neighbor ranking computed once at construction) —
// each member carries its own probe list, so mixed leads stay
// bit-identical — which rebuilds the dense packing of a pre-sorted batch
// (whose groups also span several adjacent leads) from online traffic.
#ifndef RESINFER_SERVE_ADMISSION_H_
#define RESINFER_SERVE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "index/batch.h"
#include "index/distance_computer.h"
#include "index/ivf_index.h"
#include "serve/executor.h"
#include "util/histogram.h"
#include "util/thread_annotations.h"

namespace resinfer::serve {

struct AdmissionOptions {
  // Executor width; <= 0 resolves to DefaultThreadCount().
  int num_threads = 0;
  // Coalescing cap per group, clamped to [1, index::kMaxQueryGroup] (the
  // grouped-scan tiling width — larger groups would be chunked anyway).
  int max_group_size = index::kMaxQueryGroup;
  // How long a partial group may wait for co-probing traffic while a
  // worker could serve it (see the header: under saturation an expired
  // group is held longer and keeps coalescing, since dispatching it would
  // only requeue the wait). The knob trades idle-system tail latency for
  // occupancy; 100-500us covers one to a few query service times at
  // serving-relevant sizes.
  int64_t linger_micros = 200;
  // When false, every request is dispatched solo the moment it arrives —
  // the baseline an A/B against coalescing wants.
  bool coalesce = true;
};

struct ServingStats {
  int64_t requests = 0;
  int64_t groups = 0;           // groups dispatched
  int64_t full_flushes = 0;     // dispatched at max_group_size
  int64_t linger_flushes = 0;   // dispatched by the linger deadline
  int64_t drain_flushes = 0;    // dispatched by Flush()/Shutdown()
  // Members per dispatched group; mean() is the achieved occupancy.
  Histogram group_occupancy;
  // Submit-to-completion wall per request (includes linger and queueing —
  // the latency a client observes, not just the scan).
  Histogram latency_seconds;
  // Computer counters summed across workers. Each dispatched group's
  // counter delta is folded in under the stats mutex when its scan
  // completes, so a snapshot is always coherent — it reflects exactly the
  // groups that had finished at snapshot time, and reading it concurrently
  // with in-flight searches is race-free. (This used to be an unguarded
  // sweep over the live worker computers, the kind of lock-discipline hole
  // the thread-safety annotations now make a compile error.)
  index::ComputerStats computer_stats;

  double MeanOccupancy() const { return group_occupancy.mean(); }
};

class IvfServer {
 public:
  // `index` and the computers `factory` builds must outlive the server;
  // one computer is built per executor worker up front. The index must
  // have at least one cluster.
  IvfServer(const index::IvfIndex* index, index::ComputerFactory factory);
  IvfServer(const index::IvfIndex* index, index::ComputerFactory factory,
            const AdmissionOptions& options);
  ~IvfServer();  // calls Shutdown()

  IvfServer(const IvfServer&) = delete;
  IvfServer& operator=(const IvfServer&) = delete;

  // Admits one query (dim() floats; copied, the caller's buffer may be
  // reused immediately). Thread-safe. The future resolves to the same
  // neighbors Search(computer, query, k, nprobe) returns, bit-identically;
  // k <= 0 resolves to an empty result without being grouped. Must not be
  // called once Shutdown has begun.
  std::future<std::vector<index::Neighbor>> Submit(const float* query, int k,
                                                   int nprobe)
      RESINFER_EXCLUDES(pending_mu_, stats_mu_);

  // Dispatches every pending group immediately, regardless of linger
  // deadlines. Does not wait for them to finish.
  void Flush() RESINFER_EXCLUDES(pending_mu_, stats_mu_);

  // Stops the linger flusher, drains pending groups, and waits for every
  // in-flight search to complete. Idempotent; the destructor calls it.
  void Shutdown() RESINFER_EXCLUDES(pending_mu_, stats_mu_);

  // Safe to call at any time, including while searches are in flight.
  ServingStats stats() const RESINFER_EXCLUDES(stats_mu_);
  Executor::Stats executor_stats() const { return executor_.stats(); }
  int num_threads() const { return executor_.num_threads(); }
  int64_t dim() const { return dim_; }

 private:
  struct GroupKey {
    int k = 0;
    int nprobe = 0;
    int32_t lead_centroid = 0;
    bool operator<(const GroupKey& other) const {
      if (k != other.k) return k < other.k;
      if (nprobe != other.nprobe) return nprobe < other.nprobe;
      return lead_centroid < other.lead_centroid;
    }
  };

  struct PendingGroup {
    GroupKey key;
    // Member queries back to back (count * dim floats) and their probe
    // lists (count * nprobe_used ids) — already the layout the grouped
    // scan wants.
    std::vector<float> queries;
    std::vector<int32_t> probes;
    std::vector<std::promise<std::vector<index::Neighbor>>> promises;
    std::vector<std::chrono::steady_clock::time_point> admitted_at;
    std::chrono::steady_clock::time_point deadline;
    int64_t count() const {
      return static_cast<int64_t>(promises.size());
    }
  };

  // Moves the group onto the executor.
  void Dispatch(std::shared_ptr<PendingGroup> group)
      RESINFER_EXCLUDES(pending_mu_, stats_mu_);
  // Moves members from `from` into `to` up to max_group_size (both must
  // share (k, nprobe)).
  void TakeMembers(PendingGroup& from, PendingGroup& to)
      RESINFER_REQUIRES(pending_mu_);
  void FlusherLoop() RESINFER_EXCLUDES(pending_mu_, stats_mu_);

  const index::IvfIndex* index_;
  int64_t dim_ = 0;
  AdmissionOptions options_;
  // Row c: centroid ids nearest centroid c (c itself first), used to pick
  // spatially-adjacent donors when topping up a dispatched group. Capped
  // at kNeighborLeads entries per centroid; immutable after construction.
  static constexpr int kNeighborLeads = 64;
  std::vector<std::vector<int32_t>> centroid_neighbors_;

  Executor executor_;
  std::vector<std::unique_ptr<index::DistanceComputer>> computers_;

  // Lock order: pending_mu_ and stats_mu_ are never held together —
  // Submit, Dispatch, Flush, and the flusher all drop one before taking
  // the other.
  mutable util::Mutex pending_mu_;
  std::map<GroupKey, std::shared_ptr<PendingGroup>> pending_
      RESINFER_GUARDED_BY(pending_mu_);
  util::CondVar flusher_cv_;
  bool accepting_ RESINFER_GUARDED_BY(pending_mu_) = true;
  bool stop_flusher_ RESINFER_GUARDED_BY(pending_mu_) = false;
  bool shut_down_ RESINFER_GUARDED_BY(pending_mu_) = false;
  std::thread flusher_;

  mutable util::Mutex stats_mu_;
  ServingStats stats_ RESINFER_GUARDED_BY(stats_mu_);
};

}  // namespace resinfer::serve

#endif  // RESINFER_SERVE_ADMISSION_H_

#include "serve/executor.h"

#include <chrono>
#include <memory>
#include <utility>

#include "util/macros.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace resinfer::serve {

void WaitGroup::Add(int64_t n) {
  RESINFER_CHECK(n >= 0);
  util::MutexLock lock(mu_);
  outstanding_ += n;
}

void WaitGroup::Done() {
  util::MutexLock lock(mu_);
  RESINFER_CHECK(outstanding_ > 0);
  if (--outstanding_ == 0) cv_.NotifyAll();
}

void WaitGroup::Wait() {
  util::MutexLock lock(mu_);
  // Inline predicate loop (not the lambda-predicate overload): the analysis
  // does not propagate lock state into lambda bodies, so reading
  // outstanding_ from a closure would defeat the GUARDED_BY contract.
  while (outstanding_ != 0) cv_.Wait(mu_);
}

Executor::Executor() : Executor(Options()) {}

Executor::Executor(const Options& options) {
  const int threads = ResolveThreadCount(options.num_threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start after every Worker exists: a worker scans all sibling deques.
  for (int t = 0; t < threads; ++t) {
    workers_[static_cast<std::size_t>(t)]->thread =
        std::thread(&Executor::WorkerLoop, this, t);
  }
}

Executor::~Executor() { Shutdown(); }

void Executor::Submit(Task task) {
  RESINFER_CHECK(task != nullptr);
  {
    util::MutexLock lock(admission_mu_);
    admission_.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Taking the idle lock orders this submission against the sleep
    // predicate check, so a worker about to sleep cannot miss the wakeup.
    util::MutexLock lock(idle_mu_);
  }
  idle_cv_.NotifyOne();
}

void Executor::SubmitTo(int worker, Task task) {
  RESINFER_CHECK(task != nullptr);
  RESINFER_CHECK(worker >= 0 && worker < num_threads());
  Worker& w = *workers_[static_cast<std::size_t>(worker)];
  {
    util::MutexLock lock(w.mu);
    w.deque.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    util::MutexLock lock(idle_mu_);
  }
  idle_cv_.NotifyAll();  // the owner or any potential thief may be asleep
}

bool Executor::TryRunOne(int self) {
  Worker& me = *workers_[static_cast<std::size_t>(self)];
  Task task;
  bool stolen = false;
  bool admitted = false;

  // 1. Own deque, LIFO end.
  {
    util::MutexLock lock(me.mu);
    if (!me.deque.empty()) {
      task = std::move(me.deque.back());
      me.deque.pop_back();
    }
  }
  // 2. Shared admission queue, FIFO.
  if (task == nullptr) {
    util::MutexLock lock(admission_mu_);
    if (!admission_.empty()) {
      task = std::move(admission_.front());
      admission_.pop_front();
      admitted = true;
    }
  }
  // 3. Steal FIFO from the first victim with work, scanning round-robin
  // from the next worker so thieves spread across victims.
  if (task == nullptr) {
    const int n = num_threads();
    for (int i = 1; i < n && task == nullptr; ++i) {
      Worker& victim = *workers_[static_cast<std::size_t>((self + i) % n)];
      util::MutexLock lock(victim.mu);
      if (!victim.deque.empty()) {
        task = std::move(victim.deque.front());
        victim.deque.pop_front();
        stolen = true;
      }
    }
  }
  if (task == nullptr) return false;

  pending_.fetch_sub(1, std::memory_order_acq_rel);
  running_.fetch_add(1, std::memory_order_acq_rel);
  WallTimer timer;
  task(self);
  me.busy_nanos.fetch_add(static_cast<int64_t>(timer.ElapsedSeconds() * 1e9),
                          std::memory_order_relaxed);
  me.executed.fetch_add(1, std::memory_order_relaxed);
  if (stolen) me.stolen.fetch_add(1, std::memory_order_relaxed);
  if (admitted) me.admitted.fetch_add(1, std::memory_order_relaxed);
  if (running_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      shutdown_.load(std::memory_order_acquire)) {
    // Possibly the last task of a drain; wake workers blocked on the exit
    // predicate below.
    util::MutexLock lock(idle_mu_);
    idle_cv_.NotifyAll();
  }
  return true;
}

void Executor::WorkerLoop(int self) {
  while (true) {
    if (TryRunOne(self)) continue;
    util::MutexLock lock(idle_mu_);
    while (pending_.load(std::memory_order_acquire) <= 0 &&
           !shutdown_.load(std::memory_order_acquire)) {
      idle_cv_.Wait(idle_mu_);
    }
    if (shutdown_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      // Nothing queued — but a still-running task elsewhere may yet spawn
      // work, so wait for full quiescence rather than exiting early.
      if (running_.load(std::memory_order_acquire) == 0) return;
      while (pending_.load(std::memory_order_acquire) <= 0 &&
             running_.load(std::memory_order_acquire) != 0) {
        idle_cv_.Wait(idle_mu_);
      }
      if (pending_.load(std::memory_order_acquire) == 0 &&
          running_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
  }
}

void Executor::Shutdown() {
  // Serializes concurrent Shutdown calls (including the destructor after
  // an explicit call) so the worker threads are joined exactly once.
  util::MutexLock shutdown_lock(shutdown_mu_);
  if (joined_) return;
  {
    util::MutexLock lock(idle_mu_);
    shutdown_.store(true, std::memory_order_release);
  }
  idle_cv_.NotifyAll();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  joined_ = true;
}

Executor::Stats Executor::stats() const {
  Stats stats;
  stats.busy_seconds.reserve(workers_.size());
  for (const auto& w : workers_) {
    stats.executed += w->executed.load(std::memory_order_relaxed);
    stats.stolen += w->stolen.load(std::memory_order_relaxed);
    stats.admitted += w->admitted.load(std::memory_order_relaxed);
    stats.busy_seconds.push_back(
        static_cast<double>(w->busy_nanos.load(std::memory_order_relaxed)) *
        1e-9);
  }
  return stats;
}

}  // namespace resinfer::serve

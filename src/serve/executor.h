// Work-stealing executor for the serving runtime.
//
// The batch runner used to drain a pre-materialized query list through a
// single atomic cursor — fine for offline batches, but a serving layer
// needs tasks that arrive continuously, vary wildly in cost (DDC pruning
// makes some queries 10x cheaper than others), and must never strand
// behind a straggling worker. The executor owns that pattern:
//
//   * one deque per worker, locked individually. A worker pops its own
//     deque LIFO (hot end, cache-warm) and steals FIFO from a victim's
//     other end (oldest work first, minimizing contention on the hot end);
//   * a shared MPMC admission queue for externally submitted tasks — any
//     thread may Submit(); idle workers drain it before stealing;
//   * SubmitTo(worker, task) pre-distributes a known work list across the
//     deques (the batch runner round-robins its query groups), after which
//     imbalance is corrected by stealing instead of a global cursor.
//
// Tasks receive the index of the worker that executes them, so clients
// keep per-worker state (one DistanceComputer per worker — they are
// stateful per query) without locks: workers[i] is touched only by worker
// thread i, no matter which deque the task came from.
//
// Locking over lock-freedom is deliberate: tasks here are whole query
// groups (tens of microseconds to milliseconds), so a mutex per deque
// costs noise, stays portable, and is trivially ThreadSanitizer-clean —
// the CI TSan job runs the serving suites on every push.
#ifndef RESINFER_SERVE_EXECUTOR_H_
#define RESINFER_SERVE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace resinfer::serve {

// Completion latch for fork-join clients: Add the number of tasks before
// submitting them, Done() from each task, Wait() for all of them. Reusable
// after Wait returns.
class WaitGroup {
 public:
  void Add(int64_t n) RESINFER_EXCLUDES(mu_);
  void Done() RESINFER_EXCLUDES(mu_);
  void Wait() RESINFER_EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  int64_t outstanding_ RESINFER_GUARDED_BY(mu_) = 0;
};

class Executor {
 public:
  struct Options {
    // <= 0 resolves to DefaultThreadCount() (which itself honors the
    // RESINFER_THREADS environment override).
    int num_threads = 0;
  };

  // `worker` is the index of the executing worker thread, in
  // [0, num_threads()).
  using Task = std::function<void(int worker)>;

  struct Stats {
    // Tasks run to completion.
    int64_t executed = 0;
    // Tasks a worker took from another worker's deque.
    int64_t stolen = 0;
    // Tasks taken from the shared admission queue.
    int64_t admitted = 0;
    // Per-worker wall time spent inside tasks since construction.
    std::vector<double> busy_seconds;
  };

  Executor();  // Options with all defaults
  explicit Executor(const Options& options);
  ~Executor();  // calls Shutdown()

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues onto the shared admission queue; any thread. Running tasks
  // may Submit follow-up work at any time — the Shutdown drain always
  // serves it. External threads must not Submit once Shutdown has begun
  // (such a task may never run).
  void Submit(Task task) RESINFER_EXCLUDES(admission_mu_, idle_mu_);

  // Enqueues onto worker `worker`'s own deque. Used to pre-distribute a
  // known work list; the owner pops it LIFO, idle workers steal it FIFO.
  // Same Shutdown contract as Submit.
  void SubmitTo(int worker, Task task) RESINFER_EXCLUDES(idle_mu_);

  // Runs every submitted task (including tasks submitted by tasks) to
  // completion, then joins the workers. Idempotent and safe to call
  // concurrently; the destructor calls it.
  void Shutdown() RESINFER_EXCLUDES(shutdown_mu_, idle_mu_);

  Stats stats() const;

  // Tasks queued but not yet started, across every deque and the admission
  // queue. A load-signal for admission layers: queued() >= num_threads()
  // means every worker already has follow-on work, so dispatching more
  // only moves waiting from the caller's side to the executor queue.
  int64_t queued() const { return pending_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    util::Mutex mu;
    std::deque<Task> deque RESINFER_GUARDED_BY(mu);
    std::thread thread;
    std::atomic<int64_t> busy_nanos{0};
    std::atomic<int64_t> executed{0};
    std::atomic<int64_t> stolen{0};
    std::atomic<int64_t> admitted{0};
  };

  // Pops one task for worker `self` (own deque back, admission queue
  // front, then steal from victims front). Returns false when every queue
  // is empty at the time of the scan.
  bool TryRunOne(int self) RESINFER_EXCLUDES(admission_mu_, idle_mu_);
  void WorkerLoop(int self) RESINFER_EXCLUDES(admission_mu_, idle_mu_);

  std::vector<std::unique_ptr<Worker>> workers_;

  util::Mutex admission_mu_;
  std::deque<Task> admission_ RESINFER_GUARDED_BY(admission_mu_);

  // Queued-but-not-started tasks across all queues; the sleep predicate.
  std::atomic<int64_t> pending_{0};
  // Tasks currently executing; Shutdown completes only when both counters
  // reach zero, so task-spawned tasks always run.
  std::atomic<int64_t> running_{0};

  // Lock order: shutdown_mu_ before idle_mu_ (Shutdown takes both);
  // admission_mu_ and the per-worker mus are leaves, never held across
  // another acquisition.
  util::Mutex idle_mu_ RESINFER_ACQUIRED_AFTER(shutdown_mu_);
  util::CondVar idle_cv_;
  std::atomic<bool> shutdown_{false};
  util::Mutex shutdown_mu_;  // serializes Shutdown; guards joined_
  bool joined_ RESINFER_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace resinfer::serve

#endif  // RESINFER_SERVE_EXECUTOR_H_

#include "simd/dispatch.h"

#include <atomic>

#include "simd/kernels.h"

namespace resinfer::simd {

namespace {

// Function-local static avoids static-initialization-order hazards.
std::atomic<SimdLevel>& LevelSlot() {
  static std::atomic<SimdLevel> slot{BestSupportedLevel()};
  return slot;
}

}  // namespace

SimdLevel BestSupportedLevel() {
#if defined(RESINFER_HAVE_AVX2)
  // The build targets -mavx2; binaries only run on AVX2-capable hosts, so a
  // compile-time answer is sufficient.
  return SimdLevel::kAvx2;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveLevel() { return LevelSlot().load(std::memory_order_relaxed); }

void SetActiveLevel(SimdLevel level) {
  if (level > BestSupportedLevel()) level = BestSupportedLevel();
  LevelSlot().store(level, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

float L2Sqr(const float* a, const float* b, std::size_t n) {
#if defined(RESINFER_HAVE_AVX2)
  if (ActiveLevel() == SimdLevel::kAvx2) return internal::L2SqrAvx2(a, b, n);
#endif
  return internal::L2SqrScalar(a, b, n);
}

float InnerProduct(const float* a, const float* b, std::size_t n) {
#if defined(RESINFER_HAVE_AVX2)
  if (ActiveLevel() == SimdLevel::kAvx2)
    return internal::InnerProductAvx2(a, b, n);
#endif
  return internal::InnerProductScalar(a, b, n);
}

float Norm2Sqr(const float* a, std::size_t n) {
#if defined(RESINFER_HAVE_AVX2)
  if (ActiveLevel() == SimdLevel::kAvx2) return internal::Norm2SqrAvx2(a, n);
#endif
  return internal::Norm2SqrScalar(a, n);
}

void Axpy(float scale, const float* x, float* out, std::size_t n) {
#if defined(RESINFER_HAVE_AVX2)
  if (ActiveLevel() == SimdLevel::kAvx2) {
    internal::AxpyAvx2(scale, x, out, n);
    return;
  }
#endif
  internal::AxpyScalar(scale, x, out, n);
}

float SqAdcL2Sqr(const float* q, const uint8_t* code, const float* vmin,
                 const float* step, std::size_t n) {
#if defined(RESINFER_HAVE_AVX2)
  if (ActiveLevel() == SimdLevel::kAvx2)
    return internal::SqAdcL2SqrAvx2(q, code, vmin, step, n);
#endif
  return internal::SqAdcL2SqrScalar(q, code, vmin, step, n);
}

}  // namespace resinfer::simd

#include "simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.h"

namespace resinfer::simd {

namespace {

// All kernel entry points for one SIMD level. The public functions below
// dispatch through a single pointer to one of these tables: one relaxed
// pointer load plus an indirect call per kernel invocation, instead of the
// previous atomic-level-load-plus-branch in every innermost loop. The table
// also carries its own level so ActiveLevel() is derived from the same
// pointer the kernels dispatch through — one atomic, no way for a reader
// to observe a level that disagrees with the active table.
struct KernelTable {
  SimdLevel level;
  float (*l2sqr)(const float*, const float*, std::size_t);
  float (*inner_product)(const float*, const float*, std::size_t);
  float (*norm2sqr)(const float*, std::size_t);
  void (*axpy)(float, const float*, float*, std::size_t);
  float (*sq_adc_l2sqr)(const float*, const uint8_t*, const float*,
                        const float*, std::size_t);
  void (*l2sqr_batch4)(const float*, const float* const*, std::size_t,
                       float*);
  void (*inner_product_batch4)(const float*, const float* const*,
                               std::size_t, float*);
  void (*pq_adc_batch)(const float*, int, int, const uint8_t* const*, int,
                       float*);
  void (*sq_adc_l2sqr_batch4)(const float*, const uint8_t* const*,
                              const float*, const float*, std::size_t,
                              float*);
  void (*pq_adc_fast_scan)(const uint8_t*, int, const uint8_t* const*, int,
                           uint16_t*);
  void (*pq_adc_fast_scan_tile)(const uint8_t* const*, int, int,
                                const uint8_t* const*, int, uint16_t*);
  void (*l2sqr_tile)(const float* const*, int, const float* const*,
                     std::size_t, float*);
  void (*pq_adc_tile)(const float* const*, int, int, int,
                      const uint8_t* const*, int, float*);
  uint32_t (*crc32c)(uint32_t, const void*, std::size_t);
};

constexpr KernelTable kScalarTable = {
    SimdLevel::kScalar,
    internal::L2SqrScalar,
    internal::InnerProductScalar,
    internal::Norm2SqrScalar,
    internal::AxpyScalar,
    internal::SqAdcL2SqrScalar,
    internal::L2SqrBatch4Scalar,
    internal::InnerProductBatch4Scalar,
    internal::PqAdcBatchScalar,
    internal::SqAdcL2SqrBatch4Scalar,
    internal::PqAdcFastScanScalar,
    internal::PqAdcFastScanTileScalar,
    internal::L2SqrTileScalar,
    internal::PqAdcTileScalar,
    internal::Crc32cScalar,
};

#if defined(RESINFER_HAVE_AVX2)
constexpr KernelTable kAvx2Table = {
    SimdLevel::kAvx2,
    internal::L2SqrAvx2,
    internal::InnerProductAvx2,
    internal::Norm2SqrAvx2,
    internal::AxpyAvx2,
    internal::SqAdcL2SqrAvx2,
    internal::L2SqrBatch4Avx2,
    internal::InnerProductBatch4Avx2,
    internal::PqAdcBatchAvx2,
    internal::SqAdcL2SqrBatch4Avx2,
    internal::PqAdcFastScanAvx2,
    internal::PqAdcFastScanTileAvx2,
    internal::L2SqrTileAvx2,
    internal::PqAdcTileAvx2,
    internal::Crc32cSse42,
};
#endif

#if defined(RESINFER_HAVE_AVX512)
constexpr KernelTable kAvx512Table = {
    SimdLevel::kAvx512,
    internal::L2SqrAvx512,
    internal::InnerProductAvx512,
    internal::Norm2SqrAvx512,
    internal::AxpyAvx512,
    internal::SqAdcL2SqrAvx512,
    internal::L2SqrBatch4Avx512,
    internal::InnerProductBatch4Avx512,
    internal::PqAdcBatchAvx512,
    internal::SqAdcL2SqrBatch4Avx512,
    internal::PqAdcFastScanAvx512,
    internal::PqAdcFastScanTileAvx512,
    internal::L2SqrTileAvx512,
    internal::PqAdcTileAvx512,
    // AVX-512 hosts use the same SSE4.2 crc32 instruction; there is no wider
    // form, so the tier shares the AVX2 TU's implementation.
    internal::Crc32cSse42,
};
#endif

const KernelTable* TableFor(SimdLevel level) {
#if defined(RESINFER_HAVE_AVX512)
  if (level == SimdLevel::kAvx512) return &kAvx512Table;
#endif
#if defined(RESINFER_HAVE_AVX2)
  if (level >= SimdLevel::kAvx2) return &kAvx2Table;
#endif
  (void)level;
  return &kScalarTable;
}

// Function-local static avoids static-initialization-order hazards; the
// table pointer is resolved once on first use (cpuid check included) and
// only changes through SetActiveLevel. This single slot is the whole
// dispatch state: the level is a field of the table it points to, so
// ActiveLevel()/kernel pairs can never be observed mismatched (the previous
// two-atomics design allowed a reader between the two stores to see the old
// level with the new table, or vice versa).
std::atomic<const KernelTable*>& TableSlot() {
  static std::atomic<const KernelTable*> slot{TableFor(InitialLevel())};
  return slot;
}

inline const KernelTable& Active() {
  return *TableSlot().load(std::memory_order_relaxed);
}

}  // namespace

SimdLevel BestSupportedLevel() {
  // The vectorized kernels are compiled into every RESINFER_HAVE_* build,
  // but the binary may land on an older host; check the CPU once so
  // dispatch degrades level by level instead of executing illegal
  // instructions.
#if defined(RESINFER_HAVE_AVX512) && (defined(__GNUC__) || defined(__clang__))
  // F is the zmm/mask baseline, BW the byte/word ops (vpshufb on zmm,
  // u16 fast-scan accumulation), VL the masked 128/256-bit loads the
  // tail paths use.
  static const bool avx512_ok = __builtin_cpu_supports("avx512f") &&
                                __builtin_cpu_supports("avx512bw") &&
                                __builtin_cpu_supports("avx512vl");
  if (avx512_ok) return SimdLevel::kAvx512;
#endif
#if defined(RESINFER_HAVE_AVX2)
#if defined(__GNUC__) || defined(__clang__)
  // sse4.2 is implied by AVX2 on every real part, but the AVX2 table's
  // crc32c entry executes `crc32` instructions, so gate it explicitly.
  static const bool cpu_ok = __builtin_cpu_supports("avx2") &&
                             __builtin_cpu_supports("fma") &&
                             __builtin_cpu_supports("sse4.2");
  return cpu_ok ? SimdLevel::kAvx2 : SimdLevel::kScalar;
#else
  return SimdLevel::kAvx2;
#endif
#else
  return SimdLevel::kScalar;
#endif
}

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel best = BestSupportedLevel();
  if (best >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  if (best >= SimdLevel::kAvx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

bool ParseSimdLevelName(const char* name, SimdLevel* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(name, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
    return true;
  }
  return false;
}

SimdLevel InitialLevel() {
  const SimdLevel best = BestSupportedLevel();
  const char* env = std::getenv("RESINFER_SIMD_LEVEL");
  if (env == nullptr || env[0] == '\0') return best;
  SimdLevel requested;
  if (!ParseSimdLevelName(env, &requested)) {
    std::fprintf(stderr,
                 "resinfer: ignoring invalid RESINFER_SIMD_LEVEL=%s "
                 "(expected scalar|avx2|avx512)\n",
                 env);
    return best;
  }
  return requested > best ? best : requested;
}

SimdLevel ActiveLevel() { return Active().level; }

void SetActiveLevel(SimdLevel level) {
  if (level > BestSupportedLevel()) level = BestSupportedLevel();
  TableSlot().store(TableFor(level), std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

float L2Sqr(const float* a, const float* b, std::size_t n) {
  return Active().l2sqr(a, b, n);
}

float InnerProduct(const float* a, const float* b, std::size_t n) {
  return Active().inner_product(a, b, n);
}

float Norm2Sqr(const float* a, std::size_t n) { return Active().norm2sqr(a, n); }

void Axpy(float scale, const float* x, float* out, std::size_t n) {
  Active().axpy(scale, x, out, n);
}

float SqAdcL2Sqr(const float* q, const uint8_t* code, const float* vmin,
                 const float* step, std::size_t n) {
  return Active().sq_adc_l2sqr(q, code, vmin, step, n);
}

void L2SqrBatch4(const float* q, const float* const* rows, std::size_t n,
                 float* out) {
  Active().l2sqr_batch4(q, rows, n, out);
}

void InnerProductBatch4(const float* q, const float* const* rows,
                        std::size_t n, float* out) {
  Active().inner_product_batch4(q, rows, n, out);
}

void PqAdcBatch(const float* table, int m, int ksub,
                const uint8_t* const* codes, int count, float* out) {
  Active().pq_adc_batch(table, m, ksub, codes, count, out);
}

void SqAdcL2SqrBatch4(const float* q, const uint8_t* const* codes,
                      const float* vmin, const float* step, std::size_t n,
                      float* out) {
  Active().sq_adc_l2sqr_batch4(q, codes, vmin, step, n, out);
}

void PqAdcFastScan(const uint8_t* lut, int m, const uint8_t* const* codes,
                   int count, uint16_t* out) {
  Active().pq_adc_fast_scan(lut, m, codes, count, out);
}

void PqAdcFastScanTile(const uint8_t* const* luts, int num_queries, int m,
                       const uint8_t* const* codes, int count,
                       uint16_t* out) {
  Active().pq_adc_fast_scan_tile(luts, num_queries, m, codes, count, out);
}

void L2SqrTile(const float* const* queries, int num_queries,
               const float* const* rows, std::size_t n, float* out) {
  Active().l2sqr_tile(queries, num_queries, rows, n, out);
}

void PqAdcTile(const float* const* tables, int num_queries, int m, int ksub,
               const uint8_t* const* codes, int count, float* out) {
  Active().pq_adc_tile(tables, num_queries, m, ksub, codes, count, out);
}

uint32_t Crc32c(uint32_t crc, const void* data, std::size_t n) {
  return Active().crc32c(crc, data, n);
}

}  // namespace resinfer::simd

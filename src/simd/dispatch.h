// Runtime selection between scalar, AVX2, and AVX-512 kernel
// implementations.
//
// The paper's experiments disable SIMD to isolate algorithmic effects
// (§VII-A); this library ships vectorized kernels but lets benches and tests
// pin the scalar reference path via SetActiveLevel so both configurations
// can be reported.
//
// Kernel entry points dispatch through a function-pointer table resolved
// once at startup (cpuid-checked, so an AVX-512 build degrades to AVX2 or
// scalar on older hosts); switching levels swaps the table pointer. That
// pointer is the single source of truth: each table carries its own level,
// so ActiveLevel() and the kernels a concurrent reader dispatches to always
// agree. The startup level can be overridden without recompiling via the
// RESINFER_SIMD_LEVEL environment variable (scalar|avx2|avx512; invalid
// values are ignored with a stderr note, unsupported ones clamp down).
#ifndef RESINFER_SIMD_DISPATCH_H_
#define RESINFER_SIMD_DISPATCH_H_

#include <vector>

namespace resinfer::simd {

// Ordered lattice: every level can run everything below it (AVX-512F/BW/VL
// implies AVX2+FMA), so requests for unsupported levels clamp downward.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

// Highest level supported by the build + CPU.
SimdLevel BestSupportedLevel();

// All levels the build + CPU can run, ascending (kScalar first). Tests and
// benches iterate this instead of hardcoding the scalar/AVX2 pair so new
// levels are swept automatically.
std::vector<SimdLevel> SupportedLevels();

// Level used by the public kernel entry points. Defaults to
// BestSupportedLevel() unless RESINFER_SIMD_LEVEL overrides it. Setting an
// unsupported level is clamped down.
SimdLevel ActiveLevel();
void SetActiveLevel(SimdLevel level);

const char* SimdLevelName(SimdLevel level);

// Parses a level name ("scalar", "avx2", "avx512"). Returns false (and
// leaves *out untouched) for anything else.
bool ParseSimdLevelName(const char* name, SimdLevel* out);

// The level dispatch initializes with: BestSupportedLevel(), unless the
// RESINFER_SIMD_LEVEL environment variable names a valid level (clamped to
// the supported lattice). Reads the environment on every call; exposed so
// tests can exercise the override parsing without re-running startup.
SimdLevel InitialLevel();

// RAII guard to scope a level change in tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ActiveLevel()) {
    SetActiveLevel(level);
  }
  ~ScopedSimdLevel() { SetActiveLevel(previous_); }

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

}  // namespace resinfer::simd

#endif  // RESINFER_SIMD_DISPATCH_H_

// Runtime selection between scalar and AVX2 kernel implementations.
//
// The paper's experiments disable SIMD to isolate algorithmic effects
// (§VII-A); this library ships vectorized kernels but lets benches and tests
// pin the scalar reference path via SetSimdLevel so both configurations can
// be reported.
//
// Kernel entry points dispatch through a function-pointer table resolved
// once at startup (cpuid-checked, so AVX2 builds degrade to scalar on older
// hosts); switching levels swaps the table pointer. That pointer is the
// single source of truth: each table carries its own level, so
// ActiveLevel() and the kernels a concurrent reader dispatches to always
// agree.
#ifndef RESINFER_SIMD_DISPATCH_H_
#define RESINFER_SIMD_DISPATCH_H_

namespace resinfer::simd {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

// Highest level supported by the build + CPU.
SimdLevel BestSupportedLevel();

// Level used by the public kernel entry points. Defaults to
// BestSupportedLevel(). Setting an unsupported level is clamped down.
SimdLevel ActiveLevel();
void SetActiveLevel(SimdLevel level);

const char* SimdLevelName(SimdLevel level);

// RAII guard to scope a level change in tests.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ActiveLevel()) {
    SetActiveLevel(level);
  }
  ~ScopedSimdLevel() { SetActiveLevel(previous_); }

  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel previous_;
};

}  // namespace resinfer::simd

#endif  // RESINFER_SIMD_DISPATCH_H_

// Distance kernels: squared L2, inner product, squared norm.
//
// These are the innermost loops of every index and distance computer. The
// public functions route through the dispatch table (see dispatch.h); the
// `internal` namespace exposes each implementation directly so tests can
// assert scalar/AVX2 agreement.
//
// All kernels accept unaligned pointers; aligned inputs (AlignedBuffer) are
// simply faster.
#ifndef RESINFER_SIMD_KERNELS_H_
#define RESINFER_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace resinfer::simd {

// sum_i (a[i] - b[i])^2
float L2Sqr(const float* a, const float* b, std::size_t n);

// sum_i a[i] * b[i]
float InnerProduct(const float* a, const float* b, std::size_t n);

// sum_i a[i]^2
float Norm2Sqr(const float* a, std::size_t n);

// out[i] += scale * x[i], used by training loops.
void Axpy(float scale, const float* x, float* out, std::size_t n);

// sum_j (q[j] - (vmin[j] + code[j] * step[j]))^2 — the SQ8 asymmetric
// distance against a byte-quantized vector, decoded on the fly.
float SqAdcL2Sqr(const float* q, const uint8_t* code, const float* vmin,
                 const float* step, std::size_t n);

namespace internal {

float L2SqrScalar(const float* a, const float* b, std::size_t n);
float InnerProductScalar(const float* a, const float* b, std::size_t n);
float Norm2SqrScalar(const float* a, std::size_t n);
void AxpyScalar(float scale, const float* x, float* out, std::size_t n);
float SqAdcL2SqrScalar(const float* q, const uint8_t* code,
                       const float* vmin, const float* step, std::size_t n);

#if defined(RESINFER_HAVE_AVX2)
float L2SqrAvx2(const float* a, const float* b, std::size_t n);
float InnerProductAvx2(const float* a, const float* b, std::size_t n);
float Norm2SqrAvx2(const float* a, std::size_t n);
void AxpyAvx2(float scale, const float* x, float* out, std::size_t n);
float SqAdcL2SqrAvx2(const float* q, const uint8_t* code, const float* vmin,
                     const float* step, std::size_t n);
#endif

}  // namespace internal

}  // namespace resinfer::simd

#endif  // RESINFER_SIMD_KERNELS_H_

// Distance kernels: squared L2, inner product, squared norm.
//
// These are the innermost loops of every index and distance computer. The
// public functions route through the dispatch table (see dispatch.h); the
// `internal` namespace exposes each implementation directly so tests can
// assert scalar/AVX2 agreement.
//
// All kernels accept unaligned pointers; aligned inputs (AlignedBuffer) are
// simply faster.
//
// Batched kernels (the block-scan refinement path): each lane reproduces the
// exact floating-point operation order of the corresponding single-pair
// kernel at the same SIMD level, so lane i of a batch call is bit-identical
// to a per-candidate call on the same inputs. The speedup comes from
// sharing the query loads across lanes and keeping several independent
// accumulation chains in flight, not from reassociation.
#ifndef RESINFER_SIMD_KERNELS_H_
#define RESINFER_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace resinfer::simd {

// Rows per batched-kernel call; block scans feed the batch kernels in groups
// of this size and finish the remainder with single-pair calls.
inline constexpr int kBatchWidth = 4;

// sum_i (a[i] - b[i])^2
float L2Sqr(const float* a, const float* b, std::size_t n);

// sum_i a[i] * b[i]
float InnerProduct(const float* a, const float* b, std::size_t n);

// sum_i a[i]^2
float Norm2Sqr(const float* a, std::size_t n);

// out[i] += scale * x[i], used by training loops.
void Axpy(float scale, const float* x, float* out, std::size_t n);

// sum_j (q[j] - (vmin[j] + code[j] * step[j]))^2 — the SQ8 asymmetric
// distance against a byte-quantized vector, decoded on the fly.
float SqAdcL2Sqr(const float* q, const uint8_t* code, const float* vmin,
                 const float* step, std::size_t n);

// out[r] = L2Sqr(rows[r], q, n) for r in [0, kBatchWidth). Evaluates four
// candidate rows per call with shared query loads; each lane is
// bit-identical to the single-pair L2Sqr at the active level.
void L2SqrBatch4(const float* q, const float* const* rows, std::size_t n,
                 float* out);

// out[r] = InnerProduct(rows[r], q, n) for r in [0, kBatchWidth); the
// inner-product counterpart of L2SqrBatch4 (DDCres first-stage scans).
void InnerProductBatch4(const float* q, const float* const* rows,
                        std::size_t n, float* out);

// PQ/RQ ADC table accumulation over a block of codes:
//   out[c] = sum_s table[s * ksub + codes[c][s]]   for c in [0, count).
// Per-code accumulation is sequential in s (the PqCodebook::AdcDistance
// order), so each lane is bit-identical to the per-candidate lookup sum.
void PqAdcBatch(const float* table, int m, int ksub,
                const uint8_t* const* codes, int count, float* out);

// out[r] = SqAdcL2Sqr(q, codes[r], vmin, step, n) for r in [0, kBatchWidth).
void SqAdcL2SqrBatch4(const float* q, const uint8_t* const* codes,
                      const float* vmin, const float* step, std::size_t n,
                      float* out);

// --- Fast-scan ADC (packed 4-bit codes, quantized u8 LUT) ------------------
//
// The register-resident tier for nbits <= 4 codes
// (quant::CodePacking::kPacked4): the per-query float ADC table is
// quantized to one 16-entry u8 sub-table per sub-space
// (PqCodebook::QuantizeAdcTable), which fits a SIMD register, so the AVX2
// implementation replaces PqAdcBatch's per-code vgatherdps with in-register
// vpshufb lookups. Accumulation is integral and therefore EXACT: scalar and
// vectorized implementations return identical u16 sums, and callers
// dequantize with one shared float expression — bit-identity across SIMD
// levels and scan paths is structural, not contractual.
//
// `lut` holds ceil(m/2) * 32 bytes (sub-table s at lut + s * 16; odd-m pad
// row zero). codes[c] points at candidate c's packed row of ceil(m/2)
// bytes, even sub-space in the low nibble. Requires m <= 256 so the u16
// accumulators cannot overflow (m * 255 < 65536).

// Scalar reference for one packed code; the kernels' tail lanes and the
// estimators' sequential paths share this exact accumulation.
inline uint16_t PqAdcFastScanOne(const uint8_t* lut, int m,
                                 const uint8_t* code) {
  uint32_t sum = 0;
  for (int s = 0; s < m; ++s) {
    const uint8_t byte = code[s >> 1];
    const uint8_t idx = (s & 1) ? static_cast<uint8_t>(byte >> 4)
                                : static_cast<uint8_t>(byte & 0x0f);
    sum += lut[s * 16 + idx];
  }
  return static_cast<uint16_t>(sum);
}

// out[c] = sum_s lut[s * 16 + nibble(codes[c], s)] for c in [0, count).
void PqAdcFastScan(const uint8_t* lut, int m, const uint8_t* const* codes,
                   int count, uint16_t* out);

// Query-group form: out[g * count + c] is PqAdcFastScan lane c under
// luts[g]. Sums are exact integers, so any evaluation order is identical;
// the AVX2 path shares each code block's nibble transpose across the
// group's LUTs.
void PqAdcFastScanTile(const uint8_t* const* luts, int num_queries, int m,
                       const uint8_t* const* codes, int count,
                       uint16_t* out);

// --- Query-tiled kernels (the multi-query serving path) --------------------
//
// Query-major scans score one candidate block for a whole group of queries
// before moving on; these kernels evaluate the q x candidate tile in one
// call so the candidate data is touched once per tile instead of once per
// query. Lane (g, c) is bit-identical to the corresponding single-query
// kernel at the same SIMD level — tiling shares loads, never reassociates.

// out[g * kBatchWidth + r] = L2Sqr(rows[r], queries[g], n) for
// g in [0, num_queries), r in [0, kBatchWidth): L2SqrBatch4 for every query
// of a group while the four candidate rows are cache-hot.
void L2SqrTile(const float* const* queries, int num_queries,
               const float* const* rows, std::size_t n, float* out);

// out[g * count + c] = sum_s tables[g][s * ksub + codes[c][s]]:
// PqAdcBatch over one shared code block for several per-query ADC tables
// (each group member owns one). The codes — and on AVX2 the gather-index
// construction — are shared across the group's tables.
void PqAdcTile(const float* const* tables, int num_queries, int m, int ksub,
               const uint8_t* const* codes, int count, float* out);

// --- CRC32C (Castagnoli) ---------------------------------------------------
//
// Incremental CRC32C over a byte range, used by the persist layer to
// checksum file sections so index loads can verify integrity without a
// separate pass. Start with crc = 0 and chain the return value through
// successive calls; the result equals the CRC32C of the concatenated bytes
// (each call performs the standard pre/post inversion, which composes).
// The AVX2/AVX-512 tables dispatch to the SSE4.2 `crc32` instruction
// (8 bytes per cycle-ish); the scalar table uses a slicing-by-8 software
// implementation, so checksums agree bit-for-bit at every level.
uint32_t Crc32c(uint32_t crc, const void* data, std::size_t n);

namespace internal {

float L2SqrScalar(const float* a, const float* b, std::size_t n);
float InnerProductScalar(const float* a, const float* b, std::size_t n);
float Norm2SqrScalar(const float* a, std::size_t n);
void AxpyScalar(float scale, const float* x, float* out, std::size_t n);
float SqAdcL2SqrScalar(const float* q, const uint8_t* code,
                       const float* vmin, const float* step, std::size_t n);
void L2SqrBatch4Scalar(const float* q, const float* const* rows,
                       std::size_t n, float* out);
void InnerProductBatch4Scalar(const float* q, const float* const* rows,
                              std::size_t n, float* out);
void PqAdcBatchScalar(const float* table, int m, int ksub,
                      const uint8_t* const* codes, int count, float* out);
void SqAdcL2SqrBatch4Scalar(const float* q, const uint8_t* const* codes,
                            const float* vmin, const float* step,
                            std::size_t n, float* out);
void PqAdcFastScanScalar(const uint8_t* lut, int m,
                         const uint8_t* const* codes, int count,
                         uint16_t* out);
void PqAdcFastScanTileScalar(const uint8_t* const* luts, int num_queries,
                             int m, const uint8_t* const* codes, int count,
                             uint16_t* out);
void L2SqrTileScalar(const float* const* queries, int num_queries,
                     const float* const* rows, std::size_t n, float* out);
void PqAdcTileScalar(const float* const* tables, int num_queries, int m,
                     int ksub, const uint8_t* const* codes, int count,
                     float* out);
uint32_t Crc32cScalar(uint32_t crc, const void* data, std::size_t n);

#if defined(RESINFER_HAVE_AVX2)
float L2SqrAvx2(const float* a, const float* b, std::size_t n);
float InnerProductAvx2(const float* a, const float* b, std::size_t n);
float Norm2SqrAvx2(const float* a, std::size_t n);
void AxpyAvx2(float scale, const float* x, float* out, std::size_t n);
float SqAdcL2SqrAvx2(const float* q, const uint8_t* code, const float* vmin,
                     const float* step, std::size_t n);
void L2SqrBatch4Avx2(const float* q, const float* const* rows, std::size_t n,
                     float* out);
void InnerProductBatch4Avx2(const float* q, const float* const* rows,
                            std::size_t n, float* out);
void PqAdcBatchAvx2(const float* table, int m, int ksub,
                    const uint8_t* const* codes, int count, float* out);
void SqAdcL2SqrBatch4Avx2(const float* q, const uint8_t* const* codes,
                          const float* vmin, const float* step,
                          std::size_t n, float* out);
void PqAdcFastScanAvx2(const uint8_t* lut, int m,
                       const uint8_t* const* codes, int count,
                       uint16_t* out);
void PqAdcFastScanTileAvx2(const uint8_t* const* luts, int num_queries,
                           int m, const uint8_t* const* codes, int count,
                           uint16_t* out);
void L2SqrTileAvx2(const float* const* queries, int num_queries,
                   const float* const* rows, std::size_t n, float* out);
void PqAdcTileAvx2(const float* const* tables, int num_queries, int m,
                   int ksub, const uint8_t* const* codes, int count,
                   float* out);
// SSE4.2 hardware crc32 (cpuid-gated alongside AVX2: every AVX2 host has
// SSE4.2, and BestSupportedLevel checks the flag explicitly anyway). Shared
// by the AVX2 and AVX-512 tables.
uint32_t Crc32cSse42(uint32_t crc, const void* data, std::size_t n);
#endif

#if defined(RESINFER_HAVE_AVX512)
// The AVX-512 tier (F+BW+VL): zmm lanes, mask registers for every d%16 and
// n%4 tail (no scalar remainder loops), 64 nibble lookups per vpshufb in
// the fast-scan kernels, and genuine rows x queries register tiles in the
// tiled kernels (32 zmm registers where AVX2's 16 forced per-query
// passes). The single-pair kernels define the level's lane-reduction
// structure; every batch/tile lane reproduces it bit-for-bit.
float L2SqrAvx512(const float* a, const float* b, std::size_t n);
float InnerProductAvx512(const float* a, const float* b, std::size_t n);
float Norm2SqrAvx512(const float* a, std::size_t n);
void AxpyAvx512(float scale, const float* x, float* out, std::size_t n);
float SqAdcL2SqrAvx512(const float* q, const uint8_t* code,
                       const float* vmin, const float* step, std::size_t n);
void L2SqrBatch4Avx512(const float* q, const float* const* rows,
                       std::size_t n, float* out);
void InnerProductBatch4Avx512(const float* q, const float* const* rows,
                              std::size_t n, float* out);
void PqAdcBatchAvx512(const float* table, int m, int ksub,
                      const uint8_t* const* codes, int count, float* out);
void SqAdcL2SqrBatch4Avx512(const float* q, const uint8_t* const* codes,
                            const float* vmin, const float* step,
                            std::size_t n, float* out);
void PqAdcFastScanAvx512(const uint8_t* lut, int m,
                         const uint8_t* const* codes, int count,
                         uint16_t* out);
void PqAdcFastScanTileAvx512(const uint8_t* const* luts, int num_queries,
                             int m, const uint8_t* const* codes, int count,
                             uint16_t* out);
void L2SqrTileAvx512(const float* const* queries, int num_queries,
                     const float* const* rows, std::size_t n, float* out);
void PqAdcTileAvx512(const float* const* tables, int num_queries, int m,
                     int ksub, const uint8_t* const* codes, int count,
                     float* out);
#endif

}  // namespace internal

}  // namespace resinfer::simd

#endif  // RESINFER_SIMD_KERNELS_H_

#include "simd/kernels.h"

#if defined(RESINFER_HAVE_AVX2)

#include <immintrin.h>

namespace resinfer::simd::internal {

namespace {

// Horizontal sum of a 256-bit float vector.
inline float ReduceAdd(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

// Scalar tails shared by the single-pair and batched kernels. noinline
// pins one compiled instance: whether the compiler contracts d*d + acc
// into an FMA is then decided once, keeping batch lanes bit-identical to
// single-pair calls for dimensions that are not a multiple of 8.
__attribute__((noinline)) float L2SqrTail(const float* a, const float* b,
                                          std::size_t i, std::size_t n,
                                          float acc) {
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

__attribute__((noinline)) float IpTail(const float* a, const float* b,
                                       std::size_t i, std::size_t n,
                                       float acc) {
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((noinline)) float SqAdcTail(const float* q,
                                          const uint8_t* code,
                                          const float* vmin,
                                          const float* step, std::size_t i,
                                          std::size_t n, float acc) {
  for (; i < n; ++i) {
    float d = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace

float L2SqrAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  return L2SqrTail(a, b, i, n, ReduceAdd(_mm256_add_ps(acc0, acc1)));
}

float InnerProductAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  return IpTail(a, b, i, n, ReduceAdd(_mm256_add_ps(acc0, acc1)));
}

void InnerProductBatch4Avx2(const float* q, const float* const* rows,
                            std::size_t n, float* out) {
  // Per-lane structure identical to InnerProductAvx2 (two accumulators over
  // 16-float strides, one over 8, scalar tail); query loads shared.
  __m256 acc0[4], acc1[4];
  for (int r = 0; r < 4; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    const __m256 qb = _mm256_loadu_ps(q + i + 8);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + i), qa, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + i + 8), qb,
                                acc1[r]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + i), qa, acc0[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = IpTail(rows[r], q, i, n,
                    ReduceAdd(_mm256_add_ps(acc0[r], acc1[r])));
  }
}

float Norm2SqrAvx2(const float* a, std::size_t n) {
  return InnerProductAvx2(a, a, n);
}

void AxpyAvx2(float scale, const float* x, float* out, std::size_t n) {
  __m256 s = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 o = _mm256_loadu_ps(out + i);
    o = _mm256_fmadd_ps(s, _mm256_loadu_ps(x + i), o);
    _mm256_storeu_ps(out + i, o);
  }
  for (; i < n; ++i) out[i] += scale * x[i];
}

void L2SqrBatch4Avx2(const float* q, const float* const* rows, std::size_t n,
                     float* out) {
  // Four lanes, each replicating the exact accumulator structure of
  // L2SqrAvx2 (two accumulators over 16-float strides, one over 8, scalar
  // tail) so every lane is bit-identical to a single-pair call. The win:
  // the query loads are shared and 8 FMA chains stay in flight.
  __m256 acc0[4], acc1[4];
  for (int r = 0; r < 4; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    const __m256 qb = _mm256_loadu_ps(q + i + 8);
    for (int r = 0; r < 4; ++r) {
      __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + i), qa);
      __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + i + 8), qb);
      acc0[r] = _mm256_fmadd_ps(d0, d0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(d1, d1, acc1[r]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    for (int r = 0; r < 4; ++r) {
      __m256 d = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + i), qa);
      acc0[r] = _mm256_fmadd_ps(d, d, acc0[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = L2SqrTail(rows[r], q, i, n,
                       ReduceAdd(_mm256_add_ps(acc0[r], acc1[r])));
  }
}

void PqAdcBatchAvx2(const float* table, int m, int ksub,
                    const uint8_t* const* codes, int count, float* out) {
  // Eight codes per gather group; lane j accumulates its own code's table
  // entries sequentially in s, matching the scalar per-code order exactly.
  int c = 0;
  for (; c + 8 <= count; c += 8) {
    __m256 acc = _mm256_setzero_ps();
    int base = 0;
    for (int s = 0; s < m; ++s, base += ksub) {
      __m256i idx = _mm256_add_epi32(
          _mm256_set1_epi32(base),
          _mm256_setr_epi32(codes[c][s], codes[c + 1][s], codes[c + 2][s],
                            codes[c + 3][s], codes[c + 4][s],
                            codes[c + 5][s], codes[c + 6][s],
                            codes[c + 7][s]));
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(table, idx, 4));
    }
    _mm256_storeu_ps(out + c, acc);
  }
  for (; c < count; ++c) {
    float acc = 0.f;
    const float* row = table;
    for (int s = 0; s < m; ++s, row += ksub) acc += row[codes[c][s]];
    out[c] = acc;
  }
}

namespace {

// The fast-scan kernels work on byte-columns: column j of an 8-candidate
// group holds byte j of each candidate's packed row — the two nibbles of
// sub-spaces 2j and 2j+1 for all eight candidates. Bound on the column
// scratch: ceil(256 / 2) columns covers the documented m <= 256 limit.
constexpr int kFastScanMaxPacked = 128;

// colbits[j] = byte j of rows[0..7], row 0 in the low byte. Full 8-column
// segments go through an 8x8 byte transpose (8 x 8-byte loads + 12
// unpacks); the loads stay inside each row because j + 8 <= packed. Tail
// columns are assembled bytewise so the kernel never reads past a packed
// row's end (records sit at arbitrary strides, including the very end of a
// CodeStore allocation).
inline void GatherColumns8(const uint8_t* const* rows, int packed,
                           uint64_t* colbits) {
  int j = 0;
  for (; j + 8 <= packed; j += 8) {
    const __m128i r0 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[0] + j));
    const __m128i r1 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[1] + j));
    const __m128i r2 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[2] + j));
    const __m128i r3 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[3] + j));
    const __m128i r4 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[4] + j));
    const __m128i r5 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[5] + j));
    const __m128i r6 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[6] + j));
    const __m128i r7 =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[7] + j));
    const __m128i a0 = _mm_unpacklo_epi8(r0, r1);
    const __m128i a1 = _mm_unpacklo_epi8(r2, r3);
    const __m128i a2 = _mm_unpacklo_epi8(r4, r5);
    const __m128i a3 = _mm_unpacklo_epi8(r6, r7);
    const __m128i b0 = _mm_unpacklo_epi16(a0, a1);
    const __m128i b1 = _mm_unpacklo_epi16(a2, a3);
    const __m128i b2 = _mm_unpackhi_epi16(a0, a1);
    const __m128i b3 = _mm_unpackhi_epi16(a2, a3);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(colbits + j),
                     _mm_unpacklo_epi32(b0, b1));  // columns j, j+1
    _mm_storeu_si128(reinterpret_cast<__m128i*>(colbits + j + 2),
                     _mm_unpackhi_epi32(b0, b1));  // columns j+2, j+3
    _mm_storeu_si128(reinterpret_cast<__m128i*>(colbits + j + 4),
                     _mm_unpacklo_epi32(b2, b3));  // columns j+4, j+5
    _mm_storeu_si128(reinterpret_cast<__m128i*>(colbits + j + 6),
                     _mm_unpackhi_epi32(b2, b3));  // columns j+6, j+7
  }
  for (; j < packed; ++j) {
    uint64_t bits = 0;
    for (int r = 0; r < 8; ++r) {
      bits |= static_cast<uint64_t>(rows[r][j]) << (8 * r);
    }
    colbits[j] = bits;
  }
}

// u16 LUT sums for the 8 candidates whose byte-columns are in colbits: per
// column, the two nibble sets select from the 32-byte LUT pair (rows 2j in
// lane 0, 2j+1 in lane 1) with one vpshufb; u8 hits widen into a u16
// accumulator per lane. Integer adds are exact, so the result equals
// PqAdcFastScanOne regardless of order; the lane split only delays the
// even/odd-sub-space combine to the final 128-bit add. For odd m both the
// LUT pad row and every code's pad nibble are zero, so the extra lookup
// contributes nothing.
inline void AccumulateLut8(const uint8_t* lut, int packed,
                           const uint64_t* colbits, uint16_t* out) {
  const __m128i nib = _mm_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  for (int j = 0; j < packed; ++j) {
    const __m128i col =
        _mm_cvtsi64_si128(static_cast<long long>(colbits[j]));
    const __m128i lo = _mm_and_si128(col, nib);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(col, 4), nib);
    const __m256i idx = _mm256_set_m128i(hi, lo);
    const __m256i tbl =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lut + j * 32));
    const __m256i vals = _mm256_shuffle_epi8(tbl, idx);
    acc = _mm256_add_epi16(acc, _mm256_unpacklo_epi8(vals, zero));
  }
  const __m128i sums = _mm_add_epi16(_mm256_castsi256_si128(acc),
                                     _mm256_extracti128_si256(acc, 1));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), sums);
}

}  // namespace

void PqAdcFastScanAvx2(const uint8_t* lut, int m,
                       const uint8_t* const* codes, int count,
                       uint16_t* out) {
  const int packed = (m + 1) / 2;
  if (packed > kFastScanMaxPacked) {  // beyond the documented m <= 256
    PqAdcFastScanScalar(lut, m, codes, count, out);
    return;
  }
  uint64_t colbits[kFastScanMaxPacked];
  int c = 0;
  for (; c + 8 <= count; c += 8) {
    GatherColumns8(codes + c, packed, colbits);
    AccumulateLut8(lut, packed, colbits, out + c);
  }
  for (; c < count; ++c) out[c] = PqAdcFastScanOne(lut, m, codes[c]);
}

void PqAdcFastScanTileAvx2(const uint8_t* const* luts, int num_queries,
                           int m, const uint8_t* const* codes, int count,
                           uint16_t* out) {
  const int packed = (m + 1) / 2;
  if (packed > kFastScanMaxPacked) {
    PqAdcFastScanTileScalar(luts, num_queries, m, codes, count, out);
    return;
  }
  uint64_t colbits[kFastScanMaxPacked];
  int c = 0;
  for (; c + 8 <= count; c += 8) {
    // The nibble transpose — the kernel's memory-bound half — is built
    // once per code block and reused by every group member's LUT.
    GatherColumns8(codes + c, packed, colbits);
    for (int g = 0; g < num_queries; ++g) {
      AccumulateLut8(luts[g], packed, colbits,
                     out + static_cast<std::size_t>(g) * count + c);
    }
  }
  for (; c < count; ++c) {
    for (int g = 0; g < num_queries; ++g) {
      out[static_cast<std::size_t>(g) * count + c] =
          PqAdcFastScanOne(luts[g], m, codes[c]);
    }
  }
}

void SqAdcL2SqrBatch4Avx2(const float* q, const uint8_t* const* codes,
                          const float* vmin, const float* step,
                          std::size_t n, float* out) {
  // Per-lane structure identical to SqAdcL2SqrAvx2 (one accumulator, 8-wide
  // strides, scalar tail); query/range loads shared across the four codes.
  __m256 acc[4];
  for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    const __m256 sv = _mm256_loadu_ps(step + i);
    const __m256 mv = _mm256_loadu_ps(vmin + i);
    for (int r = 0; r < 4; ++r) {
      __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(codes[r] + i));
      __m256 cvt = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
      __m256 recon = _mm256_fmadd_ps(cvt, sv, mv);
      __m256 d = _mm256_sub_ps(qv, recon);
      acc[r] = _mm256_fmadd_ps(d, d, acc[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = SqAdcTail(q, codes[r], vmin, step, i, n, ReduceAdd(acc[r]));
  }
}

void L2SqrTileAvx2(const float* const* queries, int num_queries,
                   const float* const* rows, std::size_t n, float* out) {
  // One L2SqrBatch4 pass per group member. The four candidate rows are
  // register-loaded per pass but stay L1-resident across members, so the
  // tile still touches candidate memory once. A deeper register tiling
  // (rows x several queries per dim pass) would need a different
  // accumulator structure per lane and break bit-identity with the
  // single-pair kernel, which the batch contract forbids.
  for (int g = 0; g < num_queries; ++g) {
    L2SqrBatch4Avx2(queries[g], rows, n, out + g * kBatchWidth);
  }
}

void PqAdcTileAvx2(const float* const* tables, int num_queries, int m,
                   int ksub, const uint8_t* const* codes, int count,
                   float* out) {
  // Interleaves up to four per-query tables over each 8-code gather group:
  // the gather-index vector (the expensive part of PqAdcBatchAvx2's inner
  // loop) is built once per (s, code-group, 4-table sub-group) and reused
  // for the sub-group's tables — a 4x reduction over per-table passes;
  // sharing it across ALL tables would need one live accumulator per
  // group member, which outruns the 16 YMM registers. Lane (g, c)
  // accumulates sequentially in s, exactly like PqAdcBatchAvx2's lane c
  // with table g.
  int c = 0;
  for (; c + 8 <= count; c += 8) {
    for (int g0 = 0; g0 < num_queries; g0 += 4) {
      const int gn = num_queries - g0 < 4 ? num_queries - g0 : 4;
      __m256 acc[4];
      for (int g = 0; g < gn; ++g) acc[g] = _mm256_setzero_ps();
      int base = 0;
      for (int s = 0; s < m; ++s, base += ksub) {
        const __m256i idx = _mm256_add_epi32(
            _mm256_set1_epi32(base),
            _mm256_setr_epi32(codes[c][s], codes[c + 1][s], codes[c + 2][s],
                              codes[c + 3][s], codes[c + 4][s],
                              codes[c + 5][s], codes[c + 6][s],
                              codes[c + 7][s]));
        for (int g = 0; g < gn; ++g) {
          acc[g] = _mm256_add_ps(acc[g],
                                 _mm256_i32gather_ps(tables[g0 + g], idx, 4));
        }
      }
      for (int g = 0; g < gn; ++g) {
        _mm256_storeu_ps(out + static_cast<std::size_t>(g0 + g) * count + c,
                         acc[g]);
      }
    }
  }
  for (; c < count; ++c) {
    for (int g = 0; g < num_queries; ++g) {
      float acc = 0.f;
      const float* row = tables[g];
      for (int s = 0; s < m; ++s, row += ksub) acc += row[codes[c][s]];
      out[static_cast<std::size_t>(g) * count + c] = acc;
    }
  }
}

float SqAdcL2SqrAvx2(const float* q, const uint8_t* code, const float* vmin,
                     const float* step, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Widen 8 code bytes to 8 floats, decode in registers, square-diff.
    __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(code + i));
    __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    __m256 recon = _mm256_fmadd_ps(c, _mm256_loadu_ps(step + i),
                                   _mm256_loadu_ps(vmin + i));
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(q + i), recon);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  return SqAdcTail(q, code, vmin, step, i, n, ReduceAdd(acc));
}

uint32_t Crc32cSse42(uint32_t crc, const void* data, std::size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t c = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *p++);
    --n;
  }
  for (; n >= 8; n -= 8, p += 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    c = _mm_crc32_u64(c, word);
  }
  for (; n > 0; --n)
    c = _mm_crc32_u8(static_cast<uint32_t>(c), *p++);
  return ~static_cast<uint32_t>(c);
}

}  // namespace resinfer::simd::internal

#endif  // RESINFER_HAVE_AVX2

#include "simd/kernels.h"

#if defined(RESINFER_HAVE_AVX2)

#include <immintrin.h>

namespace resinfer::simd::internal {

namespace {

// Horizontal sum of a 256-bit float vector.
inline float ReduceAdd(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

// Scalar tails shared by the single-pair and batched kernels. noinline
// pins one compiled instance: whether the compiler contracts d*d + acc
// into an FMA is then decided once, keeping batch lanes bit-identical to
// single-pair calls for dimensions that are not a multiple of 8.
__attribute__((noinline)) float L2SqrTail(const float* a, const float* b,
                                          std::size_t i, std::size_t n,
                                          float acc) {
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

__attribute__((noinline)) float IpTail(const float* a, const float* b,
                                       std::size_t i, std::size_t n,
                                       float acc) {
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

__attribute__((noinline)) float SqAdcTail(const float* q,
                                          const uint8_t* code,
                                          const float* vmin,
                                          const float* step, std::size_t i,
                                          std::size_t n, float acc) {
  for (; i < n; ++i) {
    float d = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace

float L2SqrAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  return L2SqrTail(a, b, i, n, ReduceAdd(_mm256_add_ps(acc0, acc1)));
}

float InnerProductAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  return IpTail(a, b, i, n, ReduceAdd(_mm256_add_ps(acc0, acc1)));
}

void InnerProductBatch4Avx2(const float* q, const float* const* rows,
                            std::size_t n, float* out) {
  // Per-lane structure identical to InnerProductAvx2 (two accumulators over
  // 16-float strides, one over 8, scalar tail); query loads shared.
  __m256 acc0[4], acc1[4];
  for (int r = 0; r < 4; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    const __m256 qb = _mm256_loadu_ps(q + i + 8);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + i), qa, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + i + 8), qb,
                                acc1[r]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm256_fmadd_ps(_mm256_loadu_ps(rows[r] + i), qa, acc0[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = IpTail(rows[r], q, i, n,
                    ReduceAdd(_mm256_add_ps(acc0[r], acc1[r])));
  }
}

float Norm2SqrAvx2(const float* a, std::size_t n) {
  return InnerProductAvx2(a, a, n);
}

void AxpyAvx2(float scale, const float* x, float* out, std::size_t n) {
  __m256 s = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 o = _mm256_loadu_ps(out + i);
    o = _mm256_fmadd_ps(s, _mm256_loadu_ps(x + i), o);
    _mm256_storeu_ps(out + i, o);
  }
  for (; i < n; ++i) out[i] += scale * x[i];
}

void L2SqrBatch4Avx2(const float* q, const float* const* rows, std::size_t n,
                     float* out) {
  // Four lanes, each replicating the exact accumulator structure of
  // L2SqrAvx2 (two accumulators over 16-float strides, one over 8, scalar
  // tail) so every lane is bit-identical to a single-pair call. The win:
  // the query loads are shared and 8 FMA chains stay in flight.
  __m256 acc0[4], acc1[4];
  for (int r = 0; r < 4; ++r) {
    acc0[r] = _mm256_setzero_ps();
    acc1[r] = _mm256_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    const __m256 qb = _mm256_loadu_ps(q + i + 8);
    for (int r = 0; r < 4; ++r) {
      __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + i), qa);
      __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + i + 8), qb);
      acc0[r] = _mm256_fmadd_ps(d0, d0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(d1, d1, acc1[r]);
    }
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 qa = _mm256_loadu_ps(q + i);
    for (int r = 0; r < 4; ++r) {
      __m256 d = _mm256_sub_ps(_mm256_loadu_ps(rows[r] + i), qa);
      acc0[r] = _mm256_fmadd_ps(d, d, acc0[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = L2SqrTail(rows[r], q, i, n,
                       ReduceAdd(_mm256_add_ps(acc0[r], acc1[r])));
  }
}

void PqAdcBatchAvx2(const float* table, int m, int ksub,
                    const uint8_t* const* codes, int count, float* out) {
  // Eight codes per gather group; lane j accumulates its own code's table
  // entries sequentially in s, matching the scalar per-code order exactly.
  int c = 0;
  for (; c + 8 <= count; c += 8) {
    __m256 acc = _mm256_setzero_ps();
    int base = 0;
    for (int s = 0; s < m; ++s, base += ksub) {
      __m256i idx = _mm256_add_epi32(
          _mm256_set1_epi32(base),
          _mm256_setr_epi32(codes[c][s], codes[c + 1][s], codes[c + 2][s],
                            codes[c + 3][s], codes[c + 4][s],
                            codes[c + 5][s], codes[c + 6][s],
                            codes[c + 7][s]));
      acc = _mm256_add_ps(acc, _mm256_i32gather_ps(table, idx, 4));
    }
    _mm256_storeu_ps(out + c, acc);
  }
  for (; c < count; ++c) {
    float acc = 0.f;
    const float* row = table;
    for (int s = 0; s < m; ++s, row += ksub) acc += row[codes[c][s]];
    out[c] = acc;
  }
}

void SqAdcL2SqrBatch4Avx2(const float* q, const uint8_t* const* codes,
                          const float* vmin, const float* step,
                          std::size_t n, float* out) {
  // Per-lane structure identical to SqAdcL2SqrAvx2 (one accumulator, 8-wide
  // strides, scalar tail); query/range loads shared across the four codes.
  __m256 acc[4];
  for (int r = 0; r < 4; ++r) acc[r] = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 qv = _mm256_loadu_ps(q + i);
    const __m256 sv = _mm256_loadu_ps(step + i);
    const __m256 mv = _mm256_loadu_ps(vmin + i);
    for (int r = 0; r < 4; ++r) {
      __m128i bytes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(codes[r] + i));
      __m256 cvt = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
      __m256 recon = _mm256_fmadd_ps(cvt, sv, mv);
      __m256 d = _mm256_sub_ps(qv, recon);
      acc[r] = _mm256_fmadd_ps(d, d, acc[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = SqAdcTail(q, codes[r], vmin, step, i, n, ReduceAdd(acc[r]));
  }
}

void L2SqrTileAvx2(const float* const* queries, int num_queries,
                   const float* const* rows, std::size_t n, float* out) {
  // One L2SqrBatch4 pass per group member. The four candidate rows are
  // register-loaded per pass but stay L1-resident across members, so the
  // tile still touches candidate memory once. A deeper register tiling
  // (rows x several queries per dim pass) would need a different
  // accumulator structure per lane and break bit-identity with the
  // single-pair kernel, which the batch contract forbids.
  for (int g = 0; g < num_queries; ++g) {
    L2SqrBatch4Avx2(queries[g], rows, n, out + g * kBatchWidth);
  }
}

void PqAdcTileAvx2(const float* const* tables, int num_queries, int m,
                   int ksub, const uint8_t* const* codes, int count,
                   float* out) {
  // Interleaves up to four per-query tables over each 8-code gather group:
  // the gather-index vector (the expensive part of PqAdcBatchAvx2's inner
  // loop) is built once per (s, code-group, 4-table sub-group) and reused
  // for the sub-group's tables — a 4x reduction over per-table passes;
  // sharing it across ALL tables would need one live accumulator per
  // group member, which outruns the 16 YMM registers. Lane (g, c)
  // accumulates sequentially in s, exactly like PqAdcBatchAvx2's lane c
  // with table g.
  int c = 0;
  for (; c + 8 <= count; c += 8) {
    for (int g0 = 0; g0 < num_queries; g0 += 4) {
      const int gn = num_queries - g0 < 4 ? num_queries - g0 : 4;
      __m256 acc[4];
      for (int g = 0; g < gn; ++g) acc[g] = _mm256_setzero_ps();
      int base = 0;
      for (int s = 0; s < m; ++s, base += ksub) {
        const __m256i idx = _mm256_add_epi32(
            _mm256_set1_epi32(base),
            _mm256_setr_epi32(codes[c][s], codes[c + 1][s], codes[c + 2][s],
                              codes[c + 3][s], codes[c + 4][s],
                              codes[c + 5][s], codes[c + 6][s],
                              codes[c + 7][s]));
        for (int g = 0; g < gn; ++g) {
          acc[g] = _mm256_add_ps(acc[g],
                                 _mm256_i32gather_ps(tables[g0 + g], idx, 4));
        }
      }
      for (int g = 0; g < gn; ++g) {
        _mm256_storeu_ps(out + static_cast<std::size_t>(g0 + g) * count + c,
                         acc[g]);
      }
    }
  }
  for (; c < count; ++c) {
    for (int g = 0; g < num_queries; ++g) {
      float acc = 0.f;
      const float* row = tables[g];
      for (int s = 0; s < m; ++s, row += ksub) acc += row[codes[c][s]];
      out[static_cast<std::size_t>(g) * count + c] = acc;
    }
  }
}

float SqAdcL2SqrAvx2(const float* q, const uint8_t* code, const float* vmin,
                     const float* step, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Widen 8 code bytes to 8 floats, decode in registers, square-diff.
    __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(code + i));
    __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    __m256 recon = _mm256_fmadd_ps(c, _mm256_loadu_ps(step + i),
                                   _mm256_loadu_ps(vmin + i));
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(q + i), recon);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  return SqAdcTail(q, code, vmin, step, i, n, ReduceAdd(acc));
}

}  // namespace resinfer::simd::internal

#endif  // RESINFER_HAVE_AVX2

#include "simd/kernels.h"

#if defined(RESINFER_HAVE_AVX2)

#include <immintrin.h>

namespace resinfer::simd::internal {

namespace {

// Horizontal sum of a 256-bit float vector.
inline float ReduceAdd(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  __m128 shuf = _mm_movehdup_ps(lo);
  __m128 sums = _mm_add_ps(lo, shuf);
  shuf = _mm_movehl_ps(shuf, sums);
  sums = _mm_add_ss(sums, shuf);
  return _mm_cvtss_f32(sums);
}

}  // namespace

float L2SqrAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8),
                              _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = ReduceAdd(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

float InnerProductAvx2(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float total = ReduceAdd(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

float Norm2SqrAvx2(const float* a, std::size_t n) {
  return InnerProductAvx2(a, a, n);
}

void AxpyAvx2(float scale, const float* x, float* out, std::size_t n) {
  __m256 s = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 o = _mm256_loadu_ps(out + i);
    o = _mm256_fmadd_ps(s, _mm256_loadu_ps(x + i), o);
    _mm256_storeu_ps(out + i, o);
  }
  for (; i < n; ++i) out[i] += scale * x[i];
}

float SqAdcL2SqrAvx2(const float* q, const uint8_t* code, const float* vmin,
                     const float* step, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Widen 8 code bytes to 8 floats, decode in registers, square-diff.
    __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(code + i));
    __m256 c = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    __m256 recon = _mm256_fmadd_ps(c, _mm256_loadu_ps(step + i),
                                   _mm256_loadu_ps(vmin + i));
    __m256 d = _mm256_sub_ps(_mm256_loadu_ps(q + i), recon);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float total = ReduceAdd(acc);
  for (; i < n; ++i) {
    float d = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    total += d * d;
  }
  return total;
}

}  // namespace resinfer::simd::internal

#endif  // RESINFER_HAVE_AVX2

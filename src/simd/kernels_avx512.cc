// AVX-512 (F+BW+VL) implementations of the full KernelTable.
//
// Lane structure of the tier (the single-pair kernels define it; every
// batch/tile lane reproduces it bit-for-bit, per the contract in
// kernels.h):
//
//   - Float kernels run two zmm accumulators over 32-float strides, one
//     over 16, and finish the d%16 remainder with ONE masked 16-wide step
//     (_mm512_maskz_loadu_ps zeroes the dead lanes, so the FMA is a no-op
//     there). There are no scalar float tails anywhere in this file: the
//     whole reduction is explicit intrinsics, so the compiler cannot
//     change contraction between batch and single-pair compilations.
//   - The ADC kernels gather 16 codes per group (zmm vgatherdps). Each
//     group's code bytes are byte-transposed ONCE (the SSE transpose the
//     fast-scan kernels use), so every sub-space's gather-index vector is
//     a single vpmovzxbd instead of 16 scalar byte loads; the count%16
//     remainder stages its rows into zeroed scratch and masks the store —
//     the float accumulation order per lane (sequential in the sub-space
//     s) is identical for full and remainder groups.
//   - The fast-scan kernels transpose 16 packed rows per block and look up
//     FOUR sub-spaces x 16 candidates with one zmm vpshufb (64 nibble
//     lookups per instruction; a 64-byte LUT load covers four consecutive
//     16-entry sub-tables). Sums are exact u16 integers, so they equal the
//     scalar/AVX2 sums bit-for-bit by construction.
//   - The tiled kernels use the 32 zmm registers for genuine
//     rows x queries register tiles: L2SqrTile keeps two queries' worth of
//     Batch4 accumulators live per dimension pass, PqAdcTile reuses each
//     gather-index vector across sub-groups of EIGHT per-query tables
//     (AVX2's 16 ymm registers capped this at four).
#include "simd/kernels.h"

#if defined(RESINFER_HAVE_AVX512)

// GCC's avx512 intrinsic headers route several intrinsics (cvtepu8_epi32,
// reduce_add_ps, masked gathers) through _mm512_undefined_si512, which
// trips -Wuninitialized/-Wmaybe-uninitialized inside the SYSTEM header
// under -O2 inlining (GCC bug 105593). Nothing in this file reads
// uninitialized state; silence the false positive for the whole TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#include <cstring>

namespace resinfer::simd::internal {

namespace {

// Horizontal sum of a 512-bit float vector. _mm512_reduce_add_ps expands
// to a fixed shuffle/add tree, so every caller in this TU reduces in the
// same order — the bit-identity between single-pair and batch lanes rests
// on that.
inline float ReduceAdd(__m512 v) { return _mm512_reduce_add_ps(v); }

// Mask covering the last n - i lanes of a 16-wide step (1 <= n - i < 16).
inline __mmask16 TailMask(std::size_t i, std::size_t n) {
  return static_cast<__mmask16>((1u << (n - i)) - 1u);
}

}  // namespace

float L2SqrAvx512(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(a + i + 16),
                              _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 16 <= n; i += 16) {
    __m512 d = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, a + i),
                             _mm512_maskz_loadu_ps(mask, b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);  // dead lanes add 0 * 0
  }
  return ReduceAdd(_mm512_add_ps(acc0, acc1));
}

float InnerProductAvx512(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, a + i),
                           _mm512_maskz_loadu_ps(mask, b + i), acc0);
  }
  return ReduceAdd(_mm512_add_ps(acc0, acc1));
}

float Norm2SqrAvx512(const float* a, std::size_t n) {
  return InnerProductAvx512(a, a, n);
}

void AxpyAvx512(float scale, const float* x, float* out, std::size_t n) {
  const __m512 s = _mm512_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 o = _mm512_loadu_ps(out + i);
    o = _mm512_fmadd_ps(s, _mm512_loadu_ps(x + i), o);
    _mm512_storeu_ps(out + i, o);
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    __m512 o = _mm512_maskz_loadu_ps(mask, out + i);
    o = _mm512_fmadd_ps(s, _mm512_maskz_loadu_ps(mask, x + i), o);
    _mm512_mask_storeu_ps(out + i, mask, o);
  }
}

namespace {

// 16 code bytes widened to 16 floats (full step and masked tail share it;
// a masked byte load zeroes the dead lanes before widening).
inline __m512 LoadCodes16(const uint8_t* code) {
  return _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(code))));
}

inline __m512 LoadCodes16Masked(const uint8_t* code, __mmask16 mask) {
  return _mm512_cvtepi32_ps(
      _mm512_cvtepu8_epi32(_mm_maskz_loadu_epi8(mask, code)));
}

}  // namespace

float SqAdcL2SqrAvx512(const float* q, const uint8_t* code,
                       const float* vmin, const float* step, std::size_t n) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 c = LoadCodes16(code + i);
    __m512 recon = _mm512_fmadd_ps(c, _mm512_loadu_ps(step + i),
                                   _mm512_loadu_ps(vmin + i));
    __m512 d = _mm512_sub_ps(_mm512_loadu_ps(q + i), recon);
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    __m512 c = LoadCodes16Masked(code + i, mask);
    __m512 recon = _mm512_fmadd_ps(c, _mm512_maskz_loadu_ps(mask, step + i),
                                   _mm512_maskz_loadu_ps(mask, vmin + i));
    __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, q + i), recon);
    acc = _mm512_fmadd_ps(d, d, acc);
  }
  return ReduceAdd(acc);
}

void L2SqrBatch4Avx512(const float* q, const float* const* rows,
                       std::size_t n, float* out) {
  // Per-lane structure identical to L2SqrAvx512 (two accumulators over
  // 32-float strides, one over 16, masked tail); query loads shared.
  __m512 acc0[4], acc1[4];
  for (int r = 0; r < 4; ++r) {
    acc0[r] = _mm512_setzero_ps();
    acc1[r] = _mm512_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 qa = _mm512_loadu_ps(q + i);
    const __m512 qb = _mm512_loadu_ps(q + i + 16);
    for (int r = 0; r < 4; ++r) {
      __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(rows[r] + i), qa);
      __m512 d1 = _mm512_sub_ps(_mm512_loadu_ps(rows[r] + i + 16), qb);
      acc0[r] = _mm512_fmadd_ps(d0, d0, acc0[r]);
      acc1[r] = _mm512_fmadd_ps(d1, d1, acc1[r]);
    }
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 qa = _mm512_loadu_ps(q + i);
    for (int r = 0; r < 4; ++r) {
      __m512 d = _mm512_sub_ps(_mm512_loadu_ps(rows[r] + i), qa);
      acc0[r] = _mm512_fmadd_ps(d, d, acc0[r]);
    }
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    const __m512 qa = _mm512_maskz_loadu_ps(mask, q + i);
    for (int r = 0; r < 4; ++r) {
      __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(mask, rows[r] + i), qa);
      acc0[r] = _mm512_fmadd_ps(d, d, acc0[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = ReduceAdd(_mm512_add_ps(acc0[r], acc1[r]));
  }
}

void InnerProductBatch4Avx512(const float* q, const float* const* rows,
                              std::size_t n, float* out) {
  // Per-lane structure identical to InnerProductAvx512.
  __m512 acc0[4], acc1[4];
  for (int r = 0; r < 4; ++r) {
    acc0[r] = _mm512_setzero_ps();
    acc1[r] = _mm512_setzero_ps();
  }
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512 qa = _mm512_loadu_ps(q + i);
    const __m512 qb = _mm512_loadu_ps(q + i + 16);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm512_fmadd_ps(_mm512_loadu_ps(rows[r] + i), qa, acc0[r]);
      acc1[r] = _mm512_fmadd_ps(_mm512_loadu_ps(rows[r] + i + 16), qb,
                                acc1[r]);
    }
  }
  for (; i + 16 <= n; i += 16) {
    const __m512 qa = _mm512_loadu_ps(q + i);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm512_fmadd_ps(_mm512_loadu_ps(rows[r] + i), qa, acc0[r]);
    }
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    const __m512 qa = _mm512_maskz_loadu_ps(mask, q + i);
    for (int r = 0; r < 4; ++r) {
      acc0[r] = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, rows[r] + i),
                                qa, acc0[r]);
    }
  }
  for (int r = 0; r < 4; ++r) {
    out[r] = ReduceAdd(_mm512_add_ps(acc0[r], acc1[r]));
  }
}

void SqAdcL2SqrBatch4Avx512(const float* q, const uint8_t* const* codes,
                            const float* vmin, const float* step,
                            std::size_t n, float* out) {
  // Per-lane structure identical to SqAdcL2SqrAvx512 (one accumulator,
  // 16-wide strides, masked tail); query/range loads shared.
  __m512 acc[4];
  for (int r = 0; r < 4; ++r) acc[r] = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 qv = _mm512_loadu_ps(q + i);
    const __m512 sv = _mm512_loadu_ps(step + i);
    const __m512 mv = _mm512_loadu_ps(vmin + i);
    for (int r = 0; r < 4; ++r) {
      __m512 recon = _mm512_fmadd_ps(LoadCodes16(codes[r] + i), sv, mv);
      __m512 d = _mm512_sub_ps(qv, recon);
      acc[r] = _mm512_fmadd_ps(d, d, acc[r]);
    }
  }
  if (i < n) {
    const __mmask16 mask = TailMask(i, n);
    const __m512 qv = _mm512_maskz_loadu_ps(mask, q + i);
    const __m512 sv = _mm512_maskz_loadu_ps(mask, step + i);
    const __m512 mv = _mm512_maskz_loadu_ps(mask, vmin + i);
    for (int r = 0; r < 4; ++r) {
      __m512 recon =
          _mm512_fmadd_ps(LoadCodes16Masked(codes[r] + i, mask), sv, mv);
      __m512 d = _mm512_sub_ps(qv, recon);
      acc[r] = _mm512_fmadd_ps(d, d, acc[r]);
    }
  }
  for (int r = 0; r < 4; ++r) out[r] = ReduceAdd(acc[r]);
}

namespace {

// Bound on the per-block byte-column scratch shared by the gather and
// fast-scan kernels: ceil(256 / 2) packed fast-scan bytes covers the
// documented m <= 256 limit (see kernels.h), and the gather kernels fall
// back to the (bit-identical, sequential-order) scalar kernels beyond 128
// full-byte sub-spaces.
constexpr int kMaxByteColumns = 128;

// cols[j] = byte j of rows[0..15], row 0 in byte 0. Full 8-column segments
// go through two 8x8 byte transposes (one per 8-row half) whose paired
// column outputs interleave with unpacklo/hi_epi64; the 8-byte row loads
// stay inside each row because j + 8 <= packed. Tail columns are assembled
// bytewise so the kernel never reads past a packed row's end (records sit
// at arbitrary strides, including the very end of a CodeStore allocation).
inline void Transpose8x8(const uint8_t* const* rows, int j, __m128i pair[4]) {
  const __m128i r0 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[0] + j));
  const __m128i r1 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[1] + j));
  const __m128i r2 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[2] + j));
  const __m128i r3 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[3] + j));
  const __m128i r4 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[4] + j));
  const __m128i r5 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[5] + j));
  const __m128i r6 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[6] + j));
  const __m128i r7 =
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(rows[7] + j));
  const __m128i a0 = _mm_unpacklo_epi8(r0, r1);
  const __m128i a1 = _mm_unpacklo_epi8(r2, r3);
  const __m128i a2 = _mm_unpacklo_epi8(r4, r5);
  const __m128i a3 = _mm_unpacklo_epi8(r6, r7);
  const __m128i b0 = _mm_unpacklo_epi16(a0, a1);
  const __m128i b1 = _mm_unpacklo_epi16(a2, a3);
  const __m128i b2 = _mm_unpackhi_epi16(a0, a1);
  const __m128i b3 = _mm_unpackhi_epi16(a2, a3);
  pair[0] = _mm_unpacklo_epi32(b0, b1);  // columns j, j+1 (8 bytes each)
  pair[1] = _mm_unpackhi_epi32(b0, b1);  // columns j+2, j+3
  pair[2] = _mm_unpacklo_epi32(b2, b3);  // columns j+4, j+5
  pair[3] = _mm_unpackhi_epi32(b2, b3);  // columns j+6, j+7
}

// Sixteen full 16-byte row segments -> sixteen columns at zmm width: four
// zmm hold the 16x16 byte block (v[q] lane L = row 4L+q), two unpack
// rounds produce per-lane dwords of four-row column slices, and ONE
// cross-lane vpermd per four columns assembles the finished column
// vectors — under half the uops of four SSE 8x8 transposes, and the
// dominant cost of the single-query fast-scan kernel.
inline void TransposeSegment16(const uint8_t* const* rows, int j,
                               __m128i* cols) {
  __m512i v[4];
  for (int q = 0; q < 4; ++q) {
    __m512i t = _mm512_castsi128_si512(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(rows[q] + j)));
    t = _mm512_inserti32x4(
        t,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[q + 4] + j)),
        1);
    t = _mm512_inserti32x4(
        t,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[q + 8] + j)),
        2);
    t = _mm512_inserti32x4(
        t,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[q + 12] + j)),
        3);
    v[q] = t;
  }
  // Lane L after round two: B0 = cols j..j+3 of rows 4L..4L+3 (one dword
  // per column), B1 = cols j+4.., B2 = cols j+8.., B3 = cols j+12...
  const __m512i a0 = _mm512_unpacklo_epi8(v[0], v[1]);
  const __m512i a1 = _mm512_unpackhi_epi8(v[0], v[1]);
  const __m512i a2 = _mm512_unpacklo_epi8(v[2], v[3]);
  const __m512i a3 = _mm512_unpackhi_epi8(v[2], v[3]);
  const __m512i b0 = _mm512_unpacklo_epi16(a0, a2);
  const __m512i b1 = _mm512_unpackhi_epi16(a0, a2);
  const __m512i b2 = _mm512_unpacklo_epi16(a1, a3);
  const __m512i b3 = _mm512_unpackhi_epi16(a1, a3);
  // Dword k of lane L is one four-row slice of column (4-col base + k);
  // this permute gathers each column's four slices into one 128-bit lane.
  const __m512i idx = _mm512_setr_epi32(0, 4, 8, 12, 1, 5, 9, 13,
                                        2, 6, 10, 14, 3, 7, 11, 15);
  _mm512_storeu_si512(reinterpret_cast<void*>(cols + j),
                      _mm512_permutexvar_epi32(idx, b0));
  _mm512_storeu_si512(reinterpret_cast<void*>(cols + j + 4),
                      _mm512_permutexvar_epi32(idx, b1));
  _mm512_storeu_si512(reinterpret_cast<void*>(cols + j + 8),
                      _mm512_permutexvar_epi32(idx, b2));
  _mm512_storeu_si512(reinterpret_cast<void*>(cols + j + 12),
                      _mm512_permutexvar_epi32(idx, b3));
}

inline void GatherColumns16(const uint8_t* const* rows, int packed,
                            __m128i* cols) {
  int j = 0;
  for (; j + 16 <= packed; j += 16) {
    TransposeSegment16(rows, j, cols);
  }
  for (; j + 8 <= packed; j += 8) {
    __m128i lo[4], hi[4];
    Transpose8x8(rows, j, lo);      // rows 0..7
    Transpose8x8(rows + 8, j, hi);  // rows 8..15
    for (int p = 0; p < 4; ++p) {
      cols[j + 2 * p] = _mm_unpacklo_epi64(lo[p], hi[p]);
      cols[j + 2 * p + 1] = _mm_unpackhi_epi64(lo[p], hi[p]);
    }
  }
  for (; j < packed; ++j) {
    alignas(16) uint8_t bytes[16];
    for (int r = 0; r < 16; ++r) bytes[r] = rows[r][j];
    cols[j] = _mm_load_si128(reinterpret_cast<const __m128i*>(bytes));
  }
}

// One 16-code gather group against one sub-space table: column s of the
// transposed code block widens to the 16 gather lanes with a single
// vpmovzxbd (building this index vector from 16 scalar byte loads is what
// made a plain-gather loop slower than the scalar kernel). Lane j adds its
// own code's table entries sequentially in s, preserving the scalar
// per-code order exactly.
inline __m512 GatherAccumulate16(const float* table, int ksub, int m,
                                 const __m128i* cols, __m512 acc) {
  int base = 0;
  for (int s = 0; s < m; ++s, base += ksub) {
    const __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(base),
                                         _mm512_cvtepu8_epi32(cols[s]));
    acc = _mm512_add_ps(acc, _mm512_i32gather_ps(idx, table, 4));
  }
  return acc;
}

}  // namespace

void PqAdcBatchAvx512(const float* table, int m, int ksub,
                      const uint8_t* const* codes, int count, float* out) {
  // Sixteen codes per gather group, byte-transposed into sub-space columns
  // first (the SSE transpose shared with fast-scan) so the gather-index
  // construction is one vpmovzxbd per sub-space. The remainder group stages
  // its live rows into a zeroed fixed-stride scratch block: dead lanes
  // gather table[s * ksub] (always in bounds) and their sums are dropped by
  // the masked store. Beyond kMaxByteColumns sub-spaces the scalar kernel
  // takes over — it accumulates per code sequentially in s, so it is
  // bit-identical to the vector lanes by construction.
  if (m > kMaxByteColumns) {
    PqAdcBatchScalar(table, m, ksub, codes, count, out);
    return;
  }
  alignas(64) __m128i cols[kMaxByteColumns];
  int c = 0;
  for (; c + 16 <= count; c += 16) {
    GatherColumns16(codes + c, m, cols);
    _mm512_storeu_ps(
        out + c,
        GatherAccumulate16(table, ksub, m, cols, _mm512_setzero_ps()));
  }
  if (c < count) {
    const int rem = count - c;
    alignas(64) uint8_t scratch[16 * kMaxByteColumns] = {0};
    const uint8_t* rows[16];
    for (int r = 0; r < 16; ++r) rows[r] = scratch + r * kMaxByteColumns;
    for (int r = 0; r < rem; ++r) {
      std::memcpy(scratch + r * kMaxByteColumns, codes[c + r],
                  static_cast<std::size_t>(m));
    }
    GatherColumns16(rows, m, cols);
    const __m512 acc =
        GatherAccumulate16(table, ksub, m, cols, _mm512_setzero_ps());
    _mm512_mask_storeu_ps(out + c,
                          static_cast<__mmask16>((1u << rem) - 1u), acc);
  }
}

// --- Fast-scan (packed 4-bit codes, quantized u8 LUT) ----------------------

namespace {

// u16 LUT sums for the 16 candidates whose byte-columns are in cols. Four
// packed columns (EIGHT sub-spaces) per round: one 64-byte column load
// lines lanes up as [c_j, c_j+1, c_j+2, c_j+3], and two 64-byte LUT loads
// cover sub-tables 2j..2j+7, lane-shuffled into the even set
// [2j, 2j+2, 2j+4, 2j+6] for the low nibbles and the odd set for the high
// nibbles — two zmm vpshufb = 128 lookups per round. The u8 hits widen to
// u16 with and/srli (shift-port ops; unpacks would contend with the
// lookups for the shuffle port), so the accumulators hold EVEN candidates
// {0,2,..,14} and ODD candidates {1,3,..,15} per lane and the final fold
// re-interleaves them. Integer adds are exact, so the result equals
// PqAdcFastScanOne regardless of the lane/interleave split. Trailing
// columns (packed % 4) fall back to narrower rounds — still no lookup
// outside the lut allocation. Results for the 16 candidates are written
// through `store_mask` so a partial block never touches out-of-range
// outputs.
inline void AccumulateLut16(const uint8_t* lut, int packed,
                            const __m128i* cols, uint16_t* out,
                            __mmask16 store_mask) {
  const __m512i nib = _mm512_set1_epi8(0x0f);
  const __m512i byte_lo = _mm512_set1_epi16(0x00ff);
  __m512i acc_even = _mm512_setzero_si512();  // candidates 0,2,..,14
  __m512i acc_odd = _mm512_setzero_si512();   // candidates 1,3,..,15
  int j = 0;
  for (; j + 4 <= packed; j += 4) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(cols + j));
    const __m512i tbl_a =
        _mm512_loadu_si512(reinterpret_cast<const void*>(lut + j * 32));
    const __m512i tbl_b =
        _mm512_loadu_si512(reinterpret_cast<const void*>(lut + j * 32 + 64));
    const __m512i evens =
        _mm512_shuffle_i32x4(tbl_a, tbl_b, _MM_SHUFFLE(2, 0, 2, 0));
    const __m512i odds =
        _mm512_shuffle_i32x4(tbl_a, tbl_b, _MM_SHUFFLE(3, 1, 3, 1));
    const __m512i lo = _mm512_and_si512(v, nib);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), nib);
    const __m512i vals_e = _mm512_shuffle_epi8(evens, lo);
    const __m512i vals_o = _mm512_shuffle_epi8(odds, hi);
    acc_even = _mm512_add_epi16(acc_even, _mm512_and_si512(vals_e, byte_lo));
    acc_odd = _mm512_add_epi16(acc_odd, _mm512_srli_epi16(vals_e, 8));
    acc_even = _mm512_add_epi16(acc_even, _mm512_and_si512(vals_o, byte_lo));
    acc_odd = _mm512_add_epi16(acc_odd, _mm512_srli_epi16(vals_o, 8));
  }
  if (j + 2 <= packed) {  // two-column round: 64-byte LUT, 4 sub-spaces
    const __m512i tbl =
        _mm512_loadu_si512(reinterpret_cast<const void*>(lut + j * 32));
    const __m512i tblp =
        _mm512_shuffle_i32x4(tbl, tbl, _MM_SHUFFLE(3, 1, 2, 0));
    __m512i v = _mm512_zextsi128_si512(cols[j]);
    v = _mm512_inserti32x4(v, cols[j + 1], 1);
    v = _mm512_shuffle_i32x4(v, v, _MM_SHUFFLE(1, 0, 1, 0));
    const __m512i lo = _mm512_and_si512(v, nib);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), nib);
    const __m512i idx = _mm512_shuffle_i32x4(lo, hi, _MM_SHUFFLE(1, 0, 1, 0));
    const __m512i vals = _mm512_shuffle_epi8(tblp, idx);
    acc_even = _mm512_add_epi16(acc_even, _mm512_and_si512(vals, byte_lo));
    acc_odd = _mm512_add_epi16(acc_odd, _mm512_srli_epi16(vals, 8));
    j += 2;
  }
  if (j < packed) {  // odd trailing column: 32-byte LUT pair, 2 sub-spaces
    const __m256i tbl = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lut + j * 32));
    const __m128i nib128 = _mm_set1_epi8(0x0f);
    const __m128i lo = _mm_and_si128(cols[j], nib128);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(cols[j], 4), nib128);
    const __m512i vals = _mm512_zextsi256_si512(
        _mm256_shuffle_epi8(tbl, _mm256_set_m128i(hi, lo)));
    acc_even = _mm512_add_epi16(acc_even, _mm512_and_si512(vals, byte_lo));
    acc_odd = _mm512_add_epi16(acc_odd, _mm512_srli_epi16(vals, 8));
  }
  // Fold the four lanes' partial sums, then re-interleave even/odd
  // candidates into output order.
  const __m256i e2 =
      _mm256_add_epi16(_mm512_castsi512_si256(acc_even),
                       _mm512_extracti64x4_epi64(acc_even, 1));
  const __m128i e1 = _mm_add_epi16(_mm256_castsi256_si128(e2),
                                   _mm256_extracti128_si256(e2, 1));
  const __m256i o2 =
      _mm256_add_epi16(_mm512_castsi512_si256(acc_odd),
                       _mm512_extracti64x4_epi64(acc_odd, 1));
  const __m128i o1 = _mm_add_epi16(_mm256_castsi256_si128(o2),
                                   _mm256_extracti128_si256(o2, 1));
  const __m256i sums = _mm256_set_m128i(_mm_unpackhi_epi16(e1, o1),
                                        _mm_unpacklo_epi16(e1, o1));
  _mm256_mask_storeu_epi16(out, store_mask, sums);
}

// Partial block (count % 16): the remaining rows are copied into a zeroed
// scratch block so the transpose stays in-bounds, and the results of the
// pad rows are dropped by the masked store — no per-candidate scalar
// fallback.
inline void FastScanPartialBlock(const uint8_t* lut, int packed,
                                 const uint8_t* const* codes, int rem,
                                 uint16_t* out) {
  alignas(64) uint8_t scratch[16 * kMaxByteColumns] = {0};
  const uint8_t* rows[16];
  for (int r = 0; r < 16; ++r) rows[r] = scratch + r * packed;
  for (int r = 0; r < rem; ++r) {
    std::memcpy(scratch + r * packed, codes[r],
                static_cast<std::size_t>(packed));
  }
  __m128i cols[kMaxByteColumns];
  GatherColumns16(rows, packed, cols);
  AccumulateLut16(lut, packed, cols, out,
                  static_cast<__mmask16>((1u << rem) - 1u));
}

}  // namespace

void PqAdcFastScanAvx512(const uint8_t* lut, int m,
                         const uint8_t* const* codes, int count,
                         uint16_t* out) {
  const int packed = (m + 1) / 2;
  if (packed > kMaxByteColumns) {  // beyond the documented m <= 256
    PqAdcFastScanScalar(lut, m, codes, count, out);
    return;
  }
  __m128i cols[kMaxByteColumns];
  int c = 0;
  for (; c + 16 <= count; c += 16) {
    GatherColumns16(codes + c, packed, cols);
    AccumulateLut16(lut, packed, cols, out + c, 0xffff);
  }
  if (c < count) {
    FastScanPartialBlock(lut, packed, codes + c, count - c, out + c);
  }
}

void PqAdcFastScanTileAvx512(const uint8_t* const* luts, int num_queries,
                             int m, const uint8_t* const* codes, int count,
                             uint16_t* out) {
  const int packed = (m + 1) / 2;
  if (packed > kMaxByteColumns) {
    PqAdcFastScanTileScalar(luts, num_queries, m, codes, count, out);
    return;
  }
  __m128i cols[kMaxByteColumns];
  int c = 0;
  for (; c + 16 <= count; c += 16) {
    // The nibble transpose — the kernel's memory-bound half — is built
    // once per code block and reused by every group member's LUT.
    GatherColumns16(codes + c, packed, cols);
    for (int g = 0; g < num_queries; ++g) {
      AccumulateLut16(luts[g], packed, cols,
                      out + static_cast<std::size_t>(g) * count + c, 0xffff);
    }
  }
  if (c < count) {
    const int rem = count - c;
    alignas(64) uint8_t scratch[16 * kMaxByteColumns] = {0};
    const uint8_t* rows[16];
    for (int r = 0; r < 16; ++r) rows[r] = scratch + r * packed;
    for (int r = 0; r < rem; ++r) {
      std::memcpy(scratch + r * packed, codes[c + r],
                  static_cast<std::size_t>(packed));
    }
    GatherColumns16(rows, packed, cols);
    const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
    for (int g = 0; g < num_queries; ++g) {
      AccumulateLut16(luts[g], packed, cols,
                      out + static_cast<std::size_t>(g) * count + c, mask);
    }
  }
}

// --- Query-tiled kernels ---------------------------------------------------

void L2SqrTileAvx512(const float* const* queries, int num_queries,
                     const float* const* rows, std::size_t n, float* out) {
  // Genuine register tile: two queries' worth of Batch4 accumulator state
  // (2 x 4 x 2 = 16 zmm) plus query broadcasts and row loads stay resident
  // across each dimension pass — the candidate rows are loaded once per
  // TWO group members instead of once per member. Each lane (g, r) runs
  // the exact L2SqrBatch4Avx512 operation sequence (32/16-stride
  // accumulators, masked tail), so bit-identity with the single-query
  // kernels is preserved; AVX2's 16 ymm registers could not hold a
  // two-query tile without spills, which is why its tile is a per-member
  // loop.
  int g = 0;
  for (; g + 2 <= num_queries; g += 2) {
    const float* q0 = queries[g];
    const float* q1 = queries[g + 1];
    __m512 acc0[2][4], acc1[2][4];
    for (int t = 0; t < 2; ++t) {
      for (int r = 0; r < 4; ++r) {
        acc0[t][r] = _mm512_setzero_ps();
        acc1[t][r] = _mm512_setzero_ps();
      }
    }
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
      const __m512 q0a = _mm512_loadu_ps(q0 + i);
      const __m512 q0b = _mm512_loadu_ps(q0 + i + 16);
      const __m512 q1a = _mm512_loadu_ps(q1 + i);
      const __m512 q1b = _mm512_loadu_ps(q1 + i + 16);
      for (int r = 0; r < 4; ++r) {
        const __m512 ra = _mm512_loadu_ps(rows[r] + i);
        const __m512 rb = _mm512_loadu_ps(rows[r] + i + 16);
        __m512 d0 = _mm512_sub_ps(ra, q0a);
        __m512 d1 = _mm512_sub_ps(rb, q0b);
        acc0[0][r] = _mm512_fmadd_ps(d0, d0, acc0[0][r]);
        acc1[0][r] = _mm512_fmadd_ps(d1, d1, acc1[0][r]);
        d0 = _mm512_sub_ps(ra, q1a);
        d1 = _mm512_sub_ps(rb, q1b);
        acc0[1][r] = _mm512_fmadd_ps(d0, d0, acc0[1][r]);
        acc1[1][r] = _mm512_fmadd_ps(d1, d1, acc1[1][r]);
      }
    }
    for (; i + 16 <= n; i += 16) {
      const __m512 q0a = _mm512_loadu_ps(q0 + i);
      const __m512 q1a = _mm512_loadu_ps(q1 + i);
      for (int r = 0; r < 4; ++r) {
        const __m512 ra = _mm512_loadu_ps(rows[r] + i);
        __m512 d = _mm512_sub_ps(ra, q0a);
        acc0[0][r] = _mm512_fmadd_ps(d, d, acc0[0][r]);
        d = _mm512_sub_ps(ra, q1a);
        acc0[1][r] = _mm512_fmadd_ps(d, d, acc0[1][r]);
      }
    }
    if (i < n) {
      const __mmask16 mask = TailMask(i, n);
      const __m512 q0a = _mm512_maskz_loadu_ps(mask, q0 + i);
      const __m512 q1a = _mm512_maskz_loadu_ps(mask, q1 + i);
      for (int r = 0; r < 4; ++r) {
        const __m512 ra = _mm512_maskz_loadu_ps(mask, rows[r] + i);
        __m512 d = _mm512_sub_ps(ra, q0a);
        acc0[0][r] = _mm512_fmadd_ps(d, d, acc0[0][r]);
        d = _mm512_sub_ps(ra, q1a);
        acc0[1][r] = _mm512_fmadd_ps(d, d, acc0[1][r]);
      }
    }
    for (int t = 0; t < 2; ++t) {
      for (int r = 0; r < 4; ++r) {
        out[(g + t) * kBatchWidth + r] =
            ReduceAdd(_mm512_add_ps(acc0[t][r], acc1[t][r]));
      }
    }
  }
  if (g < num_queries) {
    L2SqrBatch4Avx512(queries[g], rows, n, out + g * kBatchWidth);
  }
}

void PqAdcTileAvx512(const float* const* tables, int num_queries, int m,
                     int ksub, const uint8_t* const* codes, int count,
                     float* out) {
  // The byte-transpose of each 16-code group (one vpmovzxbd-able column
  // per sub-space, shared with PqAdcBatchAvx512) is built ONCE per group
  // and reused by every table sub-group; within a sub-group, up to EIGHT
  // per-query tables interleave over each gather-index vector — twice the
  // reuse the AVX2 tile gets from its four-table sub-groups, because eight
  // live zmm accumulators plus gather temporaries fit the 32-register
  // file. Lane (g, c) accumulates sequentially in s, exactly like
  // PqAdcBatchAvx512's lane c with table g (the scalar tile keeps the same
  // order, so the m > kMaxByteColumns fallback stays bit-identical).
  if (m > kMaxByteColumns) {
    PqAdcTileScalar(tables, num_queries, m, ksub, codes, count, out);
    return;
  }
  alignas(64) __m128i cols[kMaxByteColumns];
  int c = 0;
  for (; c + 16 <= count; c += 16) {
    GatherColumns16(codes + c, m, cols);
    for (int g0 = 0; g0 < num_queries; g0 += 8) {
      const int gn = num_queries - g0 < 8 ? num_queries - g0 : 8;
      __m512 acc[8];
      for (int g = 0; g < gn; ++g) acc[g] = _mm512_setzero_ps();
      int base = 0;
      for (int s = 0; s < m; ++s, base += ksub) {
        const __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(base),
                                             _mm512_cvtepu8_epi32(cols[s]));
        for (int g = 0; g < gn; ++g) {
          acc[g] = _mm512_add_ps(
              acc[g], _mm512_i32gather_ps(idx, tables[g0 + g], 4));
        }
      }
      for (int g = 0; g < gn; ++g) {
        _mm512_storeu_ps(out + static_cast<std::size_t>(g0 + g) * count + c,
                         acc[g]);
      }
    }
  }
  if (c < count) {
    // Remainder group: live rows staged into a zeroed fixed-stride scratch
    // block (dead lanes gather table[s * ksub], always in bounds; their
    // sums are dropped by the masked stores).
    const int rem = count - c;
    const __mmask16 mask = static_cast<__mmask16>((1u << rem) - 1u);
    alignas(64) uint8_t scratch[16 * kMaxByteColumns] = {0};
    const uint8_t* rows[16];
    for (int r = 0; r < 16; ++r) rows[r] = scratch + r * kMaxByteColumns;
    for (int r = 0; r < rem; ++r) {
      std::memcpy(scratch + r * kMaxByteColumns, codes[c + r],
                  static_cast<std::size_t>(m));
    }
    GatherColumns16(rows, m, cols);
    for (int g0 = 0; g0 < num_queries; g0 += 8) {
      const int gn = num_queries - g0 < 8 ? num_queries - g0 : 8;
      __m512 acc[8];
      for (int g = 0; g < gn; ++g) acc[g] = _mm512_setzero_ps();
      int base = 0;
      for (int s = 0; s < m; ++s, base += ksub) {
        const __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(base),
                                             _mm512_cvtepu8_epi32(cols[s]));
        for (int g = 0; g < gn; ++g) {
          acc[g] = _mm512_add_ps(
              acc[g], _mm512_i32gather_ps(idx, tables[g0 + g], 4));
        }
      }
      for (int g = 0; g < gn; ++g) {
        _mm512_mask_storeu_ps(
            out + static_cast<std::size_t>(g0 + g) * count + c, mask,
            acc[g]);
      }
    }
  }
}

}  // namespace resinfer::simd::internal

#endif  // RESINFER_HAVE_AVX512

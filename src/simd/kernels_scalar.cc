#include "simd/kernels.h"

namespace resinfer::simd::internal {

float L2SqrScalar(const float* a, const float* b, std::size_t n) {
  // Four independent accumulators let the compiler keep the FMA pipeline
  // full without -ffast-math reassociation.
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    float d2 = a[i + 2] - b[i + 2];
    float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float InnerProductScalar(const float* a, const float* b, std::size_t n) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

float Norm2SqrScalar(const float* a, std::size_t n) {
  return InnerProductScalar(a, a, n);
}

void AxpyScalar(float scale, const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += scale * x[i];
}

float SqAdcL2SqrScalar(const float* q, const uint8_t* code,
                       const float* vmin, const float* step, std::size_t n) {
  float acc0 = 0.f, acc1 = 0.f;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float d0 = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    float d1 = q[i + 1] -
               (vmin[i + 1] + static_cast<float>(code[i + 1]) * step[i + 1]);
    acc0 += d0 * d0;
    acc1 += d1 * d1;
  }
  for (; i < n; ++i) {
    float d = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    acc0 += d * d;
  }
  return acc0 + acc1;
}

// The scalar batch kernels are the reference path: each lane simply runs
// the single-pair kernel, which makes bit-identity trivial and leaves the
// amortization win (shared query loads, interleaved chains) to the
// vectorized implementations.
void L2SqrBatch4Scalar(const float* q, const float* const* rows,
                       std::size_t n, float* out) {
  for (int r = 0; r < kBatchWidth; ++r) out[r] = L2SqrScalar(rows[r], q, n);
}

void InnerProductBatch4Scalar(const float* q, const float* const* rows,
                              std::size_t n, float* out) {
  for (int r = 0; r < kBatchWidth; ++r) {
    out[r] = InnerProductScalar(rows[r], q, n);
  }
}

void PqAdcBatchScalar(const float* table, int m, int ksub,
                      const uint8_t* const* codes, int count, float* out) {
  int c = 0;
  // Four independent accumulation chains; each chain keeps the sequential
  // per-subspace order of PqCodebook::AdcDistance.
  for (; c + 4 <= count; c += 4) {
    const uint8_t* c0 = codes[c];
    const uint8_t* c1 = codes[c + 1];
    const uint8_t* c2 = codes[c + 2];
    const uint8_t* c3 = codes[c + 3];
    float a0 = 0.f, a1 = 0.f, a2 = 0.f, a3 = 0.f;
    const float* row = table;
    for (int s = 0; s < m; ++s, row += ksub) {
      a0 += row[c0[s]];
      a1 += row[c1[s]];
      a2 += row[c2[s]];
      a3 += row[c3[s]];
    }
    out[c] = a0;
    out[c + 1] = a1;
    out[c + 2] = a2;
    out[c + 3] = a3;
  }
  for (; c < count; ++c) {
    float acc = 0.f;
    const float* row = table;
    for (int s = 0; s < m; ++s, row += ksub) acc += row[codes[c][s]];
    out[c] = acc;
  }
}

void SqAdcL2SqrBatch4Scalar(const float* q, const uint8_t* const* codes,
                            const float* vmin, const float* step,
                            std::size_t n, float* out) {
  for (int r = 0; r < kBatchWidth; ++r)
    out[r] = SqAdcL2SqrScalar(q, codes[r], vmin, step, n);
}

void PqAdcFastScanScalar(const uint8_t* lut, int m,
                         const uint8_t* const* codes, int count,
                         uint16_t* out) {
  // Integer accumulation is exact, so the per-code reference lane IS the
  // contract; the vectorized path reproduces these sums bit-for-bit.
  for (int c = 0; c < count; ++c) out[c] = PqAdcFastScanOne(lut, m, codes[c]);
}

void PqAdcFastScanTileScalar(const uint8_t* const* luts, int num_queries,
                             int m, const uint8_t* const* codes, int count,
                             uint16_t* out) {
  for (int g = 0; g < num_queries; ++g) {
    PqAdcFastScanScalar(luts[g], m, codes, count, out + g * count);
  }
}

void L2SqrTileScalar(const float* const* queries, int num_queries,
                     const float* const* rows, std::size_t n, float* out) {
  for (int g = 0; g < num_queries; ++g) {
    L2SqrBatch4Scalar(queries[g], rows, n, out + g * kBatchWidth);
  }
}

void PqAdcTileScalar(const float* const* tables, int num_queries, int m,
                     int ksub, const uint8_t* const* codes, int count,
                     float* out) {
  for (int g = 0; g < num_queries; ++g) {
    PqAdcBatchScalar(tables[g], m, ksub, codes, count, out + g * count);
  }
}

namespace {

// Slicing-by-8 tables for CRC32C (Castagnoli, reflected poly 0x82F63B78):
// table[0] is the classic byte-at-a-time table; table[k][b] extends a CRC
// whose low byte is b across k additional zero bytes, letting the hot loop
// fold 8 input bytes per iteration with eight independent lookups.
struct Crc32cTables {
  uint32_t t[8][256];
  constexpr Crc32cTables() : t{} {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int k = 0; k < 8; ++k)
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k)
      for (uint32_t b = 0; b < 256; ++b)
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
  }
};

constexpr Crc32cTables kCrc32cTables;

}  // namespace

uint32_t Crc32cScalar(uint32_t crc, const void* data, std::size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const auto& t = kCrc32cTables.t;
  crc = ~crc;
  // Byte-align so the 8-wide loop can use one unaligned 64-bit load.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
    --n;
  }
  for (; n >= 8; n -= 8, p += 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the running CRC
    crc = t[7][word & 0xFFu] ^ t[6][(word >> 8) & 0xFFu] ^
          t[5][(word >> 16) & 0xFFu] ^ t[4][(word >> 24) & 0xFFu] ^
          t[3][(word >> 32) & 0xFFu] ^ t[2][(word >> 40) & 0xFFu] ^
          t[1][(word >> 48) & 0xFFu] ^ t[0][(word >> 56) & 0xFFu];
  }
  for (; n > 0; --n)
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace resinfer::simd::internal

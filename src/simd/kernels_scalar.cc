#include "simd/kernels.h"

namespace resinfer::simd::internal {

float L2SqrScalar(const float* a, const float* b, std::size_t n) {
  // Four independent accumulators let the compiler keep the FMA pipeline
  // full without -ffast-math reassociation.
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float d0 = a[i] - b[i];
    float d1 = a[i + 1] - b[i + 1];
    float d2 = a[i + 2] - b[i + 2];
    float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < n; ++i) {
    float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float InnerProductScalar(const float* a, const float* b, std::size_t n) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

float Norm2SqrScalar(const float* a, std::size_t n) {
  return InnerProductScalar(a, a, n);
}

void AxpyScalar(float scale, const float* x, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] += scale * x[i];
}

float SqAdcL2SqrScalar(const float* q, const uint8_t* code,
                       const float* vmin, const float* step, std::size_t n) {
  float acc0 = 0.f, acc1 = 0.f;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float d0 = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    float d1 = q[i + 1] -
               (vmin[i + 1] + static_cast<float>(code[i + 1]) * step[i + 1]);
    acc0 += d0 * d0;
    acc1 += d1 * d1;
  }
  for (; i < n; ++i) {
    float d = q[i] - (vmin[i] + static_cast<float>(code[i]) * step[i]);
    acc0 += d * d;
  }
  return acc0 + acc1;
}

}  // namespace resinfer::simd::internal

#include "storage/storage.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/aligned_buffer.h"
#include "util/macros.h"

namespace resinfer::storage {

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kMemory:
      return "memory";
    case StorageBackend::kMmap:
      return "mmap";
  }
  return "unknown";
}

util::Status ParseStorageBackend(const std::string& text,
                                 StorageBackend* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "memory" || lower == "mem" || lower == "heap") {
    *out = StorageBackend::kMemory;
    return util::Status::Ok();
  }
  if (lower == "mmap") {
    *out = StorageBackend::kMmap;
    return util::Status::Ok();
  }
  return util::Status::InvalidArgument("unknown storage backend '" + text +
                                       "' (expected memory|mmap)");
}

StorageBackend DefaultStorageBackend() {
  const char* env = std::getenv("RESINFER_STORAGE");
  if (env == nullptr || env[0] == '\0') return StorageBackend::kMemory;
  StorageBackend requested;
  if (!ParseStorageBackend(env, &requested).ok()) {
    // Warn once: the default is consulted on every load, and a misspelled
    // environment value should not spam a serving process's stderr.
    static const bool warned = [env] {
      std::fprintf(stderr,
                   "resinfer: ignoring invalid RESINFER_STORAGE=%s "
                   "(expected memory|mmap)\n",
                   env);
      return true;
    }();
    (void)warned;
    return StorageBackend::kMemory;
  }
  return requested;
}

Blob::Blob(std::shared_ptr<const void> owner, const uint8_t* data,
           int64_t size)
    : owner_(std::move(owner)), data_(data), size_(size) {
  RESINFER_CHECK(size >= 0 && (size == 0 || data != nullptr));
}

Blob Blob::AllocateAligned(int64_t size, uint8_t** mutable_data) {
  RESINFER_CHECK(size >= 0);
  if (size == 0) {
    if (mutable_data != nullptr) *mutable_data = nullptr;
    return Blob();
  }
  auto* bytes = static_cast<uint8_t*>(
      AlignedAlloc(static_cast<std::size_t>(size)));
  std::memset(bytes, 0, static_cast<std::size_t>(size));
  std::shared_ptr<const void> owner(bytes,
                                    [](const void* p) {
                                      AlignedFree(const_cast<void*>(p));
                                    });
  if (mutable_data != nullptr) *mutable_data = bytes;
  return Blob(std::move(owner), bytes, size);
}

Blob Blob::CopyOf(const void* data, int64_t size) {
  uint8_t* dst = nullptr;
  Blob blob = AllocateAligned(size, &dst);
  if (size > 0) std::memcpy(dst, data, static_cast<std::size_t>(size));
  return blob;
}

Blob Blob::TakeVector(std::vector<uint8_t> bytes) {
  if (bytes.empty()) return Blob();
  auto holder = std::make_shared<std::vector<uint8_t>>(std::move(bytes));
  const uint8_t* data = holder->data();
  const auto size = static_cast<int64_t>(holder->size());
  return Blob(std::shared_ptr<const void>(std::move(holder)), data, size);
}

Blob Blob::Slice(int64_t offset, int64_t length) const {
  RESINFER_CHECK(offset >= 0 && length >= 0 && offset + length <= size_);
  if (length == 0) return Blob();
  return Blob(owner_, data_ + offset, length);
}

std::string MemoryStorage::name() const {
  return "memory(" + std::to_string(bytes_.size()) + " bytes)";
}

namespace {

util::Status CheckFetchRange(const VectorStorage& storage, int64_t offset,
                             int64_t length) {
  if (offset < 0 || length < 0 || offset > storage.size_bytes() - length) {
    return util::Status::InvalidArgument(
        storage.name() + ": fetch of [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") exceeds " +
        std::to_string(storage.size_bytes()) + " bytes");
  }
  return util::Status::Ok();
}

}  // namespace

util::Status MemoryStorage::Fetch(int64_t offset, int64_t length,
                                  Blob* out) const {
  RESINFER_RETURN_IF_ERROR(CheckFetchRange(*this, offset, length));
  *out = bytes_.Slice(offset, length);
  return util::Status::Ok();
}

util::Status MapFileReadOnly(const std::string& path, Blob* out) {
#if defined(_WIN32)
  return util::Status::FailedPrecondition(
      path + ": mmap storage backend is not available on this platform");
#else
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return util::Status::NotFound(path + ": cannot open for mmap");
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IOError(path + ": fstat failed");
  }
  const auto size = static_cast<int64_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    *out = Blob();
    return util::Status::Ok();
  }
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
  // The mapping pins the file contents; the descriptor is not needed
  // afterwards.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return util::Status::IOError(path + ": mmap failed");
  }
  // Move-proof RAII: copying an unmapper would double-munmap, so the type
  // is pinned inside one shared_ptr for the mapping's whole life.
  struct Unmapper {
    void* addr;
    std::size_t len;
    Unmapper(void* a, std::size_t l) : addr(a), len(l) {}
    Unmapper(const Unmapper&) = delete;
    Unmapper& operator=(const Unmapper&) = delete;
    ~Unmapper() { ::munmap(addr, len); }
  };
  auto holder =
      std::make_shared<Unmapper>(mapped, static_cast<std::size_t>(size));
  *out = Blob(std::shared_ptr<const void>(std::move(holder)),
              static_cast<const uint8_t*>(mapped), size);
  return util::Status::Ok();
#endif
}

void AdviseRandomAccess(const Blob& blob) {
#if !defined(_WIN32)
  if (blob.empty()) return;
  const auto page = static_cast<uintptr_t>(::sysconf(_SC_PAGESIZE));
  const auto addr = reinterpret_cast<uintptr_t>(blob.data());
  const uintptr_t start = addr & ~(page - 1);
  const std::size_t len =
      static_cast<std::size_t>(addr - start) +
      static_cast<std::size_t>(blob.size());
  // Best-effort: advice is a hint, and a range that straddles an unmapped
  // hole (possible after rounding a heap pointer down) just fails quietly.
  (void)::madvise(reinterpret_cast<void*>(start), len, MADV_RANDOM);
#else
  (void)blob;
#endif
}

util::StatusOr<std::shared_ptr<MmapFileStorage>> MmapFileStorage::Open(
    const std::string& path) {
  Blob mapping;
  RESINFER_RETURN_IF_ERROR(MapFileReadOnly(path, &mapping));
  return std::shared_ptr<MmapFileStorage>(
      new MmapFileStorage(path, std::move(mapping)));
}

util::Status MmapFileStorage::Fetch(int64_t offset, int64_t length,
                                    Blob* out) const {
  RESINFER_RETURN_IF_ERROR(CheckFetchRange(*this, offset, length));
  *out = mapping_.Slice(offset, length);
  return util::Status::Ok();
}

}  // namespace resinfer::storage

// Storage backends for index payloads: who owns the bytes a scan reads.
//
// Until PR 10 every byte the refinement path scans was heap-resident and
// arrived via full deserialization — capping corpus size at RAM and making
// cold-start cost proportional to index size. This module splits "where the
// bytes live" from "what the bytes mean":
//
//   * Blob — a shared-ownership handle to an immutable byte range. Slicing
//     is zero-copy; the backing allocation (heap block, mmap'd file) is
//     released when the last handle drops. Consumers (quant::CodeStore,
//     IvfIndex, the serving layer) hold Blobs instead of vectors, so the
//     same scan code runs over heap bytes and mapped file pages alike.
//   * VectorStorage — the backend interface: MemoryStorage owns an
//     allocation, MmapFileStorage maps a file read-only and serves
//     zero-copy slices of the mapping. Fetch() hands out Blobs that keep
//     the backend alive, so a dispatched scan can never outlive its bytes.
//
// Backend selection follows the RESINFER_SIMD_LEVEL precedent: the
// RESINFER_STORAGE environment variable ("memory" | "mmap") picks the
// process default, tools override it per invocation with --storage=. The
// bit-identity contract is backend-blind by construction — both backends
// expose the same bytes at the same alignment (persist v6 lays code
// records on 64-byte boundaries precisely so a mapped file satisfies the
// same alignment the heap allocator guarantees).
#ifndef RESINFER_STORAGE_STORAGE_H_
#define RESINFER_STORAGE_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace resinfer::storage {

enum class StorageBackend {
  kMemory = 0,  // heap-resident: bytes deserialized into aligned allocations
  kMmap = 1,    // file-resident: bytes served from a read-only mmap
};

// "memory" / "mmap".
const char* StorageBackendName(StorageBackend backend);

// Parses a backend name (case-insensitive); InvalidArgument on anything
// else, naming the accepted spellings.
util::Status ParseStorageBackend(const std::string& text,
                                 StorageBackend* out);

// The process-wide default: RESINFER_STORAGE if set and valid, else
// kMemory. An unparseable value warns once on stderr and falls back to
// kMemory (mirroring how RESINFER_SIMD_LEVEL treats junk), so a typo in an
// environment file degrades to the safe default instead of aborting a
// server.
StorageBackend DefaultStorageBackend();

// Shared-ownership handle to an immutable byte range.
//
// A Blob is (owner, pointer, size): the owner is type-erased shared state
// whose destructor releases the backing storage (heap free, munmap), the
// pointer/size window may cover all of it or any slice. Copying shares;
// the bytes outlive every handle. An empty Blob (default-constructed) has
// no owner and zero size.
class Blob {
 public:
  Blob() = default;
  // Adopts an externally managed range: `data`..`data + size` must stay
  // valid for as long as `owner` keeps its referent alive.
  Blob(std::shared_ptr<const void> owner, const uint8_t* data, int64_t size);

  // Zeroed 64-byte-aligned allocation. `*mutable_data` (if non-null)
  // receives a writable pointer to the same bytes — valid for filling the
  // blob while the caller still holds the only handle; once a second
  // handle exists the bytes must be treated as frozen.
  static Blob AllocateAligned(int64_t size, uint8_t** mutable_data = nullptr);
  // 64-byte-aligned copy of the given bytes.
  static Blob CopyOf(const void* data, int64_t size);
  // Takes ownership of a byte vector without copying. The vector's own
  // allocation backs the blob, so alignment is whatever operator new gave
  // it — use AllocateAligned/CopyOf when 64-byte alignment matters.
  static Blob TakeVector(std::vector<uint8_t> bytes);

  // Zero-copy sub-range sharing the same owner. CHECK-aborts unless
  // [offset, offset + length) lies inside this blob (caller contract — the
  // persist loader validates declared offsets before slicing).
  Blob Slice(int64_t offset, int64_t length) const;

  const uint8_t* data() const { return data_; }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // True while this handle is the only one keeping the owner alive —
  // the window in which mutating via AllocateAligned's mutable pointer is
  // legal.
  bool unique() const { return owner_ != nullptr && owner_.use_count() == 1; }
  // True when two blobs share the same backing owner (not necessarily the
  // same window).
  bool SharesOwnerWith(const Blob& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

 private:
  std::shared_ptr<const void> owner_;
  const uint8_t* data_ = nullptr;
  int64_t size_ = 0;
};

// Backend interface: a named, sized byte container that hands out shared
// zero-copy views. Implementations are immutable after construction and
// safe to Fetch from concurrently.
class VectorStorage {
 public:
  virtual ~VectorStorage() = default;

  virtual StorageBackend backend() const = 0;
  // Human-readable identity for diagnostics: "memory(<n> bytes)",
  // "mmap(<path>)".
  virtual std::string name() const = 0;
  virtual int64_t size_bytes() const = 0;

  // Shared handle to bytes [offset, offset + length). The blob keeps the
  // storage alive; returns InvalidArgument when the range falls outside
  // the container (offsets come from file headers, so this is a
  // recoverable error, not a caller contract).
  virtual util::Status Fetch(int64_t offset, int64_t length,
                             Blob* out) const = 0;
};

// Heap-resident backend: adopts a blob (typically AllocateAligned'd by a
// loader) and serves slices of it.
class MemoryStorage final : public VectorStorage {
 public:
  explicit MemoryStorage(Blob bytes) : bytes_(std::move(bytes)) {}

  StorageBackend backend() const override { return StorageBackend::kMemory; }
  std::string name() const override;
  int64_t size_bytes() const override { return bytes_.size(); }
  util::Status Fetch(int64_t offset, int64_t length,
                     Blob* out) const override;

 private:
  Blob bytes_;
};

// File-resident backend: the whole file mapped read-only; slices alias the
// mapping, so bytes are paged in on first touch and evicted under memory
// pressure — serving never needs the full index resident. Unavailable on
// platforms without mmap (FailedPrecondition).
class MmapFileStorage final : public VectorStorage {
 public:
  static util::StatusOr<std::shared_ptr<MmapFileStorage>> Open(
      const std::string& path);

  StorageBackend backend() const override { return StorageBackend::kMmap; }
  std::string name() const override { return "mmap(" + path_ + ")"; }
  int64_t size_bytes() const override { return mapping_.size(); }
  util::Status Fetch(int64_t offset, int64_t length,
                     Blob* out) const override;

  const std::string& path() const { return path_; }

 private:
  MmapFileStorage(std::string path, Blob mapping)
      : path_(std::move(path)), mapping_(std::move(mapping)) {}

  std::string path_;
  Blob mapping_;  // owner munmaps when the last handle drops
};

// Maps a whole file read-only into a Blob (the primitive MmapFileStorage
// wraps): NotFound if the file cannot be opened, IOError if the map fails,
// FailedPrecondition on platforms without mmap. Empty files map to an
// empty blob.
util::Status MapFileReadOnly(const std::string& path, Blob* out);

// Advises the kernel that `blob`'s pages will be touched in no particular
// order (madvise MADV_RANDOM on the page-aligned cover of the range).
// Scattered-id access — the raw-vector cold tier's exact-rescore pattern —
// otherwise triggers fault-around, paging in a neighborhood of every
// touched row and quietly growing RSS toward the full file. Best-effort:
// a no-op for empty blobs, heap-backed blobs, and platforms without
// madvise.
void AdviseRandomAccess(const Blob& blob);

}  // namespace resinfer::storage

#endif  // RESINFER_STORAGE_STORAGE_H_

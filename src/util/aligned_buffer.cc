#include "util/aligned_buffer.h"

#include <cstdlib>

#include "util/macros.h"

namespace resinfer {

void* AlignedAlloc(std::size_t bytes) {
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t rounded = (bytes + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1);
  void* ptr = std::aligned_alloc(kCacheLineBytes, rounded);
  RESINFER_CHECK_MSG(ptr != nullptr, "aligned allocation failed");
  return ptr;
}

void AlignedFree(void* ptr) { std::free(ptr); }

}  // namespace resinfer

// 64-byte-aligned owning float/byte buffers.
//
// SIMD kernels load 256-bit lanes; aligning vector storage to cache-line
// boundaries avoids split loads and makes prefetching predictable. The
// buffer is movable but not copyable (copies of multi-GB vector stores are
// always a bug; use Clone() when a copy is genuinely wanted).
#ifndef RESINFER_UTIL_ALIGNED_BUFFER_H_
#define RESINFER_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstring>

namespace resinfer {

inline constexpr std::size_t kCacheLineBytes = 64;

// Allocates `bytes` of storage aligned to kCacheLineBytes. Never returns
// nullptr (aborts on allocation failure). Free with AlignedFree.
void* AlignedAlloc(std::size_t bytes);
void AlignedFree(void* ptr);

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t count) { Resize(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      AlignedFree(data_);
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { AlignedFree(data_); }

  // Reallocates to exactly `count` elements. Contents are NOT preserved;
  // new storage is zero-initialized.
  void Resize(std::size_t count) {
    AlignedFree(data_);
    size_ = count;
    if (count == 0) {
      data_ = nullptr;
      return;
    }
    data_ = static_cast<T*>(AlignedAlloc(count * sizeof(T)));
    std::memset(data_, 0, count * sizeof(T));
  }

  AlignedBuffer Clone() const {
    AlignedBuffer copy(size_);
    if (size_ > 0) std::memcpy(copy.data_, data_, size_ * sizeof(T));
    return copy;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace resinfer

#endif  // RESINFER_UTIL_ALIGNED_BUFFER_H_

// Minimal binary (de)serialization streams for model/index persistence.
//
// Format conventions used by every Save/Load in this library:
//   * little-endian PODs (the library targets x86-64),
//   * containers as  int64 count  followed by raw payload,
//   * each file starts with a 8-byte magic and a uint32 version.
// Readers never trust the payload: counts are bounds-checked against
// sane limits and every read is checked, so truncated or corrupted files
// fail cleanly instead of over-allocating.
//
// Checksummed envelope (persist format v5, see docs/persistence.md): the
// payload after the header is split into named sections
//   [u8 name_len > 0][name][u64 payload_len][payload][u32 crc32c(payload)]
// terminated by a footer
//   [u8 0][u32 num_sections][u32 crc32c(all section CRC words, in order)]
// The CRC covers only the payload; the frame fields are protected
// structurally (the reader knows which section name it expects and cross-
// checks consumed-vs-declared length), which keeps checksums composable
// without buffering whole sections. Writers always emit the envelope;
// readers toggle it per file version via set_checksummed() so one parse
// path serves both legacy and checksummed files.
#ifndef RESINFER_UTIL_BINARY_IO_H_
#define RESINFER_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "simd/kernels.h"

namespace resinfer {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  ~BinaryWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  // Flushes and closes, returning false if any write — including stdio's
  // buffered flush at close, which the destructor cannot report — failed.
  // Idempotent; further writes after Close fail.
  bool Close() {
    if (file_ != nullptr) {
      if (std::fclose(file_) != 0) Fail("flush on close failed");
      file_ = nullptr;
      closed_ok_ = !failed_;
    }
    return closed_ok_ && !failed_;
  }

  bool ok() const { return (file_ != nullptr || closed_ok_) && !failed_; }

  // Why the first write failed ("disk full", "flush on close failed", ...);
  // empty while ok().
  const std::string& fail_reason() const { return fail_reason_; }

  void WriteBytes(const void* data, std::size_t bytes) {
    if (file_ == nullptr) {
      // Write-after-Close is a caller bug: poison the writer so the next
      // ok()/Close() check reports it (a never-opened writer is already
      // not ok()).
      if (closed_ok_) Fail("write after Close");
      return;
    }
    if (failed_) return;
    if (write_limit_ >= 0 &&
        bytes_written_ + static_cast<int64_t>(bytes) > write_limit_) {
      // Injected ENOSPC for fault tests: behaves like a full disk.
      Fail("disk full");
      return;
    }
    if (std::fwrite(data, 1, bytes, file_) != bytes) {
      Fail("short write");
      return;
    }
    bytes_written_ += static_cast<int64_t>(bytes);
    if (in_section_) {
      section_crc_ = simd::Crc32c(section_crc_, data, bytes);
      section_bytes_ += static_cast<uint64_t>(bytes);
    }
  }

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<int64_t>(static_cast<int64_t>(v.size()));
    if (!v.empty()) WriteBytes(v.data(), v.size() * sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<int64_t>(static_cast<int64_t>(s.size()));
    if (!s.empty()) WriteBytes(s.data(), s.size());
  }

  // Raw float block (e.g. matrix payload) with explicit element count.
  void WriteFloats(const float* data, int64_t count) {
    WriteBytes(data, static_cast<std::size_t>(count) * sizeof(float));
  }

  // Current file offset (buffered bytes included), or -1 after close/
  // failure. Writers of aligned layouts (persist v6) use this to compute
  // padding so a payload lands on a given file-offset boundary.
  int64_t Tell() const {
    if (file_ == nullptr || failed_) return -1;
    return static_cast<int64_t>(std::ftell(file_));
  }

  // Zero padding so the NEXT write lands on a file offset that is a
  // multiple of `alignment`, emitted as [u32 pad_len][pad_len zero bytes]
  // (the u32 is accounted for, so readers can skip without re-deriving the
  // arithmetic). Alignment must be a power of two <= 4096.
  void WriteAlignmentPad(int64_t alignment) {
    if (alignment <= 0 || alignment > 4096 ||
        (alignment & (alignment - 1)) != 0) {
      Fail("WriteAlignmentPad misuse");
      return;
    }
    const int64_t pos = Tell();
    if (pos < 0) return;
    const int64_t after_len = pos + static_cast<int64_t>(sizeof(uint32_t));
    const auto pad = static_cast<uint32_t>((alignment - after_len % alignment) %
                                           alignment);
    Write<uint32_t>(pad);
    static constexpr uint8_t kZeros[64] = {};
    uint32_t remaining = pad;
    while (remaining > 0 && ok()) {
      const uint32_t chunk = remaining < sizeof(kZeros)
                                 ? remaining
                                 : static_cast<uint32_t>(sizeof(kZeros));
      WriteBytes(kZeros, chunk);
      remaining -= chunk;
    }
  }

  // Opens a checksummed section: everything written until EndSection() is
  // the section payload, CRC'd and length-counted. Sections must not nest.
  void BeginSection(const char* name) {
    const std::size_t len = std::strlen(name);
    if (in_section_ || len == 0 || len > 255) {
      Fail("BeginSection misuse");
      return;
    }
    const uint8_t len8 = static_cast<uint8_t>(len);
    WriteBytes(&len8, 1);
    WriteBytes(name, len);
    if (!ok()) return;
    len_patch_pos_ = std::ftell(file_);
    Write<uint64_t>(0);  // placeholder, patched by EndSection
    in_section_ = true;
    section_crc_ = 0;
    section_bytes_ = 0;
  }

  // Closes the current section: seeks back to patch the real payload
  // length, then appends the payload CRC.
  void EndSection() {
    if (!in_section_) {
      Fail("EndSection without BeginSection");
      return;
    }
    in_section_ = false;
    if (!ok()) return;
    const long end = std::ftell(file_);
    if (len_patch_pos_ < 0 || end < 0 ||
        std::fseek(file_, len_patch_pos_, SEEK_SET) != 0) {
      Fail("seek failed while patching section length");
      return;
    }
    // The patch rewrites the 8 placeholder bytes already counted against
    // the write limit; rewind the counter so they are not double-billed.
    bytes_written_ -= 8;
    Write<uint64_t>(section_bytes_);
    if (!ok()) return;
    if (std::fseek(file_, end, SEEK_SET) != 0) {
      Fail("seek failed while patching section length");
      return;
    }
    Write<uint32_t>(section_crc_);
    section_crcs_.push_back(section_crc_);
  }

  // Terminates the section stream: a zero name-length marker, the section
  // count, and a digest over the per-section CRC words (so a file with a
  // whole section spliced out fails even though each remaining section's
  // own CRC still matches).
  void WriteChecksumFooter() {
    if (in_section_) {
      Fail("WriteChecksumFooter inside a section");
      return;
    }
    const uint8_t zero = 0;
    WriteBytes(&zero, 1);
    Write<uint32_t>(static_cast<uint32_t>(section_crcs_.size()));
    const uint32_t digest =
        section_crcs_.empty()
            ? simd::Crc32c(0, nullptr, 0)
            : simd::Crc32c(0, section_crcs_.data(),
                           section_crcs_.size() * sizeof(uint32_t));
    Write<uint32_t>(digest);
  }

  // Flushes stdio buffers and fsyncs the fd so the bytes survive a crash
  // before the atomic rename publishes them. Returns false on any failure.
  bool SyncToDisk() {
    if (file_ == nullptr || failed_) return false;
    if (std::fflush(file_) != 0) {
      Fail("flush failed");
      return false;
    }
#if !defined(_WIN32)
    if (::fsync(::fileno(file_)) != 0) {
      Fail("fsync failed");
      return false;
    }
#endif
    return true;
  }

  // Fault injection: writes fail (as if the disk were full) once the total
  // would exceed `bytes`. Negative disables the limit.
  void set_write_limit_for_testing(int64_t bytes) { write_limit_ = bytes; }

 private:
  void Fail(const char* reason) {
    failed_ = true;
    if (fail_reason_.empty()) fail_reason_ = reason;
  }

  std::FILE* file_ = nullptr;
  bool failed_ = false;
  bool closed_ok_ = false;
  std::string fail_reason_;
  int64_t bytes_written_ = 0;
  int64_t write_limit_ = -1;
  bool in_section_ = false;
  uint32_t section_crc_ = 0;
  uint64_t section_bytes_ = 0;
  long len_patch_pos_ = -1;
  std::vector<uint32_t> section_crcs_;
};

class BinaryReader {
 public:
  // `max_elements` bounds any single container read; protects against
  // corrupted counts causing huge allocations.
  explicit BinaryReader(const std::string& path,
                        int64_t max_elements = (1LL << 33))
      : file_(std::fopen(path.c_str(), "rb")), max_elements_(max_elements) {}

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  ~BinaryReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool ok() const { return file_ != nullptr && !failed_; }

  // Why the first read failed ("unexpected end of file", "section 'codes':
  // checksum mismatch", ...); empty while ok().
  const std::string& fail_reason() const { return fail_reason_; }

  void ReadBytes(void* data, std::size_t bytes) {
    if (!ok()) return;
    if (in_section_) {
      if (static_cast<uint64_t>(bytes) > payload_remaining_) {
        Fail("section '" + section_name_ +
             "': loader read past the declared payload length");
        return;
      }
      payload_remaining_ -= static_cast<uint64_t>(bytes);
    }
    if (std::fread(data, 1, bytes, file_) != bytes) {
      Fail("unexpected end of file");
      return;
    }
    if (in_section_) section_crc_ = simd::Crc32c(section_crc_, data, bytes);
  }

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ReadBytes(value, sizeof(T));
    return ok();
  }

  template <typename T>
  bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    int64_t count = 0;
    if (!Read(&count)) return false;
    if (count < 0 || count > max_elements_) {
      Fail("container count out of range");
      return false;
    }
    v->resize(static_cast<std::size_t>(count));
    if (count > 0) ReadBytes(v->data(), v->size() * sizeof(T));
    return ok();
  }

  bool ReadString(std::string* s) {
    int64_t count = 0;
    if (!Read(&count)) return false;
    if (count < 0 || count > max_elements_) {
      Fail("container count out of range");
      return false;
    }
    s->resize(static_cast<std::size_t>(count));
    if (count > 0) ReadBytes(s->data(), s->size());
    return ok();
  }

  bool ReadFloats(float* data, int64_t count) {
    ReadBytes(data, static_cast<std::size_t>(count) * sizeof(float));
    return ok();
  }

  // Current file offset, or -1 on failure. Mmap loaders use this to record
  // where an aligned payload starts before skipping over it.
  int64_t Tell() const {
    if (file_ == nullptr || failed_) return -1;
    return static_cast<int64_t>(std::ftell(file_));
  }

  // Consumes padding written by WriteAlignmentPad: [u32 pad_len][pad
  // bytes]. The pad participates in the section CRC like any payload
  // bytes. Rejects pads >= `alignment` (a corrupt length would otherwise
  // let an attacker-shaped file desynchronize the parse).
  bool ReadAlignmentPad(int64_t alignment) {
    uint32_t pad = 0;
    if (!Read(&pad)) return false;
    if (pad >= static_cast<uint32_t>(alignment)) {
      Fail("alignment pad longer than the alignment");
      return false;
    }
    uint8_t scratch[4096];
    if (pad > 0) ReadBytes(scratch, pad);
    return ok();
  }

  // Seeks forward over `bytes` of the current section's payload WITHOUT
  // checksumming it — the mmap load path, where the payload is served
  // lazily from the file and hashing it would fault in every page the
  // zero-copy design exists to avoid. The section's stored CRC still
  // enters the footer digest (EndSection), so the envelope stays
  // structurally verified; content verification of skipped sections is
  // VerifyFile's job (see docs/storage.md).
  bool SkipPayload(uint64_t bytes) {
    if (!ok()) return false;
    if (!in_section_) {
      Fail("SkipPayload outside a section");
      return false;
    }
    if (bytes > payload_remaining_) {
      Fail("section '" + section_name_ +
           "': skip past the declared payload length");
      return false;
    }
    if (std::fseek(file_, static_cast<long>(bytes), SEEK_CUR) != 0) {
      Fail("seek failed while skipping payload");
      return false;
    }
    payload_remaining_ -= bytes;
    section_crc_skipped_ = true;
    return true;
  }

  // Validates a magic/version header written by WriteHeader.
  bool ExpectHeader(const char magic[8], uint32_t expected_version) {
    char got[8];
    ReadBytes(got, 8);
    uint32_t version = 0;
    if (!Read(&version)) return false;
    if (std::memcmp(got, magic, 8) != 0 || version != expected_version) {
      Fail("bad magic or version");
      return false;
    }
    return true;
  }

  int64_t max_elements() const { return max_elements_; }

  // Toggles the v5 section envelope. Loaders call this after parsing the
  // version field: pre-v5 files carry no frames, so with checksumming off
  // Begin/EndSection and ExpectChecksumFooter are no-ops and the same
  // loader body parses every version.
  void set_checksummed(bool on) { checksummed_ = on; }
  bool checksummed() const { return checksummed_; }

  // Opens the next section and verifies it is the one the loader expects.
  bool BeginSection(const char* expected_name) {
    if (!checksummed_) return ok();
    if (!ok()) return false;
    if (in_section_) {
      Fail("BeginSection misuse");
      return false;
    }
    uint8_t len = 0;
    ReadBytes(&len, 1);
    if (!ok()) {
      Fail(std::string("truncated before section '") + expected_name + "'");
      return false;
    }
    if (len == 0) {
      Fail(std::string("expected section '") + expected_name +
           "' but found the footer marker");
      return false;
    }
    char name[256];
    ReadBytes(name, len);
    if (!ok()) return false;
    name[len] = '\0';
    if (std::strcmp(name, expected_name) != 0) {
      Fail(std::string("expected section '") + expected_name +
           "' but found '" + name + "'");
      return false;
    }
    uint64_t payload_len = 0;
    if (!Read(&payload_len)) return false;
    in_section_ = true;
    section_name_ = expected_name;
    payload_remaining_ = payload_len;
    section_crc_ = 0;
    return true;
  }

  // Closes the current section: the loader must have consumed exactly the
  // declared payload, and the stored CRC must match the computed one —
  // unless part of the payload was skipped (SkipPayload), in which case
  // the stored CRC is recorded for the footer digest but cannot be
  // compared against a full recomputation.
  bool EndSection() {
    if (!checksummed_) return ok();
    if (!in_section_) {
      Fail("EndSection without BeginSection");
      return false;
    }
    in_section_ = false;
    const bool skipped = section_crc_skipped_;
    section_crc_skipped_ = false;
    if (!ok()) return false;
    if (payload_remaining_ != 0) {
      Fail("section '" + section_name_ +
           "': loader consumed fewer bytes than declared");
      return false;
    }
    uint32_t stored = 0;
    if (!Read(&stored)) return false;
    if (!skipped && stored != section_crc_) {
      Fail("section '" + section_name_ + "': checksum mismatch");
      return false;
    }
    section_crcs_.push_back(stored);
    return true;
  }

  // Validates the footer written by WriteChecksumFooter against the
  // sections read so far.
  bool ExpectChecksumFooter() {
    if (!checksummed_) return ok();
    if (in_section_) {
      Fail("ExpectChecksumFooter inside a section");
      return false;
    }
    uint8_t marker = 0;
    ReadBytes(&marker, 1);
    if (!ok()) return false;
    if (marker != 0) {
      Fail("footer marker missing (extra section in file?)");
      return false;
    }
    uint32_t count = 0;
    if (!Read(&count)) return false;
    if (count != section_crcs_.size()) {
      Fail("footer section count mismatch");
      return false;
    }
    uint32_t digest = 0;
    if (!Read(&digest)) return false;
    const uint32_t expected =
        section_crcs_.empty()
            ? simd::Crc32c(0, nullptr, 0)
            : simd::Crc32c(0, section_crcs_.data(),
                           section_crcs_.size() * sizeof(uint32_t));
    if (digest != expected) {
      Fail("footer digest mismatch");
      return false;
    }
    return true;
  }

 private:
  void Fail(std::string reason) {
    failed_ = true;
    if (fail_reason_.empty()) fail_reason_ = std::move(reason);
  }

  std::FILE* file_ = nullptr;
  bool failed_ = false;
  int64_t max_elements_;
  std::string fail_reason_;
  bool checksummed_ = false;
  bool in_section_ = false;
  bool section_crc_skipped_ = false;
  std::string section_name_;
  uint64_t payload_remaining_ = 0;
  uint32_t section_crc_ = 0;
  std::vector<uint32_t> section_crcs_;
};

inline void WriteHeader(BinaryWriter& writer, const char magic[8],
                        uint32_t version) {
  writer.WriteBytes(magic, 8);
  writer.Write(version);
}

}  // namespace resinfer

#endif  // RESINFER_UTIL_BINARY_IO_H_

// Minimal binary (de)serialization streams for model/index persistence.
//
// Format conventions used by every Save/Load in this library:
//   * little-endian PODs (the library targets x86-64),
//   * containers as  int64 count  followed by raw payload,
//   * each file starts with a 8-byte magic and a uint32 version.
// Readers never trust the payload: counts are bounds-checked against
// sane limits and every read is checked, so truncated or corrupted files
// fail cleanly instead of over-allocating.
#ifndef RESINFER_UTIL_BINARY_IO_H_
#define RESINFER_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace resinfer {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : file_(std::fopen(path.c_str(), "wb")) {}

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  ~BinaryWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  // Flushes and closes, returning false if any write — including stdio's
  // buffered flush at close, which the destructor cannot report — failed.
  // Idempotent; further writes after Close fail.
  bool Close() {
    if (file_ != nullptr) {
      if (std::fclose(file_) != 0) failed_ = true;
      file_ = nullptr;
      closed_ok_ = !failed_;
    }
    return closed_ok_ && !failed_;
  }

  bool ok() const { return (file_ != nullptr || closed_ok_) && !failed_; }

  void WriteBytes(const void* data, std::size_t bytes) {
    if (file_ == nullptr) {
      // Write-after-Close is a caller bug: poison the writer so the next
      // ok()/Close() check reports it (a never-opened writer is already
      // not ok()).
      if (closed_ok_) failed_ = true;
      return;
    }
    if (failed_) return;
    if (std::fwrite(data, 1, bytes, file_) != bytes) failed_ = true;
  }

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write<int64_t>(static_cast<int64_t>(v.size()));
    if (!v.empty()) WriteBytes(v.data(), v.size() * sizeof(T));
  }

  void WriteString(const std::string& s) {
    Write<int64_t>(static_cast<int64_t>(s.size()));
    if (!s.empty()) WriteBytes(s.data(), s.size());
  }

  // Raw float block (e.g. matrix payload) with explicit element count.
  void WriteFloats(const float* data, int64_t count) {
    WriteBytes(data, static_cast<std::size_t>(count) * sizeof(float));
  }

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  bool closed_ok_ = false;
};

class BinaryReader {
 public:
  // `max_elements` bounds any single container read; protects against
  // corrupted counts causing huge allocations.
  explicit BinaryReader(const std::string& path,
                        int64_t max_elements = (1LL << 33))
      : file_(std::fopen(path.c_str(), "rb")), max_elements_(max_elements) {}

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  ~BinaryReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool ok() const { return file_ != nullptr && !failed_; }

  void ReadBytes(void* data, std::size_t bytes) {
    if (!ok()) return;
    if (std::fread(data, 1, bytes, file_) != bytes) failed_ = true;
  }

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ReadBytes(value, sizeof(T));
    return ok();
  }

  template <typename T>
  bool ReadVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    int64_t count = 0;
    if (!Read(&count)) return false;
    if (count < 0 || count > max_elements_) {
      failed_ = true;
      return false;
    }
    v->resize(static_cast<std::size_t>(count));
    if (count > 0) ReadBytes(v->data(), v->size() * sizeof(T));
    return ok();
  }

  bool ReadString(std::string* s) {
    int64_t count = 0;
    if (!Read(&count)) return false;
    if (count < 0 || count > max_elements_) {
      failed_ = true;
      return false;
    }
    s->resize(static_cast<std::size_t>(count));
    if (count > 0) ReadBytes(s->data(), s->size());
    return ok();
  }

  bool ReadFloats(float* data, int64_t count) {
    ReadBytes(data, static_cast<std::size_t>(count) * sizeof(float));
    return ok();
  }

  // Validates a magic/version header written by WriteHeader.
  bool ExpectHeader(const char magic[8], uint32_t expected_version) {
    char got[8];
    ReadBytes(got, 8);
    uint32_t version = 0;
    if (!Read(&version)) return false;
    if (std::memcmp(got, magic, 8) != 0 || version != expected_version) {
      failed_ = true;
      return false;
    }
    return true;
  }

  int64_t max_elements() const { return max_elements_; }

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  int64_t max_elements_;
};

inline void WriteHeader(BinaryWriter& writer, const char magic[8],
                        uint32_t version) {
  writer.WriteBytes(magic, 8);
  writer.Write(version);
}

}  // namespace resinfer

#endif  // RESINFER_UTIL_BINARY_IO_H_

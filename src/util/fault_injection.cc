#include "util/fault_injection.h"

#include <cstdio>

namespace resinfer::util {

StatusOr<FaultInjectingFile> FaultInjectingFile::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::NotFound(path + ": cannot open for reading");
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
    bytes.insert(bytes.end(), buf, buf + got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError(path + ": read failed");
  return FaultInjectingFile(std::move(bytes));
}

void FaultInjectingFile::Truncate(std::size_t new_size) {
  if (new_size < bytes_.size()) bytes_.resize(new_size);
}

void FaultInjectingFile::FlipBit(std::size_t byte_index, int bit) {
  if (byte_index < bytes_.size())
    bytes_[byte_index] ^= static_cast<uint8_t>(1u << (bit & 7));
}

void FaultInjectingFile::CorruptRange(std::size_t offset, std::size_t len,
                                      uint8_t mask) {
  for (std::size_t i = offset; i < offset + len && i < bytes_.size(); ++i)
    bytes_[i] ^= mask;
}

void FaultInjectingFile::Reset() { bytes_ = original_; }

Status FaultInjectingFile::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    return Status::IOError(path + ": cannot open for writing");
  if (!bytes_.empty() &&
      std::fwrite(bytes_.data(), 1, bytes_.size(), f) != bytes_.size()) {
    std::fclose(f);
    return Status::IOError(path + ": short write");
  }
  if (std::fclose(f) != 0) return Status::IOError(path + ": close failed");
  return Status::Ok();
}

}  // namespace resinfer::util

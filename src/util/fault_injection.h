// Fault-injection helpers for persistence tests.
//
// FaultInjectingFile snapshots a good on-disk file into memory, applies a
// mutation (truncation, bit flip, range corruption), and writes the result
// to a scratch path. The corruption tests then assert that loading the
// mutated file returns a clean util::Status — never a crash, never a
// silently-wrong index. Short writes and ENOSPC are injected on the write
// side instead, via BinaryWriter::set_write_limit_for_testing.
//
// Test-only: nothing in the serving path includes this header.
#ifndef RESINFER_UTIL_FAULT_INJECTION_H_
#define RESINFER_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace resinfer::util {

class FaultInjectingFile {
 public:
  // Loads `path` fully into memory. Check ok() before mutating.
  static StatusOr<FaultInjectingFile> Open(const std::string& path);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

  // Drops every byte from `new_size` on. No-op if already shorter.
  void Truncate(std::size_t new_size);

  // Flips one bit. `byte_index` must be < size().
  void FlipBit(std::size_t byte_index, int bit);

  // XORs `len` bytes starting at `offset` with `mask` (clamped to EOF).
  void CorruptRange(std::size_t offset, std::size_t len, uint8_t mask);

  // Restores the bytes as loaded by Open (mutations compose until reset).
  void Reset();

  // Writes the current (mutated) bytes to `path`.
  Status WriteTo(const std::string& path) const;

 private:
  explicit FaultInjectingFile(std::vector<uint8_t> bytes)
      : original_(bytes), bytes_(std::move(bytes)) {}

  std::vector<uint8_t> original_;
  std::vector<uint8_t> bytes_;
};

}  // namespace resinfer::util

#endif  // RESINFER_UTIL_FAULT_INJECTION_H_

#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/macros.h"

namespace resinfer {

namespace {

// Geometric ladder from kFirstUpper growing by kGrowth per bucket. With
// 1024 buckets and 3.5% growth the ladder spans [1e-9, ~2e6) — nanoseconds
// to weeks when the unit is seconds — at 3.5% relative resolution. Values
// beyond either end clamp into the boundary buckets (min/max stay exact).
constexpr double kFirstUpper = 1e-9;
constexpr double kGrowth = 1.035;

}  // namespace

double Histogram::BucketUpper(int i) {
  static const std::array<double, kNumBuckets>& bounds = *[] {
    auto* b = new std::array<double, kNumBuckets>();
    double upper = kFirstUpper;
    for (int i = 0; i < kNumBuckets; ++i) {
      (*b)[static_cast<std::size_t>(i)] = upper;
      upper *= kGrowth;
    }
    return b;
  }();
  return bounds[static_cast<std::size_t>(i)];
}

int Histogram::BucketFor(double value) {
  if (!(value > kFirstUpper)) return 0;
  // log ratio -> bucket index; clamp to the last bucket.
  const int i = static_cast<int>(
      std::ceil(std::log(value / kFirstUpper) / std::log(kGrowth)));
  return std::min(i, kNumBuckets - 1);
}

void Histogram::Add(double value) {
  RESINFER_DCHECK(value >= 0.0 && std::isfinite(value));
  value = std::max(value, 0.0);
  ++buckets_[static_cast<std::size_t>(BucketFor(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::min() const { return count_ > 0 ? min_ : 0.0; }
double Histogram::max() const { return count_ > 0 ? max_ : 0.0; }

double Histogram::Percentile(double p) const {
  RESINFER_DCHECK(p >= 0.0 && p <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = p * static_cast<double>(count_);
  double cumulative = 0.0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const auto in_bucket =
        static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
    if (cumulative + in_bucket >= target) {
      const double lower = i == 0 ? 0.0 : BucketUpper(i - 1);
      const double upper = BucketUpper(i);
      const double fraction =
          in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
      const double value = lower + fraction * (upper - lower);
      return std::clamp(value, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "count=%lld mean=%.6g p50=%.6g p90=%.6g p99=%.6g max=%.6g",
                static_cast<long long>(count_), mean(), Percentile(0.5),
                Percentile(0.9), Percentile(0.99), max());
  return buffer;
}

}  // namespace resinfer

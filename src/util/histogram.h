// Fixed-memory latency histogram with geometric buckets (the shape of
// RocksDB's statistics histograms): O(1) insertion, percentile queries by
// linear interpolation inside the owning bucket.
//
// Values are non-negative doubles (seconds, bytes, dimensions — any
// magnitude within [1e-9, ~1e18) resolves to ~5% relative bucket width);
// smaller values land in the first bucket, larger in the last.
#ifndef RESINFER_UTIL_HISTOGRAM_H_
#define RESINFER_UTIL_HISTOGRAM_H_

#include <array>
#include <cstdint>
#include <string>

namespace resinfer {

class Histogram {
 public:
  static constexpr int kNumBuckets = 1024;

  Histogram() { Reset(); }

  void Add(double value);
  // Accumulates another histogram's contents into this one.
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

  // Value at quantile p in [0, 1], interpolated within the bucket that
  // holds the p-th sample and clamped to the observed [min, max].
  double Percentile(double p) const;

  // One-line summary: count, mean, p50/p90/p99, max.
  std::string Summary() const;

 private:
  // Upper bound of bucket i (geometric ladder, shared by all instances).
  static double BucketUpper(int i);
  static int BucketFor(double value);

  std::array<int64_t, kNumBuckets> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace resinfer

#endif  // RESINFER_UTIL_HISTOGRAM_H_

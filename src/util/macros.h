// Error-checking and portability macros used across the library.
//
// RESINFER_CHECK is active in all build types and is used to validate
// caller-supplied arguments and internal invariants whose violation would
// otherwise corrupt results silently. RESINFER_DCHECK compiles out of
// release builds and guards hot paths.
#ifndef RESINFER_UTIL_MACROS_H_
#define RESINFER_UTIL_MACROS_H_

#include <cstdio>
#include <cstdlib>

#define RESINFER_CHECK(cond)                                                  \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "RESINFER_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define RESINFER_CHECK_MSG(cond, msg)                                         \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "RESINFER_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define RESINFER_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define RESINFER_DCHECK(cond) RESINFER_CHECK(cond)
#endif

#if defined(__GNUC__) || defined(__clang__)
#define RESINFER_LIKELY(x) __builtin_expect(!!(x), 1)
#define RESINFER_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define RESINFER_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define RESINFER_LIKELY(x) (x)
#define RESINFER_UNLIKELY(x) (x)
#define RESINFER_PREFETCH(addr)
#endif

#endif  // RESINFER_UTIL_MACROS_H_

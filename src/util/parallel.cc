#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace resinfer {

namespace {
std::atomic<int> g_thread_count{0};  // 0 = env override, then hardware

// Parses RESINFER_THREADS on every call (it is consulted once per batch /
// executor construction, never per query) so tests can flip the variable
// without ordering constraints. Returns 0 when unset or invalid.
int EnvThreadCount() {
  const char* env = std::getenv("RESINFER_THREADS");
  if (env == nullptr || env[0] == '\0') return 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end != nullptr && *end == '\0' && value > 0 && value <= 1 << 20) {
    return static_cast<int>(value);
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "resinfer: ignoring invalid RESINFER_THREADS=%s "
                 "(expected a positive integer)\n",
                 env);
  }
  return 0;
}
}  // namespace

int DefaultThreadCount() {
  int configured = g_thread_count.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  if (int env = EnvThreadCount(); env > 0) return env;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveThreadCount(int requested) {
  return requested > 0 ? requested : DefaultThreadCount();
}

void SetDefaultThreadCount(int threads) {
  RESINFER_CHECK(threads >= 0);
  g_thread_count.store(threads, std::memory_order_relaxed);
}

void ParallelFor(int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  int threads = std::min<int64_t>(DefaultThreadCount(), n);
  if (threads <= 1 || n < 1024) {
    fn(0, n);
    return;
  }
  int64_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    int64_t begin = t * chunk;
    int64_t end = std::min<int64_t>(begin + chunk, n);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

void ParallelForEach(int64_t n,
                     const std::function<void(int64_t, int)>& fn) {
  if (n <= 0) return;
  int threads = std::min<int64_t>(DefaultThreadCount(), n);
  if (threads <= 1 || n < 256) {
    for (int64_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::atomic<int64_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&next, &fn, n, t] {
      // Grab moderately sized batches to amortize the atomic increment
      // while keeping load balanced for skewed per-item costs.
      constexpr int64_t kBatch = 64;
      while (true) {
        int64_t begin = next.fetch_add(kBatch, std::memory_order_relaxed);
        if (begin >= n) return;
        int64_t end = std::min<int64_t>(begin + kBatch, n);
        for (int64_t i = begin; i < end; ++i) fn(i, t);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace resinfer

#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/macros.h"

namespace resinfer {

namespace {
std::atomic<int> g_thread_count{0};  // 0 = use hardware concurrency
}  // namespace

int DefaultThreadCount() {
  int configured = g_thread_count.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void SetDefaultThreadCount(int threads) {
  RESINFER_CHECK(threads >= 0);
  g_thread_count.store(threads, std::memory_order_relaxed);
}

void ParallelFor(int64_t n,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  int threads = std::min<int64_t>(DefaultThreadCount(), n);
  if (threads <= 1 || n < 1024) {
    fn(0, n);
    return;
  }
  int64_t chunk = (n + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    int64_t begin = t * chunk;
    int64_t end = std::min<int64_t>(begin + chunk, n);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  for (auto& w : workers) w.join();
}

void ParallelForEach(int64_t n,
                     const std::function<void(int64_t, int)>& fn) {
  if (n <= 0) return;
  int threads = std::min<int64_t>(DefaultThreadCount(), n);
  if (threads <= 1 || n < 256) {
    for (int64_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  std::atomic<int64_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&next, &fn, n, t] {
      // Grab moderately sized batches to amortize the atomic increment
      // while keeping load balanced for skewed per-item costs.
      constexpr int64_t kBatch = 64;
      while (true) {
        int64_t begin = next.fetch_add(kBatch, std::memory_order_relaxed);
        if (begin >= n) return;
        int64_t end = std::min<int64_t>(begin + kBatch, n);
        for (int64_t i = begin; i < end; ++i) fn(i, t);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace resinfer

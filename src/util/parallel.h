// Minimal fork-join helper for embarrassingly parallel loops (ground truth,
// k-means assignment, HNSW construction). Deliberately tiny: static range
// partitioning over std::thread, no work stealing — the workloads we split
// are uniform.
#ifndef RESINFER_UTIL_PARALLEL_H_
#define RESINFER_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace resinfer {

// Number of worker threads used by ParallelFor and the serving executor.
// Resolution order: SetDefaultThreadCount (explicit, for tests and
// single-thread benchmarking), then the RESINFER_THREADS environment
// variable (a positive integer, mirroring RESINFER_SIMD_LEVEL's
// run-without-recompiling override; invalid values are ignored with a
// one-time stderr note), then hardware concurrency.
int DefaultThreadCount();
void SetDefaultThreadCount(int threads);

// Resolves a caller-requested thread count: positive values pass through,
// zero and negative values (e.g. a BatchOptions::num_threads accidentally
// initialized to -1) clamp to DefaultThreadCount().
int ResolveThreadCount(int requested);

// Invokes fn(begin, end) on contiguous shards of [0, n). fn must be
// thread-safe across disjoint ranges. Runs inline when n is small or only
// one thread is configured.
void ParallelFor(int64_t n,
                 const std::function<void(int64_t begin, int64_t end)>& fn);

// Per-index convenience wrapper: fn(i, thread_id) for i in [0, n).
void ParallelForEach(
    int64_t n, const std::function<void(int64_t index, int thread_id)>& fn);

}  // namespace resinfer

#endif  // RESINFER_UTIL_PARALLEL_H_

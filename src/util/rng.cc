#include "util/rng.h"

#include <algorithm>
#include <numeric>

#include "util/macros.h"

namespace resinfer {

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  RESINFER_CHECK(k >= 0 && k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: shuffle a full permutation and truncate.
    std::vector<int64_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    Shuffle(perm);
    perm.resize(k);
    return perm;
  }
  // Sparse case: Floyd's algorithm, O(k) expected.
  std::vector<int64_t> out;
  out.reserve(k);
  // Track chosen values; k is small so a sorted vector is fine.
  std::vector<int64_t> chosen;
  chosen.reserve(k);
  for (int64_t j = n - k; j < n; ++j) {
    int64_t t = static_cast<int64_t>(UniformInt(static_cast<uint64_t>(j + 1)));
    auto it = std::lower_bound(chosen.begin(), chosen.end(), t);
    if (it != chosen.end() && *it == t) {
      it = std::lower_bound(chosen.begin(), chosen.end(), j);
      chosen.insert(it, j);
      out.push_back(j);
    } else {
      chosen.insert(it, t);
      out.push_back(t);
    }
  }
  return out;
}

}  // namespace resinfer

// Deterministic random number generation.
//
// All stochastic components (synthetic data, k-means seeding, random
// rotations, SGD shuffling) take an explicit Rng so that experiments are
// reproducible from a single seed recorded in the bench output.
#ifndef RESINFER_UTIL_RNG_H_
#define RESINFER_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace resinfer {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() { return unit_(engine_); }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  // Standard normal N(0, 1).
  double Gaussian() { return normal_(engine_); }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Fisher-Yates shuffle of an index range.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Samples `k` distinct indices from [0, n) without replacement.
  // Requires k <= n. O(n) when k is a large fraction of n, reservoir-style
  // otherwise.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace resinfer

#endif  // RESINFER_UTIL_RNG_H_

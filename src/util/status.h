// Recoverable error reporting for untrusted input (files, network bytes,
// caller-supplied paths).
//
// Policy (see docs/persistence.md, "CHECK vs Status"): RESINFER_CHECK /
// RESINFER_DCHECK remain for *internal invariants and caller contracts* —
// conditions that can only be false through a programming bug in this
// library or its caller. Everything that can be false because the outside
// world handed us bad bytes (a truncated index file, a bit-flipped
// codebook, a dataset with NaNs) must return a Status instead: a process
// serving millions of users never aborts because one file on disk rotted.
//
// Status carries a coarse code plus a human-actionable message ("which
// file, which section, what disagreed"). StatusOr<T> bundles a Status with
// a value for factory-style APIs.
#ifndef RESINFER_UTIL_STATUS_H_
#define RESINFER_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/macros.h"

namespace resinfer::util {

enum class StatusCode {
  kOk = 0,
  // The bytes/arguments are structurally or semantically invalid
  // (malformed header, shape mismatch, NaN where a distance belongs).
  kInvalidArgument = 1,
  // The named file/resource does not exist or cannot be opened.
  kNotFound = 2,
  // The bytes were once valid but no longer are (checksum mismatch,
  // truncation, version from the future).
  kCorruption = 3,
  // The operating system failed us (short write, fsync/rename failure,
  // out of disk).
  kIOError = 4,
  // The operation is valid but not in the object's current state.
  kFailedPrecondition = 5,
  // A should-not-happen escaped into a recoverable path.
  kInternal = 6,
};

const char* StatusCodeName(StatusCode code);

// [[nodiscard]] at class level: every function returning a Status (or
// StatusOr) by value is implicitly must-use, with no per-declaration
// annotation to forget. Silently dropping an error — the bug class the
// static-analysis CI job exists to kill — is a compile error under
// -Werror. Intentional discards must say so: `(void)DoThing();  // why`.
class [[nodiscard]] Status {
 public:
  // Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  // nodiscard on the boolean accessors too: `s.ok();` without using the
  // result is always a bug (the caller meant to branch on it).
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "CORRUPTION: ivf.bin: section 'buckets' checksum mismatch".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-error result for factory-style loaders. Accessing the value of
// a non-OK StatusOr is a caller bug (checked).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit from a value (OK) or from a non-OK Status, mirroring absl.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RESINFER_CHECK_MSG(!status_.ok(),
                       "StatusOr constructed from OK status without a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    RESINFER_CHECK_MSG(ok(), "StatusOr::value() on a non-OK status");
    return *value_;
  }
  T& value() & {
    RESINFER_CHECK_MSG(ok(), "StatusOr::value() on a non-OK status");
    return *value_;
  }
  T&& value() && {
    RESINFER_CHECK_MSG(ok(), "StatusOr::value() on a non-OK status");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace resinfer::util

// Propagates a non-OK Status to the caller; evaluates `expr` once.
#define RESINFER_RETURN_IF_ERROR(expr)                   \
  do {                                                   \
    ::resinfer::util::Status status_macro_ = (expr);     \
    if (!status_macro_.ok()) return status_macro_;       \
  } while (0)

#endif  // RESINFER_UTIL_STATUS_H_

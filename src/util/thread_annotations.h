// Clang Thread Safety Analysis annotations + annotated locking primitives.
//
// The serving runtime (serve::Executor, serve::IvfServer) is lock-heavy by
// design, and the lock discipline — which mutex guards which field, which
// functions must (or must not) hold which lock — used to live only in
// comments and in TSan's luck at catching a bad interleaving at runtime.
// These macros turn that discipline into a compile-time contract: under
// clang the whole tree builds with -Wthread-safety -Werror (the
// static-analysis CI job), so reading a RESINFER_GUARDED_BY field without
// its mutex is a build break, not a latent race. Under GCC and MSVC every
// macro expands to nothing and the wrappers behave exactly like
// std::mutex / std::lock_guard / std::condition_variable.
//
// Use the annotated types below (util::Mutex, util::MutexLock,
// util::CondVar) instead of the std primitives in library code: the std
// types carry no capability attributes, so the analysis cannot see through
// them. tools/lint_invariants enforces that naked std::mutex / std::thread
// stay confined to src/serve + src/util (and util::Mutex is preferred even
// there).
//
// The vocabulary mirrors abseil's thread_annotations.h:
//   RESINFER_GUARDED_BY(mu)    field may only be touched with mu held
//   RESINFER_PT_GUARDED_BY(mu) pointee guarded, pointer itself free
//   RESINFER_REQUIRES(mu)      caller must hold mu (non-reentrant)
//   RESINFER_EXCLUDES(mu)      caller must NOT hold mu (self-deadlock guard)
//   RESINFER_ACQUIRE(mu)       function acquires mu and does not release it
//   RESINFER_RELEASE(mu)       function releases mu
//   RESINFER_ACQUIRED_AFTER    documents lock ordering for deadlock analysis
//   RESINFER_NO_THREAD_SAFETY_ANALYSIS  opt-out for one function (justify!)
#ifndef RESINFER_UTIL_THREAD_ANNOTATIONS_H_
#define RESINFER_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define RESINFER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RESINFER_THREAD_ANNOTATION(x)  // no-op on GCC / MSVC
#endif

#define RESINFER_CAPABILITY(name) \
  RESINFER_THREAD_ANNOTATION(capability(name))
#define RESINFER_SCOPED_CAPABILITY \
  RESINFER_THREAD_ANNOTATION(scoped_lockable)
#define RESINFER_GUARDED_BY(mu) RESINFER_THREAD_ANNOTATION(guarded_by(mu))
#define RESINFER_PT_GUARDED_BY(mu) \
  RESINFER_THREAD_ANNOTATION(pt_guarded_by(mu))
#define RESINFER_REQUIRES(...) \
  RESINFER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RESINFER_REQUIRES_SHARED(...) \
  RESINFER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RESINFER_EXCLUDES(...) \
  RESINFER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RESINFER_ACQUIRE(...) \
  RESINFER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RESINFER_TRY_ACQUIRE(...) \
  RESINFER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RESINFER_RELEASE(...) \
  RESINFER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RESINFER_ACQUIRED_AFTER(...) \
  RESINFER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define RESINFER_ACQUIRED_BEFORE(...) \
  RESINFER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RESINFER_RETURN_CAPABILITY(mu) \
  RESINFER_THREAD_ANNOTATION(lock_returned(mu))
#define RESINFER_NO_THREAD_SAFETY_ANALYSIS \
  RESINFER_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace resinfer::util {

// std::mutex with the capability attribute the analysis needs. Zero
// overhead: the wrapper is exactly one std::mutex, and every method is a
// forwarding inline.
class RESINFER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RESINFER_ACQUIRE() { mu_.lock(); }
  void Unlock() RESINFER_RELEASE() { mu_.unlock(); }
  bool TryLock() RESINFER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For CondVar only: the analysis does not follow the native handle, so
  // callers other than CondVar should go through Lock/Unlock/MutexLock.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock with the scoped-capability attribute (the annotated
// std::lock_guard). Scope-bound: the analysis credits the capability for
// exactly the lifetime of the object.
class RESINFER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RESINFER_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RESINFER_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over util::Mutex. Every Wait* requires the mutex held
// (enforced under clang); notification never requires it. Implemented on
// std::condition_variable via adopt/release so there is no
// condition_variable_any overhead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) RESINFER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still holds mu; do not double-unlock
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) RESINFER_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  // Returns cv_status::timeout on deadline expiry, like the std API.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) RESINFER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      RESINFER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace resinfer::util

#endif  // RESINFER_UTIL_THREAD_ANNOTATIONS_H_

// Wall-clock timer for benchmark harnesses and preprocessing-cost reports.
#ifndef RESINFER_UTIL_TIMER_H_
#define RESINFER_UTIL_TIMER_H_

#include <chrono>

namespace resinfer {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace resinfer

#endif  // RESINFER_UTIL_TIMER_H_

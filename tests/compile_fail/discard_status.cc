// Negative-compile case: a silently discarded util::Status must not
// compile. Built twice by the harness (see "Compile-fail tests" in
// CMakeLists.txt): with RESINFER_EXPECT_COMPILE_FAIL the violating branch
// is compiled and the build is asserted to FAIL; without it the control
// branch proves the surrounding code is otherwise valid, so the failure
// can only come from the seeded violation.
#include "util/status.h"

namespace {

resinfer::util::Status DoThing() { return resinfer::util::Status::Ok(); }

}  // namespace

void CompileFailDiscardStatus() {
#if defined(RESINFER_EXPECT_COMPILE_FAIL)
  DoThing();  // discarded [[nodiscard]] Status — -Werror turns this fatal
#else
  (void)DoThing();  // the sanctioned intentional-discard spelling
#endif
}

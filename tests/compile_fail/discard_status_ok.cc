// Negative-compile case: calling Status::ok() without using the result
// must not compile — the caller meant to branch on it. See
// discard_status.cc for how the two-variant harness works.
#include "util/status.h"

int CompileFailDiscardOk(const resinfer::util::Status& s) {
#if defined(RESINFER_EXPECT_COMPILE_FAIL)
  s.ok();  // discarded [[nodiscard]] bool
  return 0;
#else
  return s.ok() ? 0 : 1;
#endif
}

// Negative-compile case: a discarded util::StatusOr<T> must not compile —
// dropping it drops both the value and the error. See discard_status.cc
// for how the two-variant harness works.
#include "util/status.h"

namespace {

resinfer::util::StatusOr<int> MakeThing() { return 42; }

}  // namespace

int CompileFailDiscardStatusOr() {
#if defined(RESINFER_EXPECT_COMPILE_FAIL)
  MakeThing();  // discarded [[nodiscard]] StatusOr
  return 0;
#else
  resinfer::util::StatusOr<int> result = MakeThing();
  return result.ok() ? *result : -1;
#endif
}

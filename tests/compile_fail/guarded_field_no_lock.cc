// Negative-compile case (clang only): reading a RESINFER_GUARDED_BY field
// without holding its mutex must not compile under
// -Wthread-safety -Werror. The harness registers this case only when the
// compiler is clang — the annotations are no-ops elsewhere. See
// discard_status.cc for how the two-variant harness works.
#include <cstdint>

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    resinfer::util::MutexLock lock(mu_);
    ++value_;
  }

  int64_t value() const {
#if defined(RESINFER_EXPECT_COMPILE_FAIL)
    return value_;  // guarded-field read without mu_ — TSA must reject
#else
    resinfer::util::MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  mutable resinfer::util::Mutex mu_;
  int64_t value_ RESINFER_GUARDED_BY(mu_) = 0;
};

}  // namespace

int64_t CompileFailGuardedField() {
  Counter counter;
  counter.Increment();
  return counter.value();
}

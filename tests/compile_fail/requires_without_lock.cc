// Negative-compile case (clang only): calling a RESINFER_REQUIRES(mu)
// function without holding mu must not compile under
// -Wthread-safety -Werror. See guarded_field_no_lock.cc for the clang
// gating and discard_status.cc for how the two-variant harness works.
#include "util/thread_annotations.h"

namespace {

class Widget {
 public:
  void Poke() RESINFER_EXCLUDES(mu_) {
#if defined(RESINFER_EXPECT_COMPILE_FAIL)
    PokeLocked();  // REQUIRES(mu_) callee, caller holds nothing — TSA error
#else
    resinfer::util::MutexLock lock(mu_);
    PokeLocked();
#endif
  }

 private:
  void PokeLocked() RESINFER_REQUIRES(mu_) { ++count_; }

  resinfer::util::Mutex mu_;
  int count_ RESINFER_GUARDED_BY(mu_) = 0;
};

}  // namespace

void CompileFailRequiresWithoutLock() {
  Widget widget;
  widget.Poke();
}

#include "core/ad_sampling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "linalg/orthogonal.h"
#include "test_util.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace resinfer::core {
namespace {

struct Fixture {
  data::Dataset ds;
  linalg::Matrix rotation;
  linalg::Matrix rotated;

  explicit Fixture(int64_t n = 2000, int64_t dim = 48)
      : ds(testing::SmallDataset(n, dim, 1.0, 63, 16, 4)) {
    Rng rng(64);
    rotation = linalg::RandomOrthonormal(dim, rng);
    rotated = linalg::Matrix(n, dim);
    ParallelFor(n, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        linalg::MatVec(rotation, ds.base.Row(i), rotated.Row(i));
      }
    });
  }
};

TEST(AdSamplingTest, ExactPathMatchesTrueDistance) {
  Fixture f;
  AdSamplingOptions options;
  options.delta_dim = 8;
  AdSamplingComputer computer(&f.rotation, &f.rotated, options);
  for (int64_t q = 0; q < 4; ++q) {
    computer.BeginQuery(f.ds.queries.Row(q));
    for (int64_t i = 0; i < 40; ++i) {
      auto est = computer.EstimateWithThreshold(i, index::kInfDistance);
      ASSERT_FALSE(est.pruned);
      float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(q));
      EXPECT_NEAR(est.distance, truth, 1e-3f * (1.0f + truth));
    }
  }
}

TEST(AdSamplingTest, PruningIsApproximatelySound) {
  Fixture f;
  AdSamplingOptions options;
  options.delta_dim = 8;
  AdSamplingComputer computer(&f.rotation, &f.rotated, options);

  int64_t pruned = 0, false_pruned = 0;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    const float* query = f.ds.queries.Row(q);
    computer.BeginQuery(query);
    auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
    const float tau = knn.back().distance;
    for (int64_t i = 0; i < f.ds.size(); i += 3) {
      auto est = computer.EstimateWithThreshold(i, tau);
      if (est.pruned) {
        ++pruned;
        if (data::ExactL2Sqr(f.ds.base, i, query) <= tau) ++false_pruned;
      }
    }
  }
  ASSERT_GT(pruned, 100);
  EXPECT_LT(static_cast<double>(false_pruned) / pruned, 0.01);
}

TEST(AdSamplingTest, EstimatorIsUnbiasedOverRotations) {
  // (D/d) * ||(x-q)_d||^2 is unbiased over the CHOICE of random rotation
  // (Lemma 1); for any single fixed rotation on skewed data the mean ratio
  // may deviate. Average across several rotations and check convergence
  // toward 1.
  data::Dataset ds = testing::SmallDataset(400, 48, 1.0, 65, 4, 4);
  double grand_ratio = 0.0;
  constexpr int kRotations = 6;
  for (int r = 0; r < kRotations; ++r) {
    Rng rng(200 + r);
    linalg::Matrix rotation = linalg::RandomOrthonormal(48, rng);
    linalg::Matrix rotated(400, 48);
    for (int64_t i = 0; i < 400; ++i) {
      linalg::MatVec(rotation, ds.base.Row(i), rotated.Row(i));
    }
    AdSamplingComputer computer(&rotation, &rotated);
    computer.BeginQuery(ds.queries.Row(0));
    double ratio_sum = 0.0;
    int64_t count = 0;
    for (int64_t i = 0; i < 400; i += 3) {
      float exact = data::ExactL2Sqr(ds.base, i, ds.queries.Row(0));
      if (exact < 1e-3f) continue;
      ratio_sum += computer.ApproximateDistance(i, 16) / exact;
      ++count;
    }
    grand_ratio += ratio_sum / count;
  }
  EXPECT_NEAR(grand_ratio / kRotations, 1.0, 0.2);
}

TEST(AdSamplingTest, ScanRateBelowOneOnTightThreshold) {
  Fixture f;
  AdSamplingComputer computer(&f.rotation, &f.rotated);
  const float* query = f.ds.queries.Row(1);
  computer.BeginQuery(query);
  auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
  computer.stats().Reset();
  for (int64_t i = 0; i < f.ds.size(); ++i) {
    computer.EstimateWithThreshold(i, knn.back().distance);
  }
  EXPECT_GT(computer.stats().PrunedRate(), 0.3);
  EXPECT_LT(computer.stats().ScanRate(f.ds.dim()), 0.95);
}

TEST(AdSamplingTest, RotationPreservesExactDistances) {
  Fixture f(500);
  AdSamplingComputer computer(&f.rotation, &f.rotated);
  computer.BeginQuery(f.ds.queries.Row(2));
  for (int64_t i = 0; i < 30; ++i) {
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(2));
    EXPECT_NEAR(computer.ExactDistance(i), truth, 1e-3f * (1.0f + truth));
  }
}

}  // namespace
}  // namespace resinfer::core

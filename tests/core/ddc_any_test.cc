#include "core/ddc_any.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "index/flat_index.h"
#include "index/hnsw_index.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

struct AnyFixture {
  data::Dataset ds = testing::SmallDataset(3000, 32, 0.9, 41, 48, 400);
  PqEstimatorData pq;
  RqEstimatorData rq;
  SqEstimatorData sq;

  AnyFixture() {
    quant::PqOptions pq_options;
    pq_options.num_subspaces = 8;
    pq_options.nbits = 6;
    pq = BuildPqEstimatorData(ds.base, pq_options);

    quant::RqOptions rq_options;
    rq_options.num_stages = 4;
    rq_options.nbits = 6;
    rq = BuildRqEstimatorData(ds.base, rq_options);

    sq = BuildSqEstimatorData(ds.base);
  }
};

// Built once; the trainers dominate the suite's runtime otherwise.
AnyFixture& Fixture() {
  static AnyFixture* fixture = new AnyFixture();
  return *fixture;
}

TEST(DdcAnyTest, ArtifactShapes) {
  AnyFixture& f = Fixture();
  const auto n = static_cast<std::size_t>(f.ds.size());
  EXPECT_EQ(f.pq.codes.size(), n * f.pq.pq.code_size());
  EXPECT_EQ(f.pq.recon_errors.size(), n);
  EXPECT_EQ(f.rq.codes.size(), n * f.rq.rq.code_size());
  EXPECT_EQ(f.rq.recon_norms.size(), n);
  EXPECT_EQ(f.rq.recon_errors.size(), n);
  EXPECT_EQ(f.sq.codes.size(), n * 32);
  EXPECT_GT(f.pq.ExtraBytes(), 0);
  EXPECT_GT(f.rq.ExtraBytes(), 0);
  EXPECT_GT(f.sq.ExtraBytes(), 0);
}

TEST(DdcAnyTest, EstimatorsReportDeclaredSizes) {
  AnyFixture& f = Fixture();
  PqAdcEstimator pq(&f.pq);
  RqAdcEstimator rq(&f.rq);
  SqAdcEstimator sq(&f.sq);
  for (ApproxDistanceEstimator* estimator :
       std::vector<ApproxDistanceEstimator*>{&pq, &rq, &sq}) {
    EXPECT_EQ(estimator->dim(), 32);
    EXPECT_EQ(estimator->size(), f.ds.size());
    EXPECT_TRUE(estimator->has_extra_feature());
  }
}

TEST(DdcAnyTest, EstimatesTrackExactDistances) {
  // Every backend must produce approximations whose mean relative error is
  // small — otherwise the corrector has nothing to work with.
  AnyFixture& f = Fixture();
  PqAdcEstimator pq(&f.pq);
  RqAdcEstimator rq(&f.rq);
  SqAdcEstimator sq(&f.sq);
  struct Case {
    ApproxDistanceEstimator* estimator;
    double max_mean_rel_err;
  };
  for (const Case& c : {Case{&pq, 0.35}, Case{&rq, 0.35}, Case{&sq, 0.05}}) {
    double total = 0.0;
    int count = 0;
    for (int64_t q = 0; q < 8; ++q) {
      const float* query = f.ds.queries.Row(q);
      c.estimator->BeginQuery(query);
      for (int64_t i = 0; i < f.ds.size(); i += 97) {
        float extra = 0.0f;
        const float approx = c.estimator->Estimate(i, &extra);
        const float exact = simd::L2Sqr(query, f.ds.base.Row(i), 32);
        total += std::abs(approx - exact) / (1.0f + exact);
        ++count;
      }
    }
    EXPECT_LT(total / count, c.max_mean_rel_err)
        << c.estimator->name() << " drifted from the exact distances";
  }
}

TEST(DdcAnyTest, ExtraFeatureIsPerPointReconstructionError) {
  AnyFixture& f = Fixture();
  RqAdcEstimator rq(&f.rq);
  rq.BeginQuery(f.ds.queries.Row(0));
  float extra = -1.0f;
  rq.Estimate(5, &extra);
  EXPECT_FLOAT_EQ(extra, f.rq.recon_errors[5]);
}

TEST(DdcAnyTest, TrainedCorrectorMeetsTargetRecallOnTrainingSet) {
  AnyFixture& f = Fixture();
  TrainingDataOptions training;
  training.max_queries = 150;
  LinearCorrectorOptions corrector_options;
  corrector_options.target_recall = 0.995;

  RqAdcEstimator estimator(&f.rq);
  LinearCorrector corrector = TrainAnyCorrector(
      estimator, f.ds.base, f.ds.train_queries, training, corrector_options);
  EXPECT_TRUE(corrector.trained());

  // Re-materialize the training samples and check the calibrated boundary.
  std::vector<LabeledPair> pairs =
      CollectLabeledPairs(f.ds.base, f.ds.train_queries, training);
  int64_t current = -1;
  std::vector<CorrectorSample> samples = MaterializeSamples(
      pairs, [&](int64_t query_index, int64_t id, float* extra) {
        if (query_index != current) {
          estimator.BeginQuery(f.ds.train_queries.Row(query_index));
          current = query_index;
        }
        return estimator.Estimate(id, extra);
      });
  LinearCorrector::Metrics metrics = corrector.Evaluate(samples);
  EXPECT_GE(metrics.label0_recall, 0.99);
  EXPECT_GT(metrics.label1_recall, 0.3);  // it must actually prune
}

struct BackendCase {
  std::string name;
  double min_recall;
};

class DdcAnyEndToEndTest : public ::testing::TestWithParam<BackendCase> {
 protected:
  std::unique_ptr<DdcAnyComputer> MakeComputer(const LinearCorrector* c) {
    AnyFixture& f = Fixture();
    std::unique_ptr<ApproxDistanceEstimator> estimator;
    if (GetParam().name == "pq") {
      estimator = std::make_unique<PqAdcEstimator>(&f.pq);
    } else if (GetParam().name == "rq") {
      estimator = std::make_unique<RqAdcEstimator>(&f.rq);
    } else {
      estimator = std::make_unique<SqAdcEstimator>(&f.sq);
    }
    return std::make_unique<DdcAnyComputer>(&f.ds.base, std::move(estimator),
                                            c);
  }

  LinearCorrector TrainFor() {
    AnyFixture& f = Fixture();
    TrainingDataOptions training;
    training.max_queries = 150;
    std::unique_ptr<ApproxDistanceEstimator> estimator;
    if (GetParam().name == "pq") {
      estimator = std::make_unique<PqAdcEstimator>(&f.pq);
    } else if (GetParam().name == "rq") {
      estimator = std::make_unique<RqAdcEstimator>(&f.rq);
    } else {
      estimator = std::make_unique<SqAdcEstimator>(&f.sq);
    }
    return TrainAnyCorrector(*estimator, f.ds.base, f.ds.train_queries,
                             training);
  }
};

TEST_P(DdcAnyEndToEndTest, FlatScanRecallAndPruning) {
  AnyFixture& f = Fixture();
  LinearCorrector corrector = TrainFor();
  auto computer = MakeComputer(&corrector);

  index::FlatIndex flat(f.ds.base);
  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, k);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    computer->BeginQuery(f.ds.queries.Row(q));
    std::vector<index::Neighbor> found =
        flat.Search(*computer, f.ds.queries.Row(q), k);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GE(data::MeanRecallAtK(results, truth, k), GetParam().min_recall);
  // The corrected scan must actually skip exact computations.
  EXPECT_GT(computer->stats().PrunedRate(), 0.3);
}

TEST_P(DdcAnyEndToEndTest, PrunedCandidatesAreAlmostAlwaysBeyondTau) {
  // Soundness of the learned boundary at its calibrated confidence: among
  // pruned candidates, the fraction whose exact distance is <= tau must be
  // small (they are the recall loss the target_recall knob controls).
  AnyFixture& f = Fixture();
  LinearCorrector corrector = TrainFor();
  auto computer = MakeComputer(&corrector);

  int64_t pruned = 0;
  int64_t wrong = 0;
  for (int64_t q = 0; q < 16; ++q) {
    const float* query = f.ds.queries.Row(q);
    computer->BeginQuery(query);
    // tau from the true 10-NN of this query.
    std::vector<data::Neighbor> nn =
        data::BruteForceKnnSingle(f.ds.base, query, 10);
    const float tau = nn.back().distance;
    for (int64_t i = 0; i < f.ds.size(); i += 13) {
      index::EstimateResult r = computer->EstimateWithThreshold(i, tau);
      if (r.pruned) {
        ++pruned;
        const float exact = simd::L2Sqr(query, f.ds.base.Row(i), 32);
        if (exact <= tau) ++wrong;
      }
    }
  }
  ASSERT_GT(pruned, 0);
  EXPECT_LT(static_cast<double>(wrong) / pruned, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DdcAnyEndToEndTest,
    ::testing::Values(BackendCase{"pq", 0.92}, BackendCase{"rq", 0.92},
                      BackendCase{"sq", 0.95}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return info.param.name;
    });

TEST(DdcAnyTest, WorksInsideHnsw) {
  // The generic computer must slot into the graph index exactly like the
  // built-in DDC variants.
  AnyFixture& f = Fixture();
  TrainingDataOptions training;
  training.max_queries = 150;
  RqAdcEstimator trainer(&f.rq);
  LinearCorrector corrector =
      TrainAnyCorrector(trainer, f.ds.base, f.ds.train_queries, training);

  index::HnswOptions options;
  options.ef_construction = 80;
  index::HnswIndex hnsw = index::HnswIndex::Build(f.ds.base, options);

  DdcAnyComputer computer(&f.ds.base,
                          std::make_unique<RqAdcEstimator>(&f.rq),
                          &corrector);
  const int k = 10;
  std::vector<std::vector<int64_t>> truth =
      data::BruteForceKnn(f.ds.base, f.ds.queries, k);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    computer.BeginQuery(f.ds.queries.Row(q));
    std::vector<index::Neighbor> found =
        hnsw.Search(computer, f.ds.queries.Row(q), k, /*ef=*/120);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GE(data::MeanRecallAtK(results, truth, k), 0.85);
}

TEST(DdcAnyTest, UntrainedCorrectorNeverPrunes) {
  AnyFixture& f = Fixture();
  LinearCorrector untrained;
  DdcAnyComputer computer(&f.ds.base,
                          std::make_unique<SqAdcEstimator>(&f.sq),
                          &untrained);
  computer.BeginQuery(f.ds.queries.Row(0));
  for (int64_t i = 0; i < 100; ++i) {
    index::EstimateResult r = computer.EstimateWithThreshold(i, 1e-3f);
    EXPECT_FALSE(r.pruned);
    // Not pruned => the returned distance is exact.
    EXPECT_FLOAT_EQ(
        r.distance,
        simd::L2Sqr(f.ds.queries.Row(0), f.ds.base.Row(i), 32));
  }
}

TEST(DdcAnyTest, InfiniteTauForcesExactPath) {
  AnyFixture& f = Fixture();
  TrainingDataOptions training;
  training.max_queries = 60;
  SqAdcEstimator trainer(&f.sq);
  LinearCorrector corrector =
      TrainAnyCorrector(trainer, f.ds.base, f.ds.train_queries, training);
  DdcAnyComputer computer(&f.ds.base,
                          std::make_unique<SqAdcEstimator>(&f.sq),
                          &corrector);
  computer.BeginQuery(f.ds.queries.Row(1));
  index::EstimateResult r =
      computer.EstimateWithThreshold(42, index::kInfDistance);
  EXPECT_FALSE(r.pruned);
  EXPECT_FLOAT_EQ(r.distance,
                  simd::L2Sqr(f.ds.queries.Row(1), f.ds.base.Row(42), 32));
}

}  // namespace
}  // namespace resinfer::core

#include "core/ddc_opq.h"

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "index/flat_index.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

struct Fixture {
  data::Dataset ds;
  DdcOpqArtifacts artifacts;

  explicit Fixture(int64_t n = 3000, int64_t dim = 32)
      : ds(testing::SmallDataset(n, dim, 1.0, 85, 16, 120)) {
    DdcOpqOptions options;
    options.opq.pq.num_subspaces = 8;
    options.opq.pq.nbits = 6;
    options.opq.pq.kmeans.max_iterations = 10;
    options.opq.num_iterations = 2;
    options.training.k = 10;
    options.training.max_queries = 100;
    options.training.negatives_per_query = 50;
    artifacts = TrainDdcOpq(ds.base, ds.train_queries, options);
  }
};

TEST(DdcOpqTest, ArtifactsComplete) {
  Fixture f;
  EXPECT_TRUE(f.artifacts.opq.trained());
  EXPECT_EQ(static_cast<int64_t>(f.artifacts.codes.size()),
            f.ds.size() * f.artifacts.opq.codebook().code_size());
  EXPECT_EQ(static_cast<int64_t>(f.artifacts.recon_errors.size()),
            f.ds.size());
  EXPECT_TRUE(f.artifacts.corrector.trained());
  EXPECT_GT(f.artifacts.ExtraBytes(), 0);
}

TEST(DdcOpqTest, ExactWhenNotPruned) {
  Fixture f;
  DdcOpqComputer computer(&f.ds.base, &f.artifacts);
  computer.BeginQuery(f.ds.queries.Row(0));
  for (int64_t i = 0; i < 50; ++i) {
    auto est = computer.EstimateWithThreshold(i, index::kInfDistance);
    ASSERT_FALSE(est.pruned);
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(0));
    EXPECT_FLOAT_EQ(est.distance, truth);
  }
}

TEST(DdcOpqTest, AdcApproximatesDistance) {
  Fixture f;
  DdcOpqComputer computer(&f.ds.base, &f.artifacts);
  computer.BeginQuery(f.ds.queries.Row(1));
  double rel = 0.0;
  int count = 0;
  for (int64_t i = 0; i < 200; ++i) {
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(1));
    if (truth < 1e-3f) continue;
    rel += std::abs(computer.ApproximateDistance(i) - truth) / truth;
    ++count;
  }
  EXPECT_LT(rel / count, 0.3);
}

TEST(DdcOpqTest, FlatScanMaintainsRecallAndPrunes) {
  Fixture f;
  index::FlatIndex flat(f.ds.base);
  DdcOpqComputer computer(&f.ds.base, &f.artifacts);
  auto truth = data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    auto found = flat.Search(computer, f.ds.queries.Row(q), 10);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(data::MeanRecallAtK(results, truth, 10), 0.9);
  EXPECT_GT(computer.stats().PrunedRate(), 0.3);
}

TEST(DdcOpqTest, DefaultSubspacesDividesDim) {
  EXPECT_EQ(DefaultOpqSubspaces(128), 32);
  EXPECT_EQ(DefaultOpqSubspaces(300), 75);
  EXPECT_EQ(DefaultOpqSubspaces(960), 240);
  EXPECT_EQ(DefaultOpqSubspaces(420), 105);
  EXPECT_EQ(DefaultOpqSubspaces(7), 1);
  for (int64_t d : {128, 300, 960, 420, 256, 512}) {
    EXPECT_EQ(d % DefaultOpqSubspaces(d), 0) << d;
  }
}

TEST(DdcOpqTest, PrunedCandidatesAreOverwhelminglyBeyondTau) {
  Fixture f;
  DdcOpqComputer computer(&f.ds.base, &f.artifacts);
  int64_t pruned = 0, false_pruned = 0;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    const float* query = f.ds.queries.Row(q);
    computer.BeginQuery(query);
    auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
    const float tau = knn.back().distance;
    for (int64_t i = 0; i < f.ds.size(); i += 3) {
      if (computer.EstimateWithThreshold(i, tau).pruned) {
        ++pruned;
        if (data::ExactL2Sqr(f.ds.base, i, query) <= tau) ++false_pruned;
      }
    }
  }
  ASSERT_GT(pruned, 100);
  // The learned corrector targets 99.5% label-0 recall; the observed false
  // pruning rate over all pruned candidates should be small.
  EXPECT_LT(static_cast<double>(false_pruned) / pruned, 0.02);
}

}  // namespace
}  // namespace resinfer::core

#include "core/ddc_pca.h"

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "data/metrics.h"
#include "index/flat_index.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

struct Fixture {
  data::Dataset ds;
  linalg::PcaModel pca;
  linalg::Matrix rotated;
  DdcPcaArtifacts artifacts;

  explicit Fixture(int64_t n = 3000, int64_t dim = 48)
      : ds(testing::SmallDataset(n, dim, 1.0, 80, 16, 120)) {
    pca = linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
    rotated = pca.TransformBatch(ds.base.data(), ds.size());
    DdcPcaOptions options;
    options.init_dim = 8;
    options.delta_dim = 16;
    options.training.k = 10;
    options.training.max_queries = 100;
    options.training.negatives_per_query = 50;
    artifacts = TrainDdcPca(pca, rotated, ds.base, ds.train_queries, options);
  }
};

TEST(DdcPcaTest, TrainsOneCorrectorPerStage) {
  Fixture f;
  EXPECT_EQ(f.artifacts.stage_dims.size(), f.artifacts.correctors.size());
  EXPECT_FALSE(f.artifacts.stage_dims.empty());
  for (std::size_t i = 1; i < f.artifacts.stage_dims.size(); ++i) {
    EXPECT_GT(f.artifacts.stage_dims[i], f.artifacts.stage_dims[i - 1]);
  }
  EXPECT_LT(f.artifacts.stage_dims.back(), f.ds.dim());
  EXPECT_GT(f.artifacts.train_seconds, 0.0);
}

TEST(DdcPcaTest, ExactWhenNotPruned) {
  Fixture f;
  DdcPcaComputer computer(&f.pca, &f.rotated, &f.artifacts);
  computer.BeginQuery(f.ds.queries.Row(0));
  for (int64_t i = 0; i < 50; ++i) {
    auto est = computer.EstimateWithThreshold(i, index::kInfDistance);
    ASSERT_FALSE(est.pruned);
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(0));
    EXPECT_NEAR(est.distance, truth, 1e-3f * (1.0f + truth));
  }
}

TEST(DdcPcaTest, FlatScanMaintainsRecall) {
  Fixture f;
  index::FlatIndex flat(f.ds.base);
  DdcPcaComputer computer(&f.pca, &f.rotated, &f.artifacts);
  auto truth = data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  std::vector<std::vector<int64_t>> results;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    auto found = flat.Search(computer, f.ds.queries.Row(q), 10);
    std::vector<int64_t> ids;
    for (const auto& nb : found) ids.push_back(nb.id);
    results.push_back(std::move(ids));
  }
  EXPECT_GT(data::MeanRecallAtK(results, truth, 10), 0.95);
  // And it should actually prune.
  EXPECT_GT(computer.stats().PrunedRate(), 0.3);
}

TEST(DdcPcaTest, ApproximateDistanceIsLowerBound) {
  Fixture f(1000);
  DdcPcaComputer computer(&f.pca, &f.rotated, &f.artifacts);
  computer.BeginQuery(f.ds.queries.Row(1));
  for (int64_t i = 0; i < 30; ++i) {
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(1));
    float approx = computer.ApproximateDistance(i, 8);
    EXPECT_LE(approx, truth * (1.0f + 1e-3f) + 1e-3f);
  }
}

TEST(DdcPcaTest, ScanRateBelowOne) {
  Fixture f;
  DdcPcaComputer computer(&f.pca, &f.rotated, &f.artifacts);
  const float* query = f.ds.queries.Row(2);
  computer.BeginQuery(query);
  auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
  computer.stats().Reset();
  for (int64_t i = 0; i < f.ds.size(); ++i) {
    computer.EstimateWithThreshold(i, knn.back().distance);
  }
  EXPECT_LT(computer.stats().ScanRate(f.ds.dim()), 0.9);
}

}  // namespace
}  // namespace resinfer::core

#include "core/ddc_res.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/ground_truth.h"
#include "index/flat_index.h"
#include "simd/kernels.h"
#include "test_util.h"

namespace resinfer::core {
namespace {

struct Fixture {
  data::Dataset ds;
  linalg::PcaModel pca;
  linalg::Matrix rotated;

  explicit Fixture(int64_t n = 3000, int64_t dim = 48, double alpha = 1.0)
      : ds(testing::SmallDataset(n, dim, alpha, 62, 16, 8)) {
    pca = linalg::PcaModel::Fit(ds.base.data(), ds.size(), ds.dim());
    rotated = pca.TransformBatch(ds.base.data(), ds.size());
  }
};

TEST(DdcResTest, ExactPathMatchesTrueDistance) {
  Fixture f;
  DdcResOptions options;
  options.init_dim = 8;
  options.delta_dim = 8;
  DdcResComputer computer(&f.pca, &f.rotated, options);

  for (int64_t q = 0; q < 4; ++q) {
    computer.BeginQuery(f.ds.queries.Row(q));
    for (int64_t i = 0; i < 50; ++i) {
      // tau = +inf disables pruning -> the decomposition must reproduce the
      // exact distance (up to float cancellation in C1 - C2 - C3).
      auto est = computer.EstimateWithThreshold(i, index::kInfDistance);
      EXPECT_FALSE(est.pruned);
      float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(q));
      EXPECT_NEAR(est.distance, truth, 1e-2f * (1.0f + truth));
    }
  }
}

TEST(DdcResTest, ExactDistanceMethodMatches) {
  Fixture f;
  DdcResComputer computer(&f.pca, &f.rotated);
  computer.BeginQuery(f.ds.queries.Row(0));
  for (int64_t i = 0; i < 20; ++i) {
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(0));
    EXPECT_NEAR(computer.ExactDistance(i), truth, 1e-2f * (1.0f + truth));
  }
}

// Pruning soundness: at the 99.7% quantile, at most a small fraction of
// pruned candidates may actually lie within tau.
TEST(DdcResTest, PruningIsSoundAtConfiguredQuantile) {
  Fixture f;
  DdcResOptions options;
  options.init_dim = 8;
  options.delta_dim = 8;
  options.quantile = 0.997;
  DdcResComputer computer(&f.pca, &f.rotated, options);

  int64_t pruned = 0, false_pruned = 0;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    const float* query = f.ds.queries.Row(q);
    computer.BeginQuery(query);
    // tau = true 10-NN distance: a realistic, tight threshold.
    auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
    const float tau = knn.back().distance;
    for (int64_t i = 0; i < f.ds.size(); i += 3) {
      auto est = computer.EstimateWithThreshold(i, tau);
      if (est.pruned) {
        ++pruned;
        float truth = data::ExactL2Sqr(f.ds.base, i, query);
        if (truth <= tau) ++false_pruned;
      }
    }
  }
  ASSERT_GT(pruned, 100) << "test needs actual pruning to be meaningful";
  EXPECT_LT(static_cast<double>(false_pruned) / pruned, 0.01);
}

TEST(DdcResTest, PrunesMostFarCandidates) {
  Fixture f;
  DdcResComputer computer(&f.pca, &f.rotated);
  const float* query = f.ds.queries.Row(0);
  computer.BeginQuery(query);
  auto knn = data::BruteForceKnnSingle(f.ds.base, query, 10);
  const float tau = knn.back().distance;
  computer.stats().Reset();
  for (int64_t i = 0; i < f.ds.size(); ++i) {
    computer.EstimateWithThreshold(i, tau);
  }
  // On skewed data with a tight threshold most candidates prune early.
  EXPECT_GT(computer.stats().PrunedRate(), 0.5);
  EXPECT_LT(computer.stats().ScanRate(f.ds.dim()), 0.7);
}

TEST(DdcResTest, InfiniteTauNeverPrunes) {
  Fixture f(500);
  DdcResComputer computer(&f.pca, &f.rotated);
  computer.BeginQuery(f.ds.queries.Row(0));
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(
        computer.EstimateWithThreshold(i, index::kInfDistance).pruned);
  }
}

TEST(DdcResTest, BasicAlgorithmAlsoExactWhenNotPruned) {
  Fixture f(1000);
  DdcResOptions options;
  options.incremental = false;  // Algorithm 1
  options.init_dim = 8;
  DdcResComputer computer(&f.pca, &f.rotated, options);
  computer.BeginQuery(f.ds.queries.Row(2));
  for (int64_t i = 0; i < 50; ++i) {
    auto est = computer.EstimateWithThreshold(i, index::kInfDistance);
    ASSERT_FALSE(est.pruned);
    float truth = data::ExactL2Sqr(f.ds.base, i, f.ds.queries.Row(2));
    EXPECT_NEAR(est.distance, truth, 1e-2f * (1.0f + truth));
  }
}

TEST(DdcResTest, BasicScansAtMostTwoStages) {
  Fixture f(1000);
  DdcResOptions options;
  options.incremental = false;
  options.init_dim = 8;
  DdcResComputer computer(&f.pca, &f.rotated, options);
  computer.BeginQuery(f.ds.queries.Row(0));
  computer.stats().Reset();
  computer.EstimateWithThreshold(0, index::kInfDistance);
  // Non-incremental: either init_dim (pruned) or the full dimension.
  EXPECT_EQ(computer.stats().dims_scanned, f.ds.dim());
}

TEST(DdcResTest, FlatScanRecallNearExact) {
  Fixture f;
  index::FlatIndex flat(f.ds.base);
  DdcResComputer computer(&f.pca, &f.rotated);
  auto truth = data::BruteForceKnn(f.ds.base, f.ds.queries, 10);
  double recall = 0.0;
  for (int64_t q = 0; q < f.ds.queries.rows(); ++q) {
    auto result = flat.Search(computer, f.ds.queries.Row(q), 10);
    int hits = 0;
    for (const auto& nb : result) {
      for (int64_t t : truth[q])
        if (t == nb.id) {
          ++hits;
          break;
        }
    }
    recall += static_cast<double>(hits) / 10.0;
  }
  recall /= f.ds.queries.rows();
  EXPECT_GT(recall, 0.98);
}

TEST(DdcResTest, ApproximateDistanceConvergesWithDimension) {
  Fixture f;
  DdcResComputer computer(&f.pca, &f.rotated);
  computer.BeginQuery(f.ds.queries.Row(3));
  float truth = data::ExactL2Sqr(f.ds.base, 11, f.ds.queries.Row(3));
  float err_small =
      std::abs(computer.ApproximateDistance(11, 4) - truth);
  float err_full =
      std::abs(computer.ApproximateDistance(11, f.ds.dim()) - truth);
  EXPECT_LE(err_full, 1e-2f * (1.0f + truth));
  EXPECT_GE(err_small + 1e-4f, err_full);
}

TEST(DdcResTest, MultiplierOverride) {
  Fixture f(500);
  DdcResOptions options;
  options.multiplier = 5.0;
  DdcResComputer computer(&f.pca, &f.rotated, options);
  EXPECT_FLOAT_EQ(computer.multiplier(), 5.0f);
}

TEST(DdcResTest, ExtraBytesAccountsForRotationAndNorms) {
  Fixture f(500);
  DdcResComputer computer(&f.pca, &f.rotated);
  int64_t expected_min =
      f.ds.dim() * f.ds.dim() * static_cast<int64_t>(sizeof(float)) +
      f.ds.size() * static_cast<int64_t>(sizeof(float));
  EXPECT_GE(computer.ExtraBytes(), expected_min);
}

}  // namespace
}  // namespace resinfer::core
